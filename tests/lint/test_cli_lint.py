"""``repro lint`` CLI integration: subdirectory invocation, --taint,
--sarif, and --list-rules wiring."""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSubdirInvocation:
    def test_check_baseline_from_subdirectory(self, monkeypatch, capsys):
        # The analyzer must anchor to the repo root (pyproject.toml /
        # lint-baseline.json), not the CWD: same result from tests/.
        monkeypatch.chdir(REPO_ROOT / "tests")
        assert main(["lint", "--check-baseline"]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_taint_check_baseline_from_subdirectory(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT / "src" / "repro" / "dns")
        assert main(["lint", "--taint", "--check-baseline"]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_explicit_root_override(self, capsys):
        assert main(["lint", "--root", str(REPO_ROOT), "--check-baseline"]) == 0


class TestTaintFlag:
    def test_taint_flags_seeded_corpus_file(self, tmp_path, capsys):
        corpus = REPO_ROOT / "tests" / "taint" / "corpus"
        code = main(
            [
                "lint",
                "--root",
                str(REPO_ROOT),
                "--taint",
                "--format",
                "text",
                # point at a nonexistent baseline so findings print rather
                # than being diffed against the repo's ratchet file
                "--baseline",
                str(tmp_path / "none.json"),
                str(corpus / "vuln_t401_share_assembly.py"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "T401" in out

    def test_without_taint_corpus_file_is_quiet_on_t_rules(self, tmp_path, capsys):
        corpus = REPO_ROOT / "tests" / "taint" / "corpus"
        main(
            [
                "lint",
                "--root",
                str(REPO_ROOT),
                "--format",
                "text",
                "--baseline",
                str(tmp_path / "none.json"),
                str(corpus / "vuln_t401_share_assembly.py"),
            ]
        )
        assert "T401" not in capsys.readouterr().out


class TestSarif:
    def test_sarif_written_with_rule_catalog(self, tmp_path, capsys):
        corpus = REPO_ROOT / "tests" / "taint" / "corpus"
        out_file = tmp_path / "out.sarif"
        main(
            [
                "lint",
                "--root",
                str(REPO_ROOT),
                "--taint",
                "--sarif",
                str(out_file),
                str(corpus / "vuln_t403_alloc.py"),
            ]
        )
        doc = json.loads(out_file.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"T401", "T408", "S101"} <= rule_ids
        results = run["results"]
        assert any(r["ruleId"] == "T403" for r in results)

    def test_sarif_on_clean_input_has_no_results(self, tmp_path, capsys):
        corpus = REPO_ROOT / "tests" / "taint" / "corpus"
        out_file = tmp_path / "clean.sarif"
        assert (
            main(
                [
                    "lint",
                    "--root",
                    str(REPO_ROOT),
                    "--taint",
                    "--sarif",
                    str(out_file),
                    str(corpus / "clean_verified.py"),
                ]
            )
            == 0
        )
        doc = json.loads(out_file.read_text())
        assert doc["runs"][0]["results"] == []


class TestListRules:
    def test_catalog_includes_taint_and_framework_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("T401", "T402", "T403", "T404", "T405", "T406", "T407", "T408"):
            assert rule_id in out
        assert "S101" in out
