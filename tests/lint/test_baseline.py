"""Ratchet semantics for lint-baseline.json: new findings fail, fixed
findings make their entries stale (an error until re-recorded), and the
baseline may only shrink without an explicit --allow-growth."""

import json

import pytest

from repro.lint.baseline import (
    BaselineError,
    check_against_baseline,
    collect_counts,
    load_baseline,
    save_baseline,
    update_baseline,
)
from repro.lint.framework import Finding


def finding(rule, path, line=3):
    return Finding(rule=rule, path=path, line=line, col=0, message="fixture")


class TestCheck:
    def test_clean_when_counts_match(self):
        findings = [finding("C304", "src/a.py"), finding("C304", "src/a.py", 9)]
        assert check_against_baseline(findings, {"src/a.py": {"C304": 2}}) == []

    def test_new_finding_fails(self):
        findings = [finding("C304", "src/a.py"), finding("D101", "src/a.py")]
        problems = check_against_baseline(findings, {"src/a.py": {"C304": 1}})
        assert any("D101" in p and "new violation" in p for p in problems)

    def test_count_growth_fails(self):
        findings = [finding("C304", "src/a.py"), finding("C304", "src/a.py", 9)]
        problems = check_against_baseline(findings, {"src/a.py": {"C304": 1}})
        assert any("new violation" in p for p in problems)

    def test_new_file_fails(self):
        problems = check_against_baseline(
            [finding("C304", "src/b.py")], {"src/a.py": {"C304": 1}}
        )
        assert any("src/b.py" in p and "new violation" in p for p in problems)

    def test_new_finding_message_names_the_line(self):
        problems = check_against_baseline([finding("D101", "src/a.py", 42)], {})
        assert any("src/a.py:42" in p for p in problems)

    def test_fixed_finding_makes_entry_stale(self):
        # Fewer findings than allowed is ALSO an error: the baseline must
        # be re-recorded so the ceiling ratchets down and can't regress.
        problems = check_against_baseline(
            [finding("C304", "src/a.py")], {"src/a.py": {"C304": 2}}
        )
        assert any("stale" in p for p in problems)

    def test_fully_fixed_file_is_stale(self):
        problems = check_against_baseline([], {"src/a.py": {"C304": 1}})
        assert any("stale" in p for p in problems)


class TestUpdate:
    def test_update_shrinks(self):
        new = update_baseline(
            [finding("C304", "src/a.py")],
            {"src/a.py": {"C304": 3}},
            allow_growth=False,
        )
        assert new == {"src/a.py": {"C304": 1}}

    def test_update_drops_fixed_files(self):
        assert update_baseline([], {"src/a.py": {"C304": 1}}, allow_growth=False) == {}

    def test_update_refuses_growth(self):
        findings = [finding("C304", "src/a.py"), finding("C304", "src/a.py", 9)]
        with pytest.raises(BaselineError, match="C304 1 -> 2"):
            update_baseline(findings, {"src/a.py": {"C304": 1}}, allow_growth=False)

    def test_update_refuses_new_rule(self):
        findings = [finding("C304", "src/a.py"), finding("D101", "src/a.py")]
        with pytest.raises(BaselineError):
            update_baseline(findings, {"src/a.py": {"C304": 1}}, allow_growth=False)

    def test_allow_growth_overrides(self):
        new = update_baseline([finding("C304", "src/a.py")], {}, allow_growth=True)
        assert new == {"src/a.py": {"C304": 1}}


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        counts = {"src/a.py": {"D101": 1, "C304": 2}}
        save_baseline(path, counts)
        assert load_baseline(path) == counts
        # Stable serialization: version wrapper, sorted keys, newline EOF.
        text = path.read_text()
        assert text.endswith("\n")
        data = json.loads(text)
        assert data["version"] == 1
        assert list(data["entries"]["src/a.py"]) == ["C304", "D101"]

    def test_empty_entries_dropped_on_save(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        save_baseline(path, {"src/a.py": {}})
        assert load_baseline(path) == {}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text("not json {")
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestCollect:
    def test_counts_grouped_by_file_and_rule(self):
        findings = [
            finding("C304", "src/a.py"),
            finding("C304", "src/a.py", 9),
            finding("D101", "src/b.py"),
        ]
        assert collect_counts(findings) == {
            "src/a.py": {"C304": 2},
            "src/b.py": {"D101": 1},
        }
