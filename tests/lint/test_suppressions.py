"""Suppression-comment parsing, staleness reporting (S101), and the
repo-root anchoring that makes suppressions/baselines work from subdirs."""

import textwrap

from repro.lint.framework import (
    STALE_SUPPRESSION_RULE,
    FileContext,
    LintConfig,
    find_repo_root,
    parse_suppression_comments,
    stale_suppression_findings,
)


def parse(source):
    return parse_suppression_comments(textwrap.dedent(source))


class TestParsing:
    def test_same_line_comment_covers_its_line(self):
        sups = parse(
            """
            x = 1
            y = compute()  # repro-lint: disable=C304
            """
        )
        assert len(sups) == 1
        assert sups[0].rules == ("C304",)
        assert 3 in sups[0].covered

    def test_comment_only_line_covers_next_line(self):
        sups = parse(
            """
            # repro-lint: disable=T401
            x = assemble()
            """
        )
        assert len(sups) == 1
        assert 3 in sups[0].covered

    def test_multiple_rules_parsed(self):
        sups = parse(
            """
            # repro-lint: disable=C304,T404
            x = 1
            """
        )
        assert sups[0].rules == ("C304", "T404")

    def test_disable_file_covers_everything(self):
        sups = parse(
            """
            # repro-lint: disable-file=D101
            import time
            """
        )
        assert sups[0].covered == ()
        assert sups[0].shields("D101", 999)

    def test_docstring_examples_are_not_suppressions(self):
        # The directive syntax quoted inside a string literal (e.g. this
        # framework's own docstring) must not create a suppression.
        sups = parse(
            '''
            def f():
                """Use ``# repro-lint: disable=C304`` to suppress."""
                return 1
            '''
        )
        assert sups == []

    def test_syntax_error_source_yields_nothing(self):
        assert parse_suppression_comments("def broken(:\n") == []


def make_ctx(source, path="src/repro/broadcast/x.py"):
    import ast

    src = textwrap.dedent(source)
    return FileContext(
        path=path,
        module="repro.broadcast.x",
        source=src,
        tree=ast.parse(src),
        config=LintConfig(),
    )


class TestStaleReporting:
    def test_unused_suppression_reported(self):
        ctx = make_ctx(
            """
            # repro-lint: disable=C304
            x = 1
            """
        )
        findings = stale_suppression_findings(ctx, active_rules=["C304"])
        assert [f.rule for f in findings] == [STALE_SUPPRESSION_RULE]
        assert "C304" in findings[0].message

    def test_used_suppression_not_reported(self):
        ctx = make_ctx(
            """
            # repro-lint: disable=C304
            x = 1
            """
        )
        ctx.suppressions[0].used.add("C304")
        assert stale_suppression_findings(ctx, active_rules=["C304"]) == []

    def test_inactive_rule_exempt_from_staleness(self):
        # A T4xx suppression cannot be judged stale when --taint is off.
        ctx = make_ctx(
            """
            # repro-lint: disable=T401
            x = 1
            """
        )
        assert stale_suppression_findings(ctx, active_rules=["C304"]) == []

    def test_partially_used_comment_reports_only_unused_rule(self):
        ctx = make_ctx(
            """
            # repro-lint: disable=C304,T404
            x = 1
            """
        )
        ctx.suppressions[0].used.add("C304")
        findings = stale_suppression_findings(ctx, active_rules=["C304", "T404"])
        assert len(findings) == 1
        assert "T404" in findings[0].message


class TestRepoRootAnchoring:
    def test_walks_up_to_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\n")
        sub = tmp_path / "a" / "b"
        sub.mkdir(parents=True)
        assert find_repo_root(sub) == tmp_path

    def test_baseline_marker_also_anchors(self, tmp_path):
        (tmp_path / "lint-baseline.json").write_text("{}")
        sub = tmp_path / "deep"
        sub.mkdir()
        assert find_repo_root(sub) == tmp_path

    def test_falls_back_to_package_root(self, tmp_path):
        # No markers anywhere above tmp_path: the src-layout fallback must
        # land on this repository's own root (it has pyproject.toml).
        root = find_repo_root(tmp_path)
        assert (root / "pyproject.toml").is_file()
