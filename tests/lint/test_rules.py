"""Fixture snippets for every analyzer rule: true positives must be
detected, known-good patterns must stay silent."""

import textwrap

from repro.lint.framework import LintConfig, load_rules, run_source

DET_MODULE = "repro.core.replica"  # in the deterministic scope
CRYPTO_MODULE = "repro.crypto.shoup"  # in the crypto scope
HANDLER_MODULE = "repro.broadcast.abc"  # in the handler scope
PLAIN_MODULE = "repro.util.events"  # none of the special scopes


def rules_for(source, module):
    findings = run_source(textwrap.dedent(source), module)
    return [f.rule for f in findings]


class TestD101WallClock:
    def test_time_time_flagged(self):
        assert "D101" in rules_for(
            """
            import time
            def execute(self):
                return time.time()
            """,
            DET_MODULE,
        )

    def test_datetime_now_flagged(self):
        assert "D101" in rules_for(
            """
            import datetime
            def stamp():
                return datetime.datetime.now()
            """,
            DET_MODULE,
        )

    def test_import_alias_resolved(self):
        assert "D101" in rules_for(
            """
            from time import monotonic as mono
            def tick():
                return mono()
            """,
            DET_MODULE,
        )

    def test_node_clock_silent(self):
        # The simulated node clock is the sanctioned time source.
        assert rules_for(
            """
            def tick(self):
                return self.node.now
            """,
            DET_MODULE,
        ) == []

    def test_out_of_scope_module_silent(self):
        assert rules_for(
            """
            import time
            def bench():
                return time.time()
            """,
            PLAIN_MODULE,
        ) == []


class TestD102Entropy:
    def test_urandom_flagged(self):
        assert "D102" in rules_for(
            """
            import os
            def salt():
                return os.urandom(8)
            """,
            DET_MODULE,
        )

    def test_uuid4_flagged(self):
        assert "D102" in rules_for(
            """
            import uuid
            def rid():
                return uuid.uuid4()
            """,
            DET_MODULE,
        )

    def test_module_random_flagged(self):
        assert "D102" in rules_for(
            """
            import random
            def jitter():
                return random.random()
            """,
            DET_MODULE,
        )

    def test_seeded_instance_silent(self):
        assert rules_for(
            """
            import random
            def make_rng(seed):
                return random.Random(seed)
            """,
            DET_MODULE,
        ) == []


class TestD103UnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        assert "D103" in rules_for(
            """
            def emit(out):
                for name in {'a', 'b'}:
                    out.append(name)
            """,
            DET_MODULE,
        )

    def test_for_over_set_call_flagged(self):
        assert "D103" in rules_for(
            """
            def emit(names, out):
                for name in set(names):
                    out.append(name)
            """,
            DET_MODULE,
        )

    def test_set_typed_local_flagged(self):
        assert "D103" in rules_for(
            """
            def emit(a, b, out):
                changed = set(a) | set(b)
                for name in changed:
                    out.append(name)
            """,
            DET_MODULE,
        )

    def test_list_of_set_flagged(self):
        assert "D103" in rules_for(
            """
            def emit(names):
                return list(frozenset(names))
            """,
            DET_MODULE,
        )

    def test_sorted_silences(self):
        assert rules_for(
            """
            def emit(a, b, out):
                changed = set(a) | set(b)
                for name in sorted(changed):
                    out.append(name)
                return sorted(set(a))
            """,
            DET_MODULE,
        ) == []

    def test_dict_iteration_silent(self):
        # Dicts preserve insertion order; only sets are flagged.
        assert rules_for(
            """
            def emit(mapping, out):
                for key in mapping:
                    out.append(key)
            """,
            DET_MODULE,
        ) == []

    def test_membership_and_quorum_silent(self):
        assert rules_for(
            """
            def quorum(voters, threshold):
                return len(voters) >= threshold
            """,
            DET_MODULE,
        ) == []


class TestD104BuiltinHash:
    def test_hash_call_flagged(self):
        assert "D104" in rules_for(
            """
            def key(wire):
                return hash(wire)
            """,
            DET_MODULE,
        )

    def test_dunder_hash_silent(self):
        assert rules_for(
            """
            class Name:
                def __hash__(self):
                    return hash(self._folded)
            """,
            DET_MODULE,
        ) == []

    def test_hashlib_silent(self):
        assert rules_for(
            """
            import hashlib
            def key(wire):
                return hashlib.sha256(wire).digest()
            """,
            DET_MODULE,
        ) == []


class TestD105FloatSequence:
    def test_serial_division_flagged(self):
        assert "D105" in rules_for(
            """
            def bump(serial):
                return serial / 2
            """,
            DET_MODULE,
        )

    def test_float_of_seq_flagged(self):
        assert "D105" in rules_for(
            """
            def weight(self, msg):
                return float(msg.seq)
            """,
            DET_MODULE,
        )

    def test_floor_division_silent(self):
        assert rules_for(
            """
            def bump(serial):
                return serial // 2
            """,
            DET_MODULE,
        ) == []

    def test_unrelated_division_silent(self):
        assert rules_for(
            """
            def mean(total, count):
                return total / count
            """,
            DET_MODULE,
        ) == []


class TestD106SharedDefaultRng:
    def test_default_factory_lambda_flagged(self):
        # The FaultInjector bug class (repo-wide scope).
        assert "D106" in rules_for(
            """
            import random
            from dataclasses import dataclass, field

            @dataclass
            class Injector:
                rng: random.Random = field(default_factory=lambda: random.Random(7))
            """,
            PLAIN_MODULE,
        )

    def test_default_factory_reference_flagged(self):
        assert "D106" in rules_for(
            """
            import random
            from dataclasses import dataclass, field

            @dataclass
            class Injector:
                rng: random.Random = field(default_factory=random.Random)
            """,
            PLAIN_MODULE,
        )

    def test_argument_default_flagged(self):
        assert "D106" in rules_for(
            """
            import random
            def run(rng=random.Random(0)):
                return rng.random()
            """,
            PLAIN_MODULE,
        )

    def test_module_level_flagged(self):
        assert "D106" in rules_for(
            """
            import random
            RNG = random.Random(1234)
            """,
            PLAIN_MODULE,
        )

    def test_post_init_seeded_silent(self):
        # The fixed FaultInjector pattern: seed field + __post_init__.
        assert rules_for(
            """
            import random
            from dataclasses import dataclass, field

            @dataclass
            class Injector:
                seed: int = 0
                def __post_init__(self):
                    self.rng = random.Random(self.seed)
            """,
            PLAIN_MODULE,
        ) == []


class TestA201BlockingInAsync:
    def test_time_sleep_flagged(self):
        assert "A201" in rules_for(
            """
            import time
            async def settle():
                time.sleep(1)
            """,
            PLAIN_MODULE,
        )

    def test_subprocess_flagged(self):
        assert "A201" in rules_for(
            """
            import subprocess
            async def run():
                subprocess.check_output(["ls"])
            """,
            PLAIN_MODULE,
        )

    def test_asyncio_sleep_silent(self):
        assert rules_for(
            """
            import asyncio
            async def settle():
                await asyncio.sleep(1)
            """,
            PLAIN_MODULE,
        ) == []

    def test_sync_function_silent(self):
        assert rules_for(
            """
            import time
            def bench():
                time.sleep(1)
            """,
            PLAIN_MODULE,
        ) == []

    def test_nested_sync_def_silent(self):
        assert rules_for(
            """
            import time
            async def outer():
                def helper():
                    time.sleep(1)
                return helper
            """,
            PLAIN_MODULE,
        ) == []


class TestA202UnawaitedCoroutine:
    def test_bare_call_flagged(self):
        assert "A202" in rules_for(
            """
            async def work():
                pass

            async def main():
                work()
            """,
            PLAIN_MODULE,
        )

    def test_awaited_silent(self):
        assert rules_for(
            """
            async def work():
                pass

            async def main():
                await work()
            """,
            PLAIN_MODULE,
        ) == []

    def test_create_task_silent(self):
        assert rules_for(
            """
            import asyncio

            async def work():
                pass

            async def main():
                asyncio.create_task(work())
            """,
            PLAIN_MODULE,
        ) == []


class TestC301SecretEquality:
    def test_mac_equality_flagged(self):
        assert "C301" in rules_for(
            """
            def verify(expected_mac, received_mac):
                return expected_mac == received_mac
            """,
            CRYPTO_MODULE,
        )

    def test_compare_digest_silent(self):
        assert rules_for(
            """
            import hmac
            def verify(expected_mac, received_mac):
                return hmac.compare_digest(expected_mac, received_mac)
            """,
            CRYPTO_MODULE,
        ) == []

    def test_public_value_equality_silent(self):
        # pkcs1-style comparison of *public* encodings is fine.
        assert rules_for(
            """
            def verify(expected, em):
                return expected == em
            """,
            CRYPTO_MODULE,
        ) == []


class TestC302SecretInOutput:
    def test_fstring_flagged(self):
        assert "C302" in rules_for(
            """
            def debug(private_key):
                return f"key is {private_key}"
            """,
            CRYPTO_MODULE,
        )

    def test_print_flagged(self):
        assert "C302" in rules_for(
            """
            def debug(secret):
                print(secret)
            """,
            CRYPTO_MODULE,
        )

    def test_public_name_silent(self):
        assert rules_for(
            """
            def debug(modulus):
                return f"modulus is {modulus}"
            """,
            CRYPTO_MODULE,
        ) == []


class TestC303RandomForKeys:
    def test_random_in_crypto_flagged(self):
        assert "C303" in rules_for(
            """
            import random
            def keygen(bits):
                return random.getrandbits(bits)
            """,
            CRYPTO_MODULE,
        )

    def test_secrets_silent(self):
        assert rules_for(
            """
            import secrets
            def keygen(bits):
                return secrets.randbits(bits)
            """,
            CRYPTO_MODULE,
        ) == []


class TestC304UnboundedHandlerGrowth:
    def test_unbounded_setdefault_flagged(self):
        assert "C304" in rules_for(
            """
            class Coordinator:
                def on_message(self, sender, msg):
                    self._pending.setdefault(msg.sign_id, []).append((sender, msg))
            """,
            HANDLER_MODULE,
        )

    def test_unbounded_store_flagged(self):
        assert "C304" in rules_for(
            """
            class Broadcast:
                def _on_initiate(self, sender, msg):
                    self.pending[msg.request_id] = msg.payload
            """,
            HANDLER_MODULE,
        )

    def test_len_guard_silent(self):
        assert rules_for(
            """
            class Coordinator:
                def on_message(self, sender, msg):
                    if len(self._pending) >= 4096:
                        return
                    self._pending[msg.sign_id] = msg
            """,
            HANDLER_MODULE,
        ) == []

    def test_named_bound_guard_silent(self):
        assert rules_for(
            """
            MAX_ROUND_AHEAD = 64

            class Aba:
                def _on_aux(self, sender, msg):
                    if msg.round > self.round + MAX_ROUND_AHEAD:
                        return
                    self._aux_senders.setdefault(msg.round, {})[sender] = msg.value
            """,
            HANDLER_MODULE,
        ) == []

    def test_non_handler_silent(self):
        assert rules_for(
            """
            class Queue:
                def push(self, item):
                    self.items.append(item)
            """,
            HANDLER_MODULE,
        ) == []


class TestSuppressions:
    def test_inline_suppression(self):
        assert rules_for(
            """
            import time
            def execute(self):
                return time.time()  # repro-lint: disable=D101 -- test clock
            """,
            DET_MODULE,
        ) == []

    def test_line_above_suppression(self):
        assert rules_for(
            """
            import time
            def execute(self):
                # repro-lint: disable=D101
                return time.time()
            """,
            DET_MODULE,
        ) == []

    def test_file_suppression(self):
        assert rules_for(
            """
            # repro-lint: disable-file=D101
            import time
            def a():
                return time.time()
            def b():
                return time.time()
            """,
            DET_MODULE,
        ) == []

    def test_wrong_rule_does_not_suppress(self):
        assert "D101" in rules_for(
            """
            import time
            def execute(self):
                return time.time()  # repro-lint: disable=D102
            """,
            DET_MODULE,
        )


class TestFramework:
    def test_rule_catalog_complete(self):
        ids = {rule.rule_id for rule in load_rules()}
        assert {
            "D101", "D102", "D103", "D104", "D105", "D106",
            "A201", "A202",
            "C301", "C302", "C303", "C304",
        } <= ids

    def test_syntax_error_reported(self):
        findings = run_source("def broken(:\n", DET_MODULE)
        assert [f.rule for f in findings] == ["E000"]

    def test_scope_config_override(self):
        config = LintConfig()
        config.scope_patterns["deterministic"] = ("mypkg.custom",)
        src = "import time\ndef f():\n    return time.time()\n"
        assert any(
            f.rule == "D101"
            for f in run_source(src, "mypkg.custom", config=config)
        )
        assert run_source(src, "repro.core.replica", config=config) == []
