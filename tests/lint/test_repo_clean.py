"""The shipped tree must be lint-clean against the shipped baseline.

This mirrors the CI ``lint-protocol`` job: running the analyzer over
``src/repro`` with ``lint-baseline.json`` must produce zero new and zero
stale findings.  If this test fails you either introduced a violation
(fix it or suppress it with a justification) or fixed a baselined one
(run ``repro lint --update-baseline`` to ratchet the ceiling down).
"""

from pathlib import Path

from repro.lint.baseline import check_against_baseline, load_baseline
from repro.lint.framework import LintConfig, run_paths
from repro.lint.mypy_ratchet import check_strict_config

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_tree_matches_baseline():
    config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    findings = run_paths([REPO_ROOT / "src" / "repro"], REPO_ROOT, config=config)
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    problems = check_against_baseline(findings, baseline)
    assert problems == [], "\n".join(problems)


def test_baseline_is_empty():
    # All baselined debt has been paid off (the last C304 finding fell to
    # the explicit bound in AtomicBroadcast._on_new_epoch); the ratchet
    # now enforces that no new findings are ever baselined again.
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    assert baseline == {}, f"baseline grew again: {baseline}"


def test_strict_modules_config_consistent():
    strict, problems = check_strict_config(REPO_ROOT / "pyproject.toml")
    assert problems == [], "\n".join(problems)
    # The mypy graduation ratchet: the protocol surface has graduated.
    assert "repro.crypto.protocols" in strict
    assert "repro.broadcast.abc" in strict
    assert len(strict) >= 3


def test_tree_taint_clean():
    # The interprocedural taint analysis must run clean over the shipped
    # tree: every true positive it surfaced was fixed, every intentional
    # pattern carries a justified inline suppression (DESIGN.md §5e).
    from repro.taint import analyze

    config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    findings = analyze([REPO_ROOT / "src" / "repro"], REPO_ROOT, config=config)
    assert findings == [], "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in findings
    )


def test_taint_modules_configured():
    config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    assert "repro.broadcast.*" in config.taint_modules
    # the fault injector is the modeled adversary, not the defended surface
    assert "!repro.core.faults" in config.taint_modules


def test_tree_protocol_invariants_clean():
    # The quorum-arithmetic and yield-point checkers (DESIGN.md §5h) must
    # run clean: every first-run true positive (the 2t+1 quorums) was
    # fixed to n-t, and every threshold site carries a declared kind.
    from repro.analysis import analyze

    config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    findings = analyze([REPO_ROOT / "src" / "repro"], REPO_ROOT, config=config)
    assert findings == [], "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in findings
    )


def test_protocol_invariant_modules_configured():
    config = LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")
    assert "repro.broadcast.*" in config.quorum_modules
    assert "repro.*" in config.races_modules
