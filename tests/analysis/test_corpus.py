"""Seeded-corpus recall for the protocol-invariant verifiers.

Mirrors ``tests/taint/test_corpus.py``: every planted violation must be
found (full recall), the clean controls must stay silent (precision),
and the directory must exactly match the expectation table so new
fixtures cannot be added without pinning them here.
"""

import time
from pathlib import Path

import pytest

from repro.analysis import analyze

CORPUS = Path(__file__).parent / "corpus"
ROOT = Path(__file__).resolve().parents[2]

#: file -> exact rule ids expected (sorted by line).
EXPECTED = {
    "vuln_q501_two_t_quorum.py": ["Q501"],
    "vuln_q502_trunc_t_plus_1.py": ["Q502"],
    "vuln_q503_amplify_t.py": ["Q503"],
    "vuln_q504_cap.py": ["Q504"],
    "vuln_q505_undeclared.py": ["Q505"],
    "vuln_y601_toctou.py": ["Y601"],
    "vuln_y602_cross_handler.py": ["Y602"],
    "vuln_y603_busy_flag.py": ["Y603"],
    "vuln_y604_fire_forget.py": ["Y604", "Y604"],
}

CLEAN = ["clean_quorum.py", "clean_races.py"]


@pytest.fixture(scope="module")
def corpus_findings():
    return analyze([CORPUS], ROOT)


def rules_for(findings, filename):
    return [
        f.rule
        for f in sorted(findings, key=lambda f: (f.line, f.col))
        if f.path.endswith(filename)
    ]


def test_corpus_is_complete():
    present = sorted(p.name for p in CORPUS.glob("*.py"))
    assert present == sorted(list(EXPECTED) + CLEAN)


@pytest.mark.parametrize("filename", sorted(EXPECTED))
def test_planted_violation_found(corpus_findings, filename):
    assert rules_for(corpus_findings, filename) == EXPECTED[filename]


@pytest.mark.parametrize("filename", CLEAN)
def test_clean_control_silent(corpus_findings, filename):
    assert rules_for(corpus_findings, filename) == []


def test_full_recall_and_precision(corpus_findings):
    want = sorted(rule for rules in EXPECTED.values() for rule in rules)
    assert sorted(f.rule for f in corpus_findings) == want


def test_counterexamples_name_concrete_deployments(corpus_findings):
    q501 = [f for f in corpus_findings if f.rule == "Q501"]
    assert q501 and all("(n=" in f.message for f in q501)


def test_full_repo_analysis_under_budget():
    start = time.monotonic()
    findings = analyze([ROOT / "src" / "repro"], ROOT)
    elapsed = time.monotonic() - start
    assert findings == []
    assert elapsed < 30.0, f"--quorum --races took {elapsed:.1f}s"
