"""Unit tests for the quorum-arithmetic checker (Q501-Q505)."""

import textwrap
from pathlib import Path

from repro.analysis import analyze_quorum


def check(source: str, path: str = "tests/fixture_quorum.py"):
    files = [(Path(path), "", textwrap.dedent(source))]
    return analyze_quorum(files)


BOILER = """
class P:
    def __init__(self, n, t):
        if n <= 3 * t:  # repro-quorum: config
            raise ValueError
        self.n = n
        self.t = t
        self.pool = {}
"""


class TestObligations:
    def test_declared_intersect_quorum_passes(self):
        findings = check(
            BOILER
            + """
    def on_vote(self, sender, sig):
        self.pool[sender] = sig
        if len(self.pool) >= self.n - self.t:  # repro-quorum: intersect
            return True
"""
        )
        assert findings == []

    def test_two_t_plus_one_intersect_fails_with_counterexample(self):
        findings = check(
            BOILER
            + """
    def on_vote(self, sender, sig):
        self.pool[sender] = sig
        if len(self.pool) >= 2 * self.t + 1:  # repro-quorum: intersect
            return True
"""
        )
        assert [f.rule for f in findings] == ["Q501"]
        assert "(n=5, t=1)" in findings[0].message

    def test_early_return_spelling_is_equivalent(self):
        findings = check(
            BOILER
            + """
    def on_vote(self, sender, sig):
        self.pool[sender] = sig
        if len(self.pool) < self.n - self.t:  # repro-quorum: intersect
            return False
        return True
"""
        )
        assert findings == []

    def test_overlarge_quorum_breaks_liveness(self):
        findings = check(
            BOILER
            + """
    def on_vote(self, sender, sig):
        self.pool[sender] = sig
        if len(self.pool) >= self.n:  # repro-quorum: intersect
            return True
"""
        )
        assert [f.rule for f in findings] == ["Q501"]
        assert "liveness" in findings[0].message

    def test_undeclared_comparison_is_q505(self):
        findings = check(
            BOILER
            + """
    def on_vote(self, sender, sig):
        if len(self.pool) >= self.t + 1:
            return True
"""
        )
        assert [f.rule for f in findings] == ["Q505"]

    def test_unnormalizable_mention_needs_declaration(self):
        body = """
    def leader(self, epoch):
        return epoch % self.n == 0
"""
        undeclared = check(BOILER + body)
        assert [f.rule for f in undeclared] == ["Q505"]
        declared = check(
            BOILER
            + """
    def leader(self, epoch):
        return epoch % self.n == 0  # repro-quorum: declared
"""
        )
        assert declared == []

    def test_identity_bound_must_be_exactly_n(self):
        findings = check(
            BOILER
            + """
    def admit(self, sender):
        return 0 <= sender < self.n + 1  # repro-quorum: identity-bound
"""
        )
        assert [f.rule for f in findings] == ["Q504"]

    def test_suppression_comment_shields(self):
        findings = check(
            BOILER
            + """
    def on_vote(self, sender, sig):
        # repro-lint: disable=Q505 reviewed: sim-only shortcut
        if len(self.pool) >= self.t + 1:
            return True
"""
        )
        assert findings == []

    def test_constant_threshold_without_params_ignored(self):
        findings = check(
            BOILER
            + """
    def on_vote(self, sender, sig):
        if len(self.pool) >= 3:
            return True
"""
        )
        assert findings == []


class TestSpecTableCoversRepo:
    def test_whole_src_tree_is_quorum_clean(self):
        from repro.taint.indexer import module_files

        files = module_files([Path("src/repro")], Path("."))
        assert analyze_quorum(files) == []
