"""Unit tests for the yield-point atomicity checker (Y601-Y604)."""

import textwrap
from pathlib import Path

from repro.analysis import analyze_races


def check(source: str, path: str = "tests/fixture_races.py"):
    files = [(Path(path), "", textwrap.dedent(source))]
    return analyze_races(files)


HANDLER = """
class H:
    def __init__(self, node):
        self._state = None
        node.set_handler(self.on_message)

    async def fetch(self):
        return b"x"
"""


class TestToctou:
    def test_await_between_guard_and_write(self):
        findings = check(
            HANDLER
            + """
    async def on_message(self, sender, msg):
        if self._state is None:
            data = await self.fetch()
            self._state = data
"""
        )
        assert [f.rule for f in findings] == ["Y601"]

    def test_revalidation_after_await_is_clean(self):
        findings = check(
            HANDLER
            + """
    async def on_message(self, sender, msg):
        if self._state is None:
            data = await self.fetch()
            if self._state is None:
                self._state = data
"""
        )
        assert findings == []

    def test_write_before_await_is_clean(self):
        findings = check(
            HANDLER
            + """
    async def on_message(self, sender, msg):
        if self._state is None:
            self._state = b"claimed"
            await self.fetch()
"""
        )
        assert findings == []

    def test_unreachable_async_function_not_analyzed(self):
        findings = check(
            """
class NotAHandler:
    def __init__(self):
        self._state = None

    async def fetch(self):
        return b"x"

    async def background_job(self):
        if self._state is None:
            data = await self.fetch()
            self._state = data
"""
        )
        assert findings == []


class TestSharedState:
    def test_cross_handler_mutation_across_await(self):
        findings = check(
            HANDLER
            + """
    async def on_message(self, sender, msg):
        current = self._state
        fresh = await self.fetch()
        self._state = fresh

    async def on_reset(self, sender, msg):
        self._state = None
"""
        )
        assert [f.rule for f in findings] == ["Y602"]
        assert "on_reset" in findings[0].message


class TestBusyFlags:
    def test_await_while_busy_without_finally(self):
        findings = check(
            HANDLER
            + """
    async def on_message(self, sender, msg):
        self._busy = True
        await self.fetch()
        self._busy = False
"""
        )
        assert [f.rule for f in findings] == ["Y603"]

    def test_try_finally_reset_is_clean(self):
        findings = check(
            HANDLER
            + """
    async def on_message(self, sender, msg):
        self._busy = True
        try:
            await self.fetch()
        finally:
            self._busy = False
"""
        )
        assert findings == []


class TestFireAndForget:
    def test_bare_create_task(self):
        findings = check(
            HANDLER
            + """
    async def on_message(self, sender, msg):
        import asyncio
        asyncio.create_task(self.fetch())
"""
        )
        assert [f.rule for f in findings] == ["Y604"]

    def test_kept_task_with_callback_is_clean(self):
        findings = check(
            HANDLER
            + """
    async def on_message(self, sender, msg):
        import asyncio
        task = asyncio.create_task(self.fetch())
        task.add_done_callback(lambda t: t.exception())
"""
        )
        assert findings == []

    def test_y604_applies_even_off_handler_path(self):
        findings = check(
            """
import asyncio

class NotAHandler:
    async def spin(self):
        asyncio.create_task(self.spin())
"""
        )
        assert [f.rule for f in findings] == ["Y604"]


class TestRepoClean:
    def test_whole_src_tree_is_race_clean(self):
        from repro.taint.indexer import module_files

        files = module_files([Path("src/repro")], Path("."))
        assert analyze_races(files) == []
