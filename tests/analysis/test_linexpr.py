"""Unit tests for the linear-expression algebra (DESIGN.md §5h)."""

import ast

from repro.analysis.linexpr import (
    LinExpr,
    N,
    T,
    ONE,
    admissible_domain,
    always_ge,
    first_failure,
    parse_expr_text,
    parse_linear,
)


def parse(text: str) -> LinExpr:
    expr = parse_linear(ast.parse(text, mode="eval").body)
    assert expr is not None, text
    return expr


class TestParsing:
    def test_canonical_forms(self):
        assert parse("2 * self.t + 1") == LinExpr(0, 2, 1)
        assert parse("self.n - self.t") == LinExpr(1, -1, 0)
        assert parse("self.public.t + 1") == LinExpr(0, 1, 1)
        assert parse("n") == N
        assert parse("3 * t") == LinExpr(0, 3, 0)
        assert parse("-t + n") == N - T

    def test_render_round_trips(self):
        for text in ("2t+1", "n-t", "t+1", "n", "3t", "n-2t", "5"):
            expr = parse_expr_text(text)
            assert expr is not None and expr.render() == text

    def test_non_linear_rejected(self):
        for text in ("self.epoch % self.n", "self.n // 2", "self.n * self.t",
                     "needed", "msg.t + 1"):
            node = ast.parse(text, mode="eval").body
            assert parse_linear(node) is None

    def test_non_self_rooted_attrs_rejected(self):
        assert parse_linear(ast.parse("msg.n", mode="eval").body) is None

    def test_float_and_bool_constants_rejected(self):
        assert parse_linear(ast.parse("1.5", mode="eval").body) is None
        assert parse_linear(ast.parse("True", mode="eval").body) is None


class TestDomain:
    def test_domain_respects_resilience(self):
        points = list(admissible_domain())
        assert (4, 1) in points and (64, 21) in points
        assert all(n >= 3 * t + 1 and t >= 1 and n <= 64 for n, t in points)
        assert (3, 1) not in points

    def test_quorum_intersection_facts(self):
        # n-t quorums always intersect in t+1: 2(n-t) - n >= t+1.
        assert always_ge((N - T).scale(2) - N, T + ONE)
        # 2t+1 quorums do NOT in general: first failure is (5, 1).
        bad = first_failure((T.scale(2) + ONE).scale(2) - N, T + ONE)
        assert bad == (5, 1)
        # ... but hold on every minimal n == 3t+1 cluster.
        for t in (1, 2, 3, 5):
            n = 3 * t + 1
            q = 2 * t + 1
            assert 2 * q - n >= t + 1

    def test_liveness_bound(self):
        assert always_ge(N - T, N - T)
        assert first_failure(N - T, N - T + ONE) == (4, 1)
