"""Planted Y604: fire-and-forget task creation drops exceptions."""

import asyncio


class Gossiper:
    def __init__(self, node) -> None:
        node.set_handler(self.on_message)

    async def _gossip(self) -> None:
        return None

    async def on_message(self, sender: int, msg: object) -> None:
        # BUG: the task's exceptions are never retrieved.
        asyncio.create_task(self._gossip())
        orphan = asyncio.ensure_future(self._gossip())
