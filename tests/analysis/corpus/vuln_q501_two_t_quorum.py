"""Planted Q501: a 2t quorum never intersects another in t+1 replicas."""


class Replica:
    def __init__(self, n: int, t: int) -> None:
        self.n = n
        self.t = t
        self.pool: dict = {}
        self.certified = False

    def on_vote(self, sender: int, sig: bytes) -> None:
        self.pool[sender] = sig
        # BUG: 2t admits two fully disjoint quorums at any admissible n.
        if len(self.pool) >= 2 * self.t:  # repro-quorum: intersect
            self.certified = True
