"""Planted Q504: admission cap below what a correct run produces."""


class Admission:
    def __init__(self, n: int, t: int) -> None:
        self.n = n
        self.t = t
        self.introducers: set = set()

    def admit(self, sender: int) -> bool:
        # BUG: every one of the n replicas may legitimately introduce a
        # digest; capping the pool at 2t rejects honest volume.
        if len(self.introducers) > 2 * self.t:  # repro-quorum: cap:n
            return False
        self.introducers.add(sender)
        return True
