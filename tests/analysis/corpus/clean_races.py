"""Clean control: awaits with re-validation, finally resets, kept tasks."""

import asyncio


class Careful:
    def __init__(self, node) -> None:
        self._pending = None
        self._busy = False
        self._task = None
        node.set_handler(self.on_message)

    async def fetch(self) -> bytes:
        return b"zone"

    async def on_message(self, sender: int, msg: object) -> None:
        if self._pending is None:
            data = await self.fetch()
            if self._pending is None:  # re-validated after the yield
                self._pending = data

    async def on_flush(self, sender: int, msg: object) -> None:
        if self._busy:
            return
        self._busy = True
        try:
            await self.fetch()
        finally:
            self._busy = False

    async def on_spawn(self, sender: int, msg: object) -> None:
        task = asyncio.create_task(self.fetch())
        task.add_done_callback(lambda t: t.exception())
        self._task = task
