"""Clean control: every threshold site declared and provable."""


class Replica:
    def __init__(self, n: int, t: int) -> None:
        if n <= 3 * t:  # repro-quorum: config
            raise ValueError("need n >= 3t+1")
        self.n = n
        self.t = t
        self.pool: dict = {}
        self.joins: set = set()
        self.certificate = None
        self.joined = False

    def on_prepare(self, sender: int, sig: bytes) -> None:
        if not 0 <= sender < self.n:  # repro-quorum: identity-bound
            return
        self.pool[sender] = sig
        if len(self.pool) >= self.n - self.t:  # repro-quorum: intersect
            self.certificate = tuple(
                sorted(self.pool.items())
            )[: self.n - self.t]  # repro-quorum: truncate:n-t

    def on_join(self, sender: int) -> None:
        self.joins.add(sender)
        if len(self.joins) >= self.t + 1:  # repro-quorum: amplify
            self.joined = True
