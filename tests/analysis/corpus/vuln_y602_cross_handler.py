"""Planted Y602: state shared between handlers mutated across an await."""


class ZoneView:
    def __init__(self, node) -> None:
        self.serial = 0
        node.set_handler(self.on_update)
        node.add_handler(self.on_reset)

    async def sign(self, serial: int) -> int:
        return serial

    async def on_update(self, sender: int, msg: object) -> None:
        serial = self.serial + 1
        signed = await self.sign(serial)
        # BUG: on_reset may have rewound self.serial during the await;
        # this write clobbers it without a re-check.
        self.serial = signed

    async def on_reset(self, sender: int, msg: object) -> None:
        self.serial = 0
