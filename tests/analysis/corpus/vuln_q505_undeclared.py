"""Planted Q505: a threshold comparison with no declared obligation."""


class Mystery:
    def __init__(self, n: int, t: int) -> None:
        self.n = n
        self.t = t
        self.votes: set = set()
        self.decided = False

    def on_vote(self, sender: int) -> None:
        self.votes.add(sender)
        if len(self.votes) >= 2 * self.t + 1:
            self.decided = True
