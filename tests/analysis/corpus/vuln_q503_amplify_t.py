"""Planted Q503: t senders can all be Byzantine; amplification needs t+1."""


class Amplifier:
    def __init__(self, n: int, t: int) -> None:
        self.n = n
        self.t = t
        self.joins: set = set()
        self.joined = False

    def on_join(self, sender: int) -> None:
        self.joins.add(sender)
        # BUG: t Byzantine replicas can fabricate this quorum alone.
        if len(self.joins) >= self.t:  # repro-quorum: amplify
            self.joined = True
