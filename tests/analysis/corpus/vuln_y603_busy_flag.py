"""Planted Y603: await while a busy flag is held, reset not in finally."""


class Writer:
    def __init__(self, node) -> None:
        self._busy = False
        node.set_handler(self.on_write)

    async def flush(self) -> None:
        return None

    async def on_write(self, sender: int, msg: object) -> None:
        if self._busy:
            return
        self._busy = True
        # BUG: if flush() raises, _busy is wedged True forever.
        await self.flush()
        self._busy = False
