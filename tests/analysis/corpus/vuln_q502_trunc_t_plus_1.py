"""Planted Q502: certificate truncated below the quorum it certifies."""


class Certifier:
    def __init__(self, n: int, t: int) -> None:
        self.n = n
        self.t = t
        self.pool: dict = {}
        self.certificate = None

    def on_prepare(self, sender: int, sig: bytes) -> None:
        self.pool[sender] = sig
        if len(self.pool) >= self.n - self.t:  # repro-quorum: intersect
            # BUG: keeps only t+1 of the n-t signatures the quorum needs.
            self.certificate = tuple(
                sorted(self.pool.items())
            )[: self.t + 1]  # repro-quorum: truncate:n-t
