"""Planted Y601: guard read, await, dependent write — no re-validation."""


class Session:
    def __init__(self, node) -> None:
        self._pending = None
        node.set_handler(self.on_message)

    async def fetch(self) -> bytes:
        return b"zone"

    async def on_message(self, sender: int, msg: object) -> None:
        if self._pending is None:
            data = await self.fetch()
            # BUG: another activation may have set _pending while we
            # were suspended; this write silently drops its work.
            self._pending = data
