"""Engine-level tests for the DPOR interleaving explorer.

Covers the frontier's FIFO/happens-before bookkeeping, schedule-file
round-trips, DPOR soundness against naive enumeration on toy models
(leaf-fingerprint set equality — the property the sleep-set seeding
regression below once broke), counterexample minimization, replay
determinism, and small end-to-end explorations of the real protocol
models.
"""

import sys
import time
from pathlib import Path

import pytest

from repro.broadcast.messages import RbcPayload
from repro.broadcast.rbc import RbcInstance
from repro.explore.dpor import (
    DporEngine,
    StepMeta,
    count_linear_extensions,
    replay_schedule,
)
from repro.explore.frontier import ChannelFrontier
from repro.explore.models import ByzStrategy, RbcModel, rbc_strategies
from repro.explore.runner import (
    build_model,
    explore_protocol,
    replay_file,
    strategy_specs,
)
from repro.explore.schedule import (
    SCHEDULE_VERSION,
    ScheduleFile,
    load_schedule,
    minimize_violation,
    save_schedule,
    transcript_hash,
)

CORPUS = Path(__file__).parent / "corpus"


# -- frontier ---------------------------------------------------------------


def test_frontier_is_fifo_per_channel():
    f = ChannelFrontier()
    f.push(0, 1, "a")
    f.push(0, 1, "b")
    f.push(2, 1, "c")
    assert f.enabled() == [(0, 1), (2, 1)]
    assert f.pop((0, 1), 0).payload == "a"
    assert f.pop((0, 1), 1).payload == "b"
    assert f.enabled() == [(2, 1)]
    assert f.pop((2, 1), 2).payload == "c"
    assert f.enabled() == []
    assert not f


def test_frontier_records_fifo_predecessor_edges():
    f = ChannelFrontier()
    f.push(0, 1, "a", sent_by=-1)
    f.push(0, 1, "b", sent_by=3)
    assert f.fifo_predecessor((0, 1)) == -1
    f.pop((0, 1), 7)
    assert f.fifo_predecessor((0, 1)) == 7
    assert f.peek((0, 1)).sent_by == 3


# -- schedule files ---------------------------------------------------------


def test_schedule_file_round_trip(tmp_path):
    sf = ScheduleFile(
        protocol="rbc",
        mode="full",
        cluster=(4, 1),
        strategy="sender-equivocate-split",
        schedule=[(0, 1), (2, 3), "timer"],
        kind="invariant",
        messages=["broadcast agreement violated"],
        fingerprint="abc123",
        transcript_hash="def456",
    )
    path = tmp_path / "witness.schedule.json"
    save_schedule(sf, path)
    loaded = load_schedule(path)
    assert loaded == sf
    assert loaded.schedule == [(0, 1), (2, 3), "timer"]


def test_schedule_file_rejects_unknown_version(tmp_path):
    sf = ScheduleFile(
        protocol="rbc", mode="full", cluster=(4, 1), strategy="", schedule=[]
    )
    path = tmp_path / "bad.schedule.json"
    save_schedule(sf, path)
    path.write_text(
        path.read_text().replace(
            f'"version": {SCHEDULE_VERSION}', '"version": 999'
        )
    )
    with pytest.raises(ValueError, match="version"):
        load_schedule(path)


def test_transcript_hash_is_order_sensitive():
    assert transcript_hash(["a", "b"]) != transcript_hash(["b", "a"])
    assert transcript_hash(["ab"]) != transcript_hash(["a", "b"])


# -- linear-extension counting ---------------------------------------------


def test_count_linear_extensions_chain_and_antichain():
    # Total order: exactly one extension.
    assert count_linear_extensions([0b000, 0b001, 0b011]) == 1
    # Antichain of 3: 3! extensions.
    assert count_linear_extensions([0, 0, 0]) == 6
    # Budget exhaustion returns None rather than a wrong number.
    assert count_linear_extensions([0] * 20, budget=4) is None


# -- toy-model soundness ----------------------------------------------------


class _ToyModel:
    """Deterministic handlers over per-dest logs; no timers.

    ``spec`` maps channel -> list of messages.  Every delivery appends
    ``(src, msg)`` to the destination's log, so the fingerprint captures
    the per-dest delivery order exactly: two schedules are
    Mazurkiewicz-equivalent iff their fingerprints agree.
    """

    sids_isolated = False

    def __init__(self, spec):
        self.spec = {k: list(v) for k, v in spec.items()}
        self.reset()

    def reset(self):
        self.pending = {k: list(v) for k, v in self.spec.items()}
        self.logs = {}

    def enabled(self):
        return sorted(k for k, v in self.pending.items() if v)

    def execute(self, choice, index):
        src, dest = choice
        msg = self.pending[choice].pop(0)
        self.logs.setdefault(dest, []).append((src, msg))
        return StepMeta(choice=choice, dest=dest, label=f"{src}->{dest}:{msg}")

    def peek(self, choice):
        return StepMeta(choice=choice, dest=choice[1])

    def fire_next_timer(self, index):
        return None

    def check_now(self):
        return []

    def check_leaf(self):
        return []

    def snapshot(self):
        return (
            {k: list(v) for k, v in self.pending.items()},
            {k: list(v) for k, v in self.logs.items()},
        )

    def restore(self, snap):
        pending, logs = snap
        self.pending = {k: list(v) for k, v in pending.items()}
        self.logs = {k: list(v) for k, v in logs.items()}

    def fingerprint(self):
        return repr(sorted(self.logs.items()))


def _leaf_fingerprints(spec, **engine_kwargs):
    """Explore and collect the fingerprint of every drained leaf."""
    model = _ToyModel(spec)
    fingerprints = set()
    original_check_leaf = model.check_leaf

    def capture():
        fingerprints.add(model.fingerprint())
        return original_check_leaf()

    model.check_leaf = capture
    result = DporEngine(model, **engine_kwargs).run()
    assert result.complete
    return fingerprints, result


TOY_SPECS = [
    # Three independent dests: pure cross-dest reduction.
    {(0, 1): ["a"], (2, 3): ["b"], (4, 5): ["c"]},
    # All to one dest: no reduction possible, orders all distinct.
    {(0, 1): ["a", "b"], (2, 1): ["c"], (3, 1): ["d"]},
    # The mixed shape that exercised sleep inheritance: two dests with
    # multiple same-dest channels each.
    {(0, 1): ["a"], (2, 1): ["b"], (0, 3): ["c"], (2, 3): ["d"]},
    {(0, 1): ["a", "b"], (2, 1): ["c"], (0, 3): ["d"], (2, 3): ["e"]},
]


@pytest.mark.parametrize("spec", TOY_SPECS)
def test_dpor_covers_every_mazurkiewicz_class(spec):
    naive_fps, naive_res = _leaf_fingerprints(spec, use_dpor=False)
    dpor_fps, dpor_res = _leaf_fingerprints(spec, use_dpor=True)
    # Soundness: every reachable per-dest delivery order is still
    # reached (this is exactly what unsound sleep pruning loses).
    assert dpor_fps == naive_fps
    assert dpor_res.schedules <= naive_res.schedules
    # Naive accounting: with no reduction the lower bound is exact and
    # equals the number of explored schedules.
    assert naive_res.naive_exact
    assert naive_res.naive_lower_bound == naive_res.schedules
    # On these toys dest-disjointness exactly characterizes commutation,
    # so the DPOR run's summed class sizes recover the naive count.
    assert dpor_res.naive_lower_bound == naive_res.schedules


def test_naive_count_matches_dependence_classes():
    # 4 all-dependent steps (one dest) -> 4! = 24 interleavings; DPOR
    # must count the same naive space from its reduced exploration.
    spec = {(0, 1): ["a"], (2, 1): ["b"], (3, 1): ["c"], (4, 1): ["d"]}
    _fps, res = _leaf_fingerprints(spec, use_dpor=True)
    assert res.naive_lower_bound == 24


# -- sleep-set seeding regression ------------------------------------------


def _forge_pull_model(rbc_cls):
    base = next(
        s
        for s in rbc_strategies(4, 1, "s", "digest", 0, [1, 2, 3])
        if s.name == "withhold-partial"
    )
    strategy = ByzStrategy(
        "withhold-forge-pull",
        tuple(base.messages) + ((3, RbcPayload("s", b"forged")),),
    )
    return RbcModel(
        4, 1, mode="digest", byz=0, strategy=strategy, rbc_cls=rbc_cls
    )


def test_sleep_set_seeding_regression():
    """The engine once seeded each frame's backtrack with ``enabled[0]``
    even when that choice was in the inherited sleep set, abandoning the
    node unexecuted and silently pruning reachable orders.  This
    scenario — a forged pull response that must land inside the starved
    replica's pull window, *after* every vote — only violates in orders
    the unsound prune lost: the buggy engine reported 96 schedules,
    "complete", zero violations."""
    sys.path.insert(0, str(CORPUS))
    try:
        from vuln_rbc_unverified_pull import VulnRbcUnverifiedPull
    finally:
        sys.path.remove(str(CORPUS))
    result = DporEngine(
        _forge_pull_model(VulnRbcUnverifiedPull),
        stop_on_first=True,
        max_schedules=50_000,
    ).run()
    assert result.violations, "sleep-set pruning lost the violating order"
    assert any("forged" in m for v in result.violations for m in v.messages)


def test_sleep_fix_keeps_production_pull_exhaustive_and_clean():
    # Same adversary against the real digest check: the forged payload
    # is dropped in every one of the (completely explored) orders.
    result = DporEngine(
        _forge_pull_model(RbcInstance), max_schedules=200_000
    ).run()
    assert result.complete
    assert not result.violations
    # The cross-dest reduction must still be pulling its weight.
    assert result.naive_lower_bound >= 10 * result.schedules


# -- minimization and replay determinism ------------------------------------


def _weak_quorum_violation():
    sys.path.insert(0, str(CORPUS))
    try:
        from vuln_rbc_weak_echo_quorum import VulnRbcWeakEchoQuorum
    finally:
        sys.path.remove(str(CORPUS))
    strategy = next(
        s
        for s in rbc_strategies(5, 1, "s", "full", 0, [1, 2, 3, 4])
        if s.name == "equivocate-split"
    )

    def make():
        return RbcModel(
            5,
            1,
            mode="full",
            byz=0,
            strategy=strategy,
            rbc_cls=VulnRbcWeakEchoQuorum,
        )

    result = DporEngine(
        make(), stop_on_first=True, max_schedules=50_000
    ).run()
    assert result.violations
    return make, result.violations[0]


def test_minimized_counterexample_replays_deterministically():
    make, violation = _weak_quorum_violation()
    schedule, messages, fingerprint, digest = minimize_violation(
        make(), violation
    )
    assert len(schedule) <= len(violation.schedule)
    assert messages and digest
    # Replay the minimized schedule twice on fresh models: identical
    # violation, state fingerprint, and transcript hash both times.
    replays = []
    for _ in range(2):
        problems, fp, labels = replay_schedule(
            make(), list(schedule), complete=True
        )
        replays.append((problems, fp, transcript_hash(labels)))
    assert replays[0] == replays[1]
    problems, fp, t_hash = replays[0]
    assert problems == messages
    assert fp == fingerprint
    assert t_hash == digest


def test_replay_file_round_trip_detects_clean_witness(tmp_path):
    # A clean witness file (kind="") replays the canonical default
    # schedule of a production configuration; reproduced means "still
    # clean", and the transcript hash pins the whole step sequence.
    sf = ScheduleFile(
        protocol="rbc",
        mode="full",
        cluster=(4, 1),
        strategy="honest",
        schedule=[],
    )
    path = tmp_path / "clean.schedule.json"
    save_schedule(sf, path)
    first = replay_file(path)
    second = replay_file(path)
    assert first.reproduced and second.reproduced
    assert not first.problems
    assert first.fingerprint == second.fingerprint
    assert first.transcript_hash == second.transcript_hash


# -- real-model explorations ------------------------------------------------


def test_rbc_withhold_partial_exhaustive_and_clean():
    # One full Byzantine-sender palette entry, exhaustively: Bracha's
    # quorums hold over every schedule (G2 agreement + totality).
    report = explore_protocol(
        "rbc", mode="full", n=4, t=1, strategies=["sender-withhold-partial"]
    )
    assert report.complete
    assert not report.violations
    assert report.ok
    run = report.runs[0]
    assert run.result.naive_lower_bound >= 10 * run.result.schedules, (
        "DPOR reduction fell below the 10x acceptance floor"
    )


def test_aba_split_est_budget_bounded_and_clean():
    # ABA's coin rounds make even (4, 1) exhaustion intractable (the
    # naive bound passes 10^14 inside 90 s); tier-1 pins a bounded
    # prefix of the space, nightly pushes the frontier under a deadline.
    report = explore_protocol(
        "aba", n=4, t=1, strategies=["split-est"], max_schedules=2_000
    )
    assert report.ok, [v.kind for v in report.violations]
    assert report.schedules >= 2_000, "budget should bind, not the space"


def test_e2e_delay_bounded_smoke():
    report = explore_protocol(
        "e2e", mode="digest", n=4, t=1, strategies=["honest"], bound=1
    )
    assert report.complete
    assert not report.violations
    assert report.schedules >= 1


def test_e2e_requires_a_bound():
    with pytest.raises(ValueError, match="bound"):
        explore_protocol("e2e", mode="digest", n=4, t=1)


def test_strategy_specs_cover_documented_palettes():
    rbc = [s.name for s in strategy_specs("rbc", "full", 4, 1)]
    assert "honest" in rbc
    assert "sender-equivocate-split" in rbc
    assert any(name.startswith("voter-") for name in rbc)
    aba = [s.name for s in strategy_specs("aba", "", 4, 1)]
    assert "honest-mixed" in aba
    e2e = [s.name for s in strategy_specs("e2e", "digest", 4, 1)]
    assert e2e == ["honest", "crash-follower"]


def test_build_model_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        build_model("rbc", "full", 4, 1, "no-such-strategy")
