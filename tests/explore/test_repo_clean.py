"""Pin production cleanliness under systematic exploration.

The corpus tests prove the explorer *finds* planted interleaving bugs;
this file proves the shipped protocols *pass* the same scrutiny.  Two
layers:

* exhaustive sweeps where the space is small enough to finish in tier-1
  time (the RBC full-payload sender palette at (4, 1) minus the
  equivocating sender, whose space is astronomically larger and is
  budget-bounded in the nightly workflow instead), and
* ``--confirm-races`` over ``src/repro``, which must produce *zero*
  findings: the static race baseline is clean, so there is nothing to
  confirm or leave unwitnessed.

If a future PR introduces a real interleaving bug in RBC/ABA/ABC, or a
Y601-Y604 window in production code, this file is the tier-1 tripwire;
the wide exploration legs live in nightly CI.
"""

from pathlib import Path

from repro.explore.confirm import confirm_races
from repro.explore.runner import explore_protocol
from repro.taint.indexer import module_files

ROOT = Path(__file__).resolve().parents[2]

# Byzantine-sender strategies whose (4, 1) full-mode space the engine
# finishes in well under a second each (measured: 1-27 DPOR schedules
# against naive counts up to 1.8M).  The honest and equivocate-split
# senders explode past 10^10 naive interleavings and are budget-bounded
# below and in the nightly workflow instead.
FAST_RBC_SENDERS = [
    "sender-silent",
    "sender-withhold-partial",
    "sender-phantom-votes",
]


class TestProductionProtocolsClean:
    def test_rbc_full_byzantine_senders_exhaustive(self):
        report = explore_protocol(
            "rbc", mode="full", n=4, t=1, strategies=FAST_RBC_SENDERS
        )
        assert report.complete, "budget must not bind on the fast palette"
        assert report.ok, [v.kind for v in report.violations]
        # DPOR is doing real work, not just walking a tiny space.
        assert report.naive_lower_bound >= 10 * report.schedules

    def test_rbc_full_honest_budget_bounded(self):
        # Honest full dissemination is the *largest* space (every replica
        # votes on a real payload: naive >= 5x10^17); pin a bounded
        # prefix so a regression on the common path still trips tier-1.
        report = explore_protocol(
            "rbc", mode="full", n=4, t=1, strategies=["honest"],
            max_schedules=1_500,
        )
        assert report.ok, [v.kind for v in report.violations]
        assert report.schedules >= 1_500, "budget should bind, not the space"

    def test_rbc_digest_pull_path_exhaustive(self):
        """The digest pull fallback: the path the sleep-set fix reopened."""
        report = explore_protocol(
            "rbc",
            mode="digest",
            n=4,
            t=1,
            strategies=["sender-withhold-partial"],
        )
        assert report.complete
        assert report.ok, [v.kind for v in report.violations]

    def test_aba_silent_budget_bounded(self):
        # ABA's coin rounds push even (4, 1) past 10^15 naive
        # interleavings; tier-1 pins a bounded prefix (nightly sweeps
        # wider under a deadline).
        report = explore_protocol(
            "aba", n=4, t=1, strategies=["silent"], max_schedules=1_500
        )
        assert report.ok, [v.kind for v in report.violations]

    def test_e2e_delay_bounded_clean(self):
        report = explore_protocol(
            "e2e", mode="digest", n=4, t=1, strategies=["honest"], bound=1
        )
        assert report.ok, [v.kind for v in report.violations]


class TestProductionSourceRaceClean:
    def test_confirm_races_has_nothing_to_confirm(self):
        files = module_files([ROOT / "src" / "repro"], ROOT)
        outcomes = confirm_races(files)
        assert outcomes == [], [o.finding.rule for o in outcomes]
