"""Planted bug Y604: fire-and-forget task whose failure is invisible.

``on_request`` spawns ``_flush`` with ``create_task`` and drops the
handle.  Under schedules where ``on_cancel`` zeroes the pending count
between the spawn and the flush body running, the flush raises — and in
production asyncio that exception evaporates with the discarded task.
The explorer surfaces it as a handler crash; the static checker flags
the discarded handle as Y604 (no awaited line, so the harness confirms
by rule rather than by suspension point).
"""

from repro.explore.confirm import RaceHarness
from repro.explore.tasks import Scheduler, TrackedObject


class VulnBatchFlusher(TrackedObject):
    """Request batcher that detaches its flush task."""

    def __init__(self, sched: Scheduler) -> None:
        super().__init__(sched)
        self.pending = 0
        self.flushed = 0

    async def on_request(self) -> None:
        self.pending = self.pending + 1
        await self._sched.point()
        # BUG: handle discarded — a failing flush is never observed.
        self._sched.create_task(self._flush())

    async def _flush(self) -> None:
        await self._sched.point()
        if self.pending == 0:
            raise RuntimeError("flush of an empty batch")
        self.pending = self.pending - 1
        self.flushed = self.flushed + 1

    async def on_cancel(self) -> None:
        await self._sched.point()
        self.pending = 0


def _build(sched: Scheduler):
    shared = VulnBatchFlusher(sched)
    return shared, [
        ("req", shared.on_request()),
        ("cancel", shared.on_cancel()),
    ]


EXPLORE_HARNESSES = [
    RaceHarness("fire-forget-flush", _build, confirm_rules=("Y604",)),
]
