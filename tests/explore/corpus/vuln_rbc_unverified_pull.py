"""Planted bug: pulled payloads accepted without digest verification.

A replica that saw the READY quorum but never the payload pulls it from
its peers; the response must hash to the quorum-agreed digest or a
Byzantine peer can substitute an arbitrary payload.  This subclass skips
the check, so whichever pull response arrives *first* wins — delivering
a forged payload under schedules where the Byzantine response beats the
honest ones, an agreement violation between the starved replica and the
replicas that got the real payload.
"""

from repro.broadcast.rbc import RbcInstance


class VulnRbcUnverifiedPull(RbcInstance):
    """``_payload_matches`` that trusts whatever arrives."""

    def _payload_matches(self, digest: bytes, payload: bytes) -> bool:
        # BUG: no digest (or fragment-root) check — first responder wins.
        return True
