"""Planted bug: ABA round completion without the coin re-entrancy guard.

Re-introduces the PR-2 defect: releasing our own coin share inside
``coin.request`` can complete the coin *synchronously* (when the peer
shares arrived first) and re-enter ``_try_finish_round`` through the
coin-ready callback.  The production code re-checks ``_round_done`` and
``self.round`` after ``request`` returns; this subclass omits that
re-validation, so the outer activation finishes the round a second time
and advances ``self.round`` twice — stranding the replica in a round no
quorum ever joins.  The explorer witnesses it as a termination violation
at a drained leaf, but only under schedules that deliver a peer's coin
share *before* this replica reaches its own aux quorum.
"""

from typing import List

from repro.broadcast.aba import AbaInstance, Outgoing


class VulnAbaCoinReentry(AbaInstance):
    """``_try_finish_round`` minus the post-``request`` re-validation."""

    def _try_finish_round(self, round_: int) -> List[Outgoing]:
        if round_ != self.round or self.decision is not None:
            return []
        if round_ in self._round_done:
            return []
        accepted = self._bin_values.get(round_, set())
        per_round = self._aux_senders.get(round_, {})
        valid_aux = {
            sender: value
            for sender, value in per_round.items()
            if value in accepted
        }
        if len(valid_aux) < self.n - self.t:
            return []
        out: List[Outgoing] = []
        if round_ not in self._coin_requested:
            self._coin_requested.add(round_)
            out.extend(self.coin.request(self.sid, round_))
            # BUG: no re-check of _round_done / self.round here — a
            # synchronous coin completion already finished this round.
        coin = self.coin.value(self.sid, round_)
        if coin is None:
            return out
        self._round_done.add(round_)
        values = set(valid_aux.values())
        if len(values) == 1:
            (b,) = values
            if b == coin:
                out.extend(self._decide(b))
                return out
            self.estimate = b
        else:
            self.estimate = coin
        self.round += 1
        out.extend(self._send_est(self.round, self.estimate))
        out.extend(self._maybe_send_aux(self.round))
        out.extend(self._try_finish_round(self.round))
        return out
