"""Planted bug: Bracha echo quorum weakened from n-t to 2t+1.

At n == 3t+1 the two thresholds coincide, so the bug is invisible at
(4, 1) — the corpus explores it at (5, 1), where 2t+1 = 3 < n-t = 4 and
two echo quorums no longer pairwise-intersect in an honest replica.  An
equivocating Byzantine sender can then drive disjoint honest camps to
READY for different digests and the ready-amplification rule carries
both to delivery: an agreement violation the explorer finds as a
concrete schedule.
"""

from typing import List

from repro.broadcast.rbc import Outgoing, RbcInstance


class VulnRbcWeakEchoQuorum(RbcInstance):
    """``_count_echo`` with the classic 2t+1 mistake."""

    def _count_echo(self, sender: int, digest: bytes) -> List[Outgoing]:
        prev = self._echo_digest.get(sender)
        if prev is not None and prev != digest:
            return []
        self._echo_digest[sender] = digest
        voters = self._echoes.setdefault(digest, set())
        if sender in voters:
            return []
        voters.add(sender)
        # BUG: 2t+1 echoes only guarantee quorum intersection at the
        # minimum cluster size n == 3t+1; the sound threshold is n - t.
        if len(voters) >= 2 * self.t + 1 and not self._sent_ready:
            return self._send_ready(digest)
        return []
