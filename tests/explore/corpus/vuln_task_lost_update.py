"""Planted bug Y602: read-modify-write split across an await.

``on_add`` loads ``self.total`` into a local, suspends, and writes the
stale sum back.  Two concurrent additions both read the same base value
and one increment is lost.  ``self.total`` is also touched by a second
handler (``on_snapshot``), which is what promotes the stale write from a
style nit to a cross-handler lost update for the static checker.
"""

from repro.explore.confirm import RaceHarness
from repro.explore.tasks import Scheduler, TrackedObject


class VulnByteCounter(TrackedObject):
    """Accumulator that caches the running total across a yield."""

    def __init__(self, sched: Scheduler) -> None:
        super().__init__(sched)
        self.total = 0
        self.last_snapshot = -1

    async def on_add(self, n: int) -> None:
        total = self.total
        await self._sched.point()  # e.g. flush accounting to the metrics sink
        # BUG: writes back a value computed from the pre-await read.
        self.total = total + n

    async def on_snapshot(self) -> None:
        await self._sched.point()
        self.last_snapshot = self.total


def _build(sched: Scheduler):
    shared = VulnByteCounter(sched)
    return shared, [
        ("a", shared.on_add(3)),
        ("b", shared.on_add(4)),
        ("snap", shared.on_snapshot()),
    ]


def _final(shared):
    if shared.total != 7:
        return [f"lost update: total is {shared.total}, expected 7"]
    return []


EXPLORE_HARNESSES = [RaceHarness("lost-update", _build, final=_final)]
