"""Planted bug Y603: busy flag held across an await, not reset on error.

``on_sign`` sets ``self.busy`` before suspending and only clears it on
the success path: when the post-await work raises (a poisoned share,
injected by a concurrent handler), the ``except`` swallows the error and
returns with the flag still set.  Every later signing request then
early-returns forever.  The harness's invariant is that the flag is
released once all activations have drained — a wedge-specific witness
(a crash-based one would also fire on the correctly-guarded control,
and a completed-count one has legitimate zero-completion schedules).
"""

from repro.explore.confirm import RaceHarness
from repro.explore.tasks import Scheduler, TrackedObject


class VulnSigningGate(TrackedObject):
    """Single-flight signing gate with a leak on the error path."""

    def __init__(self, sched: Scheduler) -> None:
        super().__init__(sched)
        self.busy = False
        self.poisoned = False
        self.completed = 0

    async def on_sign(self) -> None:
        if self.busy:
            return
        self.busy = True
        await self._sched.point()  # e.g. gather shares from peers
        try:
            if self.poisoned:
                self.poisoned = False
                raise RuntimeError("share verification failed")
            self.completed = self.completed + 1
        except RuntimeError:
            # BUG: swallowed without resetting self.busy — the gate wedges.
            return
        self.busy = False

    async def on_corrupt_share(self) -> None:
        await self._sched.point()
        self.poisoned = True


def _build(sched: Scheduler):
    shared = VulnSigningGate(sched)
    return shared, [
        ("sign-a", shared.on_sign()),
        ("sign-b", shared.on_sign()),
        ("byz", shared.on_corrupt_share()),
    ]


def _final(shared):
    if shared.busy:
        return ["busy flag still held after every activation drained"]
    return []


EXPLORE_HARNESSES = [RaceHarness("busy-flag-wedge", _build, final=_final)]
