"""Clean control: an RBC subclass with the *correct* echo quorum.

Identical override surface to ``vuln_rbc_weak_echo_quorum`` but with the
sound ``n - t`` threshold, so the corpus can show the explorer flags the
weakened arithmetic and not the mere act of subclassing.  Explored at
(5, 1) under the same equivocating-sender palette, this class must stay
violation-free.
"""

from typing import List

from repro.broadcast.rbc import Outgoing, RbcInstance


class CleanRbcEchoQuorum(RbcInstance):
    """``_count_echo`` restated with the production n - t threshold."""

    def _count_echo(self, sender: int, digest: bytes) -> List[Outgoing]:
        prev = self._echo_digest.get(sender)
        if prev is not None and prev != digest:
            return []
        self._echo_digest[sender] = digest
        voters = self._echoes.setdefault(digest, set())
        if sender in voters:
            return []
        voters.add(sender)
        if len(voters) >= self.n - self.t and not self._sent_ready:
            return self._send_ready(digest)
        return []
