"""Clean control: the corpus race patterns with the correct guards.

Mirrors the planted Y601/Y603/Y604 shapes with the fixes the checker is
supposed to accept — a re-validated guard, a ``finally``-released busy
flag, and a flush that revalidates instead of raising.  The static
checker must stay silent on this file and every harness exploration
must complete with zero violations.
"""

from repro.explore.confirm import RaceHarness
from repro.explore.tasks import Scheduler, TrackedObject


class CleanApply(TrackedObject):
    """Apply-once update that re-checks its guard after the yield."""

    def __init__(self, sched: Scheduler) -> None:
        super().__init__(sched)
        self.applied = False
        self.value = 0

    async def on_update(self, amount: int) -> None:
        if not self.applied:
            await self._sched.point()
            if self.applied:
                return
            self.value = self.value + amount
            self.applied = True


class CleanSigningGate(TrackedObject):
    """Single-flight gate that releases its flag in ``finally``."""

    def __init__(self, sched: Scheduler) -> None:
        super().__init__(sched)
        self.busy = False
        self.poisoned = False
        self.completed = 0

    async def on_sign(self) -> None:
        if self.busy:
            return
        self.busy = True
        try:
            await self._sched.point()
            if self.poisoned:
                self.poisoned = False
                return
            self.completed = self.completed + 1
        finally:
            self.busy = False

    async def on_corrupt_share(self) -> None:
        await self._sched.point()
        self.poisoned = True


class CleanBatchFlusher(TrackedObject):
    """Request batcher whose flush task is retained and revalidates."""

    def __init__(self, sched: Scheduler) -> None:
        super().__init__(sched)
        self.pending = 0
        self.flushed = 0
        self.flush_task = None

    async def on_request(self) -> None:
        self.pending = self.pending + 1
        await self._sched.point()
        self.flush_task = self._sched.create_task(self._flush())

    async def _flush(self) -> None:
        await self._sched.point()
        if self.pending > 0:
            self.pending = self.pending - 1
            self.flushed = self.flushed + 1

    async def on_cancel(self) -> None:
        await self._sched.point()
        self.pending = 0


def _build_apply(sched: Scheduler):
    shared = CleanApply(sched)
    return shared, [("a", shared.on_update(5)), ("b", shared.on_update(5))]


def _final_apply(shared):
    if shared.value != 5:
        return [f"apply-once update ran {shared.value // 5} times"]
    return []


def _build_gate(sched: Scheduler):
    shared = CleanSigningGate(sched)
    return shared, [
        ("sign-a", shared.on_sign()),
        ("sign-b", shared.on_sign()),
        ("byz", shared.on_corrupt_share()),
    ]


def _final_gate(shared):
    if shared.busy:
        return ["busy flag still held after every activation drained"]
    return []


def _build_flush(sched: Scheduler):
    shared = CleanBatchFlusher(sched)
    return shared, [
        ("req", shared.on_request()),
        ("cancel", shared.on_cancel()),
    ]


EXPLORE_HARNESSES = [
    RaceHarness("clean-apply", _build_apply, final=_final_apply),
    RaceHarness("clean-gate", _build_gate, final=_final_gate),
    RaceHarness("clean-flush", _build_flush),
]
