"""Planted bug Y601: guard checked before an await, acted on after.

``on_update`` tests ``self.applied`` and then suspends before writing;
a concurrent activation passes the same guard while the first is parked,
so the update applies twice.  The static checker flags the unvalidated
window; the harness lets the explorer prove it with a two-task schedule.
"""

from repro.explore.confirm import RaceHarness
from repro.explore.tasks import Scheduler, TrackedObject


class VulnIdempotentApply(TrackedObject):
    """Apply-once update whose guard is not re-checked after the yield."""

    def __init__(self, sched: Scheduler) -> None:
        super().__init__(sched)
        self.applied = False
        self.value = 0

    async def on_update(self, amount: int) -> None:
        if not self.applied:
            await self._sched.point()  # e.g. threshold-sign the new RRset
            # BUG: no re-check of self.applied after the suspension.
            self.value = self.value + amount
            self.applied = True


def _build(sched: Scheduler):
    shared = VulnIdempotentApply(sched)
    return shared, [("a", shared.on_update(5)), ("b", shared.on_update(5))]


def _final(shared):
    if shared.value != 5:
        return [
            f"apply-once update ran {shared.value // 5} times "
            f"(guard invalidated across await)"
        ]
    return []


EXPLORE_HARNESSES = [RaceHarness("toctou-apply", _build, final=_final)]
