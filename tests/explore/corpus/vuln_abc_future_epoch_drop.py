"""Planted bug: atomic broadcast drops future-epoch messages.

Re-introduces the PR-2 defect: a fast-path message stamped with an epoch
this replica has not reached yet must be *buffered* and replayed on
epoch entry — dropping it silently wedges recovery, because the message
is never retransmitted.  The drop only matters under interleavings where
an epoch-1 message actually overtakes the receiver's own epoch change
(one replica's complaint timer fires before another's), which is exactly
the schedule the explorer has to find.  The subclass records the drop in
``dropped_future`` so the corpus harness can pin reachability of the
bug without relying on a liveness bound.
"""

from repro.broadcast.abc import AtomicBroadcast


class VulnAbcFutureEpochDrop(AtomicBroadcast):
    """``_buffer_future`` that discards instead of buffering."""

    dropped_future = 0

    def _buffer_future(self, sender: int, msg: object, epoch: int) -> bool:
        if epoch > self.epoch:
            # BUG: claim the message handled but throw it away.
            self.dropped_future += 1
            return True
        return super()._buffer_future(sender, msg, epoch)
