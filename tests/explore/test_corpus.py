"""Recall pinning for the planted-interleaving-bug corpus.

Every ``vuln_*`` module in ``tests/explore/corpus/`` plants exactly one
concurrency bug — four protocol-level defects found by exploring the
real broadcast stack under a Byzantine palette, and four task-level
Y601-Y604 yield-point races confirmed through their published
``EXPLORE_HARNESSES``.  The explorer must witness each one, and must
stay silent on the two ``clean_*`` controls (a correct-threshold RBC
subclass and correctly-guarded task code).  The per-bug pins are exact:
a regression in any single detection path fails loudly, and the whole
corpus must finish well inside the issue's 60 s budget.
"""

import sys
import time
from pathlib import Path

import pytest

from repro.explore import confirm_races
from repro.explore.confirm import _explore_harness, _load_harnesses
from repro.explore.dpor import DporEngine
from repro.explore.models import (
    AbaModel,
    AbcModel,
    ByzStrategy,
    RbcModel,
    rbc_strategies,
)
from repro.lint.framework import LintConfig
from repro.taint.indexer import module_files

CORPUS = Path(__file__).parent / "corpus"

#: Static scope for corpus files: fixtures live outside ``src/`` and so
#: carry an empty module name, which the default ``repro.*`` scope skips.
CORPUS_CONFIG = LintConfig(races_modules=("*",))

#: Protocol vulns: file -> expected violation hunt (built lazily below).
PROTOCOL_VULNS = [
    "vuln_aba_coin_reentry.py",
    "vuln_abc_future_epoch_drop.py",
    "vuln_rbc_weak_echo_quorum.py",
    "vuln_rbc_unverified_pull.py",
]

#: Task vulns: file -> the Y rule that must be dynamically confirmed.
TASK_VULNS = {
    "vuln_task_toctou.py": "Y601",
    "vuln_task_lost_update.py": "Y602",
    "vuln_task_busy_flag.py": "Y603",
    "vuln_task_fire_forget.py": "Y604",
}

CLEAN = ["clean_rbc.py", "clean_task.py"]


@pytest.fixture(scope="module", autouse=True)
def _corpus_on_path():
    sys.path.insert(0, str(CORPUS))
    try:
        yield
    finally:
        sys.path.remove(str(CORPUS))


def _forged_pull_strategy():
    from repro.broadcast.messages import RbcPayload

    base = next(
        s
        for s in rbc_strategies(4, 1, "s", "digest", 0, [1, 2, 3])
        if s.name == "withhold-partial"
    )
    return ByzStrategy(
        "withhold-forge-pull",
        tuple(base.messages) + ((3, RbcPayload("s", b"forged")),),
    )


def _equivocate_at_5_1():
    return next(
        s
        for s in rbc_strategies(5, 1, "s", "full", 0, [1, 2, 3, 4])
        if s.name == "equivocate-split"
    )


class _FutureDropModel(AbcModel):
    """AbcModel whose invariant also pins *reachability* of the planted
    drop: the wedge it causes is liveness-shaped (recovery re-arms timers
    until the cap), so a safety check alone would never see it."""

    def check_now(self):
        problems = super().check_now()
        for i, abc in self.state.replicas.items():
            dropped = getattr(abc, "dropped_future", 0)
            if dropped:
                problems.append(
                    f"replica {i} dropped {dropped} future-epoch message(s)"
                )
        return problems


def _protocol_model(filename):
    """The (model, schedule-budget) pair that witnesses each planted bug."""
    if filename == "vuln_aba_coin_reentry.py":
        from vuln_aba_coin_reentry import VulnAbaCoinReentry

        # Unanimous 1-proposals take the estimate-and-advance path (the
        # stub coin's round-0 toss is 0), opening the re-entrancy window.
        return (
            AbaModel(
                4,
                1,
                byz=0,
                strategy=ByzStrategy("silent"),
                proposals={1: 1, 2: 1, 3: 1},
                aba_cls=VulnAbaCoinReentry,
            ),
            20_000,
        )
    if filename == "vuln_abc_future_epoch_drop.py":
        from vuln_abc_future_epoch_drop import VulnAbcFutureEpochDrop

        # A silent epoch-0 leader forces the complaint path; the drop
        # needs an epoch-1 message to overtake a replica's epoch change.
        return (
            _FutureDropModel(
                4,
                1,
                dissemination="digest",
                byz=0,
                strategy=ByzStrategy("silent"),
                payloads=(b"req-a",),
                abc_cls=VulnAbcFutureEpochDrop,
            ),
            40_000,
        )
    if filename == "vuln_rbc_weak_echo_quorum.py":
        from vuln_rbc_weak_echo_quorum import VulnRbcWeakEchoQuorum

        # 2t+1 == n-t at (4,1); the weakening is only exploitable at (5,1).
        return (
            RbcModel(
                5,
                1,
                mode="full",
                byz=0,
                strategy=_equivocate_at_5_1(),
                rbc_cls=VulnRbcWeakEchoQuorum,
            ),
            50_000,
        )
    if filename == "vuln_rbc_unverified_pull.py":
        from vuln_rbc_unverified_pull import VulnRbcUnverifiedPull

        # Withhold SEND from one camp, then race a forged pull response
        # into the starved replica's pull window.
        return (
            RbcModel(
                4,
                1,
                mode="digest",
                byz=0,
                strategy=_forged_pull_strategy(),
                rbc_cls=VulnRbcUnverifiedPull,
            ),
            50_000,
        )
    raise AssertionError(filename)


def test_corpus_is_complete():
    names = sorted(p.name for p in CORPUS.glob("*.py"))
    assert names == sorted(PROTOCOL_VULNS + list(TASK_VULNS) + CLEAN)


@pytest.mark.parametrize("filename", PROTOCOL_VULNS)
def test_protocol_bug_witnessed(filename):
    model, budget = _protocol_model(filename)
    result = DporEngine(
        model, stop_on_first=True, max_schedules=budget
    ).run()
    assert result.violations, f"{filename}: no violating schedule found"
    violation = result.violations[0]
    assert violation.schedule, f"{filename}: empty witness schedule"


@pytest.mark.parametrize(
    "filename,rule", sorted(TASK_VULNS.items())
)
def test_task_race_confirmed(filename, rule):
    files = module_files([CORPUS / filename], CORPUS)
    outcomes = confirm_races(files, config=CORPUS_CONFIG)
    assert outcomes, f"{filename}: no {rule} finding to confirm"
    confirmed = [o for o in outcomes if o.original.rule == rule]
    assert confirmed, f"{filename}: static finding is not {rule}"
    for outcome in confirmed:
        assert outcome.status == "confirmed", (
            f"{filename}: {rule} not dynamically confirmed "
            f"({outcome.schedules_explored} schedules, "
            f"complete={outcome.complete})"
        )
        assert outcome.rule == "X702"
        # The minimized schedule may legitimately be empty (the default
        # completion order alone reproduces, e.g. the Y604 crash) — but
        # a confirmed finding must always carry witness messages.
        assert outcome.messages


def test_task_corpus_exact_rules():
    # One Y finding per task file, no cross-contamination.
    files = module_files([CORPUS], CORPUS)
    outcomes = confirm_races(files, config=CORPUS_CONFIG)
    by_file = {}
    for o in outcomes:
        by_file.setdefault(Path(o.original.path).name, []).append(o)
    got = {
        name: sorted(o.original.rule for o in outs)
        for name, outs in by_file.items()
    }
    assert got == {name: [rule] for name, rule in TASK_VULNS.items()}
    assert all(
        o.status == "confirmed" for outs in by_file.values() for o in outs
    )


def test_clean_rbc_control_stays_silent():
    from clean_rbc import CleanRbcEchoQuorum

    model = RbcModel(
        5,
        1,
        mode="full",
        byz=0,
        strategy=_equivocate_at_5_1(),
        rbc_cls=CleanRbcEchoQuorum,
    )
    # Budget-capped: the point is that the *bug* is what the explorer
    # flags (found at well under this budget), not the subclassing.
    result = DporEngine(model, max_schedules=1_500).run()
    assert not result.violations


def test_clean_task_control_stays_silent():
    path = CORPUS / "clean_task.py"
    # Statically clean: nothing to confirm.
    files = module_files([path], CORPUS)
    assert confirm_races(files, config=CORPUS_CONFIG) == []
    # Dynamically clean: every published harness explores exhaustively
    # with zero violations.
    harnesses = _load_harnesses(path, path.read_text())
    assert len(harnesses) == 3
    for harness in harnesses:
        evidence = _explore_harness(
            harness, max_schedules=5_000, deadline_s=None
        )
        assert evidence.complete, f"{harness.name}: budget hit"
        assert not evidence.violations, f"{harness.name}: false positive"


def test_whole_corpus_under_budget():
    # Issue acceptance: the full corpus (all witnesses + both controls)
    # completes in < 60 s.  The heavyweight pieces re-run here; the
    # per-file tests above stay independently debuggable.
    start = time.monotonic()
    for filename in PROTOCOL_VULNS:
        model, budget = _protocol_model(filename)
        result = DporEngine(
            model, stop_on_first=True, max_schedules=budget
        ).run()
        assert result.violations, filename
    files = module_files([CORPUS], CORPUS)
    outcomes = confirm_races(files, config=CORPUS_CONFIG)
    assert len(outcomes) == len(TASK_VULNS)
    elapsed = time.monotonic() - start
    assert elapsed < 60.0, f"corpus run took {elapsed:.1f}s"
