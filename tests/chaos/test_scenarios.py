"""Chaos harness: seed replay, invariants, and scenario expectations.

Each scenario run is a complete Byzantine experiment, so this file keeps
the matrix small — one seed per scenario/cluster where possible.  The CI
smoke and nightly jobs sweep many seeds; here we pin the *contract*:

* the same seed produces byte-identical transcripts (replayability),
* different seeds produce different adversarial schedules,
* G1/G2/G3 hold under every scenario on both paper clusters,
* scenario-specific expectations (slow path entered, partition healed,
  epoch changed, ...) actually fire, so the scenarios keep attacking
  what they claim to attack.
"""

import pytest

from repro.chaos.scenarios import SCENARIOS, run_scenario
from repro.errors import ConfigError


class TestSeedReplay:
    def test_same_seed_same_transcript(self):
        first = run_scenario("mixed", cluster=(4, 1), seed=42)
        second = run_scenario("mixed", cluster=(4, 1), seed=42)
        assert first.transcript == second.transcript
        assert first.transcript_hash == second.transcript_hash

    def test_different_seeds_differ(self):
        a = run_scenario("mixed", cluster=(4, 1), seed=1)
        b = run_scenario("mixed", cluster=(4, 1), seed=2)
        assert a.transcript_hash != b.transcript_hash

    def test_transcript_names_failing_seed(self):
        result = run_scenario("mixed", cluster=(4, 1), seed=7)
        assert "seed=7" in result.transcript
        assert "scenario=mixed" in result.transcript


class TestInvariantsHold:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_small_cluster(self, name):
        result = run_scenario(name, cluster=(4, 1), seed=3)
        assert result.ok, result.transcript

    @pytest.mark.parametrize("name", ["mixed", "equivocate"])
    def test_paper_cluster(self, name):
        result = run_scenario(name, cluster=(7, 2), seed=3)
        assert result.ok, result.transcript

    @pytest.mark.parametrize("name", ["mixed", "erasure"])
    def test_big_cluster(self, name):
        """(10, 3): the digest/erasure broadcast plane's target scale."""
        result = run_scenario(name, cluster=(10, 3), seed=3)
        assert result.ok, result.transcript

    def test_xl_cluster(self):
        """(16, 5): one erasure run at the sweep's new ceiling.

        The full scenario set at this size belongs to the nightly
        matrix; tier-1 pins the cheapest representative so a scaling
        regression (quorum arithmetic, fragment fan-out, key material)
        fails fast without doubling suite time.
        """
        result = run_scenario("erasure", cluster=(16, 5), seed=3)
        assert result.ok, result.transcript


class TestScenarioExpectations:
    @staticmethod
    def _stat(transcript, key):
        for line in transcript.splitlines():
            if line.startswith("stats "):
                for token in line.split()[1:]:
                    name, _, value = token.partition("=")
                    if name == key:
                        return int(value)
        raise AssertionError(f"no {key} in transcript stats line")

    def test_slowpath_forces_optproof_fallback(self):
        result = run_scenario("slowpath", cluster=(4, 1), seed=0)
        assert result.ok, result.transcript
        assert self._stat(result.transcript, "fallbacks") > 0

    def test_partition_heals_and_buffers(self):
        result = run_scenario("partition", cluster=(4, 1), seed=0)
        assert result.ok, result.transcript
        # The adversary actually held cross-partition traffic.
        assert any(line.startswith("adv hold ") for line in
                   result.transcript.splitlines())

    def test_equivocation_forces_epoch_change(self):
        result = run_scenario("equivocate", cluster=(4, 1), seed=3)
        assert result.ok, result.transcript
        assert self._stat(result.transcript, "epochs") > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario("no-such-scenario", cluster=(4, 1), seed=0)
