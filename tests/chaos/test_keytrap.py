"""KeyTrap budgets: adversarial zones cannot buy unbounded validation."""

import random

import pytest

from repro.chaos.keytrap import (
    COLLIDING_KEYS,
    FORGED_SIGS,
    build_adversarial_zone,
    forge_key_with_tag,
    run_keytrap_attack,
)
from repro.dns import constants as c
from repro.dns.resolver import CachingResolver, ValidationBudget, build_in_memory_tree


def test_forged_key_tags_collide_on_demand():
    rng = random.Random(99)
    for target in (0, 1, 0x1234, 0xFFFF):
        key = forge_key_with_tag(target, rng)
        assert key.key_tag() == target
        assert key.algorithm == c.ALG_RSASHA1


def test_adversarial_zone_shape():
    adversarial = build_adversarial_zone(seed=0)
    # The trust set holds the real key plus the colliding junk keys, and
    # every junk key shares the real key's tag — the KeySigTrap setup.
    assert len(adversarial.trusted_keys) == COLLIDING_KEYS + 1
    real_tag = adversarial.real_key.key_tag()
    assert all(k.key_tag() == real_tag for k in adversarial.trusted_keys)
    sigs = adversarial.zone.find_rrset(adversarial.jam_name, c.TYPE_SIG)
    a_sigs = [s for s in sigs if s.type_covered == c.TYPE_A]
    assert len(a_sigs) == FORGED_SIGS + 1  # forgeries plus the real one


def test_attack_is_refused_within_budget():
    budget = ValidationBudget(max_sig_checks=16, max_key_trials=8)
    report = run_keytrap_attack(seed=0, budget=budget)
    assert report.ok, report.violations
    assert report.jam_rcode == c.RCODE_SERVFAIL
    assert report.trap_rcode == c.RCODE_SERVFAIL
    # The caps are the whole point: uncapped, the planted RRsets would
    # cost ~(FORGED_SIGS+1) x (COLLIDING_KEYS+1) pairings.
    assert report.max_sig_checks <= budget.max_sig_checks
    assert report.max_key_trials <= budget.max_key_trials
    assert report.benign_verified


def test_benign_query_verifies_against_the_polluted_trust_set():
    # Honest RRsets carry one genuine SIG; with the real key ordered
    # first they validate on the first pairing despite the junk keys.
    adversarial = build_adversarial_zone(seed=1)
    resolver = CachingResolver(
        build_in_memory_tree([adversarial.zone]),
        root=adversarial.zone.origin,
        trusted_keys={adversarial.zone.origin: adversarial.trusted_keys},
    )
    result = resolver.resolve(adversarial.benign_name, c.TYPE_A)
    assert result.ok and result.verified and not result.budget_exhausted
    assert result.sig_checks == 1


def test_tighter_budget_still_holds():
    report = run_keytrap_attack(
        seed=2, budget=ValidationBudget(max_sig_checks=4, max_key_trials=4)
    )
    assert report.ok, report.violations
    assert report.max_sig_checks <= 4
    assert report.max_key_trials <= 4


def test_budget_caps_must_be_positive():
    with pytest.raises(ValueError):
        ValidationBudget(max_sig_checks=0, max_key_trials=1)
