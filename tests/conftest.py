"""Shared fixtures: small threshold keys and zones, cached per session.

Threshold key dealing is the slowest fixture; tests share session-scoped
keys (each test must not mutate them — key objects are immutable).
"""

from __future__ import annotations

import inspect
import os

import pytest

from repro.config import ServiceConfig
from repro.crypto.executor import ALL_EXECUTORS
from repro.crypto.params import demo_threshold_key
from repro.dns.zonefile import parse_zone_text

_FORCED_PLANE = os.environ.get("REPRO_TEST_EXECUTOR")
if _FORCED_PLANE:
    # CI's crypto-plane matrix leg: rerun the whole suite with this
    # executor as the ServiceConfig default.  Tests that pin an executor
    # explicitly (the cross-executor determinism suite, the executor unit
    # tests) still get exactly what they ask for.
    if _FORCED_PLANE not in ALL_EXECUTORS:
        raise RuntimeError(
            f"REPRO_TEST_EXECUTOR={_FORCED_PLANE!r} is not one of {ALL_EXECUTORS}"
        )
    _params = list(inspect.signature(ServiceConfig.__init__).parameters)[1:]
    _defaults = list(ServiceConfig.__init__.__defaults__ or ())
    _tail = _params[-len(_defaults):]
    _defaults[_tail.index("crypto_executor")] = _FORCED_PLANE
    ServiceConfig.__init__.__defaults__ = tuple(_defaults)  # type: ignore[misc]

ZONE_TEXT = """
$ORIGIN example.com.
$TTL 3600
@    IN SOA ns1.example.com. admin.example.com. ( 100 7200 900 604800 300 )
     IN NS ns1
     IN NS ns2
ns1  IN A 192.0.2.1
ns2  IN A 192.0.2.2
www  IN A 192.0.2.80
www  IN A 192.0.2.81
mail IN MX 10 mx1
mx1  IN A 192.0.2.25
txt  IN TXT "hello world"
alias IN CNAME www
sub  IN NS ns1.sub
ns1.sub IN A 192.0.2.53
v6   IN AAAA 2001:db8::1
"""


@pytest.fixture()
def zone():
    return parse_zone_text(ZONE_TEXT)


@pytest.fixture(scope="session")
def threshold_4_1():
    """(n=4, t=1) threshold key over a 384-bit demo modulus."""
    return demo_threshold_key(4, 1, 384)


@pytest.fixture(scope="session")
def threshold_7_2():
    """(n=7, t=2) threshold key over a 384-bit demo modulus."""
    return demo_threshold_key(7, 2, 384)


@pytest.fixture(scope="session")
def threshold_4_1_512():
    """(n=4, t=1) key over a 512-bit modulus (for DNSSEC-size tests)."""
    return demo_threshold_key(4, 1, 512)
