"""Domain name parsing, ordering, and wire format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.name import Name, root_name
from repro.errors import NameError_, WireFormatError


class TestParsing:
    def test_absolute(self):
        name = Name.from_text("www.example.com.")
        assert name.labels == (b"www", b"example", b"com")

    def test_root(self):
        assert Name.from_text(".").is_root
        assert root_name().to_text() == "."

    def test_relative_with_origin(self):
        origin = Name.from_text("example.com.")
        assert Name.from_text("www", origin) == Name.from_text("www.example.com.")

    def test_at_sign_is_origin(self):
        origin = Name.from_text("example.com.")
        assert Name.from_text("@", origin) == origin

    def test_relative_without_origin_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("www")

    def test_escaped_dot(self):
        name = Name.from_text(r"a\.b.example.com.")
        assert name.labels[0] == b"a.b"

    def test_decimal_escape(self):
        name = Name.from_text(r"a\065.example.com.")
        assert name.labels[0] == b"aA"

    def test_trailing_escaped_backslash_roundtrip(self):
        # to_text() escapes the backslash, producing "\\." — the final dot
        # is a real separator, so the parsed name must be absolute again.
        name = Name([b"\\"])
        assert name.to_text() == "\\\\."
        assert Name.from_text(name.to_text()) == name

    def test_trailing_escaped_dot_is_relative(self):
        origin = Name([b"example", b"com"])
        name = Name.from_text(r"a\.", origin)
        assert name.labels == (b"a.", b"example", b"com")

    def test_label_too_long(self):
        with pytest.raises(NameError_):
            Name.from_text("a" * 64 + ".com.")

    def test_name_too_long(self):
        label = "a" * 60
        with pytest.raises(NameError_):
            Name.from_text(".".join([label] * 5) + ".")

    def test_case_insensitive_equality(self):
        assert Name.from_text("WWW.Example.COM.") == Name.from_text("www.example.com.")
        assert hash(Name.from_text("A.b.")) == hash(Name.from_text("a.B."))


class TestOrdering:
    def test_canonical_order_rightmost_label_first(self):
        # RFC 4034 §6.1 example ordering.
        ordered = [
            "example.com.",
            "a.example.com.",
            "yljkjljk.a.example.com.",
            "Z.a.example.com.",
            "zABC.a.EXAMPLE.com.",
            "z.example.com.",
        ]
        names = [Name.from_text(t) for t in ordered]
        assert sorted(names) == names

    def test_root_sorts_first(self):
        assert root_name() < Name.from_text("com.")


class TestRelations:
    def test_subdomain(self):
        parent = Name.from_text("example.com.")
        child = Name.from_text("www.example.com.")
        assert child.is_subdomain_of(parent)
        assert parent.is_subdomain_of(parent)
        assert not parent.is_subdomain_of(child)
        assert child.is_subdomain_of(root_name())

    def test_not_subdomain_of_sibling(self):
        assert not Name.from_text("www.example.org.").is_subdomain_of(
            Name.from_text("example.com.")
        )

    def test_partial_label_not_subdomain(self):
        # "badexample.com" is not under "example.com".
        assert not Name.from_text("badexample.com.").is_subdomain_of(
            Name.from_text("example.com.")
        )

    def test_parent(self):
        assert Name.from_text("www.example.com.").parent() == Name.from_text(
            "example.com."
        )
        with pytest.raises(NameError_):
            root_name().parent()

    def test_relativize(self):
        origin = Name.from_text("example.com.")
        assert Name.from_text("www.example.com.").relativize_text(origin) == "www"
        assert origin.relativize_text(origin) == "@"
        assert (
            Name.from_text("other.org.").relativize_text(origin) == "other.org."
        )

    def test_concatenate(self):
        a = Name.from_text("www", Name(()))
        b = Name.from_text("example.com.")
        assert a.concatenate(b) == Name.from_text("www.example.com.")


class TestWire:
    def test_roundtrip(self):
        name = Name.from_text("www.example.com.")
        wire = name.to_wire()
        decoded, offset = Name.from_wire(wire)
        assert decoded == name and offset == len(wire)

    def test_root_wire(self):
        assert root_name().to_wire() == b"\x00"

    def test_canonical_wire_lowercases(self):
        upper = Name.from_text("WWW.EXAMPLE.COM.")
        lower = Name.from_text("www.example.com.")
        assert upper.canonical_wire() == lower.canonical_wire()
        assert upper.to_wire() != lower.to_wire()

    def test_compression_pointer(self):
        # Message fragment: "example.com." at 0, "www" + pointer at 13.
        base = Name.from_text("example.com.").to_wire()
        buf = base + b"\x03www" + b"\xc0\x00"
        decoded, offset = Name.from_wire(buf, len(base))
        assert decoded == Name.from_text("www.example.com.")
        assert offset == len(buf)

    def test_pointer_loop_rejected(self):
        buf = b"\xc0\x00"
        with pytest.raises(WireFormatError):
            Name.from_wire(buf, 0)

    def test_forward_pointer_rejected(self):
        buf = b"\xc0\x05" + b"\x00" * 10
        with pytest.raises(WireFormatError):
            Name.from_wire(buf, 0)

    def test_truncated(self):
        with pytest.raises(WireFormatError):
            Name.from_wire(b"\x05abc")

    @given(
        st.lists(
            st.binary(min_size=1, max_size=20).filter(lambda b: True),
            min_size=0,
            max_size=5,
        )
    )
    def test_wire_roundtrip_arbitrary_labels(self, labels):
        try:
            name = Name(labels)
        except NameError_:
            return
        decoded, _ = Name.from_wire(name.to_wire())
        assert decoded == Name([l.lower() for l in labels]) or decoded == name

    def test_text_roundtrip_binary_labels(self):
        name = Name([b"\x00\x01binary", b"example"])
        assert Name.from_text(name.to_text()) == name
