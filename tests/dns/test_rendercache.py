"""Canonical-wire render cache: keying, invalidation, bound, zone wiring."""

import pytest

from repro.dns import constants as c
from repro.dns.message import RR, make_update
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.dns.rendercache import CanonicalRenderCache
from repro.dns.rrset import RRset
from repro.dns.update import UpdateProcessor

ORIGIN = Name.from_text("example.com.")
WWW = Name.from_text("www.example.com.")
OTHER = Name.from_text("other.example.com.")


def _apply(zone, *rrs):
    msg = make_update(ORIGIN)
    msg.authority.extend(rrs)
    return UpdateProcessor(zone).apply(msg)


def _name(i):
    return Name.from_text(f"n{i}.example.com.")


class TestCacheUnit:
    def test_bound_is_mandatory(self):
        with pytest.raises(ValueError):
            CanonicalRenderCache(max_entries=0)

    def test_hit_miss_stats(self):
        cache = CanonicalRenderCache()
        assert cache.lookup(WWW, c.TYPE_A, 100) is None
        cache.store(WWW, c.TYPE_A, 100, b"wire")
        assert cache.lookup(WWW, c.TYPE_A, 100) == b"wire"
        assert cache.lookup(WWW, c.TYPE_A, 101) is None  # serial is keyed
        assert cache.stats["hits"] == 1
        assert cache.stats["misses"] == 2

    def test_lru_eviction_counts_and_keeps_recent(self):
        cache = CanonicalRenderCache(max_entries=2)
        cache.store(_name(0), c.TYPE_A, 100, b"w0")
        cache.store(_name(1), c.TYPE_A, 100, b"w1")
        assert cache.lookup(_name(0), c.TYPE_A, 100) == b"w0"  # refresh n0
        cache.store(_name(2), c.TYPE_A, 100, b"w2")  # evicts LRU = n1
        assert cache.stats["evictions"] == 1
        assert cache.lookup(_name(1), c.TYPE_A, 100) is None
        assert cache.lookup(_name(0), c.TYPE_A, 100) == b"w0"
        assert len(cache) == 2

    def test_invalidate_by_name_and_type(self):
        cache = CanonicalRenderCache()
        cache.store(WWW, c.TYPE_A, 100, b"a")
        cache.store(WWW, c.TYPE_SIG, 100, b"sig")
        cache.store(OTHER, c.TYPE_A, 100, b"o")
        cache.invalidate(WWW, c.TYPE_A)
        assert cache.lookup(WWW, c.TYPE_A, 100) is None
        assert cache.lookup(WWW, c.TYPE_SIG, 100) == b"sig"
        cache.invalidate(WWW)  # all types at the name
        assert cache.lookup(WWW, c.TYPE_SIG, 100) is None
        assert cache.lookup(OTHER, c.TYPE_A, 100) == b"o"
        assert cache.stats["invalidated"] == 2

    def test_rekey_drops_affected_and_migrates_survivors(self):
        cache = CanonicalRenderCache()
        cache.store(WWW, c.TYPE_A, 100, b"a")
        cache.store(OTHER, c.TYPE_A, 100, b"o")
        cache.store(ORIGIN, c.TYPE_SOA, 100, b"soa")
        cache.rekey_for_update(
            {WWW}, 101, soa_name=ORIGIN, soa_type=c.TYPE_SOA
        )
        assert cache.lookup(WWW, c.TYPE_A, 101) is None
        assert cache.lookup(ORIGIN, c.TYPE_SOA, 101) is None  # serial bumped
        assert cache.lookup(OTHER, c.TYPE_A, 101) == b"o"  # migrated
        assert cache.lookup(OTHER, c.TYPE_A, 100) is None  # old key gone
        assert cache.stats["rekeyed"] == 1
        assert cache.stats["invalidated"] == 2


class TestZoneIntegration:
    def test_repeat_render_hits(self, zone):
        rrset = zone.find_rrset(WWW, c.TYPE_A)
        first = zone.canonical_rrset_wire(rrset)
        second = zone.canonical_rrset_wire(rrset)
        assert first == second == rrset.canonical_wire()
        assert zone.render.stats["hits"] == 1

    def test_foreign_rrset_bypasses_cache(self, zone):
        # An RRset that is not the zone's own object must not be cached
        # under the zone's key (it may hold different data).
        foreign = RRset(WWW, c.TYPE_A, 300, [A("9.9.9.9")])
        wire = zone.canonical_rrset_wire(foreign)
        assert wire == foreign.canonical_wire()
        assert zone.render.lookup(WWW, c.TYPE_A, zone.serial) is None

    def test_mutation_invalidates_same_serial_entry(self, zone):
        rrset = zone.find_rrset(WWW, c.TYPE_A)
        zone.canonical_rrset_wire(rrset)  # warm
        zone.add_rdata(WWW, c.TYPE_A, 3600, A("192.0.2.99"))
        updated = zone.find_rrset(WWW, c.TYPE_A)
        wire = zone.canonical_rrset_wire(updated)
        assert wire == updated.canonical_wire()  # freshly rendered

    def test_update_rekeys_unrelated_survivors(self, zone):
        rrset = zone.find_rrset(WWW, c.TYPE_A)
        zone.canonical_rrset_wire(rrset)  # warm at old serial
        result = _apply(
            zone, RR(OTHER, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.50"))
        )
        assert result.ok and result.data_changed
        assert zone.render.stats["rekeyed"] > 0
        # The untouched entry now hits under the *new* serial.
        hits_before = zone.render.stats["hits"]
        zone.canonical_rrset_wire(zone.find_rrset(WWW, c.TYPE_A))
        assert zone.render.stats["hits"] == hits_before + 1

    def test_update_drops_affected_and_soa_entries(self, zone):
        zone.canonical_rrset_wire(zone.find_rrset(WWW, c.TYPE_A))
        zone.canonical_rrset_wire(zone.find_rrset(ORIGIN, c.TYPE_SOA))
        result = _apply(
            zone, RR(WWW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.51"))
        )
        assert result.ok
        serial = zone.serial
        assert zone.render.lookup(WWW, c.TYPE_A, serial) is None
        # The serial bump rewrote the SOA, so its entry must not survive.
        assert zone.render.lookup(ORIGIN, c.TYPE_SOA, serial) is None

    def test_zone_copy_gets_fresh_cache(self, zone):
        zone.canonical_rrset_wire(zone.find_rrset(WWW, c.TYPE_A))
        clone = zone.copy()
        assert clone.render is not zone.render
        assert len(clone.render) == 0
        # The clone renders (and caches) independently.
        clone.canonical_rrset_wire(clone.find_rrset(WWW, c.TYPE_A))
        assert clone.render.stats["misses"] == 1
