"""RRset semantics and DNSSEC canonical form."""

import pytest

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import A, TXT
from repro.dns.rrset import RRset
from repro.errors import ZoneError

OWNER = Name.from_text("www.example.com.")


class TestConstruction:
    def test_dedupes(self):
        rrset = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1"), A("1.1.1.1")])
        assert len(rrset) == 1

    def test_empty_rejected(self):
        with pytest.raises(ZoneError):
            RRset(OWNER, c.TYPE_A, 300, [])

    def test_type_mismatch_rejected(self):
        with pytest.raises(ZoneError):
            RRset(OWNER, c.TYPE_A, 300, [TXT([b"x"])])

    def test_ttl_range(self):
        with pytest.raises(ZoneError):
            RRset(OWNER, c.TYPE_A, -1, [A("1.1.1.1")])
        with pytest.raises(ZoneError):
            RRset(OWNER, c.TYPE_A, 2**31, [A("1.1.1.1")])


class TestDerivation:
    def test_with_added(self):
        rrset = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1")])
        bigger = rrset.with_added(A("2.2.2.2"))
        assert len(bigger) == 2 and len(rrset) == 1

    def test_with_removed(self):
        rrset = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1"), A("2.2.2.2")])
        smaller = rrset.with_removed(A("1.1.1.1"))
        assert smaller is not None and len(smaller) == 1

    def test_with_removed_last_returns_none(self):
        rrset = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1")])
        assert rrset.with_removed(A("1.1.1.1")) is None

    def test_contains(self):
        rrset = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1")])
        assert A("1.1.1.1") in rrset
        assert A("9.9.9.9") not in rrset


class TestCanonicalForm:
    def test_rdata_sorted_in_canonical_wire(self):
        forward = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1"), A("2.2.2.2")])
        backward = RRset(OWNER, c.TYPE_A, 300, [A("2.2.2.2"), A("1.1.1.1")])
        assert forward.canonical_wire() == backward.canonical_wire()

    def test_owner_case_folded(self):
        upper = RRset(Name.from_text("WWW.EXAMPLE.COM."), c.TYPE_A, 300, [A("1.1.1.1")])
        lower = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1")])
        assert upper.canonical_wire() == lower.canonical_wire()

    def test_ttl_included(self):
        a = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1")])
        b = RRset(OWNER, c.TYPE_A, 600, [A("1.1.1.1")])
        assert a.canonical_wire() != b.canonical_wire()

    def test_sorted_canonically(self):
        rrset = RRset(OWNER, c.TYPE_A, 300, [A("9.9.9.9"), A("1.1.1.1")])
        ordered = rrset.sorted_canonically()
        assert [r.address for r in ordered] == ["1.1.1.1", "9.9.9.9"]


class TestEqualityAndText:
    def test_order_insensitive_equality(self):
        a = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1"), A("2.2.2.2")])
        b = RRset(OWNER, c.TYPE_A, 300, [A("2.2.2.2"), A("1.1.1.1")])
        assert a == b and hash(a) == hash(b)

    def test_ttl_sensitive_equality(self):
        a = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1")])
        b = RRset(OWNER, c.TYPE_A, 999, [A("1.1.1.1")])
        assert a != b

    def test_to_text_lines(self):
        rrset = RRset(OWNER, c.TYPE_A, 300, [A("1.1.1.1"), A("2.2.2.2")])
        lines = rrset.to_text().splitlines()
        assert len(lines) == 2
        assert all("IN A" in line for line in lines)
