"""Incremental vs full-rebuild re-signing: byte-identical signed zones.

``signing_tasks_for_update(..., incremental=True)`` repairs only the NXT
chain region an update touched; ``incremental=False`` rebuilds the whole
chain (the pre-optimization oracle).  For every update shape the two
strategies must derive the *identical* task list — same ``sign_id``s,
same signed bytes — and leave byte-identical zones once the signatures
attach.
"""

import pytest

from repro.crypto.rsa import generate_rsa_keypair
from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.message import RR, make_update
from repro.dns.name import Name
from repro.dns.rdata import KEY, TXT, A
from repro.dns.update import UpdateProcessor

ORIGIN = Name.from_text("example.com.")


@pytest.fixture(scope="module")
def rsa_key():
    return generate_rsa_keypair(512)


@pytest.fixture()
def pair(zone, rsa_key):
    """Two identical signed zones: one per NXT-repair strategy."""
    key_record = KEY.for_rsa(rsa_key.public.modulus, rsa_key.public.exponent)
    zone.add_rdata(ORIGIN, c.TYPE_KEY, 3600, key_record)
    dnssec.sign_zone_locally(zone, key_record, rsa_key.private.sign)
    return zone, zone.copy(), key_record


def _rr_add(name, address):
    return RR(
        Name.from_text(name), c.TYPE_A, c.CLASS_IN, 300, A(address)
    )


def _rr_delete_name(name):
    return RR(Name.from_text(name), c.TYPE_ANY, c.CLASS_ANY, 0, None)


def _rr_delete_rdata(name, address):
    return RR(
        Name.from_text(name), c.TYPE_A, c.CLASS_NONE, 0, A(address)
    )


#: Each step is one RFC 2136 update message (a list of authority RRs).
#: Shapes: fresh adds at both canonical extremes (NXT wrap-around), an
#: RRset extension, targeted rdata and whole-name deletes, a multi-RR
#: update, and an apex change (incremental's full-rebuild fallback).
WORKLOAD = [
    [_rr_add("new.example.com.", "192.0.2.9")],
    [_rr_add("aaa.example.com.", "192.0.2.10")],       # first after apex
    [_rr_add("zzz.example.com.", "192.0.2.11")],       # wraps to apex
    [_rr_add("www.example.com.", "192.0.2.12")],       # extends an RRset
    [_rr_delete_name("txt.example.com.")],
    [_rr_delete_rdata("www.example.com.", "192.0.2.81")],
    [                                                   # multi-RR update
        _rr_add("multi1.example.com.", "192.0.2.13"),
        _rr_add("multi2.example.com.", "192.0.2.14"),
        _rr_delete_name("v6.example.com."),
    ],
    [RR(ORIGIN, c.TYPE_TXT, c.CLASS_IN, 300, TXT([b"apex change"]))],
]


def _apply(zone, rrs):
    msg = make_update(ORIGIN)
    msg.authority.extend(rrs)
    return UpdateProcessor(zone).apply(msg)


def _step(zone, rrs, key_record, signer, incremental):
    result = _apply(zone, rrs)
    assert result.ok and result.data_changed
    tasks = dnssec.signing_tasks_for_update(
        zone, result, key_record, incremental=incremental
    )
    for task in tasks:
        dnssec.attach_signature(zone, task, signer(task.data))
    return tasks


@pytest.mark.parametrize("step", range(len(WORKLOAD)), ids=lambda i: f"step{i}")
def test_single_update_equivalence(pair, rsa_key, step):
    inc_zone, full_zone, key_record = pair
    rrs = WORKLOAD[step]
    inc_tasks = _step(inc_zone, rrs, key_record, rsa_key.private.sign, True)
    full_tasks = _step(full_zone, rrs, key_record, rsa_key.private.sign, False)
    assert [t.sign_id for t in inc_tasks] == [t.sign_id for t in full_tasks]
    assert [t.data for t in inc_tasks] == [t.data for t in full_tasks]
    assert inc_zone.digest() == full_zone.digest()


def test_mixed_workload_stays_equivalent(pair, rsa_key):
    inc_zone, full_zone, key_record = pair
    for rrs in WORKLOAD:
        inc_tasks = _step(inc_zone, rrs, key_record, rsa_key.private.sign, True)
        full_tasks = _step(
            full_zone, rrs, key_record, rsa_key.private.sign, False
        )
        assert [t.sign_id for t in inc_tasks] == [
            t.sign_id for t in full_tasks
        ], rrs
        assert inc_zone.digest() == full_zone.digest(), rrs
    # Both zones still verify end to end.
    assert dnssec.verify_zone(inc_zone, key_record) == dnssec.verify_zone(
        full_zone, key_record
    )


def test_incremental_keeps_untouched_sig_bytes(pair, rsa_key):
    """Incremental repair must not re-stamp signatures it did not derive:
    an untouched name's SIG survives the update byte-for-byte."""
    inc_zone, _full, key_record = pair
    mail = Name.from_text("mail.example.com.")
    before = inc_zone.find_rrset(mail, c.TYPE_SIG).canonical_wire()
    _step(
        inc_zone,
        [_rr_add("new.example.com.", "192.0.2.9")],
        key_record,
        rsa_key.private.sign,
        True,
    )
    after = inc_zone.find_rrset(mail, c.TYPE_SIG).canonical_wire()
    assert before == after
