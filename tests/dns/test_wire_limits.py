"""Header count inflation must be rejected before the section parse
loops run (KeyTrap-style: the loop bound is attacker-chosen wire data)."""

import struct

import pytest

from repro.dns import constants as c
from repro.dns.message import Message, make_query
from repro.dns.name import Name
from repro.errors import WireFormatError


def header(qd=0, an=0, ns=0, ar=0, flags=0):
    return struct.pack("!6H", 0x1234, flags, qd, an, ns, ar)


class TestCountInflation:
    @pytest.mark.parametrize("section", ["qd", "an", "ns", "ar"])
    def test_count_beyond_message_size_rejected(self, section):
        wire = header(**{section: 0xFFFF})
        with pytest.raises(WireFormatError, match="section count"):
            Message.from_wire(wire)

    def test_inflated_count_with_some_body_rejected(self):
        # 4 bytes of body cannot hold 60000 answers.
        wire = header(an=60_000) + b"\x00\x00\x00\x00"
        with pytest.raises(WireFormatError):
            Message.from_wire(wire)

    def test_rejection_is_immediate_not_mid_parse(self):
        # The guard fires on the header alone: no partial section parse
        # should be attempted (which would raise a different error).
        with pytest.raises(WireFormatError, match="section count exceeds"):
            Message.from_wire(header(qd=0xFFFF))

    def test_legitimate_message_still_parses(self):
        query = make_query(Name.from_text("www.example.com."), c.TYPE_A)
        parsed = Message.from_wire(query.to_wire())
        assert parsed.questions == query.questions

    def test_empty_message_parses(self):
        parsed = Message.from_wire(header())
        assert parsed.questions == []
        assert parsed.answers == []
