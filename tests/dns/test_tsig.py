"""Transaction signatures (TSIG)."""

import pytest

from repro.dns import constants as c
from repro.dns.message import make_query, make_update, RR
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.dns.tsig import TsigKey, TsigKeyring, sign_message, split_tsig, verify_message
from repro.errors import TsigError

KEY = TsigKey(name=Name.from_text("update-key.example."), secret=b"s3cret")
OTHER = TsigKey(name=Name.from_text("other-key.example."), secret=b"different")


@pytest.fixture()
def keyring():
    ring = TsigKeyring()
    ring.add(KEY)
    return ring


def signed_update():
    update = make_update(Name.from_text("example.com."), msg_id=321)
    update.authority.append(
        RR(Name.from_text("new.example.com."), c.TYPE_A, c.CLASS_IN, 300, A("1.2.3.4"))
    )
    return sign_message(update, KEY, time_signed=1000)


class TestSignVerify:
    def test_roundtrip(self, keyring):
        wire = signed_update()
        message, tsig = verify_message(wire, keyring)
        assert message.msg_id == 321
        assert tsig.key_name == KEY.name
        assert message.updates  # the update body survived

    def test_unsigned_message_rejected(self, keyring):
        update = make_update(Name.from_text("example.com."))
        with pytest.raises(TsigError):
            verify_message(update.to_wire(), keyring)

    def test_unknown_key_rejected(self):
        ring = TsigKeyring()
        ring.add(OTHER)
        with pytest.raises(TsigError):
            verify_message(signed_update(), ring)

    def test_wrong_secret_rejected(self, keyring):
        bad_key = TsigKey(name=KEY.name, secret=b"wrong")
        update = make_update(Name.from_text("example.com."))
        wire = sign_message(update, bad_key, time_signed=1000)
        with pytest.raises(TsigError):
            verify_message(wire, keyring)

    def test_tampered_body_rejected(self, keyring):
        wire = bytearray(signed_update())
        wire[14] ^= 0x01  # flip a bit inside the question section
        with pytest.raises(TsigError):
            verify_message(bytes(wire), keyring)

    def test_time_window_enforced(self, keyring):
        wire = signed_update()
        verify_message(wire, keyring, now=1100)  # within fudge (300)
        with pytest.raises(TsigError):
            verify_message(wire, keyring, now=5000)

    def test_none_time_skips_window(self, keyring):
        verify_message(signed_update(), keyring, now=None)


class TestSplit:
    def test_split_restores_base(self, keyring):
        update = make_update(Name.from_text("example.com."), msg_id=55)
        base_before = update.to_wire()
        wire = sign_message(update, KEY, time_signed=10)
        base_after, tsig = split_tsig(wire)
        assert tsig is not None
        assert base_after == base_before

    def test_split_unsigned_returns_none(self):
        query = make_query(Name.from_text("x.example.com."), c.TYPE_A)
        base, tsig = split_tsig(query.to_wire())
        assert tsig is None and base == query.to_wire()

    def test_original_id_restored(self, keyring):
        update = make_update(Name.from_text("example.com."), msg_id=777)
        wire = bytearray(sign_message(update, KEY, time_signed=10))
        # Simulate a forwarder rewriting the message id (RFC 2845 §4.3):
        # verification must still use the original id from the TSIG rdata.
        import struct

        struct.pack_into(">H", wire, 0, 999)
        message, tsig = verify_message(bytes(wire), keyring)
        assert tsig.original_id == 777


class TestResponseChaining:
    def test_response_mac_covers_request_mac(self, keyring):
        request_wire = signed_update()
        _, request_tsig = split_tsig(request_wire)
        response = make_update(Name.from_text("example.com."), msg_id=321)
        response.set_flag(c.FLAG_QR)
        wire = sign_message(
            response, KEY, time_signed=1001, request_mac=request_tsig.mac
        )
        # Verifies only with the request MAC supplied.
        verify_message(wire, keyring, request_mac=request_tsig.mac)
        with pytest.raises(TsigError):
            verify_message(wire, keyring)


class TestKeyring:
    def test_membership(self, keyring):
        assert KEY.name in keyring
        assert OTHER.name not in keyring
        assert len(keyring) == 1
        assert keyring.get(KEY.name) is KEY
