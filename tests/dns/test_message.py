"""DNS message model and wire codec."""

import pytest

from repro.dns import constants as c
from repro.dns.message import (
    Message,
    Question,
    RR,
    make_query,
    make_response,
    make_update,
    rrs_to_rrsets,
    rrset_to_rrs,
)
from repro.dns.name import Name
from repro.dns.rdata import A, NS, TXT
from repro.dns.rrset import RRset
from repro.errors import WireFormatError

WWW = Name.from_text("www.example.com.")
ORIGIN = Name.from_text("example.com.")


class TestBuilders:
    def test_make_query(self):
        query = make_query(WWW, c.TYPE_A)
        assert query.opcode == c.OPCODE_QUERY
        assert not query.is_response
        assert query.questions == [Question(WWW, c.TYPE_A, c.CLASS_IN)]

    def test_make_response_echoes(self):
        query = make_query(WWW, c.TYPE_A, msg_id=1234)
        response = make_response(query, c.RCODE_NXDOMAIN)
        assert response.msg_id == 1234
        assert response.is_response
        assert response.rcode == c.RCODE_NXDOMAIN
        assert response.questions == query.questions

    def test_make_update_zone_section(self):
        update = make_update(ORIGIN)
        assert update.opcode == c.OPCODE_UPDATE
        assert update.zone[0].rtype == c.TYPE_SOA
        assert update.zone[0].name == ORIGIN


class TestWire:
    def test_query_roundtrip(self):
        query = make_query(WWW, c.TYPE_A, msg_id=42)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.msg_id == 42
        assert decoded.questions == query.questions
        assert decoded.opcode == c.OPCODE_QUERY

    def test_response_with_records_roundtrip(self):
        query = make_query(WWW, c.TYPE_A, msg_id=7)
        response = make_response(query)
        response.set_flag(c.FLAG_AA)
        response.answers.append(RR(WWW, c.TYPE_A, c.CLASS_IN, 300, A("1.2.3.4")))
        response.authority.append(
            RR(ORIGIN, c.TYPE_NS, c.CLASS_IN, 3600, NS(Name.from_text("ns1.example.com.")))
        )
        decoded = Message.from_wire(response.to_wire())
        assert decoded.is_authoritative
        assert decoded.answers == response.answers
        assert decoded.authority == response.authority

    def test_compression_shrinks_message(self):
        response = Message(msg_id=1)
        for i in range(5):
            owner = Name.from_text(f"host{i}.example.com.")
            response.answers.append(RR(owner, c.TYPE_A, c.CLASS_IN, 60, A("1.1.1.1")))
        wire = response.to_wire()
        uncompressed_estimate = sum(
            len(rr.name.to_wire()) + 14 for rr in response.answers
        )
        assert len(wire) < uncompressed_estimate + 12
        decoded = Message.from_wire(wire)
        assert decoded.answers == response.answers

    def test_empty_rdata_roundtrip(self):
        """RFC 2136 delete-RRset records have no rdata."""
        update = make_update(ORIGIN, msg_id=9)
        update.updates.append(RR(WWW, c.TYPE_ANY, c.CLASS_ANY, 0, None))
        decoded = Message.from_wire(update.to_wire())
        assert decoded.updates[0].rdata is None
        assert decoded.updates[0].rclass == c.CLASS_ANY

    def test_opcode_rcode_packed(self):
        update = make_update(ORIGIN, msg_id=3)
        update.rcode = c.RCODE_YXRRSET
        decoded = Message.from_wire(update.to_wire())
        assert decoded.opcode == c.OPCODE_UPDATE
        assert decoded.rcode == c.RCODE_YXRRSET

    def test_truncated_header(self):
        with pytest.raises(WireFormatError):
            Message.from_wire(b"\x00\x01\x00")

    def test_truncated_record(self):
        query = make_query(WWW, c.TYPE_A)
        wire = query.to_wire()
        with pytest.raises(WireFormatError):
            Message.from_wire(wire[:-3])

    def test_flags_preserved(self):
        msg = Message(msg_id=5)
        for flag in (c.FLAG_QR, c.FLAG_AA, c.FLAG_RD, c.FLAG_RA, c.FLAG_AD):
            msg.set_flag(flag)
        decoded = Message.from_wire(msg.to_wire())
        for flag in (c.FLAG_QR, c.FLAG_AA, c.FLAG_RD, c.FLAG_RA, c.FLAG_AD):
            assert decoded.flags & flag

    def test_case_preserved_through_compression(self):
        msg = Message(msg_id=6)
        msg.answers.append(
            RR(Name.from_text("WWW.Example.COM."), c.TYPE_A, c.CLASS_IN, 60, A("1.1.1.1"))
        )
        msg.answers.append(
            RR(Name.from_text("www.example.com."), c.TYPE_A, c.CLASS_IN, 60, A("2.2.2.2"))
        )
        decoded = Message.from_wire(msg.to_wire())
        assert decoded.answers[0].name == decoded.answers[1].name  # case-insensitive


class TestSectionHelpers:
    def test_rrset_to_rrs_and_back(self):
        rrset = RRset(WWW, c.TYPE_A, 300, [A("1.1.1.1"), A("2.2.2.2")])
        rrs = rrset_to_rrs(rrset)
        assert len(rrs) == 2
        rebuilt = rrs_to_rrsets(rrs)
        assert rebuilt == [rrset]

    def test_grouping_preserves_distinct_sets(self):
        rrs = [
            RR(WWW, c.TYPE_A, c.CLASS_IN, 300, A("1.1.1.1")),
            RR(WWW, c.TYPE_TXT, c.CLASS_IN, 300, TXT([b"x"])),
            RR(WWW, c.TYPE_A, c.CLASS_IN, 300, A("2.2.2.2")),
        ]
        rrsets = rrs_to_rrsets(rrs)
        assert len(rrsets) == 2
        assert rrsets[0].rtype == c.TYPE_A and len(rrsets[0]) == 2

    def test_update_aliases(self):
        update = make_update(ORIGIN)
        assert update.zone is update.questions
        assert update.prerequisites is update.answers
        assert update.updates is update.authority

    def test_copy_is_deep_for_sections(self):
        msg = make_query(WWW, c.TYPE_A)
        clone = msg.copy()
        clone.answers.append(RR(WWW, c.TYPE_A, c.CLASS_IN, 1, A("1.1.1.1")))
        assert not msg.answers

    def test_to_text_contains_sections(self):
        query = make_query(WWW, c.TYPE_A)
        response = make_response(query)
        response.answers.append(RR(WWW, c.TYPE_A, c.CLASS_IN, 300, A("1.2.3.4")))
        text = response.to_text()
        assert "QUESTION" in text and "ANSWER" in text and "1.2.3.4" in text
