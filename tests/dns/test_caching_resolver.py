"""The validating cache tier end to end: offload, synthesis, invalidation."""

import pytest

from repro.config import ServiceConfig
from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.message import make_query
from repro.dns.name import Name
from repro.dns.rdata import A, SOA
from repro.dns.resolver import (
    CachingResolver,
    ValidationBudget,
    build_in_memory_tree,
)
from repro.dns.rrset import RRset
from repro.dns.server import AuthoritativeServer
from repro.dns.zonefile import parse_zone_text
from repro.crypto.rsa import generate_rsa_keypair

ZONE_TEXT = """
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1.example.com. admin.example.com. ( 100 7200 900 604800 300 )
  IN NS ns1
ns1 IN A 192.0.2.1
mmm IN A 192.0.2.7
www IN A 192.0.2.80
"""


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def signed_zone():
    from repro.dns.rdata import KEY

    keypair = generate_rsa_keypair(512)
    zone = parse_zone_text(ZONE_TEXT)
    key_record = KEY.for_rsa(keypair.public.modulus, keypair.public.exponent)
    zone.add_rdata(zone.origin, c.TYPE_KEY, 3600, key_record)
    dnssec.sign_zone_locally(zone, key_record, keypair.private.sign)
    return zone, key_record, keypair


def _resolver(zone, key_record, clock=None) -> CachingResolver:
    return CachingResolver(
        build_in_memory_tree([zone]),
        root=zone.origin,
        trusted_keys={zone.origin: key_record},
        clock=clock,
    )


def _name(label: str, zone) -> Name:
    return Name((label.encode(),) + zone.origin.labels)


class TestPositiveOffload:
    def test_repeat_query_served_from_cache(self, signed_zone):
        zone, key_record, _ = signed_zone
        resolver = _resolver(zone, key_record)
        first = resolver.resolve(_name("www", zone), c.TYPE_A)
        assert first.ok and first.verified and not first.from_cache
        upstream_before = resolver.stats["authoritative_queries"]
        second = resolver.resolve(_name("www", zone), c.TYPE_A)
        assert second.ok and second.verified and second.from_cache
        assert [rr.rdata.address for rr in second.answers] == ["192.0.2.80"]
        assert resolver.stats["authoritative_queries"] == upstream_before
        assert resolver.stats["positive_hits"] == 1

    def test_ttl_expiry_forces_refetch(self, signed_zone):
        zone, key_record, _ = signed_zone
        clock = _FakeClock()
        resolver = _resolver(zone, key_record, clock=clock)
        resolver.resolve(_name("www", zone), c.TYPE_A)
        clock.now = 3600.0  # at the record TTL the entry is dead
        upstream_before = resolver.stats["authoritative_queries"]
        result = resolver.resolve(_name("www", zone), c.TYPE_A)
        assert result.ok and not result.from_cache
        assert resolver.stats["authoritative_queries"] > upstream_before


class TestNegativeSynthesis:
    def test_nxdomain_synthesized_for_unseen_covered_name(self, signed_zone):
        zone, key_record, _ = signed_zone
        resolver = _resolver(zone, key_record)
        # One authoritative miss caches the ns1..www interval...
        first = resolver.resolve(_name("ooo", zone), c.TYPE_A)
        assert first.rcode == c.RCODE_NXDOMAIN and not first.from_cache
        upstream_before = resolver.stats["authoritative_queries"]
        # ...which then denies a *different* name without any upstream.
        other = resolver.resolve(_name("ppp", zone), c.TYPE_A)
        assert other.rcode == c.RCODE_NXDOMAIN
        assert other.from_cache and other.verified
        assert resolver.stats["authoritative_queries"] == upstream_before
        assert resolver.stats["synthesized_nxdomain"] == 1

    def test_synthesized_nxdomain_is_byte_identical(self, signed_zone):
        # The pinned claim: a synthesized negative replays the exact wire
        # bytes the authoritative server would emit for that query.
        zone, key_record, _ = signed_zone
        server = AuthoritativeServer(zone)
        resolver = _resolver(zone, key_record)
        resolver.resolve(_name("ooo", zone), c.TYPE_A)
        query = make_query(_name("ppp", zone), c.TYPE_A, msg_id=7777)
        synthesized = resolver.synthesize_response(query)
        assert synthesized is not None
        assert synthesized.to_wire() == server.handle_query(query).to_wire()

    def test_synthesized_nodata_is_byte_identical(self, signed_zone):
        zone, key_record, _ = signed_zone
        server = AuthoritativeServer(zone)
        resolver = _resolver(zone, key_record)
        # NODATA: the name exists, the type does not; the proof is the
        # name's own NXT bitmap.
        first = resolver.resolve(_name("www", zone), c.TYPE_MX)
        assert first.rcode == c.RCODE_NOERROR and not first.answers
        query = make_query(_name("www", zone), c.TYPE_MX, msg_id=7778)
        synthesized = resolver.synthesize_response(query)
        assert synthesized is not None
        assert synthesized.rcode == c.RCODE_NOERROR
        assert synthesized.to_wire() == server.handle_query(query).to_wire()
        assert resolver.stats["synthesized_nodata"] == 1

    def test_negative_ttl_is_capped_by_soa_minimum(self, signed_zone):
        zone, key_record, _ = signed_zone
        clock = _FakeClock()
        resolver = _resolver(zone, key_record, clock=clock)
        resolver.resolve(_name("ooo", zone), c.TYPE_A)
        # SOA minimum is 300 (vs the 3600 record TTL): RFC 2308 negative
        # TTL, so the proof dies at t=300 even though the NXT TTL is 3600.
        clock.now = 299.0
        assert resolver.resolve(_name("ppp", zone), c.TYPE_A).from_cache
        clock.now = 300.0
        result = resolver.resolve(_name("qqq", zone), c.TYPE_A)
        assert not result.from_cache


class TestSerialBumpInvalidation:
    def test_zone_change_invalidates_both_caches(self, signed_zone):
        zone, key_record, keypair = signed_zone
        resolver = _resolver(zone, key_record)
        www = _name("www", zone)
        resolver.resolve(www, c.TYPE_A)
        resolver.resolve(_name("nnn", zone), c.TYPE_A)  # caches mmm..ns1
        assert resolver.resolve(www, c.TYPE_A).from_cache
        assert resolver.resolve(_name("naa", zone), c.TYPE_A).from_cache

        # Publish a new zone version: new address, bumped serial, re-sign.
        soa = zone.soa
        zone.put_rrset(
            RRset(
                zone.origin,
                c.TYPE_SOA,
                zone.soa_rrset.ttl,
                [
                    SOA(
                        soa.mname,
                        soa.rname,
                        soa.serial + 1,
                        soa.refresh,
                        soa.retry,
                        soa.expire,
                        soa.minimum,
                    )
                ],
            )
        )
        zone.put_rrset(RRset(www, c.TYPE_A, 3600, [A("192.0.2.99")]))
        dnssec.sign_zone_locally(zone, key_record, keypair.private.sign)

        # Any upstream contact carries the new SOA; observing it drops
        # every old-serial entry in both caches.
        resolver.resolve(_name("qqq", zone), c.TYPE_A)
        assert resolver.stats["serial_bumps"] == 1
        fresh = resolver.resolve(www, c.TYPE_A)
        assert not fresh.from_cache and fresh.verified
        assert [rr.rdata.address for rr in fresh.answers] == ["192.0.2.99"]
        # The old interval proof is gone too: this denial goes upstream.
        assert not resolver.resolve(_name("naa", zone), c.TYPE_A).from_cache


class TestConfigWiring:
    def test_from_config_applies_all_four_knobs(self, signed_zone):
        zone, key_record, _ = signed_zone
        config = ServiceConfig(
            n=1,
            t=0,
            resolver_positive_cache=11,
            resolver_negative_cache=7,
            resolver_max_sig_checks=5,
            resolver_max_key_trials=3,
        )
        resolver = CachingResolver.from_config(
            build_in_memory_tree([zone]),
            config,
            root=zone.origin,
            trusted_keys={zone.origin: key_record},
        )
        assert resolver.positive_cache.max_entries == 11
        assert resolver.negative_cache.max_entries == 7
        assert resolver.budget == ValidationBudget(
            max_sig_checks=5, max_key_trials=3
        )

    def test_budget_rejects_nonpositive_caps(self):
        with pytest.raises(ValueError):
            ValidationBudget(max_sig_checks=0)
        with pytest.raises(ValueError):
            ValidationBudget(max_key_trials=0)


class TestServerDenialProofs:
    """The authoritative side of the contract: denials carry NXT + SIG."""

    def test_nxdomain_authority_carries_soa_and_covering_nxt(self, signed_zone):
        zone, _, _ = signed_zone
        server = AuthoritativeServer(zone)
        response = server.handle_query(
            make_query(_name("nnn", zone), c.TYPE_A)
        )
        assert response.rcode == c.RCODE_NXDOMAIN
        by_type = {}
        for rr in response.authority:
            by_type.setdefault(rr.rtype, []).append(rr)
        assert len(by_type[c.TYPE_SOA]) == 1
        [nxt] = by_type[c.TYPE_NXT]
        # The covering NXT is the canonical predecessor's: mmm -> ns1.
        assert nxt.name == _name("mmm", zone)
        assert nxt.rdata.next_name == _name("ns1", zone)
        covered = {rr.rdata.type_covered for rr in by_type[c.TYPE_SIG]}
        assert covered == {c.TYPE_SOA, c.TYPE_NXT}

    def test_nodata_authority_carries_own_nxt(self, signed_zone):
        zone, _, _ = signed_zone
        server = AuthoritativeServer(zone)
        response = server.handle_query(
            make_query(_name("www", zone), c.TYPE_MX)
        )
        assert response.rcode == c.RCODE_NOERROR and not response.answers
        nxts = [rr for rr in response.authority if rr.rtype == c.TYPE_NXT]
        assert [rr.name for rr in nxts] == [_name("www", zone)]
        assert c.TYPE_MX not in nxts[0].rdata.types
