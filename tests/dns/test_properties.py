"""Property-based tests (hypothesis) on the DNS data structures."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns import constants as c
from repro.dns.message import Message, RR, make_query
from repro.dns.name import Name
from repro.dns.rdata import A, MX, TXT, decode_rdata
from repro.dns.rrset import RRset
from repro.dns.zonefile import parse_zone_text, write_zone_text

# -- strategies -------------------------------------------------------------

labels = st.binary(min_size=1, max_size=20)
names = st.lists(labels, min_size=0, max_size=4).map(Name)
hostnames = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=12),
    min_size=1,
    max_size=3,
).map(lambda parts: Name.from_text(".".join(parts) + ".example.com."))
ipv4 = st.tuples(*(st.integers(0, 255),) * 4).map(
    lambda t: ".".join(str(x) for x in t)
)
a_records = ipv4.map(A)
txt_records = st.lists(
    st.binary(min_size=0, max_size=50), min_size=1, max_size=4
).map(TXT)


class TestNameProperties:
    @given(names)
    def test_wire_roundtrip(self, name):
        decoded, offset = Name.from_wire(name.to_wire())
        assert decoded == name
        assert offset == len(name.to_wire())

    @given(names)
    def test_text_roundtrip(self, name):
        assert Name.from_text(name.to_text()) == name

    @given(names)
    def test_canonical_wire_idempotent_under_case(self, name):
        upper = Name([l.upper() for l in name.labels])
        assert upper.canonical_wire() == name.canonical_wire()
        assert upper == name

    @given(names, names)
    def test_ordering_total_and_consistent(self, a, b):
        assert (a < b) or (b < a) or (a == b)
        if a < b:
            assert not b < a

    @given(names, names)
    def test_concatenation_subdomain(self, prefix, suffix):
        try:
            combined = prefix.concatenate(suffix)
        except Exception:
            return  # length overflow is fine
        assert combined.is_subdomain_of(suffix)


class TestRdataProperties:
    @given(a_records)
    def test_a_wire_roundtrip(self, rdata):
        wire = rdata.to_wire()
        assert decode_rdata(c.TYPE_A, wire, 0, len(wire)) == rdata

    @given(txt_records)
    def test_txt_wire_roundtrip(self, rdata):
        wire = rdata.to_wire()
        assert decode_rdata(c.TYPE_TXT, wire, 0, len(wire)) == rdata

    @given(st.integers(0, 0xFFFF), hostnames)
    def test_mx_wire_roundtrip(self, preference, exchange):
        rdata = MX(preference, exchange)
        wire = rdata.to_wire()
        assert decode_rdata(c.TYPE_MX, wire, 0, len(wire)) == rdata


class TestMessageProperties:
    @given(
        st.integers(0, 0xFFFF),
        hostnames,
        st.lists(st.tuples(hostnames, a_records), max_size=6),
    )
    @settings(max_examples=50)
    def test_message_wire_roundtrip(self, msg_id, qname, answers):
        msg = make_query(qname, c.TYPE_A, msg_id=msg_id)
        msg.set_flag(c.FLAG_QR)
        for owner, rdata in answers:
            msg.answers.append(RR(owner, c.TYPE_A, c.CLASS_IN, 300, rdata))
        decoded = Message.from_wire(msg.to_wire())
        assert decoded.msg_id == msg.msg_id
        assert decoded.questions == msg.questions
        assert decoded.answers == msg.answers

    @given(st.binary(max_size=40))
    def test_arbitrary_bytes_never_crash_decoder(self, data):
        from repro.errors import WireFormatError

        try:
            Message.from_wire(data)
        except WireFormatError:
            pass  # rejection is fine; crashing is not


class TestZoneProperties:
    @given(st.lists(st.tuples(hostnames, a_records), max_size=10))
    @settings(max_examples=40)
    def test_zone_digest_order_independent(self, records):
        base = (
            "$ORIGIN example.com.\n$TTL 300\n"
            "@ IN SOA ns.example.com. a.example.com. 1 2 3 4 5\n"
            "@ IN NS ns\nns IN A 10.0.0.1\n"
        )
        forward = parse_zone_text(base)
        backward = parse_zone_text(base)
        for owner, rdata in records:
            forward.add_rdata(owner, c.TYPE_A, 300, rdata)
        for owner, rdata in reversed(records):
            backward.add_rdata(owner, c.TYPE_A, 300, rdata)
        assert forward.digest() == backward.digest()

    @given(st.lists(st.tuples(hostnames, a_records), min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_zonefile_roundtrip_with_random_records(self, records):
        base = (
            "$ORIGIN example.com.\n$TTL 300\n"
            "@ IN SOA ns.example.com. a.example.com. 1 2 3 4 5\n"
            "@ IN NS ns\nns IN A 10.0.0.1\n"
        )
        zone = parse_zone_text(base)
        for owner, rdata in records:
            zone.add_rdata(owner, c.TYPE_A, 300, rdata)
        reparsed = parse_zone_text(write_zone_text(zone))
        assert reparsed == zone

    @given(st.lists(st.tuples(hostnames, a_records), min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_add_then_delete_restores_digest(self, records):
        base = (
            "$ORIGIN example.com.\n$TTL 300\n"
            "@ IN SOA ns.example.com. a.example.com. 1 2 3 4 5\n"
            "@ IN NS ns\nns IN A 10.0.0.1\n"
        )
        zone = parse_zone_text(base)
        before = zone.digest()
        for owner, rdata in records:
            zone.add_rdata(owner, c.TYPE_A, 300, rdata)
        for owner, _ in records:
            zone.delete_name(owner)
        assert zone.digest() == before


class TestRRsetProperties:
    @given(st.lists(a_records, min_size=1, max_size=8))
    def test_canonical_wire_permutation_invariant(self, rdatas):
        owner = Name.from_text("x.example.com.")
        forward = RRset(owner, c.TYPE_A, 60, rdatas)
        backward = RRset(owner, c.TYPE_A, 60, list(reversed(rdatas)))
        assert forward.canonical_wire() == backward.canonical_wire()
        assert forward == backward
