"""Resolver-tier caches: bounds, TTLs, and covering-interval lookup."""

import pytest

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.negcache import (
    CachedAnswer,
    NxtProof,
    NxtProofCache,
    PositiveAnswerCache,
)
from repro.dns.rdata import NXT

ORIGIN = Name.from_text("example.com.")


def _n(label: str) -> Name:
    return Name((label.encode(),) + ORIGIN.labels)


def _proof(
    owner: Name,
    next_name: Name,
    types=(c.TYPE_A, c.TYPE_SIG, c.TYPE_NXT),
    serial: int = 1,
    expires: float = 100.0,
) -> NxtProof:
    return NxtProof(
        origin=ORIGIN,
        serial=serial,
        owner=owner,
        nxt=NXT(next_name, types),
        authority_rrs=(),
        verified=True,
        expires=expires,
    )


def _answer(serial: int = 1, expires: float = 100.0) -> CachedAnswer:
    return CachedAnswer(
        origin=ORIGIN,
        serial=serial,
        rcode=c.RCODE_NOERROR,
        answer_rrs=(),
        verified=True,
        expires=expires,
    )


class TestPositiveAnswerCache:
    def test_hit_requires_matching_serial(self):
        cache = PositiveAnswerCache()
        cache.store(_n("www"), c.TYPE_A, _answer(serial=7))
        assert cache.lookup(_n("www"), c.TYPE_A, 7, now=0.0) is not None
        # Same name and type under a different serial is a different key:
        # a serial bump makes every stale entry unreachable.
        assert cache.lookup(_n("www"), c.TYPE_A, 8, now=0.0) is None
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_ttl_expiry_uses_injected_clock(self):
        cache = PositiveAnswerCache()
        cache.store(_n("www"), c.TYPE_A, _answer(expires=50.0))
        assert cache.lookup(_n("www"), c.TYPE_A, 1, now=49.9) is not None
        assert cache.lookup(_n("www"), c.TYPE_A, 1, now=50.0) is None
        assert cache.stats["expired"] == 1
        assert len(cache) == 0  # expiry reclaims the slot eagerly

    def test_eviction_is_lru_and_hits_refresh_recency(self):
        cache = PositiveAnswerCache(max_entries=2)
        cache.store(_n("a"), c.TYPE_A, _answer())
        cache.store(_n("b"), c.TYPE_A, _answer())
        # Touch "a" so "b" becomes the oldest entry.
        assert cache.lookup(_n("a"), c.TYPE_A, 1, now=0.0) is not None
        cache.store(_n("d"), c.TYPE_A, _answer())
        assert cache.stats["evictions"] == 1
        assert cache.lookup(_n("b"), c.TYPE_A, 1, now=0.0) is None
        assert cache.lookup(_n("a"), c.TYPE_A, 1, now=0.0) is not None

    def test_invalidate_origin_spares_keep_serial(self):
        cache = PositiveAnswerCache()
        cache.store(_n("old"), c.TYPE_A, _answer(serial=1))
        cache.store(_n("new"), c.TYPE_A, _answer(serial=2))
        dropped = cache.invalidate_origin(ORIGIN, keep_serial=2)
        assert dropped == 1
        assert cache.lookup(_n("old"), c.TYPE_A, 1, now=0.0) is None
        assert cache.lookup(_n("new"), c.TYPE_A, 2, now=0.0) is not None

    def test_flood_never_exceeds_bound(self):
        # KeyTrap hygiene: qnames are attacker-chosen, the bound is not.
        cache = PositiveAnswerCache(max_entries=64)
        for i in range(10_000):
            cache.store(_n(f"flood{i}"), c.TYPE_A, _answer())
        assert len(cache) == 64
        assert cache.stats["evictions"] == 10_000 - 64

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            PositiveAnswerCache(max_entries=0)


class TestNxtProofInterval:
    def test_covers_strict_interior_only(self):
        proof = _proof(_n("alpha"), _n("delta"))
        assert proof.covers(_n("bravo"))
        assert not proof.covers(_n("alpha"))  # owner exists by definition
        assert not proof.covers(_n("delta"))  # so does the successor
        assert not proof.covers(_n("zulu"))

    def test_wraparound_interval_covers_past_the_end(self):
        # The zone's last NXT points back to the apex; it covers every
        # name sorting after its owner.
        proof = _proof(_n("zz"), ORIGIN)
        assert proof.covers(_n("zzz"))
        assert not proof.covers(_n("aaa"))

    def test_denies_type_via_bitmap(self):
        proof = _proof(_n("www"), _n("zzz"))
        assert proof.denies_type(c.TYPE_MX)
        assert not proof.denies_type(c.TYPE_A)


class TestNxtProofCache:
    def test_nxdomain_from_covering_interval(self):
        cache = NxtProofCache()
        cache.store(_proof(_n("alpha"), _n("delta")))
        hit = cache.lookup(ORIGIN, 1, _n("bravo"), c.TYPE_A, now=0.0)
        assert hit is not None and hit[0] == "nxdomain"
        # Outside every cached interval: miss, goes upstream.
        assert cache.lookup(ORIGIN, 1, _n("zulu"), c.TYPE_A, now=0.0) is None

    def test_nodata_at_exact_owner(self):
        cache = NxtProofCache()
        cache.store(_proof(_n("www"), _n("zzz")))
        hit = cache.lookup(ORIGIN, 1, _n("www"), c.TYPE_MX, now=0.0)
        assert hit is not None and hit[0] == "nodata"
        # The bitmap says A exists at www, so nothing can be synthesized.
        assert cache.lookup(ORIGIN, 1, _n("www"), c.TYPE_A, now=0.0) is None

    def test_wraparound_lookup_uses_last_owner(self):
        cache = NxtProofCache()
        cache.store(_proof(_n("alpha"), _n("mike")))
        cache.store(_proof(_n("mike"), ORIGIN))
        hit = cache.lookup(ORIGIN, 1, _n("zulu"), c.TYPE_A, now=0.0)
        assert hit is not None and hit[0] == "nxdomain"
        assert hit[1].owner == _n("mike")

    def test_delegation_cut_blocks_synthesis_below_it(self):
        # An NXT at a zone cut (NS in its bitmap) proves nothing about
        # names below the cut — the authoritative answer is a referral.
        cache = NxtProofCache()
        cache.store(
            _proof(_n("sub"), _n("www"), types=(c.TYPE_NS, c.TYPE_NXT))
        )
        below = Name((b"host",) + _n("sub").labels)
        assert cache.lookup(ORIGIN, 1, below, c.TYPE_A, now=0.0) is None
        # Sibling names beside the cut are still deniable.
        hit = cache.lookup(ORIGIN, 1, _n("tango"), c.TYPE_A, now=0.0)
        assert hit is not None and hit[0] == "nxdomain"

    def test_serial_gates_every_lookup(self):
        cache = NxtProofCache()
        cache.store(_proof(_n("alpha"), _n("delta"), serial=1))
        assert cache.lookup(ORIGIN, 2, _n("bravo"), c.TYPE_A, now=0.0) is None

    def test_expiry_reclaims_and_misses(self):
        cache = NxtProofCache()
        cache.store(_proof(_n("alpha"), _n("delta"), expires=10.0))
        assert cache.lookup(ORIGIN, 1, _n("bravo"), c.TYPE_A, now=10.0) is None
        assert cache.stats["expired"] == 1
        assert len(cache) == 0

    def test_invalidate_origin_spares_keep_serial(self):
        cache = NxtProofCache()
        cache.store(_proof(_n("alpha"), _n("delta"), serial=1))
        cache.store(_proof(_n("alpha"), _n("delta"), serial=2))
        assert cache.invalidate_origin(ORIGIN, keep_serial=2) == 1
        assert cache.lookup(ORIGIN, 2, _n("bravo"), c.TYPE_A, now=0.0) is not None

    def test_flood_never_exceeds_bound(self):
        cache = NxtProofCache(max_entries=32)
        for i in range(5_000):
            cache.store(_proof(_n(f"o{i:04d}"), _n(f"p{i:04d}")))
        assert len(cache) == 32
        assert cache.stats["evictions"] == 5_000 - 32

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            NxtProofCache(max_entries=0)
