"""Zone database semantics."""

import pytest

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import A, CNAME, TXT
from repro.dns.rrset import RRset
from repro.errors import ZoneError

ORIGIN = Name.from_text("example.com.")
WWW = Name.from_text("www.example.com.")
NEW = Name.from_text("new.example.com.")


class TestLookup:
    def test_find_rrset(self, zone):
        rrset = zone.find_rrset(WWW, c.TYPE_A)
        assert rrset is not None and len(rrset) == 2

    def test_missing_returns_none(self, zone):
        assert zone.find_rrset(NEW, c.TYPE_A) is None
        assert zone.find_rrset(WWW, c.TYPE_TXT) is None

    def test_soa_properties(self, zone):
        assert zone.serial == 100
        assert zone.soa.mname == Name.from_text("ns1.example.com.")

    def test_names_canonically_ordered(self, zone):
        names = zone.names()
        assert names == sorted(names)
        assert names[0] == ORIGIN

    def test_counts(self, zone):
        assert zone.rrset_count() >= 10
        assert zone.record_count() > zone.rrset_count()


class TestStructure:
    def test_delegation_detected(self, zone):
        sub = Name.from_text("sub.example.com.")
        assert zone.is_delegation(sub)
        assert not zone.is_delegation(ORIGIN)  # apex NS is not a cut

    def test_closest_delegation(self, zone):
        deep = Name.from_text("host.sub.example.com.")
        assert zone.closest_delegation(deep) == Name.from_text("sub.example.com.")
        assert zone.closest_delegation(WWW) is None

    def test_in_zone(self, zone):
        assert zone.is_in_zone(WWW)
        assert not zone.is_in_zone(Name.from_text("other.org."))


class TestMutation:
    def test_add_new_rrset(self, zone):
        assert zone.add_rdata(NEW, c.TYPE_A, 300, A("192.0.2.9"))
        assert zone.find_rrset(NEW, c.TYPE_A) is not None

    def test_add_duplicate_returns_false(self, zone):
        zone.add_rdata(NEW, c.TYPE_A, 300, A("192.0.2.9"))
        assert not zone.add_rdata(NEW, c.TYPE_A, 300, A("192.0.2.9"))

    def test_new_ttl_wins(self, zone):
        zone.add_rdata(NEW, c.TYPE_A, 300, A("192.0.2.9"))
        assert zone.add_rdata(NEW, c.TYPE_A, 600, A("192.0.2.10"))
        assert zone.find_rrset(NEW, c.TYPE_A).ttl == 600

    def test_cname_replaces_cname(self, zone):
        alias = Name.from_text("alias2.example.com.")
        zone.add_rdata(alias, c.TYPE_CNAME, 300, CNAME(WWW))
        zone.add_rdata(alias, c.TYPE_CNAME, 300, CNAME(NEW))
        rrset = zone.find_rrset(alias, c.TYPE_CNAME)
        assert len(rrset) == 1 and rrset.rdatas[0].target == NEW

    def test_cname_conflict_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_rdata(
                Name.from_text("alias.example.com."), c.TYPE_A, 300, A("1.1.1.1")
            )

    def test_data_at_cname_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.put_rrset(
                RRset(Name.from_text("alias.example.com."), c.TYPE_TXT, 300, [TXT([b"x"])])
            )

    def test_out_of_zone_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_rdata(Name.from_text("other.org."), c.TYPE_A, 300, A("1.1.1.1"))

    def test_delete_rdata(self, zone):
        assert zone.delete_rdata(WWW, c.TYPE_A, A("192.0.2.80"))
        assert len(zone.find_rrset(WWW, c.TYPE_A)) == 1
        assert not zone.delete_rdata(WWW, c.TYPE_A, A("9.9.9.9"))

    def test_delete_last_rdata_removes_node(self, zone):
        txt = Name.from_text("txt.example.com.")
        assert zone.delete_rdata(txt, c.TYPE_TXT, TXT([b"hello world"]))
        assert txt not in zone

    def test_delete_rrset(self, zone):
        assert zone.delete_rrset(WWW, c.TYPE_A)
        assert zone.find_rrset(WWW, c.TYPE_A) is None
        assert not zone.delete_rrset(WWW, c.TYPE_A)

    def test_delete_name_with_keep(self, zone):
        zone.delete_name(ORIGIN, keep_types=(c.TYPE_SOA, c.TYPE_NS))
        assert zone.find_rrset(ORIGIN, c.TYPE_SOA) is not None
        assert zone.find_rrset(ORIGIN, c.TYPE_NS) is not None

    def test_bump_serial(self, zone):
        old = zone.serial
        new = zone.bump_serial()
        assert new == old + 1 and zone.serial == new

    def test_serial_wraps(self, zone):
        soa = zone.soa.with_serial(0xFFFFFFFF)
        zone.put_rrset(RRset(ORIGIN, c.TYPE_SOA, 3600, [soa]))
        assert zone.bump_serial() == 1


class TestSnapshots:
    def test_copy_isolated(self, zone):
        clone = zone.copy()
        clone.add_rdata(NEW, c.TYPE_A, 300, A("192.0.2.9"))
        assert NEW not in zone
        assert NEW in clone

    def test_digest_reflects_content(self, zone):
        before = zone.digest()
        zone.add_rdata(NEW, c.TYPE_A, 300, A("192.0.2.9"))
        after = zone.digest()
        assert before != after
        zone.delete_name(NEW)
        assert zone.digest() == before

    def test_digest_case_insensitive(self, zone):
        clone = zone.copy()
        clone.add_rdata(Name.from_text("CASE.example.com."), c.TYPE_A, 300, A("1.1.1.1"))
        zone.add_rdata(Name.from_text("case.EXAMPLE.com."), c.TYPE_A, 300, A("1.1.1.1"))
        assert clone.digest() == zone.digest()

    def test_equality(self, zone):
        assert zone == zone.copy()
        clone = zone.copy()
        clone.bump_serial()
        assert zone != clone
