"""Master-file parsing and writing."""

import pytest

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.zonefile import parse_zone_text, write_zone_text
from repro.errors import ZoneFileError

from tests.conftest import ZONE_TEXT


class TestParsing:
    def test_basic_zone(self, zone):
        assert zone.origin == Name.from_text("example.com.")
        assert zone.serial == 100

    def test_origin_directive_applied(self):
        text = """
$ORIGIN test.org.
$TTL 60
@ IN SOA ns.test.org. admin.test.org. 1 2 3 4 5
  IN NS ns
ns IN A 10.0.0.1
"""
        zone = parse_zone_text(text)
        assert zone.origin == Name.from_text("test.org.")
        assert zone.find_rrset(Name.from_text("ns.test.org."), c.TYPE_A)

    def test_default_ttl(self):
        text = "$ORIGIN x.\n$TTL 1234\n@ IN SOA ns.x. a.x. 1 2 3 4 5\n@ IN NS ns.x.\n"
        zone = parse_zone_text(text)
        assert zone.find_rrset(Name.from_text("x."), c.TYPE_NS).ttl == 1234

    def test_explicit_ttl_overrides(self):
        text = "$ORIGIN x.\n@ 99 IN SOA ns.x. a.x. 1 2 3 4 5\n@ 55 IN NS ns.x.\n"
        zone = parse_zone_text(text)
        assert zone.find_rrset(Name.from_text("x."), c.TYPE_NS).ttl == 55

    def test_blank_owner_inherits(self, zone):
        # The conftest zone uses blank owners after "@".
        ns = zone.find_rrset(zone.origin, c.TYPE_NS)
        assert ns is not None and len(ns) == 2

    def test_comments_stripped(self):
        text = (
            "$ORIGIN x.  ; the origin\n"
            "@ IN SOA ns.x. a.x. 1 2 3 4 5 ; soa\n"
            "w IN TXT \"semi;colon\" ; comment after quoted string\n"
        )
        zone = parse_zone_text(text)
        txt = zone.find_rrset(Name.from_text("w.x."), c.TYPE_TXT)
        assert txt.rdatas[0].strings == (b"semi;colon",)

    def test_parentheses_multiline(self):
        text = """
$ORIGIN x.
@ IN SOA ns.x. a.x. (
      42  ; serial
      7200 900
      604800 300 )
"""
        zone = parse_zone_text(text)
        assert zone.serial == 42

    def test_missing_soa_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$ORIGIN x.\nw IN A 1.1.1.1\n")

    def test_duplicate_soa_rejected(self):
        text = (
            "$ORIGIN x.\n@ IN SOA ns.x. a.x. 1 2 3 4 5\n"
            "@ IN SOA ns.x. a.x. 9 2 3 4 5\n"
        )
        with pytest.raises(ZoneFileError):
            parse_zone_text(text)

    def test_unknown_directive_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$GENERATE 1-10 host$ A 1.1.1.$\n")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$ORIGIN x.\n@ IN SOA ns.x. a.x. ( 1 2 3 4 5\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$ORIGIN x.\n@ IN SOA ns.x. a.x. 1 2 3 4 5\nw IN BOGUS data\n")

    def test_non_in_class_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$ORIGIN x.\n@ CH SOA ns.x. a.x. 1 2 3 4 5\n")

    def test_origin_mismatch_rejected(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text(ZONE_TEXT, origin=Name.from_text("other.org."))


class TestRoundTrip:
    def test_write_then_parse_equal(self, zone):
        text = write_zone_text(zone)
        reparsed = parse_zone_text(text)
        assert reparsed == zone

    def test_soa_first_in_output(self, zone):
        lines = write_zone_text(zone).splitlines()
        record_lines = [l for l in lines if not l.startswith("$")]
        assert " SOA " in record_lines[0]
