"""Iterative resolution across a delegation tree."""

import pytest

from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.name import Name
from repro.dns.rdata import KEY
from repro.dns.resolver import (
    IterativeResolver,
    ResolutionError,
    build_in_memory_tree,
)
from repro.dns.zonefile import parse_zone_text
from repro.crypto.rsa import generate_rsa_keypair

ROOT = """
$ORIGIN .
$TTL 86400
. IN SOA a.root. admin.root. 1 2 3 4 5
. IN NS a.root.
a.root. IN A 198.41.0.4
com. IN NS a.gtld.com.
a.gtld.com. IN A 192.5.6.30
"""

COM = """
$ORIGIN com.
$TTL 86400
@ IN SOA a.gtld.com. admin.com. 1 2 3 4 5
  IN NS a.gtld.com.
a.gtld IN A 192.5.6.30
example IN NS ns1.example.com.
ns1.example IN A 192.0.2.1
"""

EXAMPLE = """
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1.example.com. admin.example.com. 1 2 3 4 5
  IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
alias IN CNAME www
extalias IN CNAME a.root.
"""


@pytest.fixture(scope="module")
def tree():
    zones = [parse_zone_text(text) for text in (ROOT, COM, EXAMPLE)]
    return zones, build_in_memory_tree(zones)


class TestIterativeResolution:
    def test_resolves_through_two_referrals(self, tree):
        _, query = tree
        resolver = IterativeResolver(query)
        result = resolver.resolve(Name.from_text("www.example.com."), c.TYPE_A)
        assert result.ok
        assert result.referrals_followed == 2  # root -> com -> example.com
        assert result.zone_origin == Name.from_text("example.com.")
        addresses = {rr.rdata.address for rr in result.answers}
        assert addresses == {"192.0.2.80"}

    def test_nxdomain_at_leaf_zone(self, tree):
        _, query = tree
        resolver = IterativeResolver(query)
        result = resolver.resolve(Name.from_text("nope.example.com."), c.TYPE_A)
        assert result.rcode == c.RCODE_NXDOMAIN
        assert result.zone_origin == Name.from_text("example.com.")

    def test_in_zone_cname_chased_by_server(self, tree):
        _, query = tree
        resolver = IterativeResolver(query)
        result = resolver.resolve(Name.from_text("alias.example.com."), c.TYPE_A)
        assert result.ok
        types = {rr.rtype for rr in result.answers}
        assert types == {c.TYPE_CNAME, c.TYPE_A}
        # The authoritative server chased it inside the zone already.
        assert result.cnames_followed == 0

    def test_cross_zone_cname_chased_by_resolver(self, tree):
        _, query = tree
        resolver = IterativeResolver(query)
        result = resolver.resolve(Name.from_text("extalias.example.com."), c.TYPE_A)
        assert result.ok
        assert result.cnames_followed >= 1
        addresses = {
            rr.rdata.address for rr in result.answers if rr.rtype == c.TYPE_A
        }
        assert addresses == {"198.41.0.4"}  # a.root. resolved in the root zone

    def test_answer_within_root_zone(self, tree):
        _, query = tree
        resolver = IterativeResolver(query)
        result = resolver.resolve(Name.from_text("a.root."), c.TYPE_A)
        assert result.ok and result.referrals_followed == 0

    def test_referral_limit(self):
        from repro.dns.message import RR, make_response
        from repro.dns.rdata import NS

        def evil_query(zone_origin, message):
            # Always refer one label deeper — an endless delegation chain.
            deeper = Name((b"x",) + zone_origin.labels)
            response = make_response(message)
            response.authority.append(
                RR(deeper, c.TYPE_NS, c.CLASS_IN, 60, NS(deeper))
            )
            return response

        resolver = IterativeResolver(evil_query)
        with pytest.raises(ResolutionError):
            resolver.resolve(Name.from_text("target.example."), c.TYPE_A)

    def test_bogus_upward_referral_rejected(self, tree):
        from repro.dns.message import RR, make_response
        from repro.dns.rdata import NS

        def lying_query(zone_origin, message):
            response = make_response(message)
            response.authority.append(
                RR(Name.from_text("."), c.TYPE_NS, c.CLASS_IN, 60,
                   NS(Name.from_text("a.root.")))
            )
            return response

        resolver = IterativeResolver(lying_query)
        with pytest.raises(ResolutionError):
            resolver.resolve(Name.from_text("www.example.com."), c.TYPE_A)


class TestDnssecValidation:
    @pytest.fixture(scope="class")
    def signed_tree(self):
        keypair = generate_rsa_keypair(512)
        zone = parse_zone_text(EXAMPLE)
        key_record = KEY.for_rsa(keypair.public.modulus, keypair.public.exponent)
        zone.add_rdata(zone.origin, c.TYPE_KEY, 3600, key_record)
        dnssec.sign_zone_locally(zone, key_record, keypair.private.sign)
        zones = [parse_zone_text(ROOT), parse_zone_text(COM), zone]
        return zones, build_in_memory_tree(zones), key_record

    def test_signed_answer_verifies_with_trusted_key(self, signed_tree):
        zones, query, key_record = signed_tree
        resolver = IterativeResolver(
            query,
            trusted_keys={Name.from_text("example.com."): key_record},
        )
        result = resolver.resolve(Name.from_text("www.example.com."), c.TYPE_A)
        assert result.ok and result.verified

    def test_unconfigured_key_means_unverified(self, signed_tree):
        zones, query, _ = signed_tree
        resolver = IterativeResolver(query)
        result = resolver.resolve(Name.from_text("www.example.com."), c.TYPE_A)
        assert result.ok and not result.verified

    def test_wrong_trust_anchor_fails_verification(self, signed_tree):
        zones, query, _ = signed_tree
        other = generate_rsa_keypair(512)
        wrong_key = KEY.for_rsa(other.public.modulus, other.public.exponent)
        resolver = IterativeResolver(
            query, trusted_keys={Name.from_text("example.com."): wrong_key}
        )
        result = resolver.resolve(Name.from_text("www.example.com."), c.TYPE_A)
        assert result.ok and not result.verified
