"""DNSSEC zone signing, NXT chain, and the 4-vs-2 signature pattern."""

import pytest

from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.dnssec import SigningPolicy
from repro.dns.message import RR, make_update
from repro.dns.name import Name
from repro.dns.rdata import A, KEY
from repro.dns.update import UpdateProcessor
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import DnssecError

ORIGIN = Name.from_text("example.com.")
NEW = Name.from_text("new.example.com.")


@pytest.fixture(scope="module")
def rsa_key():
    return generate_rsa_keypair(512)


@pytest.fixture()
def signed_zone(zone, rsa_key):
    key_record = KEY.for_rsa(rsa_key.public.modulus, rsa_key.public.exponent)
    zone.add_rdata(ORIGIN, c.TYPE_KEY, 3600, key_record)
    dnssec.sign_zone_locally(zone, key_record, rsa_key.private.sign)
    return zone, key_record


class TestZoneSigning:
    def test_every_rrset_covered(self, signed_zone):
        zone, key_record = signed_zone
        count = dnssec.verify_zone(zone, key_record)
        assert count > 0
        for name in zone.names():
            non_sig = [r for r in zone.rrsets_at(name) if r.rtype != c.TYPE_SIG]
            sigs = zone.find_rrset(name, c.TYPE_SIG)
            if non_sig:
                assert sigs is not None
                covered = {s.type_covered for s in sigs}
                assert covered == {r.rtype for r in non_sig}

    def test_tampered_record_fails_verification(self, signed_zone, rsa_key):
        zone, key_record = signed_zone
        www = Name.from_text("www.example.com.")
        zone.add_rdata(www, c.TYPE_A, 3600, A("6.6.6.6"))
        with pytest.raises(DnssecError):
            dnssec.verify_zone(zone, key_record)

    def test_signing_is_deterministic(self, zone, rsa_key):
        key_record = KEY.for_rsa(rsa_key.public.modulus, rsa_key.public.exponent)
        zone.add_rdata(ORIGIN, c.TYPE_KEY, 3600, key_record)
        a = zone.copy()
        b = zone.copy()
        dnssec.sign_zone_locally(a, key_record, rsa_key.private.sign)
        dnssec.sign_zone_locally(b, key_record, rsa_key.private.sign)
        assert a.digest() == b.digest()


class TestNxtChain:
    def test_chain_is_closed_cycle(self, signed_zone):
        zone, _ = signed_zone
        names_with_nxt = [
            name for name in zone.names() if zone.find_rrset(name, c.TYPE_NXT)
        ]
        successors = set()
        for name in names_with_nxt:
            nxt = zone.find_rrset(name, c.TYPE_NXT).rdatas[0]
            successors.add(nxt.next_name)
        assert successors == set(names_with_nxt)  # a permutation = one cycle

    def test_chain_follows_canonical_order(self, signed_zone):
        zone, _ = signed_zone
        names = [n for n in zone.names() if zone.find_rrset(n, c.TYPE_NXT)]
        for i, name in enumerate(names):
            nxt = zone.find_rrset(name, c.TYPE_NXT).rdatas[0]
            assert nxt.next_name == names[(i + 1) % len(names)]

    def test_bitmap_lists_types_at_owner(self, signed_zone):
        zone, _ = signed_zone
        www = Name.from_text("www.example.com.")
        nxt = zone.find_rrset(www, c.TYPE_NXT).rdatas[0]
        assert c.TYPE_A in nxt.types
        assert c.TYPE_NXT in nxt.types and c.TYPE_SIG in nxt.types

    def test_rebuild_idempotent(self, signed_zone):
        zone, _ = signed_zone
        assert dnssec.rebuild_nxt_chain(zone) == set()


class TestUpdateSigningPattern:
    """The 4-SIGs-per-add / 2-SIGs-per-delete pattern of §5.2."""

    def _update(self, zone, rr):
        msg = make_update(ORIGIN)
        msg.authority.append(rr)
        return UpdateProcessor(zone).apply(msg)

    def test_add_new_name_signs_four(self, signed_zone):
        zone, key_record = signed_zone
        result = self._update(zone, RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9")))
        tasks = dnssec.signing_tasks_for_update(zone, result, key_record)
        assert len(tasks) == 4
        kinds = [(t.name, t.rtype) for t in tasks]
        assert (NEW, c.TYPE_A) in kinds
        assert (NEW, c.TYPE_NXT) in kinds
        assert (ORIGIN, c.TYPE_SOA) in kinds

    def test_delete_name_signs_two(self, signed_zone, rsa_key):
        zone, key_record = signed_zone
        result = self._update(zone, RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9")))
        for task in dnssec.signing_tasks_for_update(zone, result, key_record):
            dnssec.attach_signature(zone, task, rsa_key.private.sign(task.data))
        result = self._update(zone, RR(NEW, c.TYPE_ANY, c.CLASS_ANY, 0, None))
        tasks = dnssec.signing_tasks_for_update(zone, result, key_record)
        assert len(tasks) == 2
        assert tasks[-1].rtype == c.TYPE_SOA

    def test_zone_verifies_after_signed_update(self, signed_zone, rsa_key):
        zone, key_record = signed_zone
        result = self._update(zone, RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9")))
        count = dnssec.resign_after_update_locally(
            zone, result, key_record, rsa_key.private.sign
        )
        assert count == 4
        dnssec.verify_zone(zone, key_record)

    def test_noop_update_signs_nothing(self, signed_zone):
        zone, key_record = signed_zone
        result = self._update(
            zone, RR(Name.from_text("missing.example.com."), c.TYPE_ANY, c.CLASS_ANY, 0, None)
        )
        assert dnssec.signing_tasks_for_update(zone, result, key_record) == []

    def test_task_ids_deterministic_across_replicas(self, signed_zone):
        zone, key_record = signed_zone
        replica_a = zone.copy()
        replica_b = zone.copy()
        rr = RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9"))
        result_a = self._update(replica_a, rr)
        result_b = self._update(replica_b, rr)
        tasks_a = dnssec.signing_tasks_for_update(replica_a, result_a, key_record)
        tasks_b = dnssec.signing_tasks_for_update(replica_b, result_b, key_record)
        assert [t.sign_id for t in tasks_a] == [t.sign_id for t in tasks_b]
        assert [t.data for t in tasks_a] == [t.data for t in tasks_b]


class TestVerification:
    def test_wrong_key_tag_rejected(self, signed_zone):
        zone, key_record = signed_zone
        wrong = KEY.for_rsa(key_record.rsa_parameters()[0] + 2, 65537)
        with pytest.raises(DnssecError):
            dnssec.verify_zone(zone, wrong)

    def test_validity_window(self, signed_zone, rsa_key):
        zone, key_record = signed_zone
        policy = SigningPolicy()
        inception = policy.inception(zone.serial)
        dnssec.verify_zone(zone, key_record, now=inception + 10)
        with pytest.raises(DnssecError):
            dnssec.verify_zone(zone, key_record, now=inception - 10)

    def test_policy_determinism(self):
        policy = SigningPolicy(inception_base=500, validity=100)
        assert policy.inception(7) == 507
        assert policy.expiration(7) == 607
