"""RFC 2136 dynamic update processing."""

from repro.dns import constants as c
from repro.dns.message import RR, make_update
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.dns.update import UpdateProcessor

ORIGIN = Name.from_text("example.com.")
WWW = Name.from_text("www.example.com.")
NEW = Name.from_text("new.example.com.")


def apply(zone, *, prereqs=(), updates=()):
    msg = make_update(ORIGIN)
    msg.answers.extend(prereqs)
    msg.authority.extend(updates)
    return UpdateProcessor(zone).apply(msg)


class TestScreening:
    def test_wrong_zone_notauth(self, zone):
        msg = make_update(Name.from_text("other.org."))
        result = UpdateProcessor(zone).apply(msg)
        assert result.rcode == c.RCODE_NOTAUTH

    def test_wrong_opcode(self, zone):
        from repro.dns.message import make_query

        result = UpdateProcessor(zone).apply(make_query(WWW, c.TYPE_A))
        assert result.rcode == c.RCODE_FORMERR

    def test_zone_section_type_must_be_soa(self, zone):
        msg = make_update(ORIGIN)
        from repro.dns.message import Question

        msg.questions[0] = Question(ORIGIN, c.TYPE_A, c.CLASS_IN)
        result = UpdateProcessor(zone).apply(msg)
        assert result.rcode == c.RCODE_FORMERR


class TestPrerequisites:
    def test_name_in_use_ok(self, zone):
        result = apply(zone, prereqs=[RR(WWW, c.TYPE_ANY, c.CLASS_ANY, 0, None)])
        assert result.ok

    def test_name_in_use_fails(self, zone):
        result = apply(zone, prereqs=[RR(NEW, c.TYPE_ANY, c.CLASS_ANY, 0, None)])
        assert result.rcode == c.RCODE_NXDOMAIN

    def test_rrset_exists_ok(self, zone):
        result = apply(zone, prereqs=[RR(WWW, c.TYPE_A, c.CLASS_ANY, 0, None)])
        assert result.ok

    def test_rrset_exists_fails(self, zone):
        result = apply(zone, prereqs=[RR(WWW, c.TYPE_TXT, c.CLASS_ANY, 0, None)])
        assert result.rcode == c.RCODE_NXRRSET

    def test_name_not_in_use_ok(self, zone):
        result = apply(zone, prereqs=[RR(NEW, c.TYPE_ANY, c.CLASS_NONE, 0, None)])
        assert result.ok

    def test_name_not_in_use_fails(self, zone):
        result = apply(zone, prereqs=[RR(WWW, c.TYPE_ANY, c.CLASS_NONE, 0, None)])
        assert result.rcode == c.RCODE_YXDOMAIN

    def test_rrset_not_exists_fails(self, zone):
        result = apply(zone, prereqs=[RR(WWW, c.TYPE_A, c.CLASS_NONE, 0, None)])
        assert result.rcode == c.RCODE_YXRRSET

    def test_value_dependent_match(self, zone):
        prereqs = [
            RR(WWW, c.TYPE_A, c.CLASS_IN, 0, A("192.0.2.80")),
            RR(WWW, c.TYPE_A, c.CLASS_IN, 0, A("192.0.2.81")),
        ]
        assert apply(zone, prereqs=prereqs).ok

    def test_value_dependent_partial_set_fails(self, zone):
        prereqs = [RR(WWW, c.TYPE_A, c.CLASS_IN, 0, A("192.0.2.80"))]
        assert apply(zone, prereqs=prereqs).rcode == c.RCODE_NXRRSET

    def test_nonzero_ttl_formerr(self, zone):
        result = apply(zone, prereqs=[RR(WWW, c.TYPE_ANY, c.CLASS_ANY, 5, None)])
        assert result.rcode == c.RCODE_FORMERR

    def test_any_with_rdata_formerr(self, zone):
        result = apply(
            zone, prereqs=[RR(WWW, c.TYPE_A, c.CLASS_ANY, 0, A("1.1.1.1"))]
        )
        assert result.rcode == c.RCODE_FORMERR


class TestAdds:
    def test_add_new_name(self, zone):
        result = apply(zone, updates=[RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9"))])
        assert result.ok and NEW in result.added_names
        assert zone.find_rrset(NEW, c.TYPE_A) is not None
        assert result.serial_bumped and zone.serial == 101

    def test_add_to_existing_rrset(self, zone):
        result = apply(zone, updates=[RR(WWW, c.TYPE_A, c.CLASS_IN, 3600, A("192.0.2.82"))])
        assert result.ok and WWW in result.changed_names
        assert len(zone.find_rrset(WWW, c.TYPE_A)) == 3

    def test_duplicate_add_is_noop(self, zone):
        result = apply(zone, updates=[RR(WWW, c.TYPE_A, c.CLASS_IN, 3600, A("192.0.2.80"))])
        assert result.ok and not result.data_changed
        assert not result.serial_bumped

    def test_add_sig_refused(self, zone):
        from repro.dns.rdata import SIG

        sig = SIG(c.TYPE_A, 5, 3, 300, 10, 5, 1, ORIGIN, b"x")
        result = apply(zone, updates=[RR(WWW, c.TYPE_SIG, c.CLASS_IN, 300, sig)])
        assert result.rcode == c.RCODE_REFUSED

    def test_soa_add_with_older_serial_ignored(self, zone):
        old = zone.soa.with_serial(50)
        result = apply(zone, updates=[RR(ORIGIN, c.TYPE_SOA, c.CLASS_IN, 3600, old)])
        assert result.ok and zone.serial == 100

    def test_soa_add_with_newer_serial_applies(self, zone):
        new = zone.soa.with_serial(500)
        result = apply(zone, updates=[RR(ORIGIN, c.TYPE_SOA, c.CLASS_IN, 3600, new)])
        assert result.ok
        assert zone.serial == 501  # 500 then bumped

    def test_cname_conflict_silently_ignored(self, zone):
        alias = Name.from_text("alias.example.com.")
        result = apply(zone, updates=[RR(alias, c.TYPE_A, c.CLASS_IN, 300, A("1.1.1.1"))])
        assert result.ok
        assert zone.find_rrset(alias, c.TYPE_A) is None


class TestDeletes:
    def test_delete_specific_rr(self, zone):
        result = apply(
            zone, updates=[RR(WWW, c.TYPE_A, c.CLASS_NONE, 0, A("192.0.2.80"))]
        )
        assert result.ok and WWW in result.changed_names
        assert len(zone.find_rrset(WWW, c.TYPE_A)) == 1

    def test_delete_rrset(self, zone):
        result = apply(zone, updates=[RR(WWW, c.TYPE_A, c.CLASS_ANY, 0, None)])
        assert result.ok
        assert zone.find_rrset(WWW, c.TYPE_A) is None

    def test_delete_all_at_name(self, zone):
        result = apply(zone, updates=[RR(WWW, c.TYPE_ANY, c.CLASS_ANY, 0, None)])
        assert result.ok and WWW in result.deleted_names
        assert WWW not in zone

    def test_apex_soa_delete_ignored(self, zone):
        result = apply(zone, updates=[RR(ORIGIN, c.TYPE_SOA, c.CLASS_ANY, 0, None)])
        assert result.ok
        assert zone.find_rrset(ORIGIN, c.TYPE_SOA) is not None

    def test_apex_delete_all_keeps_soa_ns(self, zone):
        result = apply(zone, updates=[RR(ORIGIN, c.TYPE_ANY, c.CLASS_ANY, 0, None)])
        assert result.ok
        assert zone.find_rrset(ORIGIN, c.TYPE_SOA) is not None
        assert zone.find_rrset(ORIGIN, c.TYPE_NS) is not None

    def test_last_apex_ns_protected(self, zone):
        ns = zone.find_rrset(ORIGIN, c.TYPE_NS)
        updates = [
            RR(ORIGIN, c.TYPE_NS, c.CLASS_NONE, 0, rdata) for rdata in ns
        ]
        result = apply(zone, updates=updates)
        assert result.ok
        remaining = zone.find_rrset(ORIGIN, c.TYPE_NS)
        assert remaining is not None and len(remaining) == 1

    def test_delete_missing_is_noop(self, zone):
        result = apply(zone, updates=[RR(NEW, c.TYPE_ANY, c.CLASS_ANY, 0, None)])
        assert result.ok and not result.data_changed

    def test_delete_rr_nonzero_ttl_formerr(self, zone):
        result = apply(
            zone, updates=[RR(WWW, c.TYPE_A, c.CLASS_NONE, 60, A("192.0.2.80"))]
        )
        assert result.rcode == c.RCODE_FORMERR


class TestAtomicity:
    def test_failed_prereq_leaves_zone_untouched(self, zone):
        digest = zone.digest()
        result = apply(
            zone,
            prereqs=[RR(NEW, c.TYPE_ANY, c.CLASS_ANY, 0, None)],
            updates=[RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9"))],
        )
        assert not result.ok
        assert zone.digest() == digest

    def test_failed_update_section_rolls_back(self, zone):
        digest = zone.digest()
        result = apply(
            zone,
            updates=[
                RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9")),
                RR(NEW, c.TYPE_A, c.CLASS_IN, 5, None),  # malformed: add w/o rdata
            ],
        )
        assert result.rcode == c.RCODE_FORMERR
        assert zone.digest() == digest

    def test_out_of_zone_update_rejected(self, zone):
        result = apply(
            zone,
            updates=[RR(Name.from_text("w.other.org."), c.TYPE_A, c.CLASS_IN, 1, A("1.1.1.1"))],
        )
        assert result.rcode == c.RCODE_NOTZONE


class TestResponse:
    def test_respond_builds_message(self, zone):
        msg = make_update(ORIGIN)
        msg.authority.append(RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9")))
        response, result = UpdateProcessor(zone).respond(msg)
        assert response.is_response
        assert response.msg_id == msg.msg_id
        assert response.rcode == c.RCODE_NOERROR
