"""Rdata types: text/wire round trips and canonical forms."""

import pytest

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import (
    A,
    AAAA,
    CNAME,
    KEY,
    MX,
    NS,
    NXT,
    SIG,
    SOA,
    TXT,
    GenericRdata,
    decode_rdata,
    rdata_from_text,
)
from repro.errors import WireFormatError, ZoneFileError

ORIGIN = Name.from_text("example.com.")


def roundtrip_wire(rdata):
    wire = rdata.to_wire()
    return decode_rdata(rdata.rtype, wire, 0, len(wire))


def roundtrip_text(rdata):
    # Tokenize like the zone-file parser (quote-aware, not naive split).
    from repro.dns.zonefile import _TOKEN_RE

    tokens = _TOKEN_RE.findall(rdata.to_text())
    return rdata_from_text(rdata.rtype, tokens, ORIGIN)


class TestA:
    def test_roundtrips(self):
        a = A("192.0.2.80")
        assert roundtrip_wire(a) == a
        assert roundtrip_text(a) == a
        assert a.to_wire() == bytes([192, 0, 2, 80])

    def test_bad_address(self):
        for bad in ("1.2.3", "1.2.3.256", "a.b.c.d", "1.2.3.4.5"):
            with pytest.raises(ZoneFileError):
                A(bad)

    def test_wrong_length_wire(self):
        with pytest.raises(WireFormatError):
            decode_rdata(c.TYPE_A, b"\x01\x02\x03", 0, 3)


class TestAAAA:
    def test_full_form(self):
        a = AAAA("2001:db8:0:0:0:0:0:1")
        assert roundtrip_wire(a) == a

    def test_compressed_form(self):
        assert AAAA("2001:db8::1") == AAAA("2001:0db8:0:0:0:0:0:0001")

    def test_text_roundtrip(self):
        a = AAAA("2001:db8::1")
        assert roundtrip_text(a) == a

    def test_bad_addresses(self):
        for bad in ("2001:db8", "1:2:3:4:5:6:7:8:9", "::x"):
            with pytest.raises(ZoneFileError):
                AAAA(bad)


class TestNameTypes:
    @pytest.mark.parametrize("cls", [NS, CNAME])
    def test_roundtrips(self, cls):
        rdata = cls(Name.from_text("ns1.example.com."))
        assert roundtrip_wire(rdata) == rdata
        assert roundtrip_text(rdata) == rdata

    def test_canonical_lowercases(self):
        upper = NS(Name.from_text("NS1.EXAMPLE.COM."))
        lower = NS(Name.from_text("ns1.example.com."))
        assert upper.canonical_wire() == lower.canonical_wire()
        assert upper == lower  # identity is canonical


class TestMX:
    def test_roundtrips(self):
        mx = MX(10, Name.from_text("mx1.example.com."))
        assert roundtrip_wire(mx) == mx
        assert roundtrip_text(mx) == mx

    def test_preference_range(self):
        with pytest.raises(ZoneFileError):
            MX(70000, Name.from_text("mx.example.com."))


class TestTXT:
    def test_multiple_strings(self):
        txt = TXT([b"hello", b"world"])
        assert roundtrip_wire(txt) == txt

    def test_text_quoting(self):
        txt = TXT([b'with "quotes"'])
        assert roundtrip_text(txt) == txt

    def test_too_long_string(self):
        with pytest.raises(ZoneFileError):
            TXT([b"x" * 256])

    def test_empty_rejected(self):
        with pytest.raises(ZoneFileError):
            TXT([])


class TestSOA:
    def test_roundtrips(self):
        soa = SOA(
            Name.from_text("ns1.example.com."),
            Name.from_text("admin.example.com."),
            100, 7200, 900, 604800, 300,
        )
        assert roundtrip_wire(soa) == soa
        assert roundtrip_text(soa) == soa

    def test_with_serial(self):
        soa = SOA(
            Name.from_text("ns1.example.com."),
            Name.from_text("admin.example.com."),
            100, 7200, 900, 604800, 300,
        )
        bumped = soa.with_serial(101)
        assert bumped.serial == 101 and bumped.refresh == soa.refresh

    def test_field_range(self):
        with pytest.raises(ZoneFileError):
            SOA(ORIGIN, ORIGIN, 2**32, 0, 0, 0, 0)


class TestKEY:
    def test_rsa_roundtrip(self):
        key = KEY.for_rsa(modulus=(1 << 511) + 12345, exponent=65537)
        modulus, exponent = key.rsa_parameters()
        assert modulus == (1 << 511) + 12345 and exponent == 65537
        assert roundtrip_wire(key) == key
        assert roundtrip_text(key) == key

    def test_long_exponent_form(self):
        key = KEY.for_rsa(modulus=1 << 300, exponent=1 << 2050)
        modulus, exponent = key.rsa_parameters()
        assert exponent == 1 << 2050

    def test_key_tag_stable(self):
        key = KEY.for_rsa(modulus=(1 << 511) + 9, exponent=65537)
        assert 0 <= key.key_tag() <= 0xFFFF
        assert key.key_tag() == key.key_tag()

    def test_zone_key_flags(self):
        key = KEY.for_rsa(modulus=1 << 500, exponent=3)
        assert key.flags == KEY.ZONE_KEY_FLAGS
        assert key.algorithm == c.ALG_RSASHA1


class TestSIG:
    def _sig(self):
        return SIG(
            type_covered=c.TYPE_A,
            algorithm=c.ALG_RSASHA1,
            labels=3,
            original_ttl=3600,
            expiration=1_003_600,
            inception=1_000_000,
            key_tag=12345,
            signer=ORIGIN,
            signature=b"\x01" * 64,
        )

    def test_roundtrips(self):
        sig = self._sig()
        assert roundtrip_wire(sig) == sig
        assert roundtrip_text(sig) == sig

    def test_header_excludes_signature(self):
        sig = self._sig()
        header = sig.header_wire()
        assert b"\x01" * 64 not in header
        assert sig.canonical_wire() == header + sig.signature

    def test_truncated_wire(self):
        with pytest.raises(WireFormatError):
            decode_rdata(c.TYPE_SIG, b"\x00\x01", 0, 2)


class TestNXT:
    def test_roundtrips(self):
        nxt = NXT(Name.from_text("b.example.com."), [c.TYPE_A, c.TYPE_NXT, c.TYPE_SIG])
        assert roundtrip_wire(nxt) == nxt
        assert roundtrip_text(nxt) == nxt

    def test_bitmap_contents(self):
        nxt = NXT(ORIGIN, [c.TYPE_A, c.TYPE_SOA])
        decoded = roundtrip_wire(nxt)
        assert decoded.types == (c.TYPE_A, c.TYPE_SOA)

    def test_type_out_of_bitmap_range(self):
        with pytest.raises(ZoneFileError):
            NXT(ORIGIN, [200])


class TestGeneric:
    def test_unknown_type_roundtrip(self):
        data = b"\xde\xad\xbe\xef"
        rdata = decode_rdata(999, data, 0, len(data))
        assert isinstance(rdata, GenericRdata)
        assert rdata.to_wire() == data
        assert rdata.rtype == 999

    def test_generic_text_form(self):
        rdata = rdata_from_text(999, ["\\#", "2", "abcd"], None)
        assert rdata.to_wire() == bytes.fromhex("abcd")

    def test_generic_length_mismatch(self):
        with pytest.raises(ZoneFileError):
            rdata_from_text(999, ["\\#", "3", "abcd"], None)


class TestOrderingAndEquality:
    def test_rdata_sorted_by_canonical_wire(self):
        records = [A("192.0.2.9"), A("192.0.2.1"), A("10.0.0.1")]
        ordered = sorted(records)
        assert [r.address for r in ordered] == ["10.0.0.1", "192.0.2.1", "192.0.2.9"]

    def test_cross_type_inequality(self):
        assert A("1.2.3.4") != TXT([b"1.2.3.4"])

    def test_hashable(self):
        assert len({A("1.1.1.1"), A("1.1.1.1"), A("2.2.2.2")}) == 2
