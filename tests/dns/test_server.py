"""Authoritative query engine."""

from repro.dns import constants as c
from repro.dns.message import make_query
from repro.dns.name import Name
from repro.dns.server import AuthoritativeServer


def ask(zone, text, rtype=c.TYPE_A, **kwargs):
    server = AuthoritativeServer(zone, **kwargs)
    return server.handle_query(make_query(Name.from_text(text), rtype))


class TestPositiveAnswers:
    def test_exact_match(self, zone):
        response = ask(zone, "www.example.com.")
        assert response.rcode == c.RCODE_NOERROR
        assert response.is_authoritative
        addresses = {rr.rdata.address for rr in response.answers if rr.rtype == c.TYPE_A}
        assert addresses == {"192.0.2.80", "192.0.2.81"}

    def test_aaaa(self, zone):
        response = ask(zone, "v6.example.com.", c.TYPE_AAAA)
        assert response.answers

    def test_any_query_returns_all_types(self, zone):
        response = ask(zone, "example.com.", c.TYPE_ANY)
        types = {rr.rtype for rr in response.answers}
        assert c.TYPE_SOA in types and c.TYPE_NS in types

    def test_mx_additional_glue(self, zone):
        response = ask(zone, "mail.example.com.", c.TYPE_MX)
        assert response.answers
        additional_names = {rr.name for rr in response.additional}
        assert Name.from_text("mx1.example.com.") in additional_names

    def test_apex_ns_additional(self, zone):
        response = ask(zone, "example.com.", c.TYPE_NS)
        assert len(response.answers) == 2
        assert response.additional  # glue for ns1/ns2


class TestCname:
    def test_cname_chased_in_zone(self, zone):
        response = ask(zone, "alias.example.com.")
        types = [rr.rtype for rr in response.answers]
        assert c.TYPE_CNAME in types and c.TYPE_A in types

    def test_cname_query_itself(self, zone):
        response = ask(zone, "alias.example.com.", c.TYPE_CNAME)
        assert [rr.rtype for rr in response.answers] == [c.TYPE_CNAME]


class TestNegativeAnswers:
    def test_nxdomain_includes_soa(self, zone):
        response = ask(zone, "missing.example.com.")
        assert response.rcode == c.RCODE_NXDOMAIN
        assert any(rr.rtype == c.TYPE_SOA for rr in response.authority)
        assert not response.answers

    def test_nodata(self, zone):
        response = ask(zone, "www.example.com.", c.TYPE_TXT)
        assert response.rcode == c.RCODE_NOERROR
        assert not response.answers
        assert any(rr.rtype == c.TYPE_SOA for rr in response.authority)

    def test_out_of_zone_refused(self, zone):
        response = ask(zone, "www.other.org.")
        assert response.rcode == c.RCODE_REFUSED


class TestDelegation:
    def test_referral_not_authoritative(self, zone):
        response = ask(zone, "host.sub.example.com.")
        assert response.rcode == c.RCODE_NOERROR
        assert not response.is_authoritative
        assert not response.answers
        assert any(rr.rtype == c.TYPE_NS for rr in response.authority)

    def test_referral_includes_glue(self, zone):
        response = ask(zone, "host.sub.example.com.")
        glue = {rr.name for rr in response.additional}
        assert Name.from_text("ns1.sub.example.com.") in glue

    def test_ns_query_at_cut_is_referral_data(self, zone):
        response = ask(zone, "sub.example.com.", c.TYPE_NS)
        # Asking for the NS of the cut itself returns the delegation.
        assert response.answers or response.authority


class TestMalformed:
    def test_update_opcode_rejected(self, zone):
        from repro.dns.message import make_update

        server = AuthoritativeServer(zone)
        response = server.handle_query(make_update(zone.origin))
        assert response.rcode == c.RCODE_NOTIMP

    def test_multiple_questions_rejected(self, zone):
        query = make_query(Name.from_text("www.example.com."), c.TYPE_A)
        query.questions.append(query.questions[0])
        response = AuthoritativeServer(zone).handle_query(query)
        assert response.rcode == c.RCODE_FORMERR

    def test_chaos_class_refused(self, zone):
        query = make_query(Name.from_text("www.example.com."), c.TYPE_A, rclass=3)
        response = AuthoritativeServer(zone).handle_query(query)
        assert response.rcode == c.RCODE_REFUSED


class TestDeterminism:
    def test_identical_responses_across_copies(self, zone):
        """State-machine replication requires byte-identical responses."""
        query = make_query(Name.from_text("www.example.com."), c.TYPE_A, msg_id=77)
        a = AuthoritativeServer(zone).handle_query(query).to_wire()
        b = AuthoritativeServer(zone.copy()).handle_query(query).to_wire()
        assert a == b
