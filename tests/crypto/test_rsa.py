"""RSA + PKCS#1 tests."""

import pytest

from repro.crypto import pkcs1
from repro.crypto.rsa import RsaPublicKey, generate_rsa_keypair
from repro.errors import CryptoError, InvalidSignature, KeyGenerationError


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(512)


class TestPkcs1:
    def test_encoding_structure(self):
        em = pkcs1.emsa_pkcs1_v15_encode(b"msg", 64)
        assert em[0] == 0x00 and em[1] == 0x01
        assert b"\x00" in em[2:]
        assert len(em) == 64
        # Padding is all 0xFF up to the separator.
        sep = em.index(b"\x00", 2)
        assert set(em[2:sep]) == {0xFF}

    def test_digest_info_tail(self):
        em = pkcs1.emsa_pkcs1_v15_encode(b"msg", 64)
        assert em.endswith(pkcs1.sha1(b"msg"))

    def test_verify_roundtrip(self):
        em = pkcs1.emsa_pkcs1_v15_encode(b"hello", 128)
        assert pkcs1.emsa_pkcs1_v15_verify(b"hello", em)
        assert not pkcs1.emsa_pkcs1_v15_verify(b"other", em)

    def test_modulus_too_small(self):
        with pytest.raises(CryptoError):
            pkcs1.emsa_pkcs1_v15_encode(b"msg", 20)

    def test_encode_to_int_in_range(self):
        modulus = (1 << 512) - 1
        x = pkcs1.encode_to_int(b"msg", modulus)
        assert 0 < x < modulus


class TestRsa:
    def test_sign_verify(self, keypair):
        sig = keypair.private.sign(b"the quick brown fox")
        keypair.public.verify(b"the quick brown fox", sig)

    def test_wrong_message_rejected(self, keypair):
        sig = keypair.private.sign(b"message one")
        with pytest.raises(InvalidSignature):
            keypair.public.verify(b"message two", sig)

    def test_tampered_signature_rejected(self, keypair):
        sig = bytearray(keypair.private.sign(b"msg"))
        sig[5] ^= 0x40
        with pytest.raises(InvalidSignature):
            keypair.public.verify(b"msg", bytes(sig))

    def test_wrong_length_rejected(self, keypair):
        sig = keypair.private.sign(b"msg")
        with pytest.raises(InvalidSignature):
            keypair.public.verify(b"msg", sig[:-1])

    def test_oversized_value_rejected(self, keypair):
        size = keypair.public.byte_size
        huge = (keypair.public.modulus + 1).to_bytes(size + 1, "big")[-size:]
        with pytest.raises(InvalidSignature):
            keypair.public.verify(b"msg", b"\xff" * size)
        del huge

    def test_is_valid_boolean(self, keypair):
        sig = keypair.private.sign(b"msg")
        assert keypair.public.is_valid(b"msg", sig)
        assert not keypair.public.is_valid(b"other", sig)

    def test_crt_matches_plain_exponentiation(self, keypair):
        import repro.crypto.pkcs1 as p

        x = p.encode_to_int(b"crt check", keypair.private.modulus)
        plain = pow(x, keypair.private.private_exponent, keypair.private.modulus)
        via_crt = keypair.private._sign_crt(x)
        assert plain == via_crt

    def test_public_key_serialization(self, keypair):
        data = keypair.public.to_bytes()
        restored = RsaPublicKey.from_bytes(data)
        assert restored == keypair.public

    def test_distinct_keys(self):
        a = generate_rsa_keypair(256)
        b = generate_rsa_keypair(256)
        assert a.public.modulus != b.public.modulus

    def test_too_small_modulus_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_rsa_keypair(64)

    def test_deterministic_signature(self, keypair):
        assert keypair.private.sign(b"x") == keypair.private.sign(b"x")
