"""Property-based tests on the cryptographic layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import pkcs1
from repro.crypto.shoup import ShareProof, SignatureShare


class TestPkcs1Properties:
    @given(st.binary(max_size=500))
    def test_encode_verify_roundtrip(self, message):
        em = pkcs1.emsa_pkcs1_v15_encode(message, 128)
        assert pkcs1.emsa_pkcs1_v15_verify(message, em)

    @given(st.binary(max_size=100), st.binary(max_size=100))
    def test_distinct_messages_distinct_encodings(self, a, b):
        if a == b:
            return
        em_a = pkcs1.emsa_pkcs1_v15_encode(a, 128)
        em_b = pkcs1.emsa_pkcs1_v15_encode(b, 128)
        assert em_a != em_b
        assert not pkcs1.emsa_pkcs1_v15_verify(b, em_a)

    @given(st.binary(max_size=100), st.integers(46, 512))
    def test_encoding_length_exact(self, message, em_len):
        assert len(pkcs1.emsa_pkcs1_v15_encode(message, em_len)) == em_len


class TestShareSerializationProperties:
    @given(st.integers(1, 0xFFFF), st.integers(0, 2**1024))
    def test_bare_share_roundtrip(self, index, value):
        share = SignatureShare(index=index, value=value)
        restored, offset = SignatureShare.from_bytes(share.to_bytes())
        assert restored == share
        assert offset == len(share.to_bytes())

    @given(
        st.integers(1, 0xFFFF),
        st.integers(0, 2**1024),
        st.integers(0, 2**1600),
        st.integers(0, 2**256),
    )
    def test_share_with_proof_roundtrip(self, index, value, z, challenge):
        share = SignatureShare(
            index=index, value=value, proof=ShareProof(z=z, c=challenge)
        )
        restored, _ = SignatureShare.from_bytes(share.to_bytes())
        assert restored == share
        assert restored.proof == share.proof


class TestThresholdSigningProperties:
    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=15, deadline=None)
    def test_sign_verify_any_message(self, message):
        public, shares = _key()
        sig_shares = [s.generate_share(message) for s in shares[:2]]
        signature = public.assemble(message, sig_shares)
        public.verify_signature(message, signature)

    @given(st.binary(min_size=1, max_size=100), st.binary(min_size=1, max_size=100))
    @settings(max_examples=10, deadline=None)
    def test_signature_never_transfers(self, message_a, message_b):
        if message_a == message_b:
            return
        public, shares = _key()
        signature = public.assemble(
            message_a, [s.generate_share(message_a) for s in shares[:2]]
        )
        assert not public.signature_is_valid(message_b, signature)


_CACHED = None


def _key():
    global _CACHED
    if _CACHED is None:
        from repro.crypto.params import demo_threshold_key

        _CACHED = demo_threshold_key(4, 1, 384)
    return _CACHED
