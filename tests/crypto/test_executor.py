"""The pluggable crypto execution plane: serial vs pooled.

Covers the :class:`WorkerClock` schedule model, serial/pool primitive
equivalence (same values, same verdicts), pool warmup and late
registration, coordinator session pipelining (prefetch, backpressure),
and the OptTE subset-assembly property: every share multiset of size
at most ``2t+1`` containing ``t+1`` distinct honest shares yields the
unique valid signature — under both executors.
"""

import itertools

import pytest

from repro.crypto.executor import (
    CryptoWorkerPool,
    PoolExecutor,
    SerialExecutor,
    WorkerClock,
)
from repro.crypto.protocols import PROTOCOL_BASIC, SigningCoordinator
from repro.crypto.rsa import generate_rsa_keypair
from repro.crypto.shoup import SignatureShare
from repro.errors import ConfigError

MESSAGE = b"sig-target: pooled.example.com. A 192.0.2.77"


def _invert(share, modulus):
    """A plausibly-shaped but invalid share (same corruption as the
    signing-protocol tests)."""
    width = modulus.bit_length()
    return SignatureShare(
        index=share.index,
        value=(share.value ^ ((1 << width) - 1)) % modulus,
        proof=share.proof,
    )


@pytest.fixture(scope="module")
def auth_pair():
    return generate_rsa_keypair(512)


@pytest.fixture(scope="module")
def plane(threshold_4_1, auth_pair):
    """A two-worker pool plane with every owner registered before warmup."""
    public, shares = threshold_4_1
    with CryptoWorkerPool(2) as pool:
        executors = [
            PoolExecutor(
                pool,
                f"replica{i}",
                key_share=shares[i],
                auth_key=auth_pair.private,
            )
            for i in range(4)
        ]
        client = PoolExecutor(pool, "client")
        yield pool, executors, client


class TestWorkerClock:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(ConfigError):
            WorkerClock(0)

    def test_greedy_schedule_and_makespan(self):
        clock = WorkerClock(2)
        assert clock.background(1.0) == 1.0
        assert clock.background(2.0) == 2.0  # second (idle) worker
        assert clock.background(3.0) == 4.0  # stacks on the 1.0 worker
        assert clock.makespan == 4.0
        assert clock.main == 0.0  # background work never blocks the main thread
        assert clock.busy == 6.0
        assert clock.jobs == 3

    def test_run_blocks_main_thread(self):
        clock = WorkerClock(2)
        clock.background(2.0)
        clock.run(1.0)  # lands on the idle worker, main waits for it
        assert clock.main == 1.0
        clock.run(1.0)  # that worker is free again at 1.0, runs 1.0-2.0
        assert clock.main == 2.0
        assert clock.makespan == 2.0

    def test_wait_until_synchronizes(self):
        clock = WorkerClock(2)
        done = clock.background(5.0)
        clock.wait_until(done)
        assert clock.main == 5.0
        clock.wait_until(1.0)  # waiting for the past is a no-op
        assert clock.main == 5.0

    def test_single_worker_serializes(self):
        clock = WorkerClock(1)
        clock.run(1.0)
        clock.run(2.0)
        assert clock.main == 3.0
        assert clock.makespan == 3.0


class TestPrimitiveEquivalence:
    """Pool and serial executors compute identical values and verdicts."""

    def test_share_values_match(self, threshold_4_1, plane):
        public, shares = threshold_4_1
        _, executors, _ = plane
        serial = SerialExecutor(shares[0])
        assert serial.generate_share(MESSAGE) == executors[0].generate_share(MESSAGE)

    def test_share_with_proof_verifies_under_both(self, threshold_4_1, plane):
        public, shares = threshold_4_1
        _, executors, _ = plane
        serial = SerialExecutor(shares[1])
        pooled_share = executors[1].generate_share(MESSAGE, with_proof=True)
        serial_share = serial.generate_share(MESSAGE, with_proof=True)
        # Fiat-Shamir nonces differ, the share values cannot.
        assert pooled_share.value == serial_share.value
        assert pooled_share.proof is not None
        assert serial.verify_shares(MESSAGE, [pooled_share]) == [True]
        assert executors[0].verify_shares(MESSAGE, [serial_share]) == [True]

    def test_verify_shares_verdicts_match(self, threshold_4_1, plane):
        public, shares = threshold_4_1
        _, executors, _ = plane
        serial = SerialExecutor(shares[0])
        good = [s.generate_share_with_proof(MESSAGE) for s in shares[:2]]
        bad = _invert(shares[2].generate_share_with_proof(MESSAGE), public.modulus)
        batch = [good[0], bad, good[1]]
        expected = [True, False, True]
        assert serial.verify_shares(MESSAGE, batch) == expected
        assert executors[0].verify_shares(MESSAGE, batch) == expected

    def test_assembled_signatures_identical(self, threshold_4_1, plane):
        public, shares = threshold_4_1
        _, executors, _ = plane
        serial = SerialExecutor(shares[0])
        batch = [s.generate_share(MESSAGE) for s in shares[:2]]
        sig_serial = serial.assemble(MESSAGE, batch)
        sig_pooled = executors[0].assemble(MESSAGE, batch)
        assert sig_serial is not None
        assert sig_serial == sig_pooled
        assert serial.verify_signature(MESSAGE, sig_serial)
        assert executors[0].verify_signature(MESSAGE, sig_serial)

    def test_assemble_candidates_same_winner(self, threshold_4_1, plane):
        public, shares = threshold_4_1
        _, executors, _ = plane
        serial = SerialExecutor(shares[0])
        good = [s.generate_share(MESSAGE) for s in shares[:3]]
        bad = _invert(shares[3].generate_share(MESSAGE), public.modulus)
        subsets = [
            [good[0], bad],       # assembles but fails the signature check
            [bad, good[1]],       # same
            [good[0], good[1]],   # first valid candidate: the winner
            [good[1], good[2]],   # also valid, but later in order
        ]
        res_serial = serial.assemble_candidates(MESSAGE, subsets)
        res_pooled = executors[0].assemble_candidates(MESSAGE, subsets)
        assert res_serial.winner == res_pooled.winner == 2
        assert res_serial.signature == res_pooled.signature
        assert serial.verify_signature(MESSAGE, res_pooled.signature)
        # A pooled lane evaluates its whole chunk; it may assemble *more*
        # candidates than the serial early exit, never fewer.
        assert res_pooled.assembled >= res_serial.assembled

    def test_wave_cancellation_counts_speculative_lanes(
        self, threshold_4_1, plane
    ):
        public, shares = threshold_4_1
        _, executors, _ = plane
        executor = executors[0]
        before = executor.stats["cancelled_trials"]
        good = [s.generate_share(MESSAGE) for s in shares[:3]]
        subsets = [
            [good[0], good[1]],
            [good[0], good[2]],
            [good[1], good[2]],
        ]
        result = executor.assemble_candidates(MESSAGE, subsets)
        # All candidates are valid, so the earliest subset wins...
        assert result.winner == 0
        # ...and on the width-2 pool the speculative second wave (one
        # lane holding the third candidate) is cancelled and counted.
        assert executor.stats["cancelled_trials"] - before == 1

    def test_serial_plane_never_cancels(self, threshold_4_1):
        public, shares = threshold_4_1
        serial = SerialExecutor(shares[0])
        good = [s.generate_share(MESSAGE) for s in shares[:3]]
        serial.assemble_candidates(
            MESSAGE, [[good[0], good[1]], [good[1], good[2]]]
        )
        assert serial.stats["cancelled_trials"] == 0

    def test_assemble_candidates_empty_and_single(self, threshold_4_1, plane):
        public, shares = threshold_4_1
        _, executors, _ = plane
        empty = executors[0].assemble_candidates(MESSAGE, [])
        assert empty.winner is None and empty.assembled == 0
        single = executors[0].assemble_candidates(
            MESSAGE, [[s.generate_share(MESSAGE) for s in shares[:2]]]
        )
        assert single.winner == 0
        assert single.signature is not None

    def test_rsa_sign_and_verify_match(self, threshold_4_1, auth_pair, plane):
        public, shares = threshold_4_1
        _, executors, client = plane
        serial = SerialExecutor(shares[0], auth_key=auth_pair.private)
        sig_serial = serial.rsa_sign(MESSAGE)
        sig_pooled = executors[0].rsa_sign(MESSAGE)
        assert sig_serial == sig_pooled
        items = [
            (auth_pair.public, MESSAGE, sig_pooled),
            (auth_pair.public, MESSAGE, sig_pooled[:-1] + b"\x00"),
        ]
        assert serial.rsa_verify_many(items) == [True, False]
        assert executors[0].rsa_verify_many(items) == [True, False]
        assert executors[0].rsa_verify_many([]) == []
        # The client executor carries no key material: verification-only.
        assert client.rsa_verify(auth_pair.public, MESSAGE, sig_pooled)

    def test_missing_material_raises(self, plane):
        _, _, client = plane
        with pytest.raises(ConfigError):
            client.generate_share(MESSAGE)
        with pytest.raises(ConfigError):
            client.rsa_sign(MESSAGE)

    def test_batching_preference(self, threshold_4_1, plane):
        public, shares = threshold_4_1
        _, executors, _ = plane
        assert not SerialExecutor(shares[0]).prefers_batching
        assert executors[0].prefers_batching


class TestPoolLifecycle:
    def test_warmup_then_late_registration(self, threshold_4_1, auth_pair):
        public, shares = threshold_4_1
        with CryptoWorkerPool(2) as pool:
            early = PoolExecutor(pool, "early", key_share=shares[0])
            assert not pool.started
            share = early.generate_share(MESSAGE)  # first job starts the pool
            assert pool.started
            # Warm owners ship no per-job blob: material went with warmup.
            assert pool.material_blob("early") is None
            # Late registration works, paying an inline blob per job.
            late = PoolExecutor(pool, "late", key_share=shares[1])
            assert pool.material_blob("late") is not None
            late_share = late.generate_share(MESSAGE)
            sig = early.assemble(MESSAGE, [share, late_share])
            assert sig is not None
            assert early.verify_signature(MESSAGE, sig)

    def test_amortized_batch_stats(self, threshold_4_1):
        public, shares = threshold_4_1
        with CryptoWorkerPool(2) as pool:
            executor = PoolExecutor(pool, "solo", key_share=shares[0])
            batch = [s.generate_share_with_proof(MESSAGE) for s in shares[:3]]
            executor.verify_shares(MESSAGE, batch)
            # One pool task checked the whole batch.
            assert executor.stats["batch_jobs"] == 1
            assert executor.stats["batched_items"] == 3

    def test_pool_requires_a_worker(self):
        with pytest.raises(ConfigError):
            CryptoWorkerPool(0)


class TestCoordinatorPipelining:
    def test_prefetch_backpressure_and_consumption(self, threshold_4_1):
        public, shares = threshold_4_1
        coord = SigningCoordinator(PROTOCOL_BASIC, shares[0], lookahead=2)
        assert coord.max_inflight_prefetch == 2  # serial executor: one worker
        assert coord.prefetch("s1", MESSAGE)
        assert coord.prefetch("s2", MESSAGE)
        assert not coord.prefetch("s3", MESSAGE)  # queue full: backpressure
        assert coord.pipeline_stats["prefetched"] == 2
        assert coord.pipeline_stats["dropped"] == 1
        assert not coord.prefetch("s1", MESSAGE)  # duplicate: refused, not counted
        assert coord.pipeline_stats["dropped"] == 1

        coord.sign("s1", MESSAGE)
        assert coord.pipeline_stats["used"] == 1
        # The running session refuses further prefetches.
        assert not coord.prefetch("s1", MESSAGE)

        # A prefetch for a message that changed before the session started
        # is discarded, and the session regenerates on demand.
        coord.sign("s2", b"something else entirely")
        assert coord.pipeline_stats["discarded"] == 1
        assert coord.pipeline_stats["used"] == 1

    def test_prefetched_share_matches_on_demand(self, threshold_4_1):
        public, shares = threshold_4_1
        plain = SigningCoordinator(PROTOCOL_BASIC, shares[0])
        piped = SigningCoordinator(PROTOCOL_BASIC, shares[0], lookahead=2)
        piped.prefetch("s", MESSAGE)
        out_plain = plain.sign("s", MESSAGE)
        out_piped = piped.sign("s", MESSAGE)
        # BASIC broadcasts the proof-carrying share; values must agree
        # (proof nonces are random, so compare the share value itself).
        (dest_a, msg_a), = [o for o in out_plain if o[1].is_share]
        (dest_b, msg_b), = [o for o in out_piped if o[1].is_share]
        assert msg_a.share.value == msg_b.share.value
        assert msg_a.share.index == msg_b.share.index


class TestOptTESubsetProperty:
    """Trial-and-error assembly succeeds for every qualifying multiset."""

    def _qualifying_multisets(self, honest, bad, t):
        # All multisets of size <= 2t+1 drawn from honest + corrupted
        # shares that contain at least t+1 honest shares with distinct
        # signer indices.
        pool = honest + bad
        for size in range(1, 2 * t + 2):
            for combo in itertools.combinations_with_replacement(pool, size):
                distinct_honest = {s.index for s in combo if s in honest}
                if len(distinct_honest) >= t + 1:
                    yield list(combo)

    def test_every_qualifying_multiset_assembles(self, threshold_4_1, plane):
        public, shares = threshold_4_1
        _, executors, _ = plane
        serial = SerialExecutor(shares[0])
        t = public.t
        honest = [s.generate_share(MESSAGE) for s in shares[:3]]
        bad = [
            _invert(shares[3].generate_share(MESSAGE), public.modulus),
            _invert(honest[1], public.modulus),
        ]
        reference = public.assemble(MESSAGE, honest[: t + 1])
        cases = list(self._qualifying_multisets(honest, bad, t))
        assert len(cases) > 10  # the enumeration is not degenerate
        for multiset in cases:
            subsets = [
                list(combo)
                for combo in itertools.combinations(multiset, t + 1)
            ]
            res_serial = serial.assemble_candidates(MESSAGE, subsets)
            res_pooled = executors[0].assemble_candidates(MESSAGE, subsets)
            assert res_serial.winner is not None, multiset
            assert res_pooled.winner == res_serial.winner
            # The e-th root is unique: every winning subset produces THE
            # signature, identical across executors.
            assert res_serial.signature == res_pooled.signature == reference

    def test_insufficient_honest_shares_never_assemble(
        self, threshold_4_1, plane
    ):
        public, shares = threshold_4_1
        _, executors, _ = plane
        serial = SerialExecutor(shares[0])
        t = public.t
        honest = shares[0].generate_share(MESSAGE)
        bad = [
            _invert(s.generate_share(MESSAGE), public.modulus)
            for s in shares[1:3]
        ]
        multiset = [honest] + bad  # only one honest share: below t+1
        subsets = [list(c) for c in itertools.combinations(multiset, t + 1)]
        assert serial.assemble_candidates(MESSAGE, subsets).winner is None
        assert executors[0].assemble_candidates(MESSAGE, subsets).winner is None
