"""Cost model calibration and accounting."""

import pytest

from repro.crypto.costmodel import (
    CostModel,
    GENERATE_PROOF,
    GENERATE_SHARE_BARE,
    PAPER_CRYPTO_COSTS,
    TABLE3_ASSEMBLE,
    TABLE3_GENERATE_WITH_PROOF,
    TABLE3_VERIFY_SHARE,
    TABLE3_VERIFY_SIGNATURE,
    measure_local_costs,
)
from repro.crypto.protocols import (
    OP_ASSEMBLE,
    OP_GENERATE_PROOF,
    OP_GENERATE_SHARE,
    OP_VERIFY_SHARE,
    OP_VERIFY_SIGNATURE,
)


class TestCalibration:
    def test_generation_split_sums_to_table3(self):
        assert GENERATE_SHARE_BARE + GENERATE_PROOF == pytest.approx(
            TABLE3_GENERATE_WITH_PROOF
        )

    def test_table3_relative_shares(self):
        total = (
            TABLE3_GENERATE_WITH_PROOF
            + TABLE3_VERIFY_SHARE
            + TABLE3_ASSEMBLE
            + TABLE3_VERIFY_SIGNATURE
        )
        assert 100 * TABLE3_GENERATE_WITH_PROOF / total == pytest.approx(49.6, abs=0.5)
        assert 100 * TABLE3_VERIFY_SHARE / total == pytest.approx(47.2, abs=0.5)
        assert 100 * TABLE3_ASSEMBLE / total == pytest.approx(3.0, abs=0.3)
        assert 100 * TABLE3_VERIFY_SIGNATURE / total == pytest.approx(0.2, abs=0.2)

    def test_all_protocol_ops_priced(self):
        for op in (
            OP_GENERATE_SHARE,
            OP_GENERATE_PROOF,
            OP_VERIFY_SHARE,
            OP_ASSEMBLE,
            OP_VERIFY_SIGNATURE,
        ):
            assert PAPER_CRYPTO_COSTS[op] > 0


class TestCostModel:
    def test_crypto_cost_lookup(self):
        model = CostModel()
        assert model.crypto_cost(OP_VERIFY_SHARE) == TABLE3_VERIFY_SHARE
        assert model.crypto_cost(OP_VERIFY_SHARE, 3) == 3 * TABLE3_VERIFY_SHARE

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            CostModel().crypto_cost("make_coffee")

    def test_ops_cost_sums(self):
        model = CostModel()
        ops = [(OP_GENERATE_SHARE, 1), (OP_ASSEMBLE, 2)]
        expected = GENERATE_SHARE_BARE + 2 * TABLE3_ASSEMBLE
        assert model.ops_cost(ops) == pytest.approx(expected)

    def test_custom_costs_override(self):
        model = CostModel(crypto={OP_GENERATE_SHARE: 42.0})
        assert model.crypto_cost(OP_GENERATE_SHARE) == 42.0


class TestLocalMeasurement:
    def test_measured_profile_matches_paper_shape(self):
        costs = measure_local_costs(modulus_bits=512, repetitions=1)
        total = sum(costs.values())
        # Generation + proof + verification dominate; final verify ~free.
        heavy = (
            costs[OP_GENERATE_SHARE]
            + costs[OP_GENERATE_PROOF]
            + costs[OP_VERIFY_SHARE]
        )
        assert heavy / total > 0.8
        assert costs[OP_VERIFY_SIGNATURE] < costs[OP_VERIFY_SHARE]
        assert all(v >= 0 for v in costs.values())
