"""BASIC / OptProof / OptTE signing protocols, driven message-by-message.

The harness below routes protocol messages synchronously among n replica
endpoints, with optional Byzantine replicas that invert their share bits
(the paper's corruption mode) — no simulator involved, so these tests
isolate protocol logic from timing.
"""

from typing import List, Set

import pytest

from repro.crypto.protocols import (
    OP_ASSEMBLE,
    OP_GENERATE_PROOF,
    OP_GENERATE_SHARE,
    OP_VERIFY_SHARE,
    PROTOCOL_BASIC,
    PROTOCOL_OPTPROOF,
    PROTOCOL_OPTTE,
    SigningCoordinator,
    SigningMessage,
    make_signing_protocol,
)
from repro.crypto.shoup import SignatureShare
from repro.errors import ConfigError

MESSAGE = b"sig-target: new.example.com. A 192.0.2.99"
SID = "session-1"


def _invert(share: SignatureShare, modulus: int) -> SignatureShare:
    width = modulus.bit_length()
    return SignatureShare(
        index=share.index,
        value=(share.value ^ ((1 << width) - 1)) % modulus,
        proof=share.proof,
    )


def run_protocol(key, name: str, corrupted: Set[int] = frozenset(), order=None):
    """Run one signing session to completion; returns the protocol objects.

    ``corrupted`` holds 0-based replica ids whose outgoing shares get
    bit-inverted.  ``order`` optionally permutes message delivery.
    """
    public, shares = key
    n = public.n
    protocols = [
        make_signing_protocol(name, shares[i], SID, MESSAGE) for i in range(n)
    ]
    queue: List[tuple] = []  # (sender, dest, msg)

    def push(sender: int, outs) -> None:
        for dest, msg in outs:
            if msg.is_share and sender in corrupted and msg.share is not None:
                msg = SigningMessage.share_message(
                    SID, _invert(msg.share, public.modulus)
                )
            if msg.is_final and sender in corrupted:
                msg = SigningMessage.final(SID, bytes(b ^ 0xFF for b in msg.signature))
            targets = range(n) if dest == -1 else [dest]
            for target in targets:
                if target != sender:
                    queue.append((sender, target, msg))

    for i in range(n):
        push(i, protocols[i].start())
    steps = 0
    while queue:
        steps += 1
        assert steps < 10_000, "protocol livelock"
        if order is not None:
            queue.sort(key=order)
        sender, dest, msg = queue.pop(0)
        push(dest, protocols[dest].on_message(sender, msg))
    return protocols


HONEST_KEYS = ["threshold_4_1", "threshold_7_2"]


@pytest.mark.parametrize("proto", [PROTOCOL_BASIC, PROTOCOL_OPTPROOF, PROTOCOL_OPTTE])
@pytest.mark.parametrize("key_fixture", HONEST_KEYS)
def test_all_honest_terminate_with_valid_signature(proto, key_fixture, request):
    key = request.getfixturevalue(key_fixture)
    public, _ = key
    protocols = run_protocol(key, proto)
    for protocol in protocols:
        assert protocol.done
        public.verify_signature(MESSAGE, protocol.signature)
    # Unique RSA signatures: all replicas end with identical bytes.
    assert len({p.signature for p in protocols}) == 1


@pytest.mark.parametrize("proto", [PROTOCOL_BASIC, PROTOCOL_OPTPROOF, PROTOCOL_OPTTE])
def test_one_corruption_n4(proto, threshold_4_1, request):
    public, _ = threshold_4_1
    protocols = run_protocol(threshold_4_1, proto, corrupted={1})
    for i, protocol in enumerate(protocols):
        if i == 1:
            continue  # the corrupted replica owes us nothing
        assert protocol.done
        public.verify_signature(MESSAGE, protocol.signature)


@pytest.mark.parametrize("proto", [PROTOCOL_BASIC, PROTOCOL_OPTPROOF, PROTOCOL_OPTTE])
def test_two_corruptions_n7(proto, threshold_7_2, request):
    public, _ = threshold_7_2
    protocols = run_protocol(threshold_7_2, proto, corrupted={0, 4})
    for i, protocol in enumerate(protocols):
        if i in (0, 4):
            continue
        assert protocol.done, f"replica {i} did not finish"
        public.verify_signature(MESSAGE, protocol.signature)


def test_corrupted_shares_delivered_first_still_terminates(threshold_7_2):
    """Adversarial scheduling: bad shares always arrive before good ones."""
    public, _ = threshold_7_2
    corrupted = {0, 1}

    def adversarial_order(item):
        sender, _, msg = item
        return (0 if sender in corrupted else 1, sender)

    for proto in (PROTOCOL_BASIC, PROTOCOL_OPTPROOF, PROTOCOL_OPTTE):
        protocols = run_protocol(
            threshold_7_2, proto, corrupted=corrupted, order=adversarial_order
        )
        for i, protocol in enumerate(protocols):
            if i in corrupted:
                continue
            assert protocol.done, f"{proto}: replica {i} stuck"
            public.verify_signature(MESSAGE, protocol.signature)


class TestOpsAccounting:
    def test_basic_ops(self, threshold_4_1):
        protocols = run_protocol(threshold_4_1, PROTOCOL_BASIC)
        ops = dict()
        for op, count in protocols[0].drain_ops():
            ops[op] = ops.get(op, 0) + count
        assert ops.get(OP_GENERATE_SHARE) == 1
        assert ops.get(OP_GENERATE_PROOF) == 1
        assert ops.get(OP_VERIFY_SHARE, 0) >= 1
        assert ops.get(OP_ASSEMBLE) == 1

    def test_optimistic_skips_proofs_when_honest(self, threshold_4_1):
        protocols = run_protocol(threshold_4_1, PROTOCOL_OPTTE)
        ops = dict()
        for op, count in protocols[0].drain_ops():
            ops[op] = ops.get(op, 0) + count
        assert OP_GENERATE_PROOF not in ops
        assert OP_VERIFY_SHARE not in ops

    def test_drain_clears(self, threshold_4_1):
        protocols = run_protocol(threshold_4_1, PROTOCOL_OPTTE)
        protocols[0].drain_ops()
        assert protocols[0].drain_ops() == []


class TestOptTE:
    def test_attempt_count_bounded(self, threshold_7_2):
        public, _ = threshold_7_2
        protocols = run_protocol(threshold_7_2, PROTOCOL_OPTTE, corrupted={0, 1})
        import math

        bound = math.comb(2 * public.t + 1, public.t + 1)
        for i, protocol in enumerate(protocols):
            if i in (0, 1):
                continue
            assert 1 <= protocol.attempts <= bound


class TestOptProof:
    def test_fallback_requests_proofs(self, threshold_4_1):
        """With a corrupted replica adversarially scheduled first, honest
        replicas must fall back to the proof phase and still finish."""
        public, _ = threshold_4_1

        def bad_first(item):
            sender, _, _ = item
            return 0 if sender == 1 else 1

        protocols = run_protocol(
            threshold_4_1, PROTOCOL_OPTPROOF, corrupted={1}, order=bad_first
        )
        honest = [p for i, p in enumerate(protocols) if i != 1]
        assert all(p.done for p in honest)
        # At least one honest replica went through the fall-back.
        assert any(p._fallback for p in honest)


class TestSigningMessageSerialization:
    def test_share_message_roundtrip(self, threshold_4_1):
        _, shares = threshold_4_1
        share = shares[0].generate_share_with_proof(MESSAGE)
        msg = SigningMessage.share_message("abc", share)
        restored = SigningMessage.from_bytes(msg.to_bytes())
        assert restored.sign_id == "abc"
        assert restored.share == share

    def test_final_roundtrip(self):
        msg = SigningMessage.final("xyz", b"\x01\x02\x03")
        restored = SigningMessage.from_bytes(msg.to_bytes())
        assert restored.is_final and restored.signature == b"\x01\x02\x03"

    def test_proof_request_roundtrip(self):
        msg = SigningMessage.proof_request("qrs")
        restored = SigningMessage.from_bytes(msg.to_bytes())
        assert restored.is_proof_request and restored.sign_id == "qrs"


class TestCoordinator:
    def test_buffers_early_messages(self, threshold_4_1):
        """Shares arriving before the local sign() call are not lost."""
        public, shares = threshold_4_1
        early = SigningCoordinator(PROTOCOL_OPTTE, shares[0])
        # Two peers' shares arrive before we start the session.
        for peer in (1, 2):
            share = shares[peer].generate_share(MESSAGE)
            early.on_message(peer, SigningMessage.share_message(SID, share))
        assert early.result(SID) is None
        early.sign(SID, MESSAGE)
        assert early.result(SID) is not None
        public.verify_signature(MESSAGE, early.result(SID))

    def test_unknown_protocol_rejected(self, threshold_4_1):
        _, shares = threshold_4_1
        with pytest.raises(ConfigError):
            SigningCoordinator("bogus", shares[0])

    def test_concurrent_sessions(self, threshold_4_1):
        public, shares = threshold_4_1
        coordinators = [
            SigningCoordinator(PROTOCOL_OPTTE, s) for s in shares
        ]
        messages = {f"s{i}": f"payload {i}".encode() for i in range(3)}
        queue = []

        def push(sender, outs):
            for dest, msg in outs:
                targets = range(4) if dest == -1 else [dest]
                for target in targets:
                    if target != sender:
                        queue.append((sender, target, msg))

        for sid, payload in messages.items():
            for i, coordinator in enumerate(coordinators):
                push(i, coordinator.sign(sid, payload))
        while queue:
            sender, dest, msg = queue.pop(0)
            push(dest, coordinators[dest].on_message(sender, msg))
        for sid, payload in messages.items():
            for coordinator in coordinators:
                signature = coordinator.result(sid)
                assert signature is not None
                public.verify_signature(payload, signature)


class TestShareIndexValidation:
    """A share's claimed index must match its authenticated sender."""

    def test_forged_index_rejected(self, threshold_4_1):
        public, shares = threshold_4_1
        protocol = make_signing_protocol(PROTOCOL_BASIC, shares[0], SID, MESSAGE)
        protocol.start()
        # Sender 1 replays replica 2's (perfectly valid) share: without
        # the index==sender+1 pin this would poison the pool.
        forged = shares[2].generate_share_with_proof(MESSAGE)
        protocol.on_message(1, SigningMessage.share_message(SID, forged))
        assert forged.index not in protocol._shares

    def test_out_of_range_index_rejected(self, threshold_4_1):
        public, shares = threshold_4_1
        protocol = make_signing_protocol(PROTOCOL_BASIC, shares[0], SID, MESSAGE)
        protocol.start()
        legit = shares[1].generate_share_with_proof(MESSAGE)
        bogus = SignatureShare(index=public.n + 5, value=legit.value, proof=legit.proof)
        protocol.on_message(public.n + 4, SigningMessage.share_message(SID, bogus))
        assert bogus.index not in protocol._shares

    def test_matching_index_accepted(self, threshold_4_1):
        public, shares = threshold_4_1
        protocol = make_signing_protocol(PROTOCOL_BASIC, shares[0], SID, MESSAGE)
        protocol.start()
        share = shares[1].generate_share_with_proof(MESSAGE)
        protocol.on_message(1, SigningMessage.share_message(SID, share))
        assert share.index in protocol._shares


class TestCoordinatorBounds:
    """KeyTrap-style caps on the pre-session message buffer."""

    def test_pending_session_flood_capped(self, threshold_4_1):
        public, shares = threshold_4_1
        coordinator = SigningCoordinator(PROTOCOL_BASIC, shares[0])
        coordinator.max_pending_sessions = 2
        share = shares[1].generate_share_with_proof(MESSAGE)
        for k in range(5):
            coordinator.on_message(1, SigningMessage.share_message(f"flood-{k}", share))
        assert len(coordinator._pending) == 2
        assert coordinator.dropped_messages == 3

    def test_per_session_flood_capped(self, threshold_4_1):
        public, shares = threshold_4_1
        coordinator = SigningCoordinator(PROTOCOL_BASIC, shares[0])
        coordinator.max_pending_per_session = 3
        share = shares[1].generate_share_with_proof(MESSAGE)
        for _ in range(7):
            coordinator.on_message(1, SigningMessage.share_message("one-sid", share))
        assert len(coordinator._pending["one-sid"]) == 3
        assert coordinator.dropped_messages == 4

    def test_bounded_buffer_still_replays_on_sign(self, threshold_4_1):
        # The caps must not break the legitimate early-arrival path.
        public, shares = threshold_4_1
        coordinator = SigningCoordinator(PROTOCOL_BASIC, shares[0])
        for peer in (1, 2):
            share = shares[peer].generate_share_with_proof(MESSAGE)
            coordinator.on_message(peer, SigningMessage.share_message(SID, share))
        assert coordinator.dropped_messages == 0
        coordinator.sign(SID, MESSAGE)
        signature = coordinator.result(SID)
        assert signature is not None
        public.verify_signature(MESSAGE, signature)
