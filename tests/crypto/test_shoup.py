"""Shoup threshold RSA: the cryptographic core of the paper."""

import itertools

import pytest

from repro.crypto.rsa import RsaPublicKey
from repro.crypto.shoup import (
    SignatureShare,
    ThresholdDealer,
    ThresholdKeyShare,
    ThresholdPublicKey,
    reshare,
)
from repro.crypto.params import safe_prime_pair
from repro.errors import AssemblyError, ConfigError, InvalidShare

MESSAGE = b"www.example.com. 3600 IN A 192.0.2.80"


class TestDealer:
    def test_share_count(self, threshold_4_1):
        public, shares = threshold_4_1
        assert public.n == 4 and public.t == 1
        assert len(shares) == 4
        assert [s.index for s in shares] == [1, 2, 3, 4]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            ThresholdDealer(bits=384, n=4, t=2)  # n < 2t+1
        with pytest.raises(ConfigError):
            ThresholdDealer(bits=384, n=0, t=0)
        with pytest.raises(ConfigError):
            ThresholdDealer(bits=384, n=4, t=4)
        with pytest.raises(ConfigError):
            ThresholdDealer(bits=384, n=70000, t=1)  # e must exceed n

    def test_verification_keys_consistent(self, threshold_4_1):
        public, shares = threshold_4_1
        for share in shares:
            expected = pow(public.verifier, share.secret, public.modulus)
            assert public.share_verifier(share.index) == expected


class TestSigningAndAssembly:
    def test_any_t_plus_1_subset_signs(self, threshold_4_1):
        public, shares = threshold_4_1
        sig_shares = {s.index: s.generate_share(MESSAGE) for s in shares}
        signatures = set()
        for subset in itertools.combinations(range(1, 5), 2):
            sig = public.assemble(MESSAGE, [sig_shares[i] for i in subset])
            public.verify_signature(MESSAGE, sig)
            signatures.add(sig)
        # RSA signatures are unique: every subset produces the same bytes.
        assert len(signatures) == 1

    def test_t_shares_insufficient(self, threshold_4_1):
        public, shares = threshold_4_1
        only_one = [shares[0].generate_share(MESSAGE)]
        with pytest.raises(AssemblyError):
            public.assemble(MESSAGE, only_one)

    def test_verifies_as_plain_rsa(self, threshold_4_1):
        """The DNSSEC interop property: standard RSA verification works."""
        public, shares = threshold_4_1
        sig = public.assemble(
            MESSAGE, [s.generate_share(MESSAGE) for s in shares[:2]]
        )
        plain = RsaPublicKey(modulus=public.modulus, exponent=public.exponent)
        plain.verify(MESSAGE, sig)

    def test_duplicate_indices_rejected(self, threshold_4_1):
        public, shares = threshold_4_1
        share = shares[0].generate_share(MESSAGE)
        with pytest.raises(AssemblyError):
            public.assemble(MESSAGE, [share, share])

    def test_out_of_range_index_rejected(self, threshold_4_1):
        public, shares = threshold_4_1
        good = shares[0].generate_share(MESSAGE)
        bogus = SignatureShare(index=9, value=good.value)
        with pytest.raises(AssemblyError):
            public.assemble(MESSAGE, [good, bogus])

    def test_bad_share_breaks_assembly_detectably(self, threshold_4_1):
        public, shares = threshold_4_1
        good = shares[0].generate_share(MESSAGE)
        bad = SignatureShare(index=2, value=good.value ^ 0xDEADBEEF)
        sig = public.assemble(MESSAGE, [good, bad])
        assert not public.signature_is_valid(MESSAGE, sig)

    def test_seven_server_key(self, threshold_7_2):
        public, shares = threshold_7_2
        sig_shares = [s.generate_share(MESSAGE) for s in shares[2:5]]
        sig = public.assemble(MESSAGE, sig_shares)
        public.verify_signature(MESSAGE, sig)

    def test_message_binding(self, threshold_4_1):
        public, shares = threshold_4_1
        sig = public.assemble(
            MESSAGE, [s.generate_share(MESSAGE) for s in shares[:2]]
        )
        assert not public.signature_is_valid(b"different message", sig)


class TestProofs:
    def test_valid_proof_accepted(self, threshold_4_1):
        public, shares = threshold_4_1
        share = shares[0].generate_share_with_proof(MESSAGE)
        public.verify_share(MESSAGE, share)

    def test_share_without_proof_rejected(self, threshold_4_1):
        public, shares = threshold_4_1
        share = shares[0].generate_share(MESSAGE)
        with pytest.raises(InvalidShare):
            public.verify_share(MESSAGE, share)

    def test_tampered_value_rejected(self, threshold_4_1):
        public, shares = threshold_4_1
        share = shares[0].generate_share_with_proof(MESSAGE)
        tampered = SignatureShare(
            index=share.index, value=share.value ^ (1 << 50), proof=share.proof
        )
        assert not public.share_is_valid(MESSAGE, tampered)

    def test_bit_inverted_share_rejected(self, threshold_4_1):
        """The corruption the paper's experiments inject (§4.4)."""
        public, shares = threshold_4_1
        share = shares[0].generate_share_with_proof(MESSAGE)
        width = public.modulus.bit_length()
        inverted = SignatureShare(
            index=share.index,
            value=(share.value ^ ((1 << width) - 1)) % public.modulus,
            proof=share.proof,
        )
        assert not public.share_is_valid(MESSAGE, inverted)

    def test_proof_bound_to_message(self, threshold_4_1):
        public, shares = threshold_4_1
        share = shares[0].generate_share_with_proof(MESSAGE)
        assert not public.share_is_valid(b"other message", share)

    def test_proof_bound_to_index(self, threshold_4_1):
        public, shares = threshold_4_1
        share = shares[0].generate_share_with_proof(MESSAGE)
        moved = SignatureShare(index=2, value=share.value, proof=share.proof)
        assert not public.share_is_valid(MESSAGE, moved)

    def test_wrong_secret_cannot_prove(self, threshold_4_1):
        public, shares = threshold_4_1
        wrong = ThresholdKeyShare(
            index=shares[0].index,
            secret=shares[0].secret ^ 0xFFFF,
            public=public,
        )
        share = wrong.generate_share(MESSAGE).with_proof(
            wrong.prove(MESSAGE, wrong.generate_share(MESSAGE))
        )
        assert not public.share_is_valid(MESSAGE, share)


class TestSerialization:
    def test_signature_share_roundtrip(self, threshold_4_1):
        _, shares = threshold_4_1
        share = shares[0].generate_share_with_proof(MESSAGE)
        restored, offset = SignatureShare.from_bytes(share.to_bytes())
        assert restored == share

    def test_bare_share_roundtrip(self, threshold_4_1):
        _, shares = threshold_4_1
        share = shares[0].generate_share(MESSAGE)
        restored, _ = SignatureShare.from_bytes(share.to_bytes())
        assert restored == share and restored.proof is None

    def test_public_key_roundtrip(self, threshold_4_1):
        public, _ = threshold_4_1
        restored = ThresholdPublicKey.from_bytes(public.to_bytes())
        assert restored == public

    def test_key_share_roundtrip(self, threshold_4_1):
        public, shares = threshold_4_1
        restored = ThresholdKeyShare.from_bytes(shares[2].to_bytes())
        assert restored.index == shares[2].index
        assert restored.secret == shares[2].secret
        assert restored.public == public


class TestReshare:
    def test_refreshed_shares_still_sign(self):
        p, q = safe_prime_pair(192)
        dealer = ThresholdDealer(bits=384, n=4, t=1, prime_p=p, prime_q=q)
        public, shares = dealer.deal()
        old_sig = public.assemble(
            MESSAGE, [s.generate_share(MESSAGE) for s in shares[:2]]
        )
        new_shares = reshare(public, shares, dealer)
        new_public = new_shares[0].public
        new_sig = new_public.assemble(
            MESSAGE, [s.generate_share(MESSAGE) for s in new_shares[1:3]]
        )
        # Same RSA key, so the unique signature is identical.
        assert new_sig == old_sig
        # But the shares themselves are fresh.
        assert {s.secret for s in new_shares} != {s.secret for s in shares}

    def test_mixing_old_and_new_shares_fails(self):
        p, q = safe_prime_pair(192)
        dealer = ThresholdDealer(bits=384, n=4, t=1, prime_p=p, prime_q=q)
        public, shares = dealer.deal()
        new_shares = reshare(public, shares, dealer)
        mixed = [
            shares[0].generate_share(MESSAGE),
            new_shares[1].generate_share(MESSAGE),
        ]
        sig = public.assemble(MESSAGE, mixed)
        assert not public.signature_is_valid(MESSAGE, sig)


class TestHotPathMemoization:
    """The cached helpers must be bit-identical to direct computation."""

    def test_verification_base_matches_direct_pow(self, threshold_4_1):
        from repro.crypto import pkcs1
        from repro.crypto.shoup import _verification_base

        public, _ = threshold_4_1
        N = public.modulus
        x = pkcs1.encode_to_int(MESSAGE, N)
        expected = pow(x, 4 * public.delta, N)
        assert _verification_base(x, public.delta, N) == expected
        # Second call (cache hit) returns the same value.
        assert _verification_base(x, public.delta, N) == expected

    def test_repeated_sign_verify_cycles_stay_consistent(self, threshold_4_1):
        public, shares = threshold_4_1
        signatures = set()
        for _ in range(3):
            proved = [s.generate_share_with_proof(MESSAGE) for s in shares[:2]]
            for share in proved:
                public.verify_share(MESSAGE, share)
            sig = public.assemble(MESSAGE, proved)
            public.verify_signature(MESSAGE, sig)
            signatures.add(sig)
        # RSA signatures are deterministic: every round must agree.
        assert len(signatures) == 1

    def test_cached_encoding_distinguishes_messages(self, threshold_4_1):
        from repro.crypto import pkcs1

        public, _ = threshold_4_1
        N = public.modulus
        a = pkcs1.encode_to_int(b"message-a", N)
        b = pkcs1.encode_to_int(b"message-b", N)
        assert a != b
        assert pkcs1.encode_to_int(b"message-a", N) == a
