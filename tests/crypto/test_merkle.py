"""Merkle fragment trees: inclusion proofs, tamper rejection, bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import (
    MAX_PROOF_DEPTH,
    merkle_proof,
    merkle_root,
    merkle_verify,
)


def _leaves(count):
    return [f"frag-{i}".encode() * (i + 1) for i in range(count)]


class TestProofs:
    @pytest.mark.parametrize("count", list(range(1, 13)))
    def test_every_index_proves(self, count):
        # 1..12 leaves covers the odd-promotion shapes at every level.
        leaves = _leaves(count)
        root = merkle_root(leaves)
        for i, leaf in enumerate(leaves):
            assert merkle_verify(root, leaf, merkle_proof(leaves, i)), (
                f"index {i} of {count}"
            )

    @settings(max_examples=40, deadline=None)
    @given(
        leaves=st.lists(st.binary(max_size=64), min_size=1, max_size=20),
        data=st.data(),
    )
    def test_proof_round_trip_property(self, leaves, data):
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        root = merkle_root(leaves)
        assert merkle_verify(root, leaves[index], merkle_proof(leaves, index))

    def test_root_depends_on_order_and_content(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])
        assert merkle_root([b"a", b"b"]) != merkle_root([b"a", b"c"])


class TestRejection:
    def test_tampered_leaf_fails(self):
        leaves = _leaves(10)
        root = merkle_root(leaves)
        proof = merkle_proof(leaves, 3)
        assert not merkle_verify(root, leaves[3] + b"!", proof)

    def test_wrong_index_proof_fails(self):
        leaves = _leaves(10)
        root = merkle_root(leaves)
        assert not merkle_verify(root, leaves[2], merkle_proof(leaves, 3))

    def test_wrong_root_fails(self):
        leaves = _leaves(8)
        other = merkle_root(_leaves(9))
        assert not merkle_verify(other, leaves[0], merkle_proof(leaves, 0))

    def test_overlong_proof_rejected_cheaply(self):
        root = merkle_root([b"x"])
        bloat = tuple((b"\x00" * 32, False) for _ in range(MAX_PROOF_DEPTH + 1))
        assert not merkle_verify(root, b"x", bloat)

    def test_malformed_proof_steps_return_false(self):
        root = merkle_root([b"a", b"b"])
        assert not merkle_verify(root, b"a", (("not-bytes", True),))
        assert not merkle_verify(root, b"a", ((b"short", True),))
        assert not merkle_verify(root, b"a", ((b"\x00" * 32,),))

    def test_interior_node_cannot_pose_as_leaf(self):
        # Domain separation: feeding an interior digest as leaf data must
        # not verify against a two-level tree's root.
        leaves = _leaves(4)
        root = merkle_root(leaves)
        sub = merkle_root(leaves[:2])
        assert not merkle_verify(root, sub, merkle_proof(leaves, 0)[1:])

    def test_out_of_range_proof_index(self):
        with pytest.raises(ValueError):
            merkle_proof([b"a"], 1)
        with pytest.raises(ValueError):
            merkle_root([])
