"""KeyTrap-style resource bounds on the agreement message handlers.

A Byzantine peer must not be able to grow per-sequence or per-round
state without limit by naming far-future slots; these tests pin the
windows added to the atomic-broadcast fast path and to ABA rounds.
"""

import pytest

from repro.broadcast import abc as abc_mod
from repro.broadcast.aba import MAX_ROUND_AHEAD, BinaryAgreement
from repro.broadcast.abc import MAX_SEQ_AHEAD, derive_request_id
from repro.broadcast.messages import (
    AbaAux,
    AbaEst,
    AbcCommit,
    AbcInitiate,
    AbcOrder,
    AbcPrepare,
)

from tests.broadcast.harness import auth_keys, coin_keys, make_lan
from tests.broadcast.test_abc import build


@pytest.fixture(scope="module")
def keys_4_1():
    pairs, pubs = auth_keys(4)
    coins = coin_keys(4, 1)
    return pairs, pubs, coins


def make_abcs(keys):
    net = make_lan(4)
    abcs, delivered = build(4, 1, net, keys)
    return abcs


class TestSequenceWindow:
    def test_far_future_order_dropped(self, keys_4_1):
        abc = make_abcs(keys_4_1)[1]
        seq = MAX_SEQ_AHEAD + 3
        payload = b"far future"
        abc.on_message(
            abc.leader,
            AbcOrder(0, seq, derive_request_id(payload), payload),
        )
        assert abc.stats["out_of_window"] == 1
        assert (0, seq) not in abc._ordered

    def test_far_future_prepare_dropped(self, keys_4_1):
        abc = make_abcs(keys_4_1)[0]
        seq = MAX_SEQ_AHEAD + 1
        abc.on_message(2, AbcPrepare(0, seq, b"d" * 32, 2, b"sig"))
        assert abc.stats["out_of_window"] == 1
        assert all(key[1] != seq for key in abc._prepares)

    def test_far_future_commit_dropped(self, keys_4_1):
        abc = make_abcs(keys_4_1)[0]
        seq = MAX_SEQ_AHEAD + 1
        abc.on_message(2, AbcCommit(0, seq, b"d" * 32, 2, b"sig"))
        assert abc.stats["out_of_window"] == 1

    def test_in_window_order_processed(self, keys_4_1):
        abc = make_abcs(keys_4_1)[1]
        payload = b"normal request"
        abc.on_message(
            abc.leader, AbcOrder(0, 0, derive_request_id(payload), payload)
        )
        assert (0, 0) in abc._ordered
        assert abc.stats["out_of_window"] == 0

    def test_window_advances_with_delivery(self, keys_4_1):
        # The window is relative to next_deliver, not absolute: a replica
        # that has delivered far keeps accepting the sequences around it.
        abc = make_abcs(keys_4_1)[1]
        abc.next_deliver = 10_000
        payload = b"caught up"
        abc.on_message(
            abc.leader, AbcOrder(0, 10_001, derive_request_id(payload), payload)
        )
        assert (0, 10_001) in abc._ordered
        assert abc.stats["out_of_window"] == 0


class TestInitiateCap:
    def test_pending_flood_capped(self, keys_4_1, monkeypatch):
        monkeypatch.setattr(abc_mod, "MAX_PENDING_REQUESTS", 4)
        abc = make_abcs(keys_4_1)[1]  # non-leader: pending is not drained
        for k in range(6):
            payload = f"req-{k}".encode()
            abc.on_message(3, AbcInitiate(derive_request_id(payload), payload))
        assert len(abc.pending) == 4
        assert abc.stats["initiates_dropped"] == 2

    def test_known_request_not_counted_against_cap(self, keys_4_1, monkeypatch):
        monkeypatch.setattr(abc_mod, "MAX_PENDING_REQUESTS", 1)
        abc = make_abcs(keys_4_1)[1]
        payload = b"the one request"
        msg = AbcInitiate(derive_request_id(payload), payload)
        abc.on_message(3, msg)
        abc.on_message(2, msg)  # a re-send of a pending request is fine
        assert len(abc.pending) == 1
        assert abc.stats["initiates_dropped"] == 0


class TestAbaRoundWindow:
    def _aba(self):
        shares = coin_keys(4, 1)
        return BinaryAgreement(4, 1, 0, shares[0], on_decide=lambda sid, v: None)

    def test_far_future_est_dropped(self):
        aba = self._aba()
        aba.on_message(1, AbaEst("s", MAX_ROUND_AHEAD + 2, 1))
        instance = aba._instances["s"]
        assert (MAX_ROUND_AHEAD + 2, 1) not in instance._est_senders

    def test_far_future_aux_dropped(self):
        aba = self._aba()
        aba.on_message(1, AbaAux("s", MAX_ROUND_AHEAD + 2, 1))
        instance = aba._instances["s"]
        assert MAX_ROUND_AHEAD + 2 not in instance._aux_senders

    def test_near_future_est_accepted(self):
        aba = self._aba()
        aba.on_message(1, AbaEst("s", 3, 1))
        instance = aba._instances["s"]
        assert 1 in instance._est_senders[(3, 1)]
