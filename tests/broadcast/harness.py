"""Shared harness: run sans-IO broadcast protocols on the simulator."""

from typing import Callable, Optional

from repro.crypto.params import demo_threshold_key
from repro.crypto.rsa import generate_rsa_keypair
from repro.sim.machines import lan_setup
from repro.sim.network import SimNetwork


def make_lan(n: int, seed: int = 0) -> SimNetwork:
    return SimNetwork(lan_setup(n), seed=seed, cpu_jitter=0.0)


class OutgoingRouter:
    """Adapts list-of-(dest, msg) protocol outputs to SimNode sends."""

    def __init__(self, net: SimNetwork, me: int, n: int) -> None:
        self.net = net
        self.me = me
        self.n = n
        self.loopback: Optional[Callable] = None

    def send_all(self, outs) -> None:
        for dest, msg in outs:
            if dest == -1:
                for peer in range(self.n):
                    if peer != self.me:
                        self.net.node(self.me).send(peer, msg)
                # Sans-IO components self-process broadcast internally.
            elif dest == self.me:
                if self.loopback is not None:
                    self.loopback(self.me, msg)
            else:
                self.net.node(self.me).send(dest, msg)


def coin_keys(n: int, t: int):
    _, shares = demo_threshold_key(n, t, 384)
    return shares


def auth_keys(n: int):
    pairs = [generate_rsa_keypair(512) for _ in range(n)]
    return pairs, [p.public for p in pairs]
