"""Optimistic atomic broadcast: total order, fall-back, Byzantine leaders."""

import pytest

from repro.broadcast.abc import AtomicBroadcast, derive_request_id, request_digest
from repro.broadcast.messages import AbcOrder

from tests.broadcast.harness import auth_keys, coin_keys, make_lan


@pytest.fixture(scope="module")
def keys_4_1():
    pairs, pubs = auth_keys(4)
    coins = coin_keys(4, 1)
    return pairs, pubs, coins


def build(n, t, net, keys, timeout=1.0):
    pairs, pubs, coins = keys
    delivered = {i: [] for i in range(n)}
    abcs = []
    for i in range(n):
        node = net.node(i)
        abc = AtomicBroadcast(
            n, t, i,
            auth_key=pairs[i].private,
            auth_public=pubs,
            coin_key=coins[i],
            deliver=lambda rid, payload, i=i: delivered[i].append(payload),
            send=node.send,
            schedule=node.schedule_timer,
            timeout=timeout,
        )
        abcs.append(abc)
        node.set_handler(lambda s, m, abc=abc: abc.on_message(s, m))
    return abcs, delivered


def inject(net, abcs, replica, payloads, spacing=0.001):
    for k, payload in enumerate(payloads):
        net.node(replica).run_local(
            spacing * k, lambda p=payload: abcs[replica].a_broadcast(p)
        )


class TestFastPath:
    def test_total_order_single_gateway(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build(4, 1, net, keys_4_1)
        inject(net, abcs, 2, [f"r{k}".encode() for k in range(6)])
        net.run()
        assert all(len(delivered[i]) == 6 for i in range(4))
        orders = {tuple(delivered[i]) for i in range(4)}
        assert len(orders) == 1

    def test_total_order_multiple_gateways(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build(4, 1, net, keys_4_1)
        inject(net, abcs, 1, [b"a1", b"a2"])
        inject(net, abcs, 3, [b"b1", b"b2"])
        net.run()
        orders = {tuple(delivered[i]) for i in range(4)}
        assert len(orders) == 1
        assert set(delivered[0]) == {b"a1", b"a2", b"b1", b"b2"}

    def test_duplicate_payload_delivered_once(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build(4, 1, net, keys_4_1)
        inject(net, abcs, 1, [b"same"])
        inject(net, abcs, 2, [b"same"])
        net.run()
        assert all(delivered[i] == [b"same"] for i in range(4))

    def test_no_recovery_when_leader_honest(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build(4, 1, net, keys_4_1)
        inject(net, abcs, 0, [b"x"])
        net.run()
        assert all(abc.stats["epoch_changes"] == 0 for abc in abcs)
        assert all(abc.stats["fast_deliveries"] == 1 for abc in abcs)


class TestFallback:
    def test_crashed_leader_epoch_change(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build(4, 1, net, keys_4_1)
        net.node(0).dropped = True
        inject(net, abcs, 2, [b"r0", b"r1", b"r2"])
        net.run(until=300)
        for i in (1, 2, 3):
            assert sorted(delivered[i]) == [b"r0", b"r1", b"r2"], f"replica {i}"
            assert abcs[i].epoch >= 1
        orders = {tuple(delivered[i]) for i in (1, 2, 3)}
        assert len(orders) == 1

    def test_liveness_after_recovery(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build(4, 1, net, keys_4_1)
        net.node(0).dropped = True
        inject(net, abcs, 2, [b"before"])
        net.run(until=300)
        assert all(b"before" in delivered[i] for i in (1, 2, 3))
        # New epoch should now deliver quickly on the fast path.
        inject(net, abcs, 1, [b"after"])
        net.run(until=600)
        for i in (1, 2, 3):
            assert delivered[i][-1] == b"after"
            assert tuple(delivered[i]) == tuple(delivered[1])

    def test_two_successive_leader_crashes(self):
        pairs, pubs = auth_keys(7)
        coins = coin_keys(7, 2)
        net = make_lan(7)
        abcs, delivered = build(7, 2, net, (pairs, pubs, coins), timeout=1.0)
        net.node(0).dropped = True
        net.node(1).dropped = True
        inject(net, abcs, 3, [b"x", b"y"])
        net.run(until=900)
        for i in range(2, 7):
            assert sorted(delivered[i]) == [b"x", b"y"], f"replica {i}"
        orders = {tuple(delivered[i]) for i in range(2, 7)}
        assert len(orders) == 1


class TestByzantineLeader:
    def test_equivocating_leader_cannot_split_order(self, keys_4_1):
        """Leader 0 sends conflicting ORDERs for the same slot."""
        pairs, pubs, coins = keys_4_1
        net = make_lan(4)
        abcs, delivered = build(4, 1, net, keys_4_1, timeout=1.0)
        payload_a, payload_b = b"AAAA", b"BBBB"
        order_a = AbcOrder(0, 0, derive_request_id(payload_a), payload_a)
        order_b = AbcOrder(0, 0, derive_request_id(payload_b), payload_b)
        # Replicas 1,2 get A; replica 3 gets B.
        net.node(0).send(1, order_a)
        net.node(0).send(2, order_a)
        net.node(0).send(3, order_b)
        net.run(until=300)
        values_at_slot = set()
        for i in (1, 2, 3):
            if delivered[i]:
                values_at_slot.add(delivered[i][0])
        assert len(values_at_slot) <= 1  # agreement even under equivocation

    def test_forged_order_from_non_leader_ignored(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build(4, 1, net, keys_4_1, timeout=5.0)
        payload = b"forged"
        order = AbcOrder(0, 0, derive_request_id(payload), payload)
        net.node(2).send(1, order)  # replica 2 is not epoch-0 leader
        net.run(until=2)
        assert delivered[1] == []

    def test_bad_request_id_ignored(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build(4, 1, net, keys_4_1, timeout=5.0)
        order = AbcOrder(0, 0, "wrong-id", b"payload")
        net.node(0).send(1, order)
        net.run(until=2)
        assert delivered[1] == []


class TestHelpers:
    def test_derive_request_id_deterministic(self):
        assert derive_request_id(b"x") == derive_request_id(b"x")
        assert derive_request_id(b"x") != derive_request_id(b"y")

    def test_request_digest_binds_slot(self):
        assert request_digest(0, 1, b"p") != request_digest(0, 2, b"p")
        assert request_digest(0, 1, b"p") != request_digest(1, 1, b"p")
