"""Randomized binary Byzantine agreement."""

import pytest

from repro.broadcast.aba import BinaryAgreement

from tests.broadcast.harness import OutgoingRouter, coin_keys, make_lan


@pytest.fixture(scope="module")
def shares_4_1():
    return coin_keys(4, 1)


def build(n, t, net, shares):
    decisions = {i: {} for i in range(n)}
    abas = []
    routers = []
    for i in range(n):
        router = OutgoingRouter(net, i, n)
        aba = BinaryAgreement(
            n, t, i, shares[i],
            on_decide=lambda sid, v, i=i: decisions[i].__setitem__(sid, v),
        )
        abas.append(aba)
        routers.append(router)

        def handler(sender, msg, aba=aba, router=router):
            router.send_all(aba.on_message(sender, msg))

        router.loopback = handler
        net.node(i).set_handler(handler)
    return abas, routers, decisions


def propose_all(net, abas, routers, sid, values):
    for i, value in enumerate(values):
        if value is None:
            continue
        routers[i].send_all(abas[i].propose(sid, value))


class TestAgreement:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_decides_that_value(self, shares_4_1, value):
        net = make_lan(4)
        abas, routers, decisions = build(4, 1, net, shares_4_1)
        propose_all(net, abas, routers, "s", [value] * 4)
        net.run(until=60)
        for i in range(4):
            assert decisions[i].get("s") == value, f"replica {i}"

    def test_mixed_proposals_agree(self, shares_4_1):
        net = make_lan(4)
        abas, routers, decisions = build(4, 1, net, shares_4_1)
        propose_all(net, abas, routers, "s", [0, 1, 0, 1])
        net.run(until=120)
        values = {decisions[i].get("s") for i in range(4)}
        assert len(values) == 1
        assert values.pop() in (0, 1)

    def test_crashed_minority_does_not_block(self, shares_4_1):
        net = make_lan(4)
        abas, routers, decisions = build(4, 1, net, shares_4_1)
        net.node(3).dropped = True
        propose_all(net, abas, routers, "s", [1, 1, 1, None])
        net.run(until=120)
        for i in range(3):
            assert decisions[i].get("s") == 1

    def test_multiple_instances_independent(self, shares_4_1):
        net = make_lan(4)
        abas, routers, decisions = build(4, 1, net, shares_4_1)
        propose_all(net, abas, routers, "x", [1, 1, 1, 1])
        propose_all(net, abas, routers, "y", [0, 0, 0, 0])
        net.run(until=120)
        for i in range(4):
            assert decisions[i]["x"] == 1
            assert decisions[i]["y"] == 0

    def test_validity_unanimous_zero(self, shares_4_1):
        """Decision must be a proposed value: all-0 can never yield 1."""
        for seed in range(3):
            net = make_lan(4, seed=seed)
            abas, routers, decisions = build(4, 1, net, shares_4_1)
            propose_all(net, abas, routers, "s", [0, 0, 0, 0])
            net.run(until=120)
            assert all(decisions[i].get("s") == 0 for i in range(4))

    def test_decision_exposed_via_accessor(self, shares_4_1):
        net = make_lan(4)
        abas, routers, decisions = build(4, 1, net, shares_4_1)
        propose_all(net, abas, routers, "s", [1, 1, 1, 1])
        net.run(until=60)
        assert abas[0].decision("s") == 1
        assert abas[0].decision("other") is None

    def test_seven_replicas_two_crashes(self):
        shares = coin_keys(7, 2)
        net = make_lan(7)
        abas, routers, decisions = build(7, 2, net, shares)
        net.node(5).dropped = True
        net.node(6).dropped = True
        propose_all(net, abas, routers, "s", [1, 0, 1, 0, 1, None, None])
        net.run(until=240)
        values = {decisions[i].get("s") for i in range(5)}
        assert len(values) == 1 and values.pop() in (0, 1)
