"""Bracha reliable broadcast."""

from repro.broadcast.messages import RbcEcho, RbcReady, RbcSend
from repro.broadcast.rbc import ReliableBroadcast

from tests.broadcast.harness import OutgoingRouter, make_lan


def build(n, t, net):
    delivered = {i: {} for i in range(n)}
    rbcs = []
    routers = []
    for i in range(n):
        router = OutgoingRouter(net, i, n)
        rbc = ReliableBroadcast(
            n, t, i,
            deliver=lambda sid, payload, i=i: delivered[i].__setitem__(sid, payload),
        )
        routers.append(router)
        rbcs.append(rbc)

        def handler(sender, msg, rbc=rbc, router=router):
            router.send_all(rbc.on_message(sender, msg))

        router.loopback = handler
        net.node(i).set_handler(handler)
    return rbcs, routers, delivered


class TestFaultFree:
    def test_all_deliver_same_payload(self):
        net = make_lan(4)
        rbcs, routers, delivered = build(4, 1, net)
        routers[0].send_all(rbcs[0].broadcast("sid1", b"payload"))
        net.run()
        assert all(delivered[i].get("sid1") == b"payload" for i in range(4))

    def test_concurrent_sessions(self):
        net = make_lan(4)
        rbcs, routers, delivered = build(4, 1, net)
        routers[0].send_all(rbcs[0].broadcast("a", b"one"))
        routers[2].send_all(rbcs[2].broadcast("b", b"two"))
        net.run()
        for i in range(4):
            assert delivered[i] == {"a": b"one", "b": b"two"}

    def test_delivered_accessor(self):
        net = make_lan(4)
        rbcs, routers, delivered = build(4, 1, net)
        routers[1].send_all(rbcs[1].broadcast("s", b"x"))
        net.run()
        assert rbcs[3].delivered("s") == b"x"
        assert rbcs[3].delivered("unknown") is None


class TestByzantine:
    def test_equivocating_broadcaster_cannot_split_honest(self):
        """Node 0 sends payload A to half the group and B to the other."""
        net = make_lan(4)
        rbcs, routers, delivered = build(4, 1, net)
        net.node(0).send(1, RbcSend("s", b"A"))
        net.node(0).send(2, RbcSend("s", b"A"))
        net.node(0).send(3, RbcSend("s", b"B"))
        net.run()
        values = {delivered[i].get("s") for i in (1, 2, 3)}
        values.discard(None)
        # Agreement: at most one value delivered among honest replicas.
        assert len(values) <= 1

    def test_no_delivery_without_quorum(self):
        net = make_lan(4)
        rbcs, routers, delivered = build(4, 1, net)
        # A single spoofed READY is far below the 2t+1 quorum.
        net.node(0).send(1, RbcReady("s", b"\x00" * 32))
        net.run()
        assert delivered[1] == {}

    def test_crash_of_t_after_send_still_delivers(self):
        net = make_lan(4)
        rbcs, routers, delivered = build(4, 1, net)
        routers[0].send_all(rbcs[0].broadcast("s", b"x"))
        # One non-broadcaster crashes immediately.
        net.node(3).dropped = True
        net.run()
        assert all(delivered[i].get("s") == b"x" for i in (0, 1, 2))

    def test_forged_echo_minority_ignored(self):
        net = make_lan(4)
        rbcs, routers, delivered = build(4, 1, net)
        routers[0].send_all(rbcs[0].broadcast("s", b"good"))
        net.node(2).send(1, RbcEcho("s", b"evil"))
        net.run()
        assert delivered[1]["s"] == b"good"
