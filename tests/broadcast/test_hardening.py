"""Byzantine resource-exhaustion hardening pinned by the taint analysis.

These regressions cover the true positives the interprocedural taint run
surfaced: digest stuffing in the ABC prepare/commit pools, far-future
epoch spam in complaints and epoch finals, and digest spam in the RBC
echo/ready pools.  Admission is bounded *per sender* — a global
first-come cap would itself be an attack surface: one Byzantine replica
could fill a slot with invented digests before the honest leader's
prepare arrives and censor the slot forever.
"""

import pytest

from repro.broadcast import rbc as rbc_mod
from repro.broadcast.abc import MAX_EPOCH_AHEAD
from repro.broadcast.messages import AbcCommit, AbcComplain
from repro.broadcast.rbc import RbcEcho, RbcInstance, RbcReady, RbcSend

from tests.broadcast.harness import auth_keys, coin_keys, make_lan
from tests.broadcast.test_abc import build


@pytest.fixture(scope="module")
def keys_4_1():
    pairs, pubs = auth_keys(4)
    coins = coin_keys(4, 1)
    return pairs, pubs, coins


def make_abc(keys, index=0):
    net = make_lan(4)
    abcs, _delivered = build(4, 1, net, keys)
    return abcs[index]


class TestSlotDigestAdmission:
    def test_one_introduced_digest_per_sender_per_slot(self, keys_4_1):
        abc = make_abc(keys_4_1)
        assert abc._admit_slot_digest(2, 0, 0, b"\x01" * 32)
        # the same sender cannot introduce a second distinct digest
        assert not abc._admit_slot_digest(2, 0, 0, b"\x02" * 32)
        # but revoting its own digest stays admitted
        assert abc._admit_slot_digest(2, 0, 0, b"\x01" * 32)

    def test_voting_an_admitted_digest_is_free(self, keys_4_1):
        abc = make_abc(keys_4_1)
        assert abc._admit_slot_digest(2, 0, 0, b"\x01" * 32)
        # other senders may vote for sender 2's digest without burning
        # their own introduction budget ...
        assert abc._admit_slot_digest(3, 0, 0, b"\x01" * 32)
        # ... and can still introduce their own digest afterwards
        assert abc._admit_slot_digest(3, 0, 0, b"\x03" * 32)

    def test_flooder_cannot_censor_honest_digest(self, keys_4_1):
        """The REVIEW scenario: one Byzantine replica stuffs a slot with
        invented digests before the honest leader's prepare arrives; the
        honest digest must still be admitted."""
        abc = make_abc(keys_4_1)
        for i in range(abc.n + 4):
            abc._admit_slot_digest(2, 0, 0, bytes([i + 10]) * 32)
        honest = b"\x07" * 32
        assert abc._admit_slot_digest(0, 0, 0, honest)
        assert abc._admit_slot_digest(1, 0, 0, honest)

    def test_at_most_n_distinct_digests_per_slot(self, keys_4_1):
        abc = make_abc(keys_4_1)
        for sender in range(abc.n):
            for i in range(3):  # each sender tries to introduce 3 digests
                abc._admit_slot_digest(sender, 0, 0, bytes([10 * sender + i]) * 32)
        assert len(abc._slot_digests[(0, 0)]) <= abc.n

    def test_budget_is_per_slot(self, keys_4_1):
        abc = make_abc(keys_4_1)
        abc._admit_slot_digest(2, 0, 0, b"\x01" * 32)
        # a different (epoch, seq) slot has its own budget
        assert abc._admit_slot_digest(2, 0, 1, b"\x63" * 32)

    def test_commit_digest_stuffing_bounded(self, keys_4_1):
        abc = make_abc(keys_4_1)
        for i in range(abc.n + 4):
            abc.on_message(2, AbcCommit(0, 0, bytes([i]) * 32, 2, b"sig"))
        slot_keys = [k for k in abc._commits if k[0] == 0 and k[1] == 0]
        assert len(slot_keys) <= 1  # one introduced digest per sender


class TestEpochWindows:
    def test_far_future_complain_dropped(self, keys_4_1):
        abc = make_abc(keys_4_1)
        far = abc.epoch + MAX_EPOCH_AHEAD + 1
        abc.on_message(2, AbcComplain(far, 2))
        assert far not in abc._complaints

    def test_near_future_complain_tracked(self, keys_4_1):
        abc = make_abc(keys_4_1)
        near = abc.epoch + 1
        abc.on_message(2, AbcComplain(near, 2))
        assert 2 in abc._complaints[near]

    def test_complain_flood_cannot_grow_state_unboundedly(self, keys_4_1):
        abc = make_abc(keys_4_1)
        for k in range(200):
            abc.on_message(2, AbcComplain(abc.epoch + MAX_EPOCH_AHEAD + 1 + k, 2))
        assert len(abc._complaints) == 0

    def test_out_of_window_final_skips_signature_verification(self, keys_4_1, monkeypatch):
        """Cheap epoch check runs before crypto.verify, so stale/far-future
        finals cannot be used to burn verification CPU."""
        abc = make_abc(keys_4_1)
        calls = []
        monkeypatch.setattr(
            abc.crypto, "verify", lambda *a, **k: calls.append(a) or False
        )
        from repro.broadcast.messages import AbcEpochFinal

        far = AbcEpochFinal(
            epoch=abc.epoch + MAX_EPOCH_AHEAD + 1,
            sender=2,
            delivered_seq=0,
            certificates=(),
            pending=(),
        )
        abc._on_epoch_final(2, (far, b"junk"))
        assert calls == []


class TestRbcDigestSpam:
    def _instance(self):
        return RbcInstance(4, 1, 0, "sid")

    def test_echo_equivocation_ignored(self):
        inst = self._instance()
        for i in range(12):
            inst.on_message(1, RbcEcho("sid", b"payload-%d" % i))
        # only sender 1's first digest is tracked; the rest is equivocation
        assert len(inst._echoes) == 1
        assert len(inst._payload_by_digest) == 1

    def test_ready_equivocation_ignored(self):
        inst = self._instance()
        for i in range(12):
            inst.on_message(1, RbcReady("sid", bytes([i]) * 32))
        assert len(inst._readies) == 1

    def test_tracked_state_bounded_by_n(self):
        inst = self._instance()
        for sender in range(4):
            for i in range(6):
                inst.on_message(sender, RbcEcho("sid", b"p-%d-%d" % (sender, i)))
                inst.on_message(sender, RbcReady("sid", bytes([10 * sender + i]) * 32))
        assert len(inst._echoes) <= inst.n
        assert len(inst._readies) <= inst.n
        assert len(inst._payload_by_digest) <= inst.n + 1

    def test_repeat_votes_on_same_digest_accumulate(self):
        inst = self._instance()
        inst.on_message(1, RbcEcho("sid", b"a"))
        inst.on_message(2, RbcEcho("sid", b"a"))
        digest_a = rbc_mod._digest(b"a")
        assert inst._echoes[digest_a] == {1, 2}

    def test_delivery_survives_byzantine_digest_flood(self):
        """The REVIEW scenario: a flooder spams distinct digests *before*
        any honest vote arrives; the real payload must still deliver."""
        inst = self._instance()
        for i in range(50):
            inst.on_message(1, RbcEcho("sid", b"fake-%d" % i))
            inst.on_message(1, RbcReady("sid", bytes([i]) * 32))
        payload = b"the real payload"
        digest = rbc_mod._digest(payload)
        inst.on_message(2, RbcSend("sid", payload))  # we echo the real payload
        inst.on_message(2, RbcEcho("sid", payload))
        inst.on_message(3, RbcEcho("sid", payload))  # 2t+1 echoes -> ready
        inst.on_message(2, RbcReady("sid", digest))
        inst.on_message(3, RbcReady("sid", digest))
        assert inst.delivered == payload

    def test_delivery_still_works(self):
        inst = self._instance()
        payload = b"the real payload"
        digest = rbc_mod._digest(payload)
        inst.on_message(1, RbcEcho("sid", payload))
        inst.on_message(2, RbcEcho("sid", payload))
        inst.on_message(3, RbcEcho("sid", payload))  # 2t+1 echoes -> ready
        inst.on_message(1, RbcReady("sid", digest))
        inst.on_message(2, RbcReady("sid", digest))
        assert inst.delivered == payload
