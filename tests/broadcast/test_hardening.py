"""Byzantine resource-exhaustion hardening pinned by the taint analysis.

These regressions cover the true positives the interprocedural taint run
surfaced: digest stuffing in the ABC prepare/commit pools, far-future
epoch spam in complaints and epoch finals, and digest spam in the RBC
echo/ready pools.
"""

import pytest

from repro.broadcast import rbc as rbc_mod
from repro.broadcast.abc import MAX_EPOCH_AHEAD
from repro.broadcast.messages import AbcCommit, AbcComplain
from repro.broadcast.rbc import RbcEcho, RbcInstance, RbcReady

from tests.broadcast.harness import auth_keys, coin_keys, make_lan
from tests.broadcast.test_abc import build


@pytest.fixture(scope="module")
def keys_4_1():
    pairs, pubs = auth_keys(4)
    coins = coin_keys(4, 1)
    return pairs, pubs, coins


def make_abc(keys, index=0):
    net = make_lan(4)
    abcs, _delivered = build(4, 1, net, keys)
    return abcs[index]


class TestSlotDigestCap:
    def test_at_most_n_distinct_digests_per_slot(self, keys_4_1):
        abc = make_abc(keys_4_1)
        for i in range(abc.n + 3):
            assert abc._admit_slot_digest(0, 0, bytes([i]) * 32) == (i < abc.n)

    def test_known_digest_readmitted(self, keys_4_1):
        abc = make_abc(keys_4_1)
        for i in range(abc.n):
            abc._admit_slot_digest(0, 0, bytes([i]) * 32)
        # a digest admitted before the cap stays admitted (revotes work)
        assert abc._admit_slot_digest(0, 0, bytes([0]) * 32)

    def test_cap_is_per_slot(self, keys_4_1):
        abc = make_abc(keys_4_1)
        for i in range(abc.n):
            abc._admit_slot_digest(0, 0, bytes([i]) * 32)
        # a different (epoch, seq) slot has its own budget
        assert abc._admit_slot_digest(0, 1, bytes([99]) * 32)

    def test_commit_digest_stuffing_bounded(self, keys_4_1):
        abc = make_abc(keys_4_1)
        for i in range(abc.n + 4):
            abc.on_message(2, AbcCommit(0, 0, bytes([i]) * 32, 2, b"sig"))
        slot_keys = [k for k in abc._commits if k[0] == 0 and k[1] == 0]
        assert len(slot_keys) <= abc.n


class TestEpochWindows:
    def test_far_future_complain_dropped(self, keys_4_1):
        abc = make_abc(keys_4_1)
        far = abc.epoch + MAX_EPOCH_AHEAD + 1
        abc.on_message(2, AbcComplain(far, 2))
        assert far not in abc._complaints

    def test_near_future_complain_tracked(self, keys_4_1):
        abc = make_abc(keys_4_1)
        near = abc.epoch + 1
        abc.on_message(2, AbcComplain(near, 2))
        assert 2 in abc._complaints[near]

    def test_complain_flood_cannot_grow_state_unboundedly(self, keys_4_1):
        abc = make_abc(keys_4_1)
        for k in range(200):
            abc.on_message(2, AbcComplain(abc.epoch + MAX_EPOCH_AHEAD + 1 + k, 2))
        assert len(abc._complaints) == 0


class TestRbcDigestSpam:
    def _instance(self):
        return RbcInstance(4, 1, 0, "sid")

    def test_echo_digest_spam_capped(self, monkeypatch):
        monkeypatch.setattr(rbc_mod, "MAX_TRACKED_PAYLOADS", 8)
        inst = self._instance()
        for i in range(12):
            inst.on_message(1, RbcEcho("sid", b"payload-%d" % i))
        assert len(inst._echoes) == 8

    def test_ready_digest_spam_capped(self, monkeypatch):
        monkeypatch.setattr(rbc_mod, "MAX_TRACKED_PAYLOADS", 8)
        inst = self._instance()
        for i in range(12):
            inst.on_message(1, RbcReady("sid", bytes([i]) * 32))
        assert len(inst._readies) == 8

    def test_known_digest_still_accumulates_votes_at_cap(self, monkeypatch):
        monkeypatch.setattr(rbc_mod, "MAX_TRACKED_PAYLOADS", 2)
        inst = self._instance()
        inst.on_message(1, RbcEcho("sid", b"a"))
        inst.on_message(1, RbcEcho("sid", b"b"))
        inst.on_message(1, RbcEcho("sid", b"c"))  # spam: dropped
        inst.on_message(2, RbcEcho("sid", b"a"))  # vote on tracked digest: kept
        digest_a = rbc_mod._digest(b"a")
        assert inst._echoes[digest_a] == {1, 2}
        assert len(inst._echoes) == 2

    def test_delivery_still_works_under_cap(self, monkeypatch):
        monkeypatch.setattr(rbc_mod, "MAX_TRACKED_PAYLOADS", 4)
        inst = self._instance()
        payload = b"the real payload"
        digest = rbc_mod._digest(payload)
        inst.on_message(1, RbcEcho("sid", payload))
        inst.on_message(2, RbcEcho("sid", payload))
        inst.on_message(3, RbcEcho("sid", payload))  # 2t+1 echoes -> ready
        inst.on_message(1, RbcReady("sid", digest))
        inst.on_message(2, RbcReady("sid", digest))
        assert inst.delivered == payload
