"""Leader-side re-batching of the recovery backlog on epoch change.

When a new leader takes over it re-frames the piled-up pending requests
into fresh batch frames of up to ``rebatch_max`` payloads per sequence
slot, instead of running one agreement instance per request.  These
tests crash the epoch-0 leader with a backlog outstanding and check the
frames, the dedupe bookkeeping, and the delivered contents.
"""

import pytest

from repro.broadcast.abc import AtomicBroadcast
from repro.broadcast.messages import decode_batch, is_batch_payload
from repro.errors import ConfigError

from tests.broadcast.harness import auth_keys, coin_keys, make_lan


@pytest.fixture(scope="module")
def keys_4_1():
    pairs, pubs = auth_keys(4)
    coins = coin_keys(4, 1)
    return pairs, pubs, coins


def build(n, t, net, keys, timeout=1.0, rebatch_max=1):
    pairs, pubs, coins = keys
    delivered = {i: [] for i in range(n)}
    abcs = []
    for i in range(n):
        node = net.node(i)
        abc = AtomicBroadcast(
            n, t, i,
            auth_key=pairs[i].private,
            auth_public=pubs,
            coin_key=coins[i],
            deliver=lambda rid, payload, i=i: delivered[i].append(payload),
            send=node.send,
            schedule=node.schedule_timer,
            timeout=timeout,
            rebatch_max=rebatch_max,
        )
        abcs.append(abc)
        node.set_handler(lambda s, m, abc=abc: abc.on_message(s, m))
    return abcs, delivered


def inject(net, abcs, replica, payloads, spacing=0.001):
    for k, payload in enumerate(payloads):
        net.node(replica).run_local(
            spacing * k, lambda p=payload: abcs[replica].a_broadcast(p)
        )


def unwrap(payloads):
    """Flatten delivered ABC payloads, decoding (nested) batch frames."""
    flat = []
    for payload in payloads:
        if is_batch_payload(payload):
            flat.extend(unwrap(decode_batch(payload)))
        else:
            flat.append(payload)
    return flat


def test_rebatch_max_is_validated(keys_4_1):
    net = make_lan(4)
    pairs, pubs, coins = keys_4_1
    node = net.node(0)
    with pytest.raises(ConfigError):
        AtomicBroadcast(
            4, 1, 0,
            auth_key=pairs[0].private,
            auth_public=pubs,
            coin_key=coins[0],
            deliver=lambda rid, payload: None,
            send=node.send,
            schedule=node.schedule_timer,
            rebatch_max=0,
        )


def test_new_leader_rebatches_backlog(keys_4_1):
    net = make_lan(4)
    abcs, delivered = build(4, 1, net, keys_4_1, rebatch_max=4)
    payloads = [f"backlog{k}".encode() for k in range(6)]
    net.node(0).dropped = True
    inject(net, abcs, 2, payloads)
    net.run(until=300)
    # The new leader re-framed 6 pending requests into ceil(6/4) = 2 slots.
    leader = abcs[1]
    assert leader.stats["rebatches"] == 2
    assert leader.stats["rebatched_requests"] == 6
    for i in (1, 2, 3):
        assert sorted(unwrap(delivered[i])) == sorted(payloads), f"replica {i}"
    # Everyone delivered the same frames in the same total order.
    orders = {tuple(delivered[i]) for i in (1, 2, 3)}
    assert len(orders) == 1
    # At least one delivered payload really is a batch frame.
    assert any(is_batch_payload(p) for p in delivered[1])


def test_rebatch_disabled_by_default(keys_4_1):
    net = make_lan(4)
    abcs, delivered = build(4, 1, net, keys_4_1)  # rebatch_max=1
    payloads = [f"solo{k}".encode() for k in range(3)]
    net.node(0).dropped = True
    inject(net, abcs, 2, payloads)
    net.run(until=300)
    for abc in abcs[1:]:
        assert abc.stats["rebatches"] == 0
    for i in (1, 2, 3):
        assert sorted(delivered[i]) == sorted(payloads), f"replica {i}"
        assert not any(is_batch_payload(p) for p in delivered[i])


def test_single_request_backlog_is_not_framed(keys_4_1):
    net = make_lan(4)
    abcs, delivered = build(4, 1, net, keys_4_1, rebatch_max=8)
    net.node(0).dropped = True
    inject(net, abcs, 2, [b"only-one"])
    net.run(until=300)
    assert abcs[1].stats["rebatches"] == 0
    for i in (1, 2, 3):
        assert delivered[i] == [b"only-one"], f"replica {i}"


def test_rebatched_requests_stay_deduplicated(keys_4_1):
    net = make_lan(4)
    abcs, delivered = build(4, 1, net, keys_4_1, rebatch_max=4)
    payloads = [f"dedupe{k}".encode() for k in range(4)]
    net.node(0).dropped = True
    inject(net, abcs, 2, payloads)
    net.run(until=300)
    assert sorted(unwrap(delivered[1])) == sorted(payloads)
    # Re-broadcasting a payload that was delivered inside a re-batched
    # frame must be deduplicated (its request id was marked delivered),
    # while genuinely new traffic still goes through.
    inject(net, abcs, 3, [payloads[0], b"fresh"])
    net.run(until=600)
    for i in (1, 2, 3):
        flat = unwrap(delivered[i])
        assert flat.count(payloads[0]) == 1, f"replica {i}"
        assert flat.count(b"fresh") == 1, f"replica {i}"
