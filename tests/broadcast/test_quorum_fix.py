"""Regression tests for the general-n quorum fixes (Q501/Q502).

Found by the first whole-repo ``repro lint --quorum`` run: the prepare
certificate chain in ``broadcast.abc`` and the echo quorum in
``broadcast.rbc`` used ``2t+1``, which only guarantees pairwise quorum
intersection when ``n == 3t+1`` exactly.  At (n=5, t=1) two 3-member
quorums can share a single — possibly Byzantine — replica, so an
equivocating signer could complete *two* conflicting prepare
certificates (or two conflicting READY amplifications) for the same
slot.  The safe general-n quorum is ``n - t``.
"""

from repro.broadcast.abc import (
    AtomicBroadcast,
    AuthPlane,
    _prepare_signing_input,
    request_digest,
)
from repro.broadcast.messages import PrepareCertificate, RbcEcho
from repro.broadcast.rbc import RbcInstance

from tests.broadcast.harness import auth_keys, coin_keys, make_lan


def build_one(n, t, me=0):
    """A single AtomicBroadcast replica on a quiet simulated network."""
    pairs, pubs = auth_keys(n)
    coins = coin_keys(n, t)
    net = make_lan(n)
    node = net.node(me)
    abc = AtomicBroadcast(
        n, t, me,
        auth_key=pairs[me].private,
        auth_public=pubs,
        coin_key=coins[me],
        deliver=lambda rid, payload: None,
        send=node.send,
        schedule=node.schedule_timer,
        timeout=1.0,
    )
    return abc, pairs, pubs


def forge_certificate(pairs, pubs, epoch, seq, payload, signers):
    digest = request_digest(epoch, seq, payload)
    data = _prepare_signing_input(epoch, seq, digest)
    signatures = tuple(
        (i, AuthPlane(pairs[i].private, pubs).sign(data)) for i in signers
    )
    return PrepareCertificate(
        epoch=epoch, seq=seq, digest=digest, payload=payload,
        signatures=signatures,
    )


class TestCertificateQuorumAtN5T1:
    """n=5, t=1: n-t = 4 > 2t+1 = 3.  Three signatures must not certify."""

    def test_conflicting_sub_quorum_certificates_rejected(self):
        abc, pairs, pubs = build_one(5, 1)
        # Replica 4 equivocates: it signs both payloads.  {0,1,4} and
        # {2,3,4} are disjoint apart from the equivocator, so under the
        # old 2t+1 threshold *both* conflicting certificates validated.
        cert_a = forge_certificate(pairs, pubs, 0, 0, b"alpha", (0, 1, 4))
        cert_b = forge_certificate(pairs, pubs, 0, 0, b"bravo", (2, 3, 4))
        assert not abc._validate_certificate(cert_a)
        assert not abc._validate_certificate(cert_b)

    def test_full_intersection_quorum_accepted(self):
        abc, pairs, pubs = build_one(5, 1)
        cert = forge_certificate(pairs, pubs, 0, 0, b"alpha", (0, 1, 2, 3))
        assert abc._validate_certificate(cert)

    def test_certificate_truncation_keeps_full_quorum(self):
        # Q502 regression: a certificate formed from a full 5-signer pool
        # must keep n-t = 4 signatures, not truncate to 2t+1 = 3 (which
        # downstream n-t validation would reject).
        abc, pairs, pubs = build_one(5, 1)
        payload = b"alpha"
        digest = request_digest(0, 0, payload)
        data = _prepare_signing_input(0, 0, digest)
        pool = {
            i: AuthPlane(pairs[i].private, pubs).sign(data) for i in range(5)
        }
        abc._payload_by_digest[digest] = (b"r" * 16, payload)
        abc._form_certificate(0, 0, digest, pool)
        cert = abc._certificates[0]
        assert len(cert.signatures) == abc.n - abc.t
        assert abc._validate_certificate(cert)


class TestEchoQuorumAtN5T1:
    def test_three_echoes_do_not_amplify(self):
        rbc = RbcInstance(5, 1, me=0, sid="s")
        echo = RbcEcho("s", b"payload")
        out = []
        for sender in (1, 2, 3):
            out.extend(rbc._on_echo(sender, echo))
        assert out == []
        assert not rbc._sent_ready

    def test_n_minus_t_echoes_amplify(self):
        rbc = RbcInstance(5, 1, me=0, sid="s")
        echo = RbcEcho("s", b"payload")
        out = []
        for sender in (1, 2, 3, 4):
            out.extend(rbc._on_echo(sender, echo))
        assert rbc._sent_ready
        assert out, "n-t echoes must trigger the READY amplification"

    def test_quorum_unchanged_at_minimal_cluster(self):
        # At n == 3t+1 the fix is behavior-preserving: n-t == 2t+1.
        rbc = RbcInstance(4, 1, me=0, sid="s")
        echo = RbcEcho("s", b"payload")
        for sender in (1, 2):
            rbc._on_echo(sender, echo)
        assert not rbc._sent_ready
        rbc._on_echo(3, echo)
        assert rbc._sent_ready
