"""Atomic broadcast under adversarial timing and network conditions."""

import pytest

from repro.sim.machines import lan_setup, paper_setup
from repro.sim.network import SimNetwork

from tests.broadcast.harness import auth_keys, coin_keys
from tests.broadcast.test_abc import build, inject


@pytest.fixture(scope="module")
def keys_4_1():
    pairs, pubs = auth_keys(4)
    coins = coin_keys(4, 1)
    return pairs, pubs, coins


class SlowLinkNetwork(SimNetwork):
    """A network where chosen links are drastically slower."""

    def __init__(self, topology, slow_pairs, slowdown=0.4, **kwargs):
        super().__init__(topology, **kwargs)
        self._slow_pairs = set(slow_pairs)
        self._slowdown = slowdown

    def _link_delay(self, src, dest):
        base = super()._link_delay(src, dest)
        if (src, dest) in self._slow_pairs or (dest, src) in self._slow_pairs:
            return base + self._slowdown
        return base


class TestSlowLinks:
    def test_order_consistent_with_asymmetric_delays(self, keys_4_1):
        """Slow links reorder message arrivals between replicas; the
        total delivery order must still be identical everywhere."""
        net = SlowLinkNetwork(
            lan_setup(4), slow_pairs={(0, 3), (1, 2)}, cpu_jitter=0.0
        )
        abcs, delivered = build(4, 1, net, keys_4_1, timeout=30.0)
        inject(net, abcs, 1, [f"a{k}".encode() for k in range(4)])
        inject(net, abcs, 2, [f"b{k}".encode() for k in range(4)])
        net.run()
        orders = {tuple(delivered[i]) for i in range(4)}
        assert len(orders) == 1
        assert len(delivered[0]) == 8

    def test_slow_follower_catches_up(self, keys_4_1):
        """A replica behind very slow links still delivers everything."""
        net = SlowLinkNetwork(
            lan_setup(4),
            slow_pairs={(3, 0), (3, 1), (3, 2)},
            slowdown=0.8,
            cpu_jitter=0.0,
        )
        abcs, delivered = build(4, 1, net, keys_4_1, timeout=30.0)
        inject(net, abcs, 0, [b"x", b"y", b"z"])
        net.run()
        assert delivered[3] == delivered[0]
        assert len(delivered[3]) == 3


class TestWanDeployment:
    def test_total_order_on_paper_topology(self, keys_4_1):
        net = SimNetwork(paper_setup(4), cpu_jitter=0.0)
        abcs, delivered = build(4, 1, net, keys_4_1, timeout=30.0)
        inject(net, abcs, 0, [f"req{k}".encode() for k in range(5)])
        net.run()
        orders = {tuple(delivered[i]) for i in range(4)}
        assert len(orders) == 1
        assert len(delivered[0]) == 5
        # Fast-path delivery over the WAN completes in under a second.
        assert net.sim.now < 1.0


class TestCrashDuringEpochChange:
    def test_leader_crash_mid_stream(self, keys_4_1):
        """The leader crashes after ordering some requests; everything
        injected before and after still delivers in one agreed order."""
        net = SimNetwork(lan_setup(4), cpu_jitter=0.0)
        abcs, delivered = build(4, 1, net, keys_4_1, timeout=1.0)
        inject(net, abcs, 1, [b"early0", b"early1"])
        # Crash the leader shortly after the first batch.
        net.sim.schedule(0.5, lambda: setattr(net.node(0), "dropped", True))  # noqa: B010
        net.node(1).run_local(0.6, lambda: abcs[1].a_broadcast(b"late0"))
        net.node(2).run_local(0.7, lambda: abcs[2].a_broadcast(b"late1"))
        net.run(until=600)
        for i in (1, 2, 3):
            assert sorted(delivered[i]) == [b"early0", b"early1", b"late0", b"late1"]
        orders = {tuple(delivered[i]) for i in (1, 2, 3)}
        assert len(orders) == 1

    def test_no_duplicate_delivery_across_epochs(self, keys_4_1):
        """Requests certified in the crashed epoch must deliver exactly
        once after recovery adopts the certificates."""
        net = SimNetwork(lan_setup(4), cpu_jitter=0.0)
        abcs, delivered = build(4, 1, net, keys_4_1, timeout=1.0)
        inject(net, abcs, 2, [b"once"])
        net.sim.schedule(0.0005, lambda: setattr(net.node(0), "dropped", True))  # noqa: B010
        net.run(until=600)
        for i in (1, 2, 3):
            assert delivered[i].count(b"once") == 1
