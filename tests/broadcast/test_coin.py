"""Threshold common coin."""

import pytest

from repro.broadcast.coin import CommonCoin
from repro.broadcast.messages import CoinShare
from repro.crypto.shoup import SignatureShare

from tests.broadcast.harness import OutgoingRouter, coin_keys, make_lan


def build(n, t, net, shares):
    values = {i: {} for i in range(n)}
    coins = []
    for i in range(n):
        router = OutgoingRouter(net, i, n)
        coin = CommonCoin(
            shares[i], i,
            on_value=lambda sid, r, v, i=i: values[i].__setitem__((sid, r), v),
        )
        coins.append(coin)

        def handler(sender, msg, coin=coin, router=router):
            router.send_all(coin.on_message(sender, msg))

        router.loopback = handler
        net.node(i).set_handler(handler)
    return coins, values


@pytest.fixture(scope="module")
def shares_4_1():
    return coin_keys(4, 1)


class TestCoin:
    def test_all_nodes_agree_on_value(self, shares_4_1):
        net = make_lan(4)
        coins, values = build(4, 1, net, shares_4_1)
        for i in range(4):
            router = OutgoingRouter(net, i, 4)
            router.send_all(coins[i].request("sid", 0))
        net.run()
        observed = {values[i][("sid", 0)] for i in range(4)}
        assert len(observed) == 1
        assert observed.pop() in (0, 1)

    def test_rounds_are_independent(self, shares_4_1):
        net = make_lan(4)
        coins, values = build(4, 1, net, shares_4_1)
        for round_ in range(8):
            for i in range(4):
                OutgoingRouter(net, i, 4).send_all(coins[i].request("s", round_))
        net.run()
        bits = [values[0][("s", r)] for r in range(8)]
        # Eight coins should not all collapse to a constant (p = 2^-7 each way).
        assert len(set(bits)) == 2 or len(bits) < 4

    def test_t_shares_insufficient(self, shares_4_1):
        net = make_lan(4)
        coins, values = build(4, 1, net, shares_4_1)
        # Only node 0 reveals; t+1 = 2 shares are needed.
        OutgoingRouter(net, 0, 4).send_all(coins[0].request("sid", 0))
        net.run()
        assert ("sid", 0) not in values[1]
        assert coins[1].value("sid", 0) is None

    def test_invalid_share_rejected(self, shares_4_1):
        net = make_lan(4)
        coins, values = build(4, 1, net, shares_4_1)
        OutgoingRouter(net, 1, 4).send_all(coins[1].request("sid", 0))
        # Node 0 sends a garbage share claiming index 1 (its own).
        garbage = SignatureShare(index=1, value=12345)
        net.node(0).send(1, CoinShare("sid", 0, garbage))
        net.run()
        # One real share + garbage is below threshold.
        assert coins[1].value("sid", 0) is None

    def test_share_from_wrong_sender_rejected(self, shares_4_1):
        net = make_lan(4)
        coins, values = build(4, 1, net, shares_4_1)
        OutgoingRouter(net, 1, 4).send_all(coins[1].request("sid", 0))
        # Node 0 replays node 3's hypothetical share index — not its own.
        msg = b"coin/sid/0"
        stolen = shares_4_1[2].generate_share_with_proof(msg)  # index 3
        net.node(0).send(1, CoinShare("sid", 0, stolen))
        net.run()
        assert coins[1].value("sid", 0) is None

    def test_duplicate_request_idempotent(self, shares_4_1):
        net = make_lan(4)
        coins, _ = build(4, 1, net, shares_4_1)
        first = coins[0].request("sid", 0)
        again = coins[0].request("sid", 0)
        assert first and not again
