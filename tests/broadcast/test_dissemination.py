"""The big-n broadcast plane: digest votes, pulls, and erasure dispersal.

RBC-level attacks run at the (10, 3) target cluster — duplicate and
equivocating echo votes, a Byzantine sender that withholds the payload
after the digest quorum formed (the pull fallback must deliver), and
inconsistently erasure-coded batches (no honest replica may deliver).
ABC-level tests drive the same machinery end to end through the atomic
broadcast: digest ORDERs resolved by pull, the empty-payload edge, and
erasure dispersal with reconstruction.
"""

import pytest

from repro.broadcast.abc import AtomicBroadcast
from repro.broadcast.messages import (
    AbcInitiate,
    RbcEchoDigest,
    RbcFrag,
    RbcPull,
    RbcSend,
    RbcVal,
)
from repro.broadcast.rbc import MAX_PULL_SERVES, RbcInstance, ReliableBroadcast
from repro.crypto.merkle import merkle_proof, merkle_root
from repro.errors import ConfigError
from repro.util.erasure import rs_encode

from tests.broadcast.harness import auth_keys, coin_keys, make_lan

N, T = 10, 3
K = N - 2 * T


def build_rbc(n, t, net, mode):
    """RBC multiplexers with the pull-retry timer plumbing wired in."""
    delivered = {i: {} for i in range(n)}
    rbcs = []
    for i in range(n):
        node = net.node(i)

        def emit(outs, i=i):
            for dest, msg in outs:
                if dest == -1:
                    for peer in range(n):
                        if peer != i:
                            net.node(i).send(peer, msg)
                elif dest != i:
                    net.node(i).send(dest, msg)

        rbc = ReliableBroadcast(
            n, t, i,
            deliver=lambda sid, p, i=i: delivered[i].__setitem__(sid, p),
            mode=mode,
            schedule=node.schedule_timer,
            emit=emit,
        )
        rbcs.append(rbc)
        node.set_handler(
            lambda s, m, rbc=rbc, emit=emit: emit(rbc.on_message(s, m))
        )

    def send_all(sender, outs):
        for dest, msg in outs:
            if dest == -1:
                for peer in range(n):
                    if peer != sender:
                        net.node(sender).send(peer, msg)
            elif dest != sender:
                net.node(sender).send(dest, msg)

    return rbcs, delivered, send_all


class TestRbcDigestMode:
    def test_delivers_without_payload_echoes(self):
        net = make_lan(N)
        rbcs, delivered, send_all = build_rbc(N, T, net, "digest")
        payload = b"\xab" * 4096
        send_all(0, rbcs[0].broadcast("s", payload))
        net.run()
        assert all(delivered[i].get("s") == payload for i in range(N))
        # The whole point: no full-payload echo ever hits the wire.
        assert "RbcEcho" not in net.bytes_by_type
        assert net.bytes_by_type["RbcEchoDigest"] > 0

    def test_duplicate_echo_votes_counted_once(self):
        inst = RbcInstance(N, T, me=0, sid="s", mode="digest")
        digest = b"\x42" * 32
        for _ in range(5):
            inst.on_message(4, RbcEchoDigest("s", digest))
        assert len(inst._echoes[digest]) == 1
        assert not inst._sent_ready  # one voter is far below n - t

    def test_equivocating_echo_votes_dropped(self):
        inst = RbcInstance(N, T, me=0, sid="s", mode="digest")
        first, second = b"\x01" * 32, b"\x02" * 32
        inst.on_message(4, RbcEchoDigest("s", first))
        inst.on_message(4, RbcEchoDigest("s", second))
        assert len(inst._echoes[first]) == 1
        assert second not in inst._echoes  # equivocation: vote ignored

    def test_equivocating_echoes_cannot_split_cluster(self):
        net = make_lan(N)
        rbcs, delivered, send_all = build_rbc(N, T, net, "digest")
        payload = b"good payload" * 100
        # Replica 5 seeds half the cluster with a forged digest before the
        # honest broadcast; its genuine echo then conflicts and is dropped
        # at those receivers, but 9 other honest voters still clear n - t.
        for peer in (1, 2, 3, 4):
            net.node(5).send(peer, RbcEchoDigest("s", b"\x11" * 32))
        send_all(0, rbcs[0].broadcast("s", payload))
        net.run()
        values = {delivered[i].get("s") for i in range(N)}
        assert values == {payload}

    def test_withholding_sender_pull_delivers(self):
        """Byzantine sender SENDs to exactly n - t replicas: the digest
        quorum forms everywhere, and the starved replicas must obtain the
        payload through the pull fallback."""
        net = make_lan(N)
        rbcs, delivered, send_all = build_rbc(N, T, net, "digest")
        payload = b"withheld from 8 and 9" * 50
        for dest in range(1, 1 + (N - T)):  # replicas 1..7 only
            net.node(0).send(dest, RbcSend("s", payload))
        net.run(until=60)
        for i in range(1, N):
            assert delivered[i].get("s") == payload, f"replica {i}"
        assert net.bytes_by_type.get("RbcPull", 0) > 0
        assert net.bytes_by_type.get("RbcPayload", 0) > 0

    def test_pull_serve_budget_per_requester(self):
        inst = RbcInstance(N, T, me=0, sid="s", mode="digest")
        payload = b"served"
        inst.on_message(0, RbcSend("s", payload))
        digest = next(iter(inst._payload_by_digest))
        responses = [
            inst.on_message(4, RbcPull("s", digest))
            for _ in range(MAX_PULL_SERVES + 3)
        ]
        assert sum(1 for r in responses if r) == MAX_PULL_SERVES


class TestRbcErasureMode:
    def test_delivers_without_send(self):
        net = make_lan(N)
        rbcs, delivered, send_all = build_rbc(N, T, net, "erasure")
        payload = b"\xcd" * 4096
        send_all(0, rbcs[0].broadcast("s", payload))
        net.run()
        assert all(delivered[i].get("s") == payload for i in range(N))
        assert "RbcSend" not in net.bytes_by_type
        assert net.bytes_by_type["RbcVal"] > 0
        assert net.bytes_by_type["RbcFrag"] > 0

    def test_tampered_fragment_rejected(self):
        net = make_lan(N)
        rbcs, delivered, send_all = build_rbc(N, T, net, "erasure")
        payload = b"\x5a" * 1024
        frags = rs_encode(payload, K, N)
        root = merkle_root(frags)
        # Replica 5 floods proof-less garbage for the genuine root; every
        # receiver drops it at Merkle verification and delivery proceeds.
        for peer in range(N):
            if peer != 5:
                net.node(5).send(
                    peer,
                    RbcFrag("s", root, 3, b"\x00" * len(frags[3]),
                            merkle_proof(frags, 3)),
                )
        send_all(0, rbcs[0].broadcast("s", payload))
        net.run()
        assert all(delivered[i].get("s") == payload for i in range(N))

    def test_inconsistent_encoding_delivers_nowhere(self):
        """AVID-M consistency: a sender that Merkle-commits to fragments
        of two different payloads is rejected identically everywhere —
        every reconstruction fails the re-encode check."""
        net = make_lan(N)
        rbcs, delivered, send_all = build_rbc(N, T, net, "erasure")
        frags_a = rs_encode(b"A" * 640, K, N)
        frags_b = rs_encode(b"B" * 640, K, N)
        mixed = frags_a[:5] + frags_b[5:]
        root = merkle_root(mixed)
        for i in range(1, N):
            net.node(0).send(
                i, RbcVal("s", root, i, mixed[i], merkle_proof(mixed, i))
            )
        net.run(until=60)
        assert all(delivered[i] == {} for i in range(N))


@pytest.fixture(scope="module")
def keys_4_1():
    pairs, pubs = auth_keys(4)
    coins = coin_keys(4, 1)
    return pairs, pubs, coins


def build_abc(n, t, net, keys, dissemination, erasure_min_bytes=1,
              drop_initiate_at=()):
    pairs, pubs, coins = keys
    delivered = {i: [] for i in range(n)}
    abcs = []
    for i in range(n):
        node = net.node(i)
        abc = AtomicBroadcast(
            n, t, i,
            auth_key=pairs[i].private,
            auth_public=pubs,
            coin_key=coins[i],
            deliver=lambda rid, payload, i=i: delivered[i].append(payload),
            send=node.send,
            schedule=node.schedule_timer,
            timeout=1.0,
            dissemination=dissemination,
            erasure_min_bytes=erasure_min_bytes,
        )
        abcs.append(abc)

        def handler(s, m, abc=abc, i=i):
            if i in drop_initiate_at and isinstance(m, AbcInitiate):
                return  # simulate a gateway withholding the payload
            abc.on_message(s, m)

        node.set_handler(handler)
    return abcs, delivered


def inject(net, abcs, replica, payloads, spacing=0.001):
    for k, payload in enumerate(payloads):
        net.node(replica).run_local(
            spacing * k, lambda p=payload: abcs[replica].a_broadcast(p)
        )


class TestAbcDigestMode:
    def test_starved_replica_pulls_and_stays_ordered(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build_abc(
            4, 1, net, keys_4_1, "digest", drop_initiate_at=(3,)
        )
        inject(net, abcs, 2, [f"req-{k}".encode() * 40 for k in range(3)])
        net.run(until=120)
        orders = {tuple(delivered[i]) for i in range(4)}
        assert len(orders) == 1 and len(delivered[3]) == 3
        assert abcs[3].stats["pulls_sent"] > 0
        assert sum(abc.stats["pulls_served"] for abc in abcs) > 0

    def test_empty_payload_travels_full(self, keys_4_1):
        # b"" hashes to the sentinel rid, so its ORDER must not be
        # mistaken for digest framing.
        net = make_lan(4)
        abcs, delivered = build_abc(4, 1, net, keys_4_1, "digest")
        inject(net, abcs, 1, [b""])
        net.run()
        assert all(delivered[i] == [b""] for i in range(4))
        assert all(abc.stats["pulls_sent"] == 0 for abc in abcs)

    def test_unknown_mode_rejected(self, keys_4_1):
        net = make_lan(4)
        with pytest.raises(ConfigError):
            build_abc(4, 1, net, keys_4_1, "telepathy")


class TestAbcErasureMode:
    def test_dispersal_reconstruction_total_order(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build_abc(4, 1, net, keys_4_1, "erasure")
        payloads = [f"batch-{k}".encode() * 64 for k in range(4)]
        inject(net, abcs, 2, payloads)
        net.run(until=120)
        orders = {tuple(delivered[i]) for i in range(4)}
        assert len(orders) == 1
        assert set(delivered[0]) == set(payloads)
        assert sum(abc.stats["erasure_disperses"] for abc in abcs) >= 4
        assert sum(abc.stats["erasure_reconstructions"] for abc in abcs) > 0

    def test_small_payloads_skip_dispersal(self, keys_4_1):
        net = make_lan(4)
        abcs, delivered = build_abc(
            4, 1, net, keys_4_1, "erasure", erasure_min_bytes=10_000
        )
        inject(net, abcs, 1, [b"tiny"])
        net.run()
        assert all(delivered[i] == [b"tiny"] for i in range(4))
        assert all(abc.stats["erasure_disperses"] == 0 for abc in abcs)
