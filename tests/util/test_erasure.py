"""Reed-Solomon codec: round-trip properties and malformed-input rejection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import merkle_proof, merkle_root, merkle_verify
from repro.errors import ConfigError
from repro.util.erasure import (
    ErasureError,
    gf_div,
    gf_inv,
    gf_mul,
    rs_decode,
    rs_encode,
    shard_size,
)

#: (n, t) pairs the service actually runs, giving k = n - 2t.
CLUSTERS = [(4, 1), (7, 2), (10, 3)]


class TestFieldArithmetic:
    def test_mul_inverse_round_trip(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1
            assert gf_div(a, a) == 1

    def test_zero_annihilates(self):
        assert gf_mul(0, 123) == 0
        assert gf_mul(123, 0) == 0
        with pytest.raises(ErasureError):
            gf_inv(0)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(payload=st.binary(max_size=512), cluster=st.sampled_from(CLUSTERS))
    def test_systematic_prefix_decodes(self, payload, cluster):
        n, t = cluster
        k = n - 2 * t
        frags = rs_encode(payload, k, n)
        assert len(frags) == n
        assert all(len(f) == shard_size(len(payload), k) for f in frags)
        assert rs_decode(dict(enumerate(frags[:k])), k, n) == payload

    @settings(max_examples=40, deadline=None)
    @given(
        payload=st.binary(max_size=256),
        cluster=st.sampled_from(CLUSTERS),
        data=st.data(),
    )
    def test_any_k_subset_decodes(self, payload, cluster, data):
        n, t = cluster
        k = n - 2 * t
        frags = rs_encode(payload, k, n)
        subset = data.draw(
            st.lists(
                st.sampled_from(range(n)), min_size=k, max_size=n, unique=True
            )
        )
        assert rs_decode({i: frags[i] for i in subset}, k, n) == payload

    def test_empty_payload_round_trips(self):
        frags = rs_encode(b"", 4, 10)
        assert rs_decode({i: frags[i] for i in (2, 5, 7, 9)}, 4, 10) == b""


class TestRejection:
    def test_too_few_fragments(self):
        frags = rs_encode(b"abc", 4, 10)
        with pytest.raises(ErasureError, match="need 4"):
            rs_decode(dict(enumerate(frags[:3])), 4, 10)

    def test_out_of_range_index(self):
        frags = rs_encode(b"abc", 2, 4)
        with pytest.raises(ErasureError, match="out of range"):
            rs_decode({0: frags[0], 99: frags[1]}, 2, 4)

    def test_inconsistent_sizes(self):
        frags = rs_encode(b"abcdefgh", 2, 4)
        with pytest.raises(ErasureError, match="inconsistent"):
            rs_decode({0: frags[0], 1: frags[1] + b"\x00"}, 2, 4)

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            rs_encode(b"x", 0, 4)
        with pytest.raises(ConfigError):
            rs_encode(b"x", 5, 4)
        with pytest.raises(ConfigError):
            rs_encode(b"x", 2, 300)

    @settings(max_examples=30, deadline=None)
    @given(
        payload=st.binary(min_size=1, max_size=128),
        flip=st.integers(min_value=0, max_value=10**9),
    )
    def test_corrupted_fragment_never_verifies(self, payload, flip):
        """The authenticity contract: corruption is caught by the Merkle
        layer before any fragment reaches the decoder, so a tampered
        fragment must always fail its inclusion proof."""
        n, t = 10, 3
        k = n - 2 * t
        frags = rs_encode(payload, k, n)
        root = merkle_root(frags)
        idx = flip % n
        frag = bytearray(frags[idx])
        frag[flip % len(frag)] ^= 1 + (flip % 255)
        proof = merkle_proof(frags, idx)
        assert merkle_verify(root, frags[idx], proof)
        assert not merkle_verify(root, bytes(frag), proof)

    def test_corrupted_systematic_shard_changes_decode(self):
        # Without the Merkle layer the codec itself cannot authenticate:
        # a flipped byte in a systematic shard simply decodes to a
        # different payload.  This pins *why* the proofs are mandatory.
        payload = bytes(range(64))
        frags = rs_encode(payload, 4, 10)
        tampered = bytearray(frags[1])
        tampered[5] ^= 0xFF
        decoded = rs_decode(
            {0: frags[0], 1: bytes(tampered), 2: frags[2], 3: frags[3]}, 4, 10
        )
        assert decoded != payload
