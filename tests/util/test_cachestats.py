"""Repo-wide cache audit: every memo is bounded and reports stats."""

import pytest

from repro.crypto import shoup
from repro.util.cachestats import (
    AUDITED_INSTANCE_CACHES,
    AUDITED_LRU_CACHES,
    INSTANCE_CACHE_STAT_KEYS,
    _resolve,
    instance_cache_classes,
    lru_cache_stats,
)

STAT_KEYS = {"maxsize", "currsize", "hits", "misses", "evictions"}


def test_every_audited_cache_is_bounded():
    # The audit's core claim: no lru_cache in the registry may be
    # unbounded (KeyTrap hygiene).  cache_info() existing also proves the
    # dotted path still resolves to an lru_cache-decorated function.
    for dotted in AUDITED_LRU_CACHES:
        info = _resolve(dotted).cache_info()
        assert info.maxsize is not None, f"{dotted} is unbounded"
        assert info.maxsize > 0, dotted


def test_stats_shape_and_consistency():
    stats = lru_cache_stats()
    assert set(stats) == set(AUDITED_LRU_CACHES)
    for dotted, entry in stats.items():
        assert set(entry) == STAT_KEYS, dotted
        assert entry["currsize"] <= entry["maxsize"], dotted
        # Every miss inserts exactly one entry, so the derived eviction
        # count can never go negative.
        assert entry["evictions"] >= 0, dotted


def test_factorial_cache_counts_activity():
    from repro.util.numth import factorial

    factorial.cache_clear()
    factorial(6)
    factorial(6)
    stats = lru_cache_stats()["repro.util.numth.factorial"]
    assert stats["misses"] >= 1
    assert stats["hits"] >= 1


def test_unbounded_cache_is_rejected(monkeypatch):
    import repro.util.cachestats as cachestats

    class _Info:
        maxsize = None
        currsize = hits = misses = 0

    class _Fake:
        @staticmethod
        def cache_info():
            return _Info()

    monkeypatch.setattr(cachestats, "_resolve", lambda dotted: _Fake())
    with pytest.raises(TypeError, match="unbounded"):
        lru_cache_stats()


def test_shoup_verification_base_stats_exposed():
    stats = shoup.verification_base_cache_stats()
    assert set(stats) == STAT_KEYS
    assert stats["maxsize"] > 0
    assert stats["evictions"] >= 0


def _flood_instance(cache) -> None:
    """Insert far more entries than the bound, via the class's own API."""
    from repro.dns import constants as c
    from repro.dns.name import Name
    from repro.dns.negcache import (
        CachedAnswer,
        NxtProof,
        NxtProofCache,
        PositiveAnswerCache,
    )
    from repro.dns.rdata import NXT
    from repro.dns.rendercache import CanonicalRenderCache
    from repro.broadcast.stores import FragmentStore, PayloadStore

    origin = Name.from_text("audit.example.")
    for i in range(cache.max_entries * 4):
        name = Name((f"n{i:05d}".encode(),) + origin.labels)
        if isinstance(cache, PayloadStore):
            cache.put(f"rid-{i:05d}", b"payload")
        elif isinstance(cache, FragmentStore):
            cache.put(f"rid-{i:05d}", b"root", 0, b"frag", None)
        elif isinstance(cache, CanonicalRenderCache):
            cache.store(name, c.TYPE_A, 1, b"wire")
        elif isinstance(cache, PositiveAnswerCache):
            cache.store(
                name,
                c.TYPE_A,
                CachedAnswer(origin, 1, c.RCODE_NOERROR, (), True, 10.0),
            )
        elif isinstance(cache, NxtProofCache):
            cache.store(
                NxtProof(
                    origin, 1, name, NXT(origin, (c.TYPE_A,)), (), True, 10.0
                )
            )
        else:  # pragma: no cover - new class needs a flood arm here
            raise AssertionError(f"no flood driver for {type(cache).__name__}")


class TestInstanceCacheAudit:
    """AUDITED_INSTANCE_CACHES: per-instance bound + stats discipline."""

    def test_registry_resolves_to_classes(self):
        classes = instance_cache_classes()
        assert set(classes) == set(AUDITED_INSTANCE_CACHES)

    @pytest.mark.parametrize("dotted", AUDITED_INSTANCE_CACHES)
    def test_stats_discipline(self, dotted):
        cache = instance_cache_classes()[dotted](max_entries=8)
        assert set(INSTANCE_CACHE_STAT_KEYS) <= set(cache.stats)
        assert all(isinstance(v, int) for v in cache.stats.values())

    @pytest.mark.parametrize("dotted", AUDITED_INSTANCE_CACHES)
    def test_rejects_nonpositive_bound(self, dotted):
        cls = instance_cache_classes()[dotted]
        with pytest.raises(ValueError):
            cls(max_entries=0)

    @pytest.mark.parametrize("dotted", AUDITED_INSTANCE_CACHES)
    def test_flood_never_exceeds_bound(self, dotted):
        cache = instance_cache_classes()[dotted](max_entries=8)
        _flood_instance(cache)
        assert len(cache) <= 8
        assert cache.stats["evictions"] > 0
