"""Repo-wide lru_cache audit: every memo is bounded and reports stats."""

import pytest

from repro.crypto import shoup
from repro.util.cachestats import AUDITED_LRU_CACHES, _resolve, lru_cache_stats

STAT_KEYS = {"maxsize", "currsize", "hits", "misses", "evictions"}


def test_every_audited_cache_is_bounded():
    # The audit's core claim: no lru_cache in the registry may be
    # unbounded (KeyTrap hygiene).  cache_info() existing also proves the
    # dotted path still resolves to an lru_cache-decorated function.
    for dotted in AUDITED_LRU_CACHES:
        info = _resolve(dotted).cache_info()
        assert info.maxsize is not None, f"{dotted} is unbounded"
        assert info.maxsize > 0, dotted


def test_stats_shape_and_consistency():
    stats = lru_cache_stats()
    assert set(stats) == set(AUDITED_LRU_CACHES)
    for dotted, entry in stats.items():
        assert set(entry) == STAT_KEYS, dotted
        assert entry["currsize"] <= entry["maxsize"], dotted
        # Every miss inserts exactly one entry, so the derived eviction
        # count can never go negative.
        assert entry["evictions"] >= 0, dotted


def test_factorial_cache_counts_activity():
    from repro.util.numth import factorial

    factorial.cache_clear()
    factorial(6)
    factorial(6)
    stats = lru_cache_stats()["repro.util.numth.factorial"]
    assert stats["misses"] >= 1
    assert stats["hits"] >= 1


def test_unbounded_cache_is_rejected(monkeypatch):
    import repro.util.cachestats as cachestats

    class _Info:
        maxsize = None
        currsize = hits = misses = 0

    class _Fake:
        @staticmethod
        def cache_info():
            return _Info()

    monkeypatch.setattr(cachestats, "_resolve", lambda dotted: _Fake())
    with pytest.raises(TypeError, match="unbounded"):
        lru_cache_stats()


def test_shoup_verification_base_stats_exposed():
    stats = shoup.verification_base_cache_stats()
    assert set(stats) == STAT_KEYS
    assert stats["maxsize"] > 0
    assert stats["evictions"] >= 0
