"""Canonical serialization round-trip and error tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.util.serialization import (
    bytes_to_int,
    int_to_bytes,
    pack_bytes,
    pack_int,
    pack_str,
    pack_u8,
    pack_u16,
    pack_u32,
    pack_u64,
    unpack_bytes,
    unpack_int,
    unpack_str,
    unpack_u8,
    unpack_u16,
    unpack_u32,
    unpack_u64,
)


class TestIntBytes:
    def test_zero(self):
        assert int_to_bytes(0) == b""
        assert bytes_to_int(b"") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)

    @given(st.integers(0, 2**4096))
    def test_roundtrip(self, value):
        assert bytes_to_int(int_to_bytes(value)) == value

    def test_minimal_encoding(self):
        assert int_to_bytes(255) == b"\xff"
        assert int_to_bytes(256) == b"\x01\x00"


class TestPackers:
    @given(st.binary(max_size=1000))
    def test_bytes_roundtrip(self, data):
        packed = pack_bytes(data)
        value, offset = unpack_bytes(packed)
        assert value == data and offset == len(packed)

    @given(st.integers(0, 2**2048))
    def test_int_roundtrip(self, value):
        out, offset = unpack_int(pack_int(value))
        assert out == value

    @given(st.text(max_size=200))
    def test_str_roundtrip(self, text):
        out, _ = unpack_str(pack_str(text))
        assert out == text

    def test_concatenated_fields(self):
        buf = pack_int(12345) + pack_str("hello") + pack_bytes(b"\x00\x01")
        value, offset = unpack_int(buf)
        text, offset = unpack_str(buf, offset)
        blob, offset = unpack_bytes(buf, offset)
        assert (value, text, blob) == (12345, "hello", b"\x00\x01")
        assert offset == len(buf)

    def test_truncated_length_prefix(self):
        with pytest.raises(WireFormatError):
            unpack_bytes(b"\x00\x00")

    def test_truncated_body(self):
        with pytest.raises(WireFormatError):
            unpack_bytes(b"\x00\x00\x00\x05abc")

    def test_invalid_utf8(self):
        with pytest.raises(WireFormatError):
            unpack_str(pack_bytes(b"\xff\xfe"))


class TestFixedWidth:
    @pytest.mark.parametrize(
        "pack,unpack,maximum",
        [
            (pack_u8, unpack_u8, 0xFF),
            (pack_u16, unpack_u16, 0xFFFF),
            (pack_u32, unpack_u32, 0xFFFFFFFF),
            (pack_u64, unpack_u64, 0xFFFFFFFFFFFFFFFF),
        ],
    )
    def test_roundtrip_and_bounds(self, pack, unpack, maximum):
        for value in (0, 1, maximum):
            out, _ = unpack(pack(value))
            assert out == value
        with pytest.raises(ValueError):
            pack(maximum + 1)
        with pytest.raises(ValueError):
            pack(-1)
        with pytest.raises(WireFormatError):
            unpack(b"")
