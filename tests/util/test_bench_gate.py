"""The CI bench-regression gate fails on degraded baselines."""

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(directory: Path, **files) -> None:
    directory.mkdir(exist_ok=True)
    for filename, payload in files.items():
        (directory / filename.replace("__", ".")).write_text(json.dumps(payload))


_HEALTHY = {
    "BENCH_batching__json": {
        "read_heavy": {"speedup": 4.0},
        "mixed": {"speedup": 2.0},
    },
    "BENCH_parallel__json": {
        "groups": [{"protocol": "sign", "n": 4, "t": 1, "model_speedup": 1.9}]
    },
    "BENCH_writes__json": {"write_speedup": 16.0},
    "BENCH_resolver__json": {"offload_ratio": 0.98},
    "BENCH_broadcast__json": {
        "digest_echo_reduction": 95.0,
        "erasure_echo_reduction": 3.4,
        "erasure_flatness_headroom": 1.7,
    },
}


def test_identical_results_pass(gate, tmp_path):
    _write(tmp_path / "base", **_HEALTHY)
    _write(tmp_path / "fresh", **_HEALTHY)
    assert gate.check(tmp_path / "base", tmp_path / "fresh", 0.20) == []
    argv = ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    assert gate.main(argv) == 0


def test_degraded_metric_fails(gate, tmp_path):
    _write(tmp_path / "base", **_HEALTHY)
    degraded = dict(_HEALTHY)
    degraded["BENCH_writes__json"] = {"write_speedup": 16.0 * 0.79}
    _write(tmp_path / "fresh", **degraded)
    problems = gate.check(tmp_path / "base", tmp_path / "fresh", 0.20)
    assert len(problems) == 1 and "write_speedup" in problems[0]
    argv = ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
    assert gate.main(argv) == 1


def test_drop_within_tolerance_passes(gate, tmp_path):
    _write(tmp_path / "base", **_HEALTHY)
    wobbling = dict(_HEALTHY)
    wobbling["BENCH_resolver__json"] = {"offload_ratio": 0.98 * 0.85}
    _write(tmp_path / "fresh", **wobbling)
    assert gate.check(tmp_path / "base", tmp_path / "fresh", 0.20) == []


def test_improvement_never_fails(gate, tmp_path):
    _write(tmp_path / "base", **_HEALTHY)
    improved = dict(_HEALTHY)
    improved["BENCH_writes__json"] = {"write_speedup": 40.0}
    _write(tmp_path / "fresh", **improved)
    assert gate.check(tmp_path / "base", tmp_path / "fresh", 0.20) == []


def test_missing_fresh_results_fail(gate, tmp_path):
    # A benchmark that silently stops writing its JSON must not pass.
    _write(tmp_path / "base", **_HEALTHY)
    fresh = dict(_HEALTHY)
    del fresh["BENCH_resolver__json"]
    _write(tmp_path / "fresh", **fresh)
    problems = gate.check(tmp_path / "base", tmp_path / "fresh", 0.20)
    assert len(problems) == 1 and "BENCH_resolver.json" in problems[0]


def test_missing_baseline_is_skipped(gate, tmp_path):
    # A brand-new benchmark has nothing to regress against.
    base = dict(_HEALTHY)
    del base["BENCH_resolver__json"]
    _write(tmp_path / "base", **base)
    _write(tmp_path / "fresh", **_HEALTHY)
    assert gate.check(tmp_path / "base", tmp_path / "fresh", 0.20) == []


def test_vanished_metric_fails(gate, tmp_path):
    _write(tmp_path / "base", **_HEALTHY)
    fresh = dict(_HEALTHY)
    fresh["BENCH_parallel__json"] = {"groups": []}
    _write(tmp_path / "fresh", **fresh)
    problems = gate.check(tmp_path / "base", tmp_path / "fresh", 0.20)
    assert len(problems) == 1 and "vanished" in problems[0]


def test_committed_baselines_are_gate_readable(gate):
    # The real BENCH_*.json files at the repo root must stay parseable
    # by the gate's extractors, or CI would skip them silently.
    repo_root = _GATE_PATH.parents[1]
    for filename, extract in gate.EXTRACTORS.items():
        path = repo_root / filename
        assert path.exists(), f"{filename} baseline missing from repo root"
        metrics = extract(json.loads(path.read_text()))
        assert metrics, filename
        assert all(value > 0 for value in metrics.values()), filename
