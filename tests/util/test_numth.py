"""Number theory tests: the algebra under the threshold scheme."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.numth import (
    crt_pair,
    egcd,
    invmod,
    is_probable_prime,
    jacobi,
    lagrange_coefficient_num_den,
    random_prime,
    random_safe_prime,
    scaled_lagrange_coefficient,
)


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    def test_coprime(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    @given(st.integers(1, 10**12), st.integers(1, 10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestInvmod:
    def test_basic(self):
        assert invmod(3, 7) == 5
        assert (3 * invmod(3, 7)) % 7 == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError):
            invmod(6, 9)

    @given(st.integers(2, 10**9))
    def test_inverse_property(self, m):
        a = 0
        # Find something coprime to m deterministically.
        for candidate in range(2, 50):
            if math.gcd(candidate, m) == 1:
                a = candidate
                break
        if a:
            assert (a * invmod(a, m)) % m == 1


class TestMillerRabin:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 15, 91, 7917):
            assert not is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 6601, 41041):
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)
        assert not is_probable_prime(2**127 - 3)


class TestPrimeGeneration:
    def test_random_prime_bits(self):
        p = random_prime(64)
        assert p.bit_length() == 64
        assert is_probable_prime(p)

    def test_random_safe_prime(self):
        p = random_safe_prime(32)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_tiny_rejected(self):
        with pytest.raises(ValueError):
            random_prime(1)


class TestLagrange:
    def test_interpolation_recovers_constant_term(self):
        # f(x) = 7 + 3x + 5x^2 over the integers, points 1..3.
        poly = lambda x: 7 + 3 * x + 5 * x * x
        subset = (1, 2, 3)
        delta = math.factorial(5)
        total = 0
        for i in subset:
            lam = scaled_lagrange_coefficient(delta, subset, i, 0)
            total += lam * poly(i)
        assert total == delta * 7

    def test_coefficient_num_den(self):
        num, den = lagrange_coefficient_num_den((1, 2), 1, 0)
        assert (num, den) == (-2, -1)

    def test_index_not_in_subset(self):
        with pytest.raises(ValueError):
            lagrange_coefficient_num_den((1, 2), 3, 0)

    @given(
        st.lists(st.integers(1, 10), min_size=2, max_size=5, unique=True),
        st.lists(st.integers(-50, 50), min_size=2, max_size=5),
    )
    @settings(max_examples=50)
    def test_scaled_interpolation_any_polynomial(self, subset, coeffs):
        subset = tuple(sorted(subset))
        coeffs = coeffs[: len(subset)]  # degree < #points
        poly = lambda x: sum(c * x**k for k, c in enumerate(coeffs))
        delta = math.factorial(10)
        total = sum(
            scaled_lagrange_coefficient(delta, subset, i, 0) * poly(i)
            for i in subset
        )
        assert total == delta * poly(0)


class TestCrt:
    def test_basic(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    def test_non_coprime_raises(self):
        with pytest.raises(ValueError):
            crt_pair(1, 4, 1, 6)


class TestJacobi:
    def test_known_values(self):
        assert jacobi(1, 3) == 1
        assert jacobi(2, 3) == -1
        assert jacobi(4, 7) == 1
        assert jacobi(0, 3) == 0

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError):
            jacobi(3, 8)

    def test_quadratic_residues(self):
        p = 23
        residues = {pow(x, 2, p) for x in range(1, p)}
        for a in range(1, p):
            expected = 1 if a in residues else -1
            assert jacobi(a, p) == expected
