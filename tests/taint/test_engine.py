"""Unit tests for the interprocedural taint engine.

Exercises the call-graph edge cases the issue calls out (lambdas and
``functools.partial`` as registered handlers, protocol-attribute method
resolution via annotations, recursion in the summary fixpoint) plus the
marker/sanitizer mechanics the corpus relies on.
"""

import textwrap
from pathlib import Path

from repro.lint.framework import LintConfig
from repro.taint import analyze_files

MODULE = "repro.broadcast.snippet"


def run(*sources, module=MODULE, config=None):
    """Analyze in-memory sources; returns the sorted rule list."""
    files = [
        (Path(f"snippet{i}.py"), module if i == 0 else f"{module}{i}", textwrap.dedent(src))
        for i, src in enumerate(sources)
    ]
    return sorted(f.rule for f in analyze_files(files, config=config))


class TestHandlerRegistration:
    def test_lambda_registered_as_handler(self):
        # A lambda passed to a registrar is transport ingress: its
        # parameters are tainted even though it has no handler-ish name.
        assert "T401" in run(
            """
            class Endpoint:
                def __init__(self, node, public):
                    self.public = public
                    node.set_handler(lambda sender, msg: self.public.assemble(b"m", [msg.share]))
            """
        )

    def test_partial_registered_as_handler(self):
        # functools.partial(self._collect, ...) must unwrap to _collect.
        assert "T401" in run(
            """
            import functools

            class Endpoint:
                def __init__(self, node, public):
                    self.public = public
                    node.register_handler(functools.partial(self._collect, "tag"))

                def _collect(self, tag, sender, msg):
                    return self.public.assemble(b"m", [msg.share])
            """
        )

    def test_method_reference_registered_as_handler(self):
        assert "T401" in run(
            """
            class Endpoint:
                def __init__(self, node, public):
                    self.public = public
                    node.subscribe(self._ingest)

                def _ingest(self, sender, msg):
                    return self.public.assemble(b"m", [msg.share])
            """
        )

    def test_unregistered_helper_is_not_ingress(self):
        # Same body, never registered and not handler-named: no taint.
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def _ingest(self, sender, msg):
                    return self.public.assemble(b"m", [msg.share])
            """
        ) == []


class TestProtocolAttributeResolution:
    def test_annotated_attr_call_resolves_to_class_method(self):
        # self.executor is annotated with a class defined elsewhere in the
        # program; calling through the attribute must reach that class's
        # method summary (sink inside the callee).
        assert "T401" in run(
            """
            class CryptoExecutor:
                def __init__(self, public):
                    self.public = public

                def finish(self, shares):
                    return self.public.assemble(b"m", shares)

            class Endpoint:
                def __init__(self, executor):
                    self.executor: CryptoExecutor = executor

                def on_message(self, sender, msg):
                    return self.executor.finish([msg.share])
            """
        )

    def test_annotated_attr_sanitizing_callee_clears(self):
        # The callee verifies before the sink; the caller's taint must be
        # cleared through the same attribute-resolved summary.
        assert run(
            """
            class CryptoExecutor:
                def __init__(self, public):
                    self.public = public

                def finish(self, shares):
                    if not self.public.verify_shares(b"m", shares):
                        return None
                    return self.public.assemble(b"m", shares)

            class Endpoint:
                def __init__(self, executor):
                    self.executor: CryptoExecutor = executor

                def on_message(self, sender, msg):
                    return self.executor.finish([msg.share])
            """
        ) == []


class TestInterprocedural:
    def test_taint_through_two_helpers(self):
        assert "T401" in run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    return self._collect(msg.share)

                def _collect(self, share):
                    return self._finish([share])

                def _finish(self, shares):
                    return self.public.assemble(b"m", shares)
            """
        )

    def test_callee_sanitization_survives_attr_store(self):
        # _accept verifies then stores; the cleared set must ride along
        # with the summary's attribute store so assembly stays quiet.
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public
                    self._shares = []

                def on_message(self, sender, msg):
                    self._accept(msg.share)

                def _accept(self, share):
                    if not self.public.verify_share(b"m", share):
                        return
                    self._shares.append(share)

                def try_assemble(self):
                    return self.public.assemble(b"m", self._shares)
            """
        ) == []

    def test_recursive_summary_reaches_fixpoint(self):
        # Self-recursion must terminate (widening via bounded fixpoint
        # rounds) and still propagate taint to the sink.
        assert "T401" in run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    return self._drain([msg.share], 0)

                def _drain(self, shares, depth):
                    if depth > 3:
                        return self.public.assemble(b"m", shares)
                    return self._drain(shares, depth + 1)
            """
        )

    def test_mutual_recursion_terminates(self):
        assert "T401" in run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    return self._ping(msg.share, 0)

                def _ping(self, share, n):
                    if n > 2:
                        return self.public.assemble(b"m", [share])
                    return self._pong(share, n)

                def _pong(self, share, n):
                    return self._ping(share, n + 1)
            """
        )


class TestSanitizerMechanics:
    def test_sanitizer_clears_path_inside_list_literal(self):
        # verify_shares(m, [msg.share]) must clear msg.share itself, not
        # just the (unnamed) list expression.
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    if not self.public.verify_shares(b"m", [msg.share]):
                        return None
                    return self.public.assemble(b"m", [msg.share])
            """
        ) == []

    def test_trusted_producer_output_untainted(self):
        assert run(
            """
            class Endpoint:
                def __init__(self, key_share, public):
                    self.key_share = key_share
                    self.public = public

                def on_message(self, sender, msg):
                    share = self.key_share.generate_share(msg.data)
                    return self.public.assemble(msg.data, [share])
            """
        ) == []

    def test_serialization_roundtrip_reports_t407(self):
        rules = run(
            """
            class Endpoint:
                def __init__(self, public, codec):
                    self.public = public
                    self.codec = codec

                def on_message(self, sender, msg):
                    blob = msg.share.to_bytes()
                    share = self.codec.from_bytes(blob)
                    return self.public.assemble(b"m", [share])
            """
        )
        assert "T407" in rules
        assert "T401" not in rules  # reported as laundering, not raw T401

    def test_tuple_of_tuples_loop_keeps_per_column_clearing(self):
        # Position-wise binding: count is bounds-checked, section is not;
        # only count's column clearing applies to range(count).
        assert run(
            """
            MAX_COUNT = 64

            class Endpoint:
                def on_message(self, sender, msg):
                    if msg.ancount > MAX_COUNT or msg.nscount > MAX_COUNT:
                        return None
                    out = []
                    for section, count in ((msg.answers, msg.ancount), (msg.authority, msg.nscount)):
                        for _ in range(count):
                            out.append(section)
                    return out
            """
        ) == []


class TestScope:
    def test_exclusion_pattern_wins(self):
        config = LintConfig(
            taint_modules=("repro.broadcast.*", "!" + MODULE)
        )
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    return self.public.assemble(b"m", [msg.share])
            """,
            config=config,
        ) == []

    def test_out_of_scope_module_ignored(self):
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    return self.public.assemble(b"m", [msg.share])
            """,
            module="repro.cli",
        ) == []


class TestSuppressions:
    def test_inline_disable_filters_finding(self):
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    # justified for the test
                    # repro-lint: disable=T401
                    return self.public.assemble(b"m", [msg.share])
            """
        ) == []

    def test_disable_wrong_rule_keeps_finding(self):
        assert "T401" in run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    # repro-lint: disable=T403
                    return self.public.assemble(b"m", [msg.share])
            """
        )


class TestVerdictFlow:
    """Per-item verdict lists from batch verifiers (VERDICT_CALLS)."""

    GATE = """
        class Gate:
            def __init__(self, executor, zone):
                self.executor = executor
                self.zone = zone

            def on_message(self, sender, batch):
                verdicts = self.executor.rsa_verify_many(self.pairs)
                for msg, ok in zip(batch, verdicts):
                    {body}
        """

    def gate(self, *body):
        # the {body} placeholder sits 20 columns deep pre-dedent
        return self.GATE.format(body=("\n" + " " * 20).join(body))

    def test_guarded_negative_continue_is_clean(self):
        # ``if not ok: continue`` — only verified items reach the sink.
        assert run(self.gate(
            "if not ok:",
            "    continue",
            "self.zone.add_rdata(msg.name, msg.rtype, msg.ttl, msg.rdata)",
        )) == []

    def test_guarded_positive_branch_is_clean(self):
        assert run(self.gate(
            "if ok:",
            "    self.zone.add_rdata(msg.name, msg.rtype, msg.ttl, msg.rdata)",
        )) == []

    def test_unguarded_sink_still_flagged(self):
        # Without consulting the verdict, the item stays unverified:
        # the zip pairing alone must not clear anything.
        assert "T405" in run(self.gate(
            "self.zone.add_rdata(msg.name, msg.rtype, msg.ttl, msg.rdata)",
        ))

    def test_sink_in_unverified_branch_still_flagged(self):
        # ``if not ok:`` then-branch is the *failed* side.
        assert "T405" in run(self.gate(
            "if not ok:",
            "    self.zone.add_rdata(msg.name, msg.rtype, msg.ttl, msg.rdata)",
        ))

    def test_verdict_guard_does_not_report_t408(self):
        # A verdict guard after an earlier (flagged) sink is a comparison,
        # not a misplaced sanitizer call: T405 yes, T408 no.
        rules = run(self.gate(
            "self.zone.add_rdata(msg.name, msg.rtype, msg.ttl, msg.rdata)",
            "if not ok:",
            "    continue",
            "self.zone.attach_signature(msg.name, msg.rtype, msg.sig)",
        ))
        assert "T405" in rules
        assert "T408" not in rules

    def test_reassigned_verdict_var_loses_tracking(self):
        # Overwriting the verdict list with unrelated data must drop the
        # registration, so the guard no longer sanitizes.
        assert "T405" in run(
            """
            class Gate:
                def __init__(self, executor, zone):
                    self.executor = executor
                    self.zone = zone

                def on_message(self, sender, batch):
                    verdicts = self.executor.rsa_verify_many(self.pairs)
                    verdicts = [True for _ in batch]
                    for msg, ok in zip(batch, verdicts):
                        if not ok:
                            continue
                        self.zone.add_rdata(msg.name, msg.rtype, msg.ttl, msg.rdata)
            """
        )


class TestPerKeyDictTaint:
    """Literal dict keys get their own taint slots (DESIGN.md §5e): a
    remote value stored under one key must not taint reads of the others,
    while dynamic-key stores and whole-dict reads stay conservative."""

    def test_sibling_literal_key_read_stays_clean(self):
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public
                    self.cache = {}
                    self.cache["trusted"] = public.sign(b"seed")

                def on_message(self, sender, msg):
                    self.cache["remote"] = msg.share
                    return self.public.assemble(b"m", [self.cache["trusted"]])
            """
        ) == []

    def test_same_literal_key_read_stays_tainted(self):
        assert "T401" in run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public
                    self.cache = {}

                def on_message(self, sender, msg):
                    self.cache["remote"] = msg.share
                    return self.public.assemble(b"m", [self.cache["remote"]])
            """
        )

    def test_dynamic_key_store_still_taints_literal_reads(self):
        # A store under an attacker-chosen key may hit any slot: literal
        # reads must keep seeing the wildcard taint (soundness).
        assert "T401" in run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public
                    self.cache = {}

                def on_message(self, sender, msg):
                    if msg.sid in self.cache:
                        self.cache[msg.sid] = msg.share
                    return self.public.assemble(b"m", [self.cache["trusted"]])
            """
        )

    def test_whole_dict_read_merges_key_slots(self):
        # Reading the full dict sees every slot, including literal ones.
        assert "T401" in run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public
                    self.cache = {}

                def on_message(self, sender, msg):
                    self.cache["remote"] = msg.share
                    return self.public.assemble(b"m", list(self.cache.values()))
            """
        )

    def test_local_dict_literal_keys_tracked(self):
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    batch = {}
                    batch["remote"] = msg.share
                    batch["local"] = self.public.sign(b"seed")
                    return self.public.assemble(b"m", [batch["local"]])
            """
        ) == []

    def test_whole_reassignment_drops_stale_key_slots(self):
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    batch = {}
                    batch["remote"] = msg.share
                    batch = {}
                    return self.public.assemble(b"m", [batch["remote"]])
            """
        ) == []

    def test_cross_function_store_keeps_its_key(self):
        # The helper stores under a literal key; the handler reads the
        # sibling slot.  The summary must carry the key through.
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public
                    self.cache = {}

                def on_message(self, sender, msg):
                    self._park(msg.share)
                    return self.public.assemble(b"m", [self.cache["trusted"]])

                def _park(self, share):
                    self.cache["remote"] = share
            """
        ) == []


class TestCrossFunctionT408:
    """The callee's sanitizer applications replay at the call site, so a
    verification buried one call-hop below still orders against sinks the
    caller already hit."""

    def test_sanitizer_one_hop_below_after_sink(self):
        rules = run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    signature = self.public.assemble(b"m", [msg.share])
                    self._audit(msg.share)
                    return signature

                def _audit(self, share):
                    return self.public.verify_shares(b"m", [share])
            """
        )
        assert "T408" in rules

    def test_sanitizer_one_hop_below_before_sink_is_clean(self):
        # Same helper called before the sink: the replayed clearing must
        # sanitize the caller's value, and no T408 may fire.
        assert run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    self._audit(msg.share)
                    return self.public.assemble(b"m", [msg.share])

                def _audit(self, share):
                    return self.public.verify_shares(b"m", [share])
            """
        ) == []

    def test_two_hops_propagate_transitively(self):
        rules = run(
            """
            class Endpoint:
                def __init__(self, public):
                    self.public = public

                def on_message(self, sender, msg):
                    signature = self.public.assemble(b"m", [msg.share])
                    self._outer(msg.share)
                    return signature

                def _outer(self, share):
                    return self._inner(share)

                def _inner(self, share):
                    return self.public.verify_shares(b"m", [share])
            """
        )
        assert "T408" in rules
