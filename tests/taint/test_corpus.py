"""Recall pinning for the seeded-vulnerability corpus.

Every ``vuln_*`` snippet in ``tests/taint/corpus/`` plants exactly one
class of Byzantine-taint bug; the analyzer must flag each one with the
expected rule, and must stay silent on the ``clean_*`` controls.  The
acceptance bar from the issue is >= 8/10 detected; we pin the exact
per-file rule sets so a regression in any single rule fails loudly.
"""

import time
from pathlib import Path

import pytest

from repro.taint import analyze

CORPUS = Path(__file__).parent / "corpus"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: vuln file -> rule that must fire on it (the seeded bug's rule).
EXPECTED = {
    "vuln_t401_share_assembly.py": "T401",
    "vuln_t402_epoch_change.py": "T402",
    "vuln_t403_alloc.py": "T403",
    "vuln_t404_growth.py": "T404",
    "vuln_t405_zone_write.py": "T405",
    "vuln_t406_identity_slot.py": "T406",
    "vuln_t407_launder.py": "T407",
    "vuln_t408_late_verify.py": "T408",
    "vuln_t408_cross_function.py": "T408",
    "vuln_interprocedural.py": "T401",
    "vuln_attr_flow.py": "T401",
}

CLEAN = [
    "clean_verified.py",
    "clean_local_material.py",
    "clean_verdict_flow.py",
    "clean_dict_keys.py",
]


def rules_for(filename):
    findings = analyze([CORPUS / filename], CORPUS)
    return sorted({f.rule for f in findings})


def test_corpus_is_complete():
    names = sorted(p.name for p in CORPUS.glob("*.py"))
    assert names == sorted(list(EXPECTED) + CLEAN)


@pytest.mark.parametrize("filename,rule", sorted(EXPECTED.items()))
def test_seeded_vulnerability_detected(filename, rule):
    assert rule in rules_for(filename), f"{filename} must trigger {rule}"


@pytest.mark.parametrize("filename", CLEAN)
def test_clean_controls_stay_silent(filename):
    assert rules_for(filename) == []


def test_recall_at_least_eight_of_ten():
    # Redundant with the per-file pins, but states the issue's acceptance
    # criterion directly: >= 8/10 seeded vulnerabilities detected.
    detected = sum(
        1 for filename, rule in EXPECTED.items() if rule in rules_for(filename)
    )
    assert detected >= 8, (
        f"only {detected}/{len(EXPECTED)} seeded vulnerabilities detected"
    )


def test_exact_finding_rules_per_file():
    # The full per-file signature: catches both missed bugs and new
    # false positives inside the corpus.
    assert rules_for("vuln_t401_share_assembly.py") == ["T401"]
    assert rules_for("vuln_t402_epoch_change.py") == ["T402"]
    assert rules_for("vuln_t403_alloc.py") == ["T403"]
    assert rules_for("vuln_t404_growth.py") == ["T404"]
    assert rules_for("vuln_t405_zone_write.py") == ["T405"]
    assert rules_for("vuln_t406_identity_slot.py") == ["T406"]
    assert rules_for("vuln_t407_launder.py") == ["T407"]
    # The late-verify snippet both hits the sink unverified (T401) and
    # shows the sanitizer-after-sink ordering bug (T408).
    assert rules_for("vuln_t408_late_verify.py") == ["T401", "T408"]
    # The cross-function variant: the sanitizer lives one call-hop below
    # the handler, so only the summary's sanitize replay can order it
    # against the sink already hit in the caller.
    assert rules_for("vuln_t408_cross_function.py") == ["T401", "T408"]
    assert rules_for("vuln_interprocedural.py") == ["T401"]
    # Attr-flow stores the share under an attacker-chosen key (T404)
    # and assembles it unverified elsewhere (T401).
    assert rules_for("vuln_attr_flow.py") == ["T401", "T404"]


def test_full_repo_analysis_under_budget():
    # Issue acceptance: whole-program analysis completes in < 30 s.
    src = REPO_ROOT / "src"
    start = time.monotonic()
    analyze([src], REPO_ROOT)
    elapsed = time.monotonic() - start
    assert elapsed < 30.0, f"full-repo taint analysis took {elapsed:.1f}s"
