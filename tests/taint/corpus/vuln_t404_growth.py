"""Seeded vulnerability: remote key grows replica state unbounded (T404)."""

from dataclasses import dataclass


@dataclass
class Vote:
    ballot: str
    value: int


class Endpoint:
    def __init__(self):
        self.votes = {}

    def on_message(self, sender, msg):
        # BUG: msg.ballot is attacker-chosen and there is no membership
        # or size guard, so distinct ballots grow `votes` without limit.
        pool = self.votes.setdefault(msg.ballot, set())
        pool.add(sender)
