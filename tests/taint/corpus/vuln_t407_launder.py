"""Seeded vulnerability: serialization round-trip launders taint (T407)."""

from dataclasses import dataclass


@dataclass
class ShareMsg:
    share: object


class Endpoint:
    def __init__(self, public, codec):
        self.public = public
        self.codec = codec

    def on_message(self, sender, msg):
        # BUG: re-encoding and re-parsing the share does not make it
        # trustworthy, but the re-decoded copy skips verification.
        wire = msg.share.to_bytes()
        reparsed = self.codec.from_bytes(wire)
        return self.public.assemble(b"m", [reparsed])
