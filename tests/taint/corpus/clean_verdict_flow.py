"""Clean control: batch verification consumed via a per-item verdict list.

``rsa_verify_many`` returns one verdict per submitted item.  Walking the
batch with ``for msg, ok in zip(batch, verdicts)`` under an ``if not ok:
continue`` guard means every item that reaches the zone write *has* been
verified — the engine must thread the verdict flow and stay silent: no
T405 at ``add_rdata`` and no T408 (the guard is a comparison, not a
misplaced sanitizer call).  Before verdict tracking, the zip binding
merged the verdict list's taint into ``msg`` and the guard cleared
nothing, producing a false T405 here.
"""


class BatchGate:
    """Admits a batch of signed update records after batch verification."""

    def __init__(self, executor, zone):
        self.executor = executor
        self.zone = zone

    def on_message(self, sender, batch):
        pairs = [(m.key, m.wire, m.signature) for m in batch]
        verdicts = self.executor.rsa_verify_many(pairs)
        accepted = []
        for msg, ok in zip(batch, verdicts):
            if not ok:
                continue
            self.zone.add_rdata(msg.name, msg.rtype, msg.ttl, msg.rdata)
            accepted.append(msg)
        return accepted
