"""Clean control: per-key dict taint tracking.

A remote share parked under its own literal key must not taint reads of
the *other* keys — before per-key slots the engine merged the whole dict,
so the locally-produced material below was flagged at the assembly sink
(the T404/T405-adjacent over-approximation DESIGN.md §5e calls out).
"""


class Endpoint:
    def __init__(self, public):
        self.public = public
        self.cache = {}
        self.cache["trusted"] = public.sign(b"seed")

    def on_message(self, sender, msg):
        # the remote value lands in its own slot...
        self.cache["remote"] = msg.share
        # ...and must not contaminate the trusted slot next door
        return self.public.assemble(b"m", [self.cache["trusted"]])
