"""Clean control: locally-generated crypto material is trusted.

Shares produced by our own key over a remote message are not tainted
(T401 must stay quiet), and strict decoding of our own serialization is
not laundering.
"""

from dataclasses import dataclass


@dataclass
class SignRequest:
    data: bytes


class Endpoint:
    def __init__(self, key_share):
        self.key_share = key_share
        self.public = key_share.public

    def on_message(self, sender, msg):
        share = self.key_share.generate_share(msg.data)
        return self.public.assemble(msg.data, [share])
