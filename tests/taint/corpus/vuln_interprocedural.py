"""Seeded vulnerability: taint crosses two helper calls to a sink (T401).

Exercises the interprocedural summaries: the handler itself never touches
a sink, the leaf helper never sees a source.
"""

from dataclasses import dataclass


@dataclass
class ShareMsg:
    share: object


class Endpoint:
    def __init__(self, public):
        self.public = public

    def on_message(self, sender, msg):
        return self._collect(msg.share)

    def _collect(self, share):
        return self._finish([share])

    def _finish(self, shares):
        # BUG: reached from on_message with an unverified remote share.
        return self.public.assemble(b"m", shares)
