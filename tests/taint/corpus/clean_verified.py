"""Clean control: every remote value is sanitized before its sink.

The analyzer must report nothing here — each pattern mirrors one of the
seeded vulnerabilities with the missing check put back.
"""

from dataclasses import dataclass

MAX_TRACKED = 64


@dataclass
class ShareMsg:
    sid: str
    index: int
    count: int
    share: object


class Endpoint:
    def __init__(self, public, zone):
        self.public = public
        self.zone = zone
        self.votes = {}
        self._slots = {}

    def on_message(self, sender, msg):
        # share verified before assembly (T401 counterpart)
        if not self.public.verify_shares(b"m", [msg.share]):
            return None
        # identity claim checked against the authenticated sender (T406)
        if msg.index != sender + 1:
            return None
        self._slots[msg.index] = msg.share
        # allocation bounds-checked (T403)
        if msg.count > MAX_TRACKED:
            return None
        sizes = list(range(msg.count))
        # growth behind a membership + size guard (T404)
        if msg.sid not in self.votes:
            if len(self.votes) >= MAX_TRACKED:
                return None
        pool = self.votes.setdefault(msg.sid, set())
        pool.add(sender)
        return self.public.assemble(b"m", [msg.share]), sizes
