"""Seeded vulnerability: remote integer sizes an allocation (T403)."""

from dataclasses import dataclass


@dataclass
class ChunkRequest:
    count: int


class Endpoint:
    def on_message(self, sender, msg):
        # BUG: msg.count is never bounds-checked, so a single message
        # makes us allocate an attacker-chosen amount of memory.
        chunks = []
        for i in range(msg.count):
            chunks.append(bytearray(msg.count))
        return chunks
