"""Seeded vulnerability: message-claimed identity indexes state (T406)."""

from dataclasses import dataclass


@dataclass
class SlotShare:
    index: int
    share: object


class Endpoint:
    def __init__(self):
        self._slots = {}

    def on_message(self, sender, msg):
        # BUG: msg.index is whatever the sender claims; without an
        # index-vs-sender check a Byzantine replica overwrites any slot.
        self._slots[msg.index] = msg.share
