"""Seeded vulnerability: the sanitizer runs after the sink (T408)."""

from dataclasses import dataclass


@dataclass
class ShareMsg:
    share: object


class Endpoint:
    def __init__(self, public):
        self.public = public

    def on_message(self, sender, msg):
        # BUG: assembly happens first; verifying afterwards cannot
        # protect the signature that was already produced.
        signature = self.public.assemble(b"m", [msg.share])
        if not self.public.verify_shares(b"m", [msg.share]):
            return None
        return signature
