"""Seeded vulnerability: raw wire bytes reach zone mutation (T405)."""

from dataclasses import dataclass


@dataclass
class RawUpdate:
    name: bytes
    rdata: bytes


class Endpoint:
    def __init__(self, zone):
        self.zone = zone

    def on_message(self, sender, msg):
        # BUG: the raw fields go straight into the zone without a strict
        # decoder or TSIG verification on this path.
        self.zone.add_rdata(msg.name, 1, 300, msg.rdata)
