"""Seeded vulnerability: unverified remote share reaches assemble() (T401)."""

from dataclasses import dataclass


@dataclass
class ShareMsg:
    sid: str
    share: object


class Endpoint:
    def __init__(self, public):
        self.public = public
        self.shares = []

    def on_message(self, sender, msg):
        # BUG: msg.share is attacker-controlled and never runs through
        # verify_shares/share_is_valid before assembly.
        self.shares.append(msg.share)
        if len(self.shares) >= 3:
            return self.public.assemble(b"m", self.shares)
        return None
