"""Seeded vulnerability: the sanitizer hides one call-hop below (T408).

The handler assembles first and then calls a helper that verifies the
share.  Intra-procedurally the handler never names a sanitizer, so only
the cross-function summary replay (the callee's ``sanitizes`` set applied
at the call site) can see that the verification arrived after the sink.
"""


class Endpoint:
    def __init__(self, public):
        self.public = public

    def on_message(self, sender, msg):
        # BUG: the signature is produced before _audit verifies the
        # share; the buried check cannot protect the earlier assembly.
        signature = self.public.assemble(b"m", [msg.share])
        self._audit(msg.share)
        return signature

    def _audit(self, share):
        return self.public.verify_shares(b"m", [share])
