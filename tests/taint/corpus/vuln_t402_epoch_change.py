"""Seeded vulnerability: unverified message drives an epoch change (T402)."""

from dataclasses import dataclass


@dataclass
class NewEpoch:
    epoch: int
    certificate: bytes


class Endpoint:
    def __init__(self):
        self.epoch = 0

    def on_message(self, sender, msg):
        # BUG: a forged NEW_EPOCH moves our epoch without
        # _validate_certificate / signature verification.
        if msg.epoch > self.epoch:
            self.epoch = msg.epoch
