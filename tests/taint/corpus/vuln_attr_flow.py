"""Seeded vulnerability: taint flows through replica state (T401).

One handler stores the unverified share into ``self._pool``; a different
method later assembles from it.  Detecting this requires cross-function
attribute taint, not just local dataflow.
"""

from dataclasses import dataclass


@dataclass
class ShareMsg:
    sid: str
    share: object


class Endpoint:
    def __init__(self, public):
        self.public = public
        self._pool = {}

    def on_message(self, sender, msg):
        # BUG: stored without verification ...
        pool = self._pool.setdefault(msg.sid, [])
        pool.append(msg.share)

    def try_assemble(self, sid):
        shares = self._pool.get(sid, [])
        if len(shares) < 2:
            return None
        # ... and consumed by assembly in another method entirely.
        return self.public.assemble(b"m", shares)
