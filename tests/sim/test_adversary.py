"""AdversarialScheduler unit behaviour (no protocol machinery involved)."""

import pytest

from repro.errors import ConfigError
from repro.sim.network import AdversarialScheduler, PartitionWindow


def make_adversary(**kwargs):
    defaults = dict(seed=11, n_replicas=4)
    defaults.update(kwargs)
    return AdversarialScheduler(**defaults)


class TestReliableLinks:
    def test_replica_links_never_drop(self):
        adv = make_adversary(drop_rate=1.0)
        for src in range(4):
            for dest in range(4):
                assert adv.schedule_deliveries(src, dest, 1.0) != []
        assert adv.stats["dropped"] == 0

    def test_client_links_may_drop(self):
        adv = make_adversary(drop_rate=1.0)
        assert adv.schedule_deliveries(4, 0, 1.0) == []  # client -> replica
        assert adv.schedule_deliveries(0, 4, 1.0) == []  # replica -> client
        assert adv.stats["dropped"] == 2

    def test_quiescent_after_active_until(self):
        adv = make_adversary(
            drop_rate=1.0, dup_rate=1.0, delay_rate=1.0, active_until=10.0
        )
        assert adv.schedule_deliveries(4, 0, 10.0) == [0.0]
        assert adv.schedule_deliveries(0, 1, 99.0) == [0.0]


class TestScheduleShape:
    def test_duplication_yields_two_deliveries(self):
        adv = make_adversary(dup_rate=1.0)
        deliveries = adv.schedule_deliveries(0, 1, 1.0)
        assert len(deliveries) == 2
        assert adv.stats["duplicated"] == 1

    def test_slow_sender_adds_fixed_delay(self):
        adv = make_adversary(slow_senders=(2,), slow_delay=0.5)
        assert adv.schedule_deliveries(2, 0, 1.0) == [0.5]
        assert adv.schedule_deliveries(0, 2, 1.0) == [0.0]

    def test_determinism_from_seed(self):
        traffic = [(s, d, float(i)) for i, (s, d) in enumerate(
            [(0, 1), (1, 2), (4, 0), (0, 4), (2, 3), (3, 0)] * 20
        )]
        def run():
            adv = make_adversary(
                seed=99, drop_rate=0.3, dup_rate=0.3, delay_rate=0.5
            )
            return [adv.schedule_deliveries(*t) for t in traffic], adv.log
        first, second = run(), run()
        assert first == second


class TestPartitions:
    def test_partition_holds_until_heal(self):
        window = PartitionWindow(start=1.0, heal=5.0, groups=((0, 1), (2, 3)))
        adv = make_adversary(partitions=(window,), active_until=10.0)
        (hold,) = adv.schedule_deliveries(0, 2, 2.0)
        assert hold >= 3.0  # delivered at/after the heal, never lost
        assert adv.stats["held"] == 1
        # Same side of the cut: unaffected.
        assert adv.schedule_deliveries(0, 1, 2.0) == [0.0]
        # After the heal: unaffected.
        assert adv.schedule_deliveries(0, 2, 6.0) == [0.0]

    def test_clients_roam_across_partitions(self):
        window = PartitionWindow(start=0.0, heal=5.0, groups=((0, 1), (2, 3)))
        adv = make_adversary(partitions=(window,), active_until=10.0)
        assert adv.schedule_deliveries(4, 2, 1.0) == [0.0]

    def test_partition_must_heal_before_deactivation(self):
        window = PartitionWindow(start=1.0, heal=50.0, groups=((0,), (1,)))
        with pytest.raises(ConfigError):
            make_adversary(partitions=(window,), active_until=10.0)
