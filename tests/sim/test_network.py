"""Simulated nodes, links, and the CPU busy-time model."""

import pytest

from repro.crypto.costmodel import CostModel
from repro.errors import ConfigError
from repro.sim.machines import PAPER_MACHINES, MachineSpec, lan_setup, paper_setup
from repro.sim.network import SimNetwork


def collect_handler(log, node_id):
    def handler(sender, payload):
        log.append((node_id, sender, payload))

    return handler


def make_net(topology=None, **kwargs):
    kwargs.setdefault("cpu_jitter", 0.0)
    return SimNetwork(topology if topology is not None else lan_setup(4), **kwargs)


class TestDelivery:
    def test_message_arrives_with_link_latency(self):
        net = make_net(paper_setup(4))
        log = []
        net.node(3).set_handler(collect_handler(log, 3))
        net.node(0).send(3, "hello")  # Zurich -> San Jose
        net.run()
        assert log == [(3, 0, "hello")]
        assert net.sim.now == pytest.approx(0.159 / 2, rel=0.01)

    def test_lan_latency(self):
        net = make_net()
        log = []
        net.node(1).set_handler(collect_handler(log, 1))
        net.node(0).send(1, "x")
        net.run()
        assert net.sim.now == pytest.approx(0.00015, rel=0.01)

    def test_fifo_per_link(self):
        net = make_net()
        log = []
        net.node(1).set_handler(collect_handler(log, 1))
        for i in range(5):
            net.node(0).send(1, i)
        net.run()
        assert [payload for _, _, payload in log] == [0, 1, 2, 3, 4]

    def test_broadcast_excludes_self(self):
        net = make_net()
        log = []
        for i in range(4):
            net.node(i).set_handler(collect_handler(log, i))
        net.node(0).broadcast("b")
        net.run()
        receivers = {node for node, _, _ in log}
        assert receivers == {1, 2, 3}

    def test_dropped_node_receives_nothing(self):
        net = make_net()
        log = []
        net.node(1).set_handler(collect_handler(log, 1))
        net.node(1).dropped = True
        net.node(0).send(1, "x")
        net.run()
        assert log == []

    def test_message_stats(self):
        net = make_net()
        net.node(1).set_handler(lambda s, p: None)
        net.node(0).send(1, b"12345")
        net.run()
        assert net.messages_sent == 1
        assert net.bytes_sent == 5


class TestCpuModel:
    def test_charge_delays_processing(self):
        net = make_net()
        times = []

        def handler(sender, payload):
            net.node(1).charge(0.5)
            times.append(net.node(1).now)

        net.node(1).set_handler(handler)
        net.node(0).send(1, "a")
        net.node(0).send(1, "b")
        net.run()
        # Second message waits for the CPU to free up.
        assert times[0] == pytest.approx(0.00015 + 0.5, rel=0.01)
        assert times[1] == pytest.approx(0.00015 + 1.0, rel=0.02)

    def test_cpu_factor_scales_cost(self):
        topo = paper_setup(7)
        net = make_net(topo)
        austin = next(
            i for i in range(7) if topo.machine(i).location == "Austin"
        )
        finished = []

        def handler(sender, payload):
            net.node(austin).charge(1.0)
            finished.append(net.node(austin).now)

        net.node(austin).set_handler(handler)
        net.node(austin).run_local(0.0, lambda: handler(0, None))
        net.run()
        # 266/1260 ~ 0.211 of the reference second.
        assert finished[0] == pytest.approx(266 / 1260, rel=0.01)

    def test_send_during_handler_departs_after_charge(self):
        net = make_net()
        arrival = []

        def relay(sender, payload):
            net.node(1).charge(1.0)
            net.node(1).send(2, payload)

        net.node(1).set_handler(relay)
        net.node(2).set_handler(lambda s, p: arrival.append(net.sim.now))
        net.node(0).send(1, "x")
        net.run()
        assert arrival[0] == pytest.approx(1.0 + 2 * 0.00015, rel=0.01)

    def test_jitter_deterministic_per_seed(self):
        def run(seed):
            net = SimNetwork(lan_setup(2), seed=seed, cpu_jitter=0.05)
            done = []
            net.node(1).set_handler(lambda s, p: (net.node(1).charge(1.0), done.append(net.node(1).now)))
            net.node(0).send(1, "x")
            net.run()
            return done[0]

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_charge_ops_uses_cost_model(self):
        net = make_net()
        costs = CostModel()
        node = net.node(0)
        node.charge_ops([("generate_share", 2)], costs)
        assert node.busy_until == pytest.approx(
            2 * costs.crypto["generate_share"], rel=0.01
        )

    def test_negative_charge_rejected(self):
        net = make_net()
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            net.node(0).charge(-1.0)


class TestTimers:
    def test_schedule_timer_fires_in_node_time(self):
        net = make_net()
        fired = []
        net.node(0).schedule_timer(1.5, lambda: fired.append(net.sim.now))
        net.run()
        assert fired == [1.5]

    def test_timer_cancellable(self):
        net = make_net()
        fired = []
        handle = net.node(0).schedule_timer(1.0, lambda: fired.append(1))
        handle.cancel()
        net.run()
        assert fired == []


class TestClientNodes:
    def test_added_client_colocated(self):
        net = make_net(paper_setup(4))
        client_machine = MachineSpec("client", "Zurich", "l", "c", 266, "j")
        client = net.add_node(client_machine, colocated_with=0)
        log = []
        net.node(0).set_handler(collect_handler(log, 0))
        client.send(0, "req")
        net.run()
        assert net.sim.now == pytest.approx(0.00015, rel=0.01)


class TestMachinesData:
    def test_table1_inventory(self):
        locations = [m.location for m in PAPER_MACHINES]
        assert locations.count("Zurich") == 4
        assert set(locations) == {"Zurich", "New York", "Austin", "San Jose"}
        mhz = {m.location: m.mhz for m in PAPER_MACHINES}
        assert mhz["Austin"] == 1260 and mhz["San Jose"] == 930

    def test_rtt_symmetric(self):
        from repro.sim.machines import site_rtt

        assert site_rtt("Zurich", "San Jose") == site_rtt("San Jose", "Zurich")

    def test_paper_setups(self):
        assert len(paper_setup(1)) == 1
        four = paper_setup(4)
        assert [m.location for m in four.machines] == [
            "Zurich", "Zurich", "New York", "San Jose",
        ]
        assert len(paper_setup(7)) == 7
        with pytest.raises(ConfigError):
            paper_setup(5)

    def test_cpu_factor_reference(self):
        assert PAPER_MACHINES[0].cpu_factor == 1.0
        austin = [m for m in PAPER_MACHINES if m.location == "Austin"][0]
        assert austin.cpu_factor == pytest.approx(266 / 1260)
