"""Discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator, Timer


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(0.5, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 1.5)]

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [2.0]


class TestRunControl:
    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=2.0)
        assert log == [1] and sim.now == 2.0
        sim.run()
        assert log == [1, 5]

    def test_run_condition(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: log.append(i))
        sim.run(condition=lambda: len(log) >= 3)
        assert len(log) == 3

    def test_max_events_backstop(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_empty_run_advances_to_until(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestTimer:
    def test_fires_after_timeout(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        assert fired == [2.0]

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(1))
        timer.start()
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.active

    def test_restart_resets_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(1.0, timer.restart)
        sim.run()
        assert fired == [3.0]
