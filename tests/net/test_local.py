"""The asyncio transport: same replicas, real time."""

import asyncio

import pytest

from repro.config import ServiceConfig
from repro.core.faults import CorruptionMode
from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import rdata_from_text
from repro.errors import ConfigError
from repro.net.local import AsyncNameService, AsyncNetwork


def run(coro):
    return asyncio.run(coro)


class TestAsyncNetwork:
    def test_requires_running_loop(self):
        with pytest.raises(ConfigError):
            AsyncNetwork(2)

    def test_message_delivery(self):
        async def scenario():
            net = AsyncNetwork(2)
            received = []
            net.node(1).set_handler(lambda s, p: received.append((s, p)))
            net.node(0).send(1, "hello")
            await asyncio.sleep(0.05)
            return received

        assert run(scenario()) == [(0, "hello")]

    def test_payloads_are_isolated(self):
        async def scenario():
            net = AsyncNetwork(2)
            received = []
            net.node(1).set_handler(lambda s, p: received.append(p))
            payload = {"key": ["a"]}
            net.node(0).send(1, payload)
            payload["key"].append("mutated-after-send")
            await asyncio.sleep(0.05)
            return received

        received = run(scenario())
        assert received == [{"key": ["a"]}]

    def test_dropped_node(self):
        async def scenario():
            net = AsyncNetwork(2)
            received = []
            net.node(1).set_handler(lambda s, p: received.append(p))
            net.node(1).dropped = True
            net.node(0).send(1, "x")
            await asyncio.sleep(0.05)
            return received

        assert run(scenario()) == []

    def test_timer_fires_and_cancels(self):
        async def scenario():
            net = AsyncNetwork(1)
            fired = []
            net.node(0).schedule_timer(0.01, lambda: fired.append("a"))
            handle = net.node(0).schedule_timer(0.01, lambda: fired.append("b"))
            handle.cancel()
            await asyncio.sleep(0.05)
            return fired

        assert run(scenario()) == ["a"]


class TestAsyncNameService:
    def test_read(self):
        async def scenario():
            service = AsyncNameService(ServiceConfig(n=4, t=1))
            return await service.query("www.example.com.", c.TYPE_A)

        op = run(scenario())
        assert op.response.rcode == c.RCODE_NOERROR
        assert op.verified

    def test_signed_update_end_to_end(self):
        async def scenario():
            service = AsyncNameService(ServiceConfig(n=4, t=1))
            op = await service.add_record(
                "live.example.com.", c.TYPE_A, 300, "192.0.2.200"
            )
            await service.settle()
            return op, service.states_consistent(), service.verify_all_zones()

        op, consistent, verified = run(scenario())
        assert op.response.rcode == c.RCODE_NOERROR
        assert consistent
        assert verified > 0

    def test_delete_after_add(self):
        async def scenario():
            service = AsyncNameService(ServiceConfig(n=4, t=1))
            await service.add_record("tmp.example.com.", c.TYPE_A, 300, "192.0.2.5")
            await service.delete_name("tmp.example.com.")
            read = await service.query("tmp.example.com.", c.TYPE_A)
            await service.settle()
            return read, service.states_consistent()

        read, consistent = run(scenario())
        assert read.response.rcode == c.RCODE_NXDOMAIN
        assert consistent

    def test_update_with_corrupted_signer(self):
        async def scenario():
            service = AsyncNameService(ServiceConfig(n=4, t=1))
            service.replicas[1].corrupt(CorruptionMode.BAD_SHARES)
            op = await service.add_record(
                "live.example.com.", c.TYPE_A, 300, "192.0.2.201"
            )
            await service.settle()
            return op, service.verify_all_zones()

        op, verified = run(scenario())
        assert op.response.rcode == c.RCODE_NOERROR
        assert verified > 0

    def test_full_client_model(self):
        async def scenario():
            service = AsyncNameService(
                ServiceConfig(n=4, t=1), client_model="full"
            )
            return await service.query("www.example.com.", c.TYPE_A)

        op = run(scenario())
        assert op.response.rcode == c.RCODE_NOERROR

    def test_crashed_gateway_retry(self):
        async def scenario():
            service = AsyncNameService(
                ServiceConfig(n=4, t=1, client_timeout=0.3)
            )
            service.replicas[0].corrupt(CorruptionMode.CRASH)
            return await service.query("www.example.com.", c.TYPE_A)

        op = run(scenario())
        assert op.retries >= 1
        assert op.response.rcode == c.RCODE_NOERROR


class TestAsyncBatching:
    """BatchQueue over the asyncio transport: timers are real, so batches
    fill only when several clients have requests in flight at once."""

    def test_concurrent_clients_fill_batches(self):
        async def scenario():
            service = AsyncNameService(
                ServiceConfig(n=4, t=1, batch_size=4, batch_delay=0.1)
            )
            clients = [service.client] + [service.add_client() for _ in range(2)]
            names = ["www.example.com.", "ns1.example.com.", "ns2.example.com."]
            ops = await asyncio.gather(
                *(
                    service.query(names[i % len(names)], c.TYPE_A, client=clients[i % len(clients)])
                    for i in range(6)
                )
            )
            await service.settle()
            batches = sum(r.stats["batches_delivered"] for r in service.replicas)
            return ops, batches, service.states_consistent()

        ops, batches, consistent = run(scenario())
        assert all(op.response.rcode == c.RCODE_NOERROR for op in ops)
        # With three clients firing simultaneously into one gateway, at
        # least one multi-request batch must have been ordered.
        assert batches > 0
        assert consistent

    def test_batched_updates_apply_once(self):
        async def scenario():
            service = AsyncNameService(
                ServiceConfig(n=4, t=1, batch_size=3, batch_delay=0.05)
            )
            extra = service.add_client()
            op1, op2 = await asyncio.gather(
                service.add_record("b1.example.com.", c.TYPE_A, 300, "192.0.2.51"),
                service._await_op(
                    lambda cb: extra.add_record(
                        Name.from_text("b2.example.com."),
                        c.TYPE_A,
                        300,
                        rdata_from_text(c.TYPE_A, ["192.0.2.52"], service.zone_origin),
                        cb,
                    )
                ),
            )
            await service.settle()
            read1 = await service.query("b1.example.com.", c.TYPE_A)
            read2 = await service.query("b2.example.com.", c.TYPE_A)
            return op1, op2, read1, read2, service.states_consistent()

        op1, op2, read1, read2, consistent = run(scenario())
        assert op1.response.rcode == c.RCODE_NOERROR
        assert op2.response.rcode == c.RCODE_NOERROR
        assert read1.response.rcode == c.RCODE_NOERROR
        assert read2.response.rcode == c.RCODE_NOERROR
        assert consistent
