"""Signed-answer cache: hits, invalidation, and signing-round reuse.

The cache memoizes complete response wires (and, in A3 mode, the
assembled threshold signature) keyed by ``(qname, qtype, zone serial)``.
Repeated identical queries must be answered without another zone lookup
or distributed signing round; any update that changes zone data bumps
the serial and must invalidate every entry.
"""

from repro.config import ServiceConfig
from repro.core.replica import canonical_response_wire
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.sim.machines import lan_setup


def make_service(n=4, t=1, **config_extra):
    config = ServiceConfig(n=n, t=t, **config_extra)
    return ReplicatedNameService(config, topology=lan_setup(n))


def cache_hits(svc):
    return sum(r.stats["answer_cache_hits"] for r in svc.replicas)


def cache_misses(svc):
    return sum(r.stats["answer_cache_misses"] for r in svc.replicas)


class TestAnswerCache:
    def test_repeated_query_hits_cache(self):
        svc = make_service()
        svc.query("www.example.com.", c.TYPE_A)
        assert cache_misses(svc) >= 1
        assert cache_hits(svc) == 0
        svc.query("www.example.com.", c.TYPE_A)
        assert cache_hits(svc) >= 1

    def test_cached_answer_is_byte_identical_modulo_msg_id(self):
        svc = make_service()
        op1 = svc.query("www.example.com.", c.TYPE_A)
        op2 = svc.query("www.example.com.", c.TYPE_A)
        assert op1.verified and op2.verified
        assert canonical_response_wire(
            op1.response.to_wire()
        ) == canonical_response_wire(op2.response.to_wire())
        assert op1.response.msg_id != op2.response.msg_id

    def test_different_question_misses(self):
        svc = make_service()
        svc.query("www.example.com.", c.TYPE_A)
        svc.query("ns1.example.com.", c.TYPE_A)
        assert cache_hits(svc) == 0

    def test_update_invalidates_cache(self):
        svc = make_service()
        op1 = svc.query("www.example.com.", c.TYPE_A)
        old = {
            rr.rdata.address for rr in op1.response.answers if rr.rtype == c.TYPE_A
        }
        assert old == {"192.0.2.80"}
        svc.add_record("www.example.com.", c.TYPE_A, 3600, "192.0.2.81")
        op2 = svc.query("www.example.com.", c.TYPE_A)
        new = {
            rr.rdata.address for rr in op2.response.answers if rr.rtype == c.TYPE_A
        }
        # The re-query must see the freshly signed RRset, not the stale wire.
        assert new == {"192.0.2.80", "192.0.2.81"}
        assert op2.verified
        assert svc.states_consistent()

    def test_delete_invalidates_cache(self):
        svc = make_service()
        svc.add_record("tmp.example.com.", c.TYPE_A, 300, "192.0.2.9")
        op1 = svc.query("tmp.example.com.", c.TYPE_A)
        assert op1.response.rcode == c.RCODE_NOERROR
        svc.delete_name("tmp.example.com.")
        op2 = svc.query("tmp.example.com.", c.TYPE_A)
        assert op2.response.rcode == c.RCODE_NXDOMAIN
        assert svc.states_consistent()

    def test_cache_can_be_disabled(self):
        svc = make_service(answer_cache=False)
        svc.query("www.example.com.", c.TYPE_A)
        svc.query("www.example.com.", c.TYPE_A)
        assert cache_hits(svc) == 0
        assert cache_misses(svc) == 0


class TestSignEveryResponse:
    """A3 mode: the cache must also reuse assembled threshold signatures."""

    def test_repeat_query_starts_no_new_signing_round(self):
        svc = make_service(sign_every_response=True)
        op1 = svc.query("www.example.com.", c.TYPE_A)
        assert op1.response.rcode == c.RCODE_NOERROR
        rounds = svc.total_signing_rounds()
        assert rounds >= 1
        op2 = svc.query("www.example.com.", c.TYPE_A)
        assert op2.response.rcode == c.RCODE_NOERROR
        assert svc.total_signing_rounds() == rounds
        assert cache_hits(svc) >= 1

    def test_cached_signature_verifies_under_zone_key(self):
        svc = make_service(sign_every_response=True)
        svc.query("www.example.com.", c.TYPE_A)
        svc.settle()
        checked = 0
        for replica in svc.honest_replicas():
            for _tail, wire, sig in replica._answer_cache.values():
                if sig:
                    svc.deployment.zone_public.verify_signature(wire, sig)
                    checked += 1
        assert checked >= 1

    def test_update_forces_fresh_signature(self):
        svc = make_service(sign_every_response=True)
        op1 = svc.query("www.example.com.", c.TYPE_A)
        svc.add_record("www.example.com.", c.TYPE_A, 3600, "192.0.2.81")
        rounds = svc.total_signing_rounds()
        op2 = svc.query("www.example.com.", c.TYPE_A)
        # The serial moved, so the cached signed wire must not be reused.
        assert svc.total_signing_rounds() > rounds
        new = {
            rr.rdata.address for rr in op2.response.answers if rr.rtype == c.TYPE_A
        }
        assert "192.0.2.81" in new
        assert canonical_response_wire(
            op1.response.to_wire()
        ) != canonical_response_wire(op2.response.to_wire())
        assert svc.states_consistent()
