"""Signed-answer cache: hits, invalidation, and signing-round reuse.

The cache memoizes complete response wires (and, in A3 mode, the
assembled threshold signature) keyed by ``(qname, qtype, zone serial)``.
Repeated identical queries must be answered without another zone lookup
or distributed signing round; any update that changes zone data bumps
the serial and must invalidate every entry.
"""

from repro.config import ServiceConfig
from repro.core.replica import canonical_response_wire
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.sim.machines import lan_setup


def make_service(n=4, t=1, **config_extra):
    config = ServiceConfig(n=n, t=t, **config_extra)
    return ReplicatedNameService(config, topology=lan_setup(n))


def cache_hits(svc):
    return sum(r.stats["answer_cache_hits"] for r in svc.replicas)


def cache_misses(svc):
    return sum(r.stats["answer_cache_misses"] for r in svc.replicas)


class TestAnswerCache:
    def test_repeated_query_hits_cache(self):
        svc = make_service()
        svc.query("www.example.com.", c.TYPE_A)
        assert cache_misses(svc) >= 1
        assert cache_hits(svc) == 0
        svc.query("www.example.com.", c.TYPE_A)
        assert cache_hits(svc) >= 1

    def test_cached_answer_is_byte_identical_modulo_msg_id(self):
        svc = make_service()
        op1 = svc.query("www.example.com.", c.TYPE_A)
        op2 = svc.query("www.example.com.", c.TYPE_A)
        assert op1.verified and op2.verified
        assert canonical_response_wire(
            op1.response.to_wire()
        ) == canonical_response_wire(op2.response.to_wire())
        assert op1.response.msg_id != op2.response.msg_id

    def test_different_question_misses(self):
        svc = make_service()
        svc.query("www.example.com.", c.TYPE_A)
        svc.query("ns1.example.com.", c.TYPE_A)
        assert cache_hits(svc) == 0

    def test_update_invalidates_cache(self):
        svc = make_service()
        op1 = svc.query("www.example.com.", c.TYPE_A)
        old = {
            rr.rdata.address for rr in op1.response.answers if rr.rtype == c.TYPE_A
        }
        assert old == {"192.0.2.80"}
        svc.add_record("www.example.com.", c.TYPE_A, 3600, "192.0.2.81")
        op2 = svc.query("www.example.com.", c.TYPE_A)
        new = {
            rr.rdata.address for rr in op2.response.answers if rr.rtype == c.TYPE_A
        }
        # The re-query must see the freshly signed RRset, not the stale wire.
        assert new == {"192.0.2.80", "192.0.2.81"}
        assert op2.verified
        assert svc.states_consistent()

    def test_delete_invalidates_cache(self):
        svc = make_service()
        svc.add_record("tmp.example.com.", c.TYPE_A, 300, "192.0.2.9")
        op1 = svc.query("tmp.example.com.", c.TYPE_A)
        assert op1.response.rcode == c.RCODE_NOERROR
        svc.delete_name("tmp.example.com.")
        op2 = svc.query("tmp.example.com.", c.TYPE_A)
        assert op2.response.rcode == c.RCODE_NXDOMAIN
        assert svc.states_consistent()

    def test_cache_can_be_disabled(self):
        svc = make_service(answer_cache=False)
        svc.query("www.example.com.", c.TYPE_A)
        svc.query("www.example.com.", c.TYPE_A)
        assert cache_hits(svc) == 0
        assert cache_misses(svc) == 0


class TestSignEveryResponse:
    """A3 mode: the cache must also reuse assembled threshold signatures."""

    def test_repeat_query_starts_no_new_signing_round(self):
        svc = make_service(sign_every_response=True)
        op1 = svc.query("www.example.com.", c.TYPE_A)
        assert op1.response.rcode == c.RCODE_NOERROR
        rounds = svc.total_signing_rounds()
        assert rounds >= 1
        op2 = svc.query("www.example.com.", c.TYPE_A)
        assert op2.response.rcode == c.RCODE_NOERROR
        assert svc.total_signing_rounds() == rounds
        assert cache_hits(svc) >= 1

    def test_cached_signature_verifies_under_zone_key(self):
        svc = make_service(sign_every_response=True)
        svc.query("www.example.com.", c.TYPE_A)
        svc.settle()
        checked = 0
        for replica in svc.honest_replicas():
            for entry in replica._answer_cache.values():
                if entry.signature:
                    svc.deployment.zone_public.verify_signature(
                        entry.wire, entry.signature
                    )
                    checked += 1
        assert checked >= 1

    def test_update_forces_fresh_signature(self):
        svc = make_service(sign_every_response=True)
        op1 = svc.query("www.example.com.", c.TYPE_A)
        svc.add_record("www.example.com.", c.TYPE_A, 3600, "192.0.2.81")
        rounds = svc.total_signing_rounds()
        op2 = svc.query("www.example.com.", c.TYPE_A)
        # The serial moved, so the cached signed wire must not be reused.
        assert svc.total_signing_rounds() > rounds
        new = {
            rr.rdata.address for rr in op2.response.answers if rr.rtype == c.TYPE_A
        }
        assert "192.0.2.81" in new
        assert canonical_response_wire(
            op1.response.to_wire()
        ) != canonical_response_wire(op2.response.to_wire())
        assert svc.states_consistent()


class TestPerNameInvalidation:
    """Updates invalidate only entries related to the touched names.

    The cache key carries the zone serial, so every update re-keys the
    surviving entries; what matters is that entries for *unrelated* names
    survive (no re-lookup, no new signing round) while entries touching
    the updated names — and volatile entries like negative answers — drop.
    """

    def test_hot_entry_survives_unrelated_update(self):
        svc = make_service()
        svc.query("www.example.com.", c.TYPE_A)
        hits_before = cache_hits(svc)
        svc.add_record("other.example.com.", c.TYPE_A, 300, "192.0.2.50")
        op = svc.query("www.example.com.", c.TYPE_A)
        # The www entry was re-keyed to the new serial, not dropped.
        assert cache_hits(svc) > hits_before
        assert op.verified
        assert sum(r.stats["answer_cache_retained"] for r in svc.replicas) > 0

    def test_hot_entry_survives_without_new_signing_round(self):
        svc = make_service(sign_every_response=True)
        svc.query("www.example.com.", c.TYPE_A)
        svc.settle()
        rounds = svc.total_signing_rounds()
        svc.add_record("other.example.com.", c.TYPE_A, 300, "192.0.2.50")
        svc.settle()
        rounds_after_update = svc.total_signing_rounds()
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NOERROR
        # The hot read reused its cached threshold signature: the update
        # itself signs (SOA/affected RRsets) but the re-read must not.
        assert svc.total_signing_rounds() == rounds_after_update
        assert rounds_after_update > rounds  # sanity: updates do sign

    def test_updated_name_is_invalidated(self):
        svc = make_service()
        svc.query("www.example.com.", c.TYPE_A)
        svc.add_record("www.example.com.", c.TYPE_A, 300, "192.0.2.81")
        op = svc.query("www.example.com.", c.TYPE_A)
        addresses = {
            rr.rdata.address for rr in op.response.answers if rr.rtype == c.TYPE_A
        }
        assert "192.0.2.81" in addresses
        assert sum(r.stats["answer_cache_invalidated"] for r in svc.replicas) > 0

    def test_negative_answer_invalidated_when_name_added(self):
        svc = make_service()
        miss = svc.query("new.example.com.", c.TYPE_A)
        assert miss.response.rcode == c.RCODE_NXDOMAIN
        svc.add_record("unrelated.example.com.", c.TYPE_A, 300, "192.0.2.60")
        svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.61")
        hit = svc.query("new.example.com.", c.TYPE_A)
        # The cached NXDOMAIN (volatile: carries the SOA) must not be
        # replayed once the name exists.
        assert hit.response.rcode == c.RCODE_NOERROR
        assert svc.states_consistent()

    def test_subtree_delete_invalidates_descendants(self):
        svc = make_service()
        svc.add_record("a.sub.example.com.", c.TYPE_A, 300, "192.0.2.70")
        op = svc.query("a.sub.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NOERROR
        svc.delete_name("a.sub.example.com.")
        gone = svc.query("a.sub.example.com.", c.TYPE_A)
        assert gone.response.rcode == c.RCODE_NXDOMAIN
        assert svc.states_consistent()
