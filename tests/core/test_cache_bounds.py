"""Response/answer cache eviction: remote queries must not grow replica
caches without bound (each distinct query is an attacker-chosen key)."""

from types import SimpleNamespace

from repro.core import replica as replica_mod
from repro.core.replica import ReplicaServer


def stub():
    return SimpleNamespace(_response_cache={}, _answer_cache={})


class TestResponseCache:
    def test_evicts_oldest_at_cap(self, monkeypatch):
        monkeypatch.setattr(replica_mod, "MAX_RESPONSE_CACHE_ENTRIES", 3)
        s = stub()
        for i in range(5):
            ReplicaServer._cache_response(s, b"h%d" % i, b"wire%d" % i)
        assert len(s._response_cache) == 3
        # FIFO: the two oldest entries are gone, the newest remain
        assert b"h0" not in s._response_cache
        assert b"h1" not in s._response_cache
        assert s._response_cache[b"h4"] == b"wire4"

    def test_rewrite_of_existing_key_does_not_evict(self, monkeypatch):
        monkeypatch.setattr(replica_mod, "MAX_RESPONSE_CACHE_ENTRIES", 2)
        s = stub()
        ReplicaServer._cache_response(s, b"a", b"1")
        ReplicaServer._cache_response(s, b"b", b"2")
        ReplicaServer._cache_response(s, b"a", b"1-updated")
        assert len(s._response_cache) == 2
        assert s._response_cache[b"a"] == b"1-updated"

    def test_reinsert_refreshes_lru_position(self, monkeypatch):
        """An actively-retried entry must survive a flood of one-shot
        queries: re-inserting moves it to the back of the eviction order."""
        monkeypatch.setattr(replica_mod, "MAX_RESPONSE_CACHE_ENTRIES", 3)
        s = stub()
        ReplicaServer._cache_response(s, b"victim", b"v")
        ReplicaServer._cache_response(s, b"x1", b"1")
        ReplicaServer._cache_response(s, b"x2", b"2")
        ReplicaServer._cache_response(s, b"victim", b"v")  # retry hit refresh
        ReplicaServer._cache_response(s, b"x3", b"3")      # evicts x1, not victim
        assert b"victim" in s._response_cache
        assert b"x1" not in s._response_cache


class TestAnswerCache:
    def test_evicts_oldest_at_cap(self, monkeypatch):
        monkeypatch.setattr(replica_mod, "MAX_ANSWER_CACHE_ENTRIES", 3)
        s = stub()
        for i in range(5):
            ReplicaServer._cache_answer(s, (f"name{i}", 1, 1), f"entry{i}")
        assert len(s._answer_cache) == 3
        assert ("name0", 1, 1) not in s._answer_cache
        assert s._answer_cache[("name4", 1, 1)] == "entry4"

    def test_default_caps_are_sane(self):
        assert replica_mod.MAX_RESPONSE_CACHE_ENTRIES >= 1024
        assert replica_mod.MAX_ANSWER_CACHE_ENTRIES >= 1024
