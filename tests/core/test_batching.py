"""Request batching: wire format, deterministic delivery, Byzantine safety.

Batches are framed at the gateway and ordered by atomic broadcast as one
payload; every honest replica must unpack them into the *same* request
sequence, even with corrupted replicas in the system or garbage batch
frames injected into the broadcast layer.
"""

from repro.broadcast.messages import (
    BATCH_MAGIC,
    decode_batch,
    encode_batch,
    is_batch_payload,
)
from repro.config import ServiceConfig
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.dns.name import Name
from repro.sim.machines import lan_setup


def make_service(n=4, t=1, batch_size=4, **config_extra):
    config = ServiceConfig(n=n, t=t, batch_size=batch_size, **config_extra)
    return ReplicatedNameService(config, topology=lan_setup(n))


def run_concurrent_queries(svc, names, limit=600.0):
    """Issue all queries before driving the simulator, so batches form."""
    box = []
    for name in names:
        svc.client.query(Name.from_text(name), c.TYPE_A, box.append)
    deadline = svc.net.sim.now + limit
    svc.net.sim.run(until=deadline, condition=lambda: len(box) == len(names))
    return box


class TestBatchWireFormat:
    def test_roundtrip(self):
        payloads = [b"a", b"bb" * 100, b"\x00", b"\xff" * 7]
        blob = encode_batch(payloads)
        assert is_batch_payload(blob)
        assert decode_batch(blob) == payloads

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_client_payload_is_not_mistaken_for_batch(self):
        # Request payloads start with a 4-byte client node id.
        assert not is_batch_payload(b"\x00\x00\x00\x07" + b"any dns wire")

    def test_truncated_batch_decodes_empty(self):
        blob = encode_batch([b"hello", b"world"])
        assert decode_batch(blob[:-3]) == []

    def test_trailing_garbage_decodes_empty(self):
        assert decode_batch(encode_batch([b"x"]) + b"junk") == []

    def test_bad_length_prefix_decodes_empty(self):
        assert decode_batch(BATCH_MAGIC + b"\x00\x00\x00\x01\xff\xff\xff\xff") == []


class TestBatchedDelivery:
    def test_concurrent_reads_are_batched_and_answered(self):
        svc = make_service(batch_size=4)
        ops = run_concurrent_queries(svc, ["www.example.com."] * 8)
        assert len(ops) == 8
        assert all(op.response.rcode == c.RCODE_NOERROR for op in ops)
        assert all(op.verified for op in ops)
        delivered = sum(r.stats["batches_delivered"] for r in svc.replicas)
        assert delivered >= 1
        assert svc.states_consistent()

    def test_honest_replicas_deliver_identical_sequences(self):
        svc = make_service(batch_size=4)
        run_concurrent_queries(
            svc,
            ["www.example.com.", "ns1.example.com.", "ns2.example.com."] * 2,
        )
        svc.add_record("batch1.example.com.", c.TYPE_A, 300, "192.0.2.11")
        run_concurrent_queries(svc, ["batch1.example.com."] * 3)
        svc.settle()
        sequences = {tuple(r.delivered_requests) for r in svc.honest_replicas()}
        assert len(sequences) == 1
        assert next(iter(sequences))  # non-empty
        assert svc.states_consistent()

    def test_batching_with_corrupted_replica(self):
        svc = make_service(batch_size=4)
        svc.corrupt_paper_style(1)
        ops = run_concurrent_queries(svc, ["www.example.com."] * 6)
        assert all(op.response.rcode == c.RCODE_NOERROR for op in ops)
        svc.add_record("byz.example.com.", c.TYPE_A, 300, "192.0.2.66")
        op = svc.query("byz.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NOERROR
        svc.settle()
        sequences = {tuple(r.delivered_requests) for r in svc.honest_replicas()}
        assert len(sequences) == 1
        assert svc.states_consistent()

    def test_injected_garbage_batch_is_ignored(self):
        svc = make_service(batch_size=4)
        # A Byzantine gateway broadcasts a malformed batch frame; honest
        # replicas must skip it and keep serving real traffic.
        svc.replicas[1].abc.a_broadcast(BATCH_MAGIC + b"\x00\x00\x00\x02junk")
        svc.settle(limit=30.0)
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NOERROR
        svc.settle()
        sequences = {tuple(r.delivered_requests) for r in svc.honest_replicas()}
        assert len(sequences) == 1
        assert svc.states_consistent()

    def test_batch_size_one_keeps_seed_behaviour(self):
        svc = make_service(batch_size=1)
        assert all(r.batch_queue is None for r in svc.replicas)
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NOERROR
        assert sum(r.stats["batches_delivered"] for r in svc.replicas) == 0
