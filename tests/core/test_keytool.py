"""Key generation and distribution utility."""

import pytest

from repro.config import ServiceConfig
from repro.core.keytool import generate_deployment, load_replica_keys, save_replica_keys
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def deployment():
    return generate_deployment(ServiceConfig(n=4, t=1), zone_bits=384)


class TestGeneration:
    def test_share_indices_one_based(self, deployment):
        for i, keys in enumerate(deployment.replicas):
            assert keys.index == i
            assert keys.zone_share.index == i + 1
            assert keys.coin_share.index == i + 1

    def test_zone_and_coin_keys_independent(self, deployment):
        assert deployment.zone_public.modulus != deployment.coin_public.modulus

    def test_auth_keys_distinct(self, deployment):
        moduli = {k.modulus for k in deployment.auth_public}
        assert len(moduli) == 4

    def test_zone_key_record_matches_public(self, deployment):
        record = deployment.zone_key_record
        modulus, exponent = record.rsa_parameters()
        assert modulus == deployment.zone_public.modulus
        assert exponent == deployment.zone_public.exponent

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServiceConfig(n=3, t=1)  # violates n > 3t
        with pytest.raises(ConfigError):
            ServiceConfig(n=4, t=-1)
        with pytest.raises(ConfigError):
            ServiceConfig(n=4, t=1, signing_protocol="nope")

    def test_threshold_shares_sign_together(self, deployment):
        public = deployment.zone_public
        shares = [r.zone_share for r in deployment.replicas[:2]]
        message = b"check"
        sig = public.assemble(message, [s.generate_share(message) for s in shares])
        public.verify_signature(message, sig)


class TestFileForm:
    def test_save_load_roundtrip(self, deployment, tmp_path):
        path = tmp_path / "replica2.keys"
        save_replica_keys(deployment.replicas[2], str(path))
        loaded = load_replica_keys(str(path))
        assert loaded.index == 2
        assert loaded.zone_share.secret == deployment.replicas[2].zone_share.secret
        assert loaded.coin_share.public == deployment.coin_public
        assert (
            loaded.auth_key.private.private_exponent
            == deployment.replicas[2].auth_key.private.private_exponent
        )

    def test_loaded_keys_functional(self, deployment, tmp_path):
        path = tmp_path / "replica0.keys"
        save_replica_keys(deployment.replicas[0], str(path))
        loaded = load_replica_keys(str(path))
        sig = loaded.auth_key.private.sign(b"hello")
        loaded.auth_key.public.verify(b"hello", sig)
        share = loaded.zone_share.generate_share_with_proof(b"msg")
        deployment.zone_public.verify_share(b"msg", share)
