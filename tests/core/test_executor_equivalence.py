"""Cross-executor determinism: the pool plane is behavior-preserving.

The execution plane changes *where* crypto runs, never *what* it
computes: the same seeded workload over the same deployment must yield
identical ABC delivery fingerprints, zone digests, response contents,
and assembled threshold signatures whether crypto runs inline
(:class:`SerialExecutor`) or on a process pool (:class:`PoolExecutor`).
"""

import dataclasses

import pytest

from repro.config import ServiceConfig
from repro.core.keytool import generate_deployment
from repro.core.service import ReplicatedNameService
from repro.crypto.executor import EXECUTOR_POOL, EXECUTOR_SERIAL
from repro.crypto.protocols import (
    PROTOCOL_BASIC,
    PROTOCOL_OPTPROOF,
    PROTOCOL_OPTTE,
)
from repro.dns import constants as c
from repro.sim.machines import lan_setup

from tests.conftest import ZONE_TEXT

SEED = 7


@pytest.fixture(scope="module")
def deployment():
    # Shared across both executor legs: identical key material is what
    # makes the transcripts comparable at all.
    return generate_deployment(ServiceConfig(n=4, t=1))


def run_workload(executor_kind, protocol, deployment):
    config = ServiceConfig(
        n=4,
        t=1,
        signing_protocol=protocol,
        crypto_executor=executor_kind,
        crypto_workers=2,
    )
    # Replicas read their config off the deployment; rebind it so the two
    # executor legs share key material but honor this run's protocol.
    deployment = dataclasses.replace(deployment, config=config)
    with ReplicatedNameService(
        config,
        topology=lan_setup(4),
        zone_text=ZONE_TEXT,
        seed=SEED,
        deployment=deployment,
    ) as service:
        ops = [
            service.add_record("pool0.example.com.", c.TYPE_A, 300, "192.0.2.10"),
            service.query("www.example.com.", c.TYPE_A),
            service.add_record("pool1.example.com.", c.TYPE_A, 300, "192.0.2.11"),
            service.query("pool0.example.com.", c.TYPE_A),
            service.delete_name("pool1.example.com."),
        ]
        service.settle()
        transcript = {
            "deliveries": [r.abc.delivery_digest() for r in service.replicas],
            "zones": [r.zone.digest() for r in service.replicas],
            "signatures": [
                sorted(r.coordinator._completed.items()) for r in service.replicas
            ],
            "rcodes": [op.response.rcode for op in ops],
            "answers": [
                tuple(rr.to_text() for rr in op.response.answers) for op in ops
            ],
        }
        latencies = [op.latency for op in ops]
    return transcript, latencies


@pytest.mark.parametrize(
    "protocol", [PROTOCOL_BASIC, PROTOCOL_OPTPROOF, PROTOCOL_OPTTE]
)
def test_identical_transcripts_serial_vs_pool(protocol, deployment):
    serial, serial_latencies = run_workload(EXECUTOR_SERIAL, protocol, deployment)
    pooled, pooled_latencies = run_workload(EXECUTOR_POOL, protocol, deployment)
    assert serial == pooled
    # Replicas agree among themselves, too (sanity on the fingerprints).
    assert len(set(serial["deliveries"])) == 1
    assert len(set(serial["zones"])) == 1
    if protocol != PROTOCOL_OPTTE:
        # BASIC and OptProof charge identical op logs under both planes,
        # so even the *simulated latencies* line up exactly.  (A pooled
        # OptTE trial may legitimately assemble more candidate subsets
        # than the serial early exit, shifting modelled CPU time.)
        assert serial_latencies == pooled_latencies


def run_write_workload(executor_kind, protocol, deployment):
    # A3 fully-signed mode with the incremental write path: updates fan
    # their re-sign tasks through the executor, so this pins down the
    # write path's determinism, not just the read path's.
    config = ServiceConfig(
        n=4,
        t=1,
        signing_protocol=protocol,
        crypto_executor=executor_kind,
        crypto_workers=2,
        parallel_update_signing=True,
        sign_every_response=True,
    )
    deployment = dataclasses.replace(deployment, config=config)
    with ReplicatedNameService(
        config,
        topology=lan_setup(4),
        zone_text=ZONE_TEXT,
        seed=SEED,
        deployment=deployment,
    ) as service:
        ops = [
            service.add_record("wp0.example.com.", c.TYPE_A, 300, "192.0.2.20"),
            service.add_record("wp0.example.com.", c.TYPE_A, 300, "192.0.2.21"),
            service.query("wp0.example.com.", c.TYPE_A),
            service.delete_name("txt.example.com."),
            service.add_record("wp1.example.com.", c.TYPE_A, 300, "192.0.2.22"),
        ]
        service.settle()
        transcript = {
            "deliveries": [r.abc.delivery_digest() for r in service.replicas],
            "zones": [r.zone.digest() for r in service.replicas],
            "signatures": [
                sorted(r.coordinator._completed.items()) for r in service.replicas
            ],
            "rcodes": [op.response.rcode for op in ops],
            "answers": [
                tuple(rr.to_text() for rr in op.response.answers) for op in ops
            ],
        }
        latencies = [op.latency for op in ops]
    return transcript, latencies


@pytest.mark.parametrize("protocol", [PROTOCOL_OPTPROOF, PROTOCOL_OPTTE])
def test_write_path_identical_transcripts_serial_vs_pool(protocol, deployment):
    serial, serial_latencies = run_write_workload(
        EXECUTOR_SERIAL, protocol, deployment
    )
    pooled, pooled_latencies = run_write_workload(
        EXECUTOR_POOL, protocol, deployment
    )
    assert serial == pooled
    assert len(set(serial["deliveries"])) == 1
    assert len(set(serial["zones"])) == 1
    if protocol != PROTOCOL_OPTTE:
        assert serial_latencies == pooled_latencies


def test_pool_plane_actually_engaged(deployment):
    # A3 mode (sign_every_response) threshold-signs read responses, which
    # is the path where the *client* verifies through the executor: a
    # negative answer carries no per-RRset DNSSEC signatures, so the
    # client falls back to checking the whole-response signature.
    config = ServiceConfig(
        n=4,
        t=1,
        crypto_executor=EXECUTOR_POOL,
        crypto_workers=2,
        sign_every_response=True,
    )
    deployment = dataclasses.replace(deployment, config=config)
    with ReplicatedNameService(
        config,
        topology=lan_setup(4),
        zone_text=ZONE_TEXT,
        seed=SEED,
        deployment=deployment,
    ) as service:
        op = service.query("missing.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NXDOMAIN
        assert op.verified
        assert service._pool is not None and service._pool.started
        assert all(
            r.coordinator.executor.kind == EXECUTOR_POOL for r in service.replicas
        )
        assert sum(
            r.coordinator.executor.stats["jobs"] for r in service.replicas
        ) > 0
        # Client-side answer verification rides the pool as well.
        assert service.client.executor is not None
        assert service.client.executor.stats["jobs"] > 0
