"""Replica-level unit tests (execution queue, caching, determinism)."""

from repro.config import ServiceConfig
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.dns.name import Name
from repro.sim.machines import lan_setup, paper_setup


def make_service(**kwargs):
    config_extra = kwargs.pop("config_extra", {})
    kwargs.setdefault("topology", lan_setup(4))
    return ReplicatedNameService(
        ServiceConfig(n=4, t=1, **config_extra), **kwargs
    )


class TestExecutionOrdering:
    def test_queries_wait_behind_update_signing(self):
        """named is sequential: a read delivered after an update must
        observe the update's effects (same order on every replica)."""
        svc = make_service()
        # Issue an update and a read of the same name back to back; the
        # read is delivered after the update in the total order, so it
        # must see the new record even though signing takes a while.
        box = []
        svc.client.add_record(
            Name.from_text("seq.example.com."), c.TYPE_A, 300,
            __import__("repro.dns.rdata", fromlist=["A"]).A("192.0.2.77"),
            box.append,
        )
        svc.client.query(Name.from_text("seq.example.com."), c.TYPE_A, box.append)
        svc.net.sim.run(condition=lambda: len(box) >= 2)
        read_op = next(op for op in box if op.kind == "read")
        assert read_op.response.rcode == c.RCODE_NOERROR
        assert read_op.response.answers

    def test_stats_counters(self):
        svc = make_service()
        svc.query("www.example.com.", c.TYPE_A)
        svc.add_record("x.example.com.", c.TYPE_A, 300, "192.0.2.1")
        svc.settle()
        replica = svc.replicas[0]
        assert replica.stats["queries"] >= 1
        assert replica.stats["updates"] == 1
        assert replica.stats["signatures_completed"] == 4  # one add


class TestResponseCache:
    def test_duplicate_request_replayed_from_cache(self):
        svc = make_service()
        svc.query("www.example.com.", c.TYPE_A)
        # Re-send the identical wire (same msg_id) straight to the gateway.
        from repro.broadcast.messages import ClientRequest

        wire = None
        # Rebuild the same query wire via the client's builder with a
        # fixed id, send twice, and count executions.
        msg_id, wire = svc.client.build_query_wire(
            Name.from_text("ns1.example.com."), c.TYPE_A
        )
        responses = []
        svc.client._inflight.clear()
        client_node = svc.client.node
        client_node.set_handler(lambda s, m: responses.append(m))
        client_node.run_local(0.0, lambda: client_node.send(0, ClientRequest("r1", wire)))
        svc.net.sim.run()
        executed_once = svc.replicas[0].stats["queries"]
        from_gateway_before = sum(1 for m in responses if m.replica == 0)
        client_node.run_local(0.0, lambda: client_node.send(0, ClientRequest("r1", wire)))
        svc.net.sim.run()
        # The retry was answered from the cache, not re-executed.
        assert svc.replicas[0].stats["queries"] == executed_once
        from_gateway = [m for m in responses if m.replica == 0]
        assert len(from_gateway) == from_gateway_before + 1
        assert from_gateway[-1].wire == from_gateway[0].wire


class TestRetryAfterEviction:
    def test_evicted_retry_is_reexecuted_not_silent(self):
        """A retry whose cached response was evicted must still be
        answered: the broadcast layer dedupes the request id, so the
        gateway re-executes the idempotent read locally (REVIEW §3.4)."""
        svc = make_service()
        from repro.broadcast.messages import ClientRequest

        _msg_id, wire = svc.client.build_query_wire(
            Name.from_text("ns1.example.com."), c.TYPE_A
        )
        responses = []
        svc.client._inflight.clear()
        client_node = svc.client.node
        client_node.set_handler(lambda s, m: responses.append(m))
        client_node.run_local(
            0.0, lambda: client_node.send(0, ClientRequest("r1", wire))
        )
        svc.net.sim.run()
        assert responses
        # Simulate a query flood having evicted the gateway's entry.
        svc.replicas[0]._response_cache.clear()
        before = len(responses)
        client_node.run_local(
            0.0, lambda: client_node.send(0, ClientRequest("r1", wire))
        )
        svc.net.sim.run()
        assert len(responses) == before + 1
        assert responses[-1].wire == responses[0].wire


class TestDeterminism:
    def test_same_seed_same_latencies(self):
        def run(seed):
            svc = ReplicatedNameService(
                ServiceConfig(n=4, t=1), topology=paper_setup(4), seed=seed
            )
            read = svc.query("www.example.com.", c.TYPE_A).latency
            add = svc.add_record("d.example.com.", c.TYPE_A, 300, "192.0.2.1").latency
            return read, add

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_replica_responses_byte_identical(self):
        """State-machine replication: all honest replicas answer alike."""
        svc = make_service(client_model="full")
        op = svc.query("www.example.com.", c.TYPE_A)
        # The full client saw at least n - t responses; majority must be
        # unanimous in the fault-free case.
        assert op.response is not None

    def test_malformed_wire_gets_error_response(self):
        svc = make_service()
        from repro.broadcast.messages import ClientRequest

        responses = []
        client_node = svc.client.node
        client_node.set_handler(lambda s, m: responses.append(m))
        client_node.run_local(
            0.0, lambda: client_node.send(0, ClientRequest("bad", b"\x00\x01"))
        )
        svc.net.sim.run()
        assert responses and responses[0].wire == b""
