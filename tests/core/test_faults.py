"""Fault injector behaviours."""

import pytest

from repro.broadcast.messages import ClientResponse, WrapperSigning
from repro.core.faults import CorruptionMode, FaultInjector, tampered_zone_share
from repro.crypto.protocols import SigningMessage


@pytest.fixture()
def share_message(threshold_4_1):
    _, shares = threshold_4_1
    share = shares[0].generate_share(b"message")
    return WrapperSigning(SigningMessage.share_message("sid", share))


class TestTransforms:
    def test_honest_passes_through(self, share_message):
        injector = FaultInjector(mode=CorruptionMode.HONEST)
        assert injector.transform_outgoing(share_message) is share_message
        assert not injector.is_corrupted

    def test_crash_drops_everything(self, share_message):
        injector = FaultInjector(mode=CorruptionMode.CRASH)
        assert injector.transform_outgoing(share_message) is None
        assert injector.transform_outgoing("anything") is None

    def test_bad_shares_inverts_value(self, threshold_4_1, share_message):
        public, _ = threshold_4_1
        injector = FaultInjector(
            mode=CorruptionMode.BAD_SHARES, modulus=public.modulus
        )
        out = injector.transform_outgoing(share_message)
        assert isinstance(out, WrapperSigning)
        assert out.inner.share.value != share_message.inner.share.value
        assert "sid" in injector.corrupted_sessions

    def test_bad_shares_garbles_finals(self, threshold_4_1):
        public, _ = threshold_4_1
        injector = FaultInjector(
            mode=CorruptionMode.BAD_SHARES, modulus=public.modulus
        )
        final = WrapperSigning(SigningMessage.final("sid", b"\x01\x02\x03"))
        out = injector.transform_outgoing(final)
        assert out.inner.signature == b"\xfe\xfd\xfc"

    def test_bad_shares_leaves_other_messages(self, threshold_4_1):
        public, _ = threshold_4_1
        injector = FaultInjector(
            mode=CorruptionMode.BAD_SHARES, modulus=public.modulus
        )
        other = "an abc protocol message"
        assert injector.transform_outgoing(other) is other

    def test_mute_to_clients_drops_only_responses(self):
        injector = FaultInjector(mode=CorruptionMode.MUTE_TO_CLIENTS)
        response = ClientResponse(request_id="r", wire=b"x", replica=0)
        assert injector.transform_outgoing(response) is None
        assert injector.transform_outgoing("protocol message") == "protocol message"


class TestTamperedShare:
    def test_tampered_share_produces_invalid_shares(self, threshold_4_1):
        public, shares = threshold_4_1
        bad = tampered_zone_share(shares[0])
        assert bad.index == shares[0].index
        assert bad.secret != shares[0].secret
        share = bad.generate_share_with_proof(b"msg")
        assert not public.share_is_valid(b"msg", share)

    def test_tampered_share_breaks_assembly(self, threshold_4_1):
        public, shares = threshold_4_1
        bad = tampered_zone_share(shares[0])
        mixed = [bad.generate_share(b"m"), shares[1].generate_share(b"m")]
        signature = public.assemble(b"m", mixed)
        assert not public.signature_is_valid(b"m", signature)
