"""Fault injector behaviours."""

import pytest

from repro.broadcast.messages import (
    AbcInitiate,
    AbcOrder,
    ClientResponse,
    WrapperSigning,
    decode_batch,
    encode_batch,
)
from repro.core.faults import CorruptionMode, FaultInjector, tampered_zone_share
from repro.crypto.protocols import SigningMessage


@pytest.fixture()
def share_message(threshold_4_1):
    _, shares = threshold_4_1
    share = shares[0].generate_share(b"message")
    return WrapperSigning(SigningMessage.share_message("sid", share))


class TestTransforms:
    def test_honest_passes_through(self, share_message):
        injector = FaultInjector(mode=CorruptionMode.HONEST)
        assert injector.transform_outgoing(share_message) is share_message
        assert not injector.is_corrupted

    def test_crash_drops_everything(self, share_message):
        injector = FaultInjector(mode=CorruptionMode.CRASH)
        assert injector.transform_outgoing(share_message) is None
        assert injector.transform_outgoing("anything") is None

    def test_bad_shares_inverts_value(self, threshold_4_1, share_message):
        public, _ = threshold_4_1
        injector = FaultInjector(
            mode=CorruptionMode.BAD_SHARES, modulus=public.modulus
        )
        out = injector.transform_outgoing(share_message)
        assert isinstance(out, WrapperSigning)
        assert out.inner.share.value != share_message.inner.share.value
        assert "sid" in injector.corrupted_sessions

    def test_bad_shares_garbles_finals(self, threshold_4_1):
        public, _ = threshold_4_1
        injector = FaultInjector(
            mode=CorruptionMode.BAD_SHARES, modulus=public.modulus
        )
        final = WrapperSigning(SigningMessage.final("sid", b"\x01\x02\x03"))
        out = injector.transform_outgoing(final)
        assert out.inner.signature == b"\xfe\xfd\xfc"

    def test_bad_shares_leaves_other_messages(self, threshold_4_1):
        public, _ = threshold_4_1
        injector = FaultInjector(
            mode=CorruptionMode.BAD_SHARES, modulus=public.modulus
        )
        other = "an abc protocol message"
        assert injector.transform_outgoing(other) is other

    def test_mute_to_clients_drops_only_responses(self):
        injector = FaultInjector(mode=CorruptionMode.MUTE_TO_CLIENTS)
        response = ClientResponse(request_id="r", wire=b"x", replica=0)
        assert injector.transform_outgoing(response) is None
        assert injector.transform_outgoing("protocol message") == "protocol message"


class TestTamperedShare:
    def test_tampered_share_produces_invalid_shares(self, threshold_4_1):
        public, shares = threshold_4_1
        bad = tampered_zone_share(shares[0])
        assert bad.index == shares[0].index
        assert bad.secret != shares[0].secret
        share = bad.generate_share_with_proof(b"msg")
        assert not public.share_is_valid(b"msg", share)

    def test_tampered_share_breaks_assembly(self, threshold_4_1):
        public, shares = threshold_4_1
        bad = tampered_zone_share(shares[0])
        mixed = [bad.generate_share(b"m"), shares[1].generate_share(b"m")]
        signature = public.assemble(b"m", mixed)
        assert not public.signature_is_valid(b"m", signature)


class TestEquivocate:
    def _order(self):
        from repro.core.faults import _derive_rid

        payload = b"slot-payload-bytes"
        return AbcOrder(
            epoch=0, seq=1, request_id=_derive_rid(payload), payload=payload
        )

    def test_sends_conflicting_orders_by_destination(self):
        injector = FaultInjector(mode=CorruptionMode.EQUIVOCATE)
        honest = self._order()
        to_even = injector.transform_outgoing(honest, dest=2)
        to_odd = injector.transform_outgoing(honest, dest=3)
        assert to_even.payload == honest.payload
        assert to_odd.payload != honest.payload
        assert to_odd.epoch == honest.epoch and to_odd.seq == honest.seq
        assert injector.stats["equivocations"] == 1

    def test_tampered_order_keeps_consistent_request_id(self):
        from repro.core.faults import _derive_rid

        injector = FaultInjector(mode=CorruptionMode.EQUIVOCATE)
        to_odd = injector.transform_outgoing(self._order(), dest=1)
        # The lie is internally consistent, so it survives per-message
        # sanity checks and must be stopped by quorum intersection.
        assert to_odd.request_id == _derive_rid(to_odd.payload)

    def test_non_order_traffic_untouched(self):
        injector = FaultInjector(mode=CorruptionMode.EQUIVOCATE)
        other = "a prepare message"
        assert injector.transform_outgoing(other, dest=1) is other


class TestMalformedBatches:
    def test_garbled_batch_decodes_to_empty(self):
        injector = FaultInjector(mode=CorruptionMode.MALFORMED_BATCHES)
        batch = encode_batch([b"request-one", b"request-two"])
        for _ in range(6):  # cover all three attack shapes
            out = injector.transform_outgoing(
                AbcInitiate(request_id="rid", payload=batch)
            )
            assert out.payload != batch
            assert decode_batch(out.payload) == []
        assert injector.stats["garbled_batches"] == 6

    def test_non_batch_initiates_untouched(self):
        injector = FaultInjector(mode=CorruptionMode.MALFORMED_BATCHES)
        plain = AbcInitiate(request_id="rid", payload=b"single request")
        assert injector.transform_outgoing(plain) is plain

    def test_garbling_is_seed_replayable(self):
        batch = encode_batch([b"request-one", b"request-two"])
        def run():
            import random

            injector = FaultInjector(mode=CorruptionMode.MALFORMED_BATCHES)
            injector.rng = random.Random(5)
            return [
                injector.transform_outgoing(
                    AbcInitiate(request_id="rid", payload=batch)
                ).payload
                for _ in range(8)
            ]
        assert run() == run()


class TestWithholdShares:
    def test_swallows_shares_and_finals(self, threshold_4_1, share_message):
        injector = FaultInjector(mode=CorruptionMode.WITHHOLD_SHARES)
        assert injector.transform_outgoing(share_message) is None
        final = WrapperSigning(SigningMessage.final("sid", b"\x01\x02"))
        assert injector.transform_outgoing(final) is None
        assert injector.stats["withheld_messages"] == 2

    def test_agreement_traffic_flows(self):
        injector = FaultInjector(mode=CorruptionMode.WITHHOLD_SHARES)
        order = AbcOrder(epoch=0, seq=0, request_id="r", payload=b"p")
        assert injector.transform_outgoing(order) is order


class TestExtendedPaletteEndToEnd:
    """The new corruption modes exercised through a whole deployment."""

    def _make(self, **kwargs):
        from repro.config import ServiceConfig
        from repro.core.service import ReplicatedNameService
        from repro.sim.machines import lan_setup

        config_extra = kwargs.pop("config_extra", {})
        n = kwargs.pop("n", 4)
        t = kwargs.pop("t", 1)
        kwargs.setdefault("topology", lan_setup(n))
        return ReplicatedNameService(
            ServiceConfig(n=n, t=t, **config_extra), **kwargs
        )

    def test_equivocating_leader_cannot_split_state(self):
        from repro.dns import constants as c

        svc = self._make(config_extra={"abc_timeout": 2.0})
        svc.corrupt(0, CorruptionMode.EQUIVOCATE)
        for i in range(3):
            op = svc.add_record(
                f"eq{i}.example.com.", c.TYPE_A, 300, f"192.0.2.{20 + i}"
            )
            assert op.response.rcode == c.RCODE_NOERROR
        assert svc.states_consistent()

    def test_poisoned_gateway_defeated_by_full_client(self):
        from repro.dns import constants as c

        svc = self._make(client_model="full")
        svc.corrupt(0, CorruptionMode.POISON_STALE)
        svc.query("www.example.com.", c.TYPE_A)  # poison records this
        svc.add_record("www.example.com.", c.TYPE_A, 300, "192.0.2.99")
        op = svc.query("www.example.com.", c.TYPE_A)
        addresses = {
            rr.rdata.address for rr in op.response.answers if rr.rtype == c.TYPE_A
        }
        # t+1 matching honest answers outvote the authentic-but-stale replay.
        assert "192.0.2.99" in addresses

    def test_withholding_replica_leaves_service_live(self):
        from repro.dns import constants as c

        svc = self._make(config_extra={"signing_protocol": "optproof"})
        svc.corrupt(1, CorruptionMode.WITHHOLD_SHARES)
        op = svc.add_record("wh.example.com.", c.TYPE_A, 300, "192.0.2.31")
        assert op.response.rcode == c.RCODE_NOERROR
        assert svc.states_consistent()
        assert svc.verify_all_zones() > 0

    def test_crash_of_non_gateway_does_not_block_updates(self):
        from repro.dns import constants as c

        svc = self._make()
        svc.corrupt(2, CorruptionMode.CRASH)
        op = svc.add_record("cr.example.com.", c.TYPE_A, 300, "192.0.2.41")
        assert op.response.rcode == c.RCODE_NOERROR
        read = svc.query("cr.example.com.", c.TYPE_A)
        assert read.response.rcode == c.RCODE_NOERROR
        assert read.verified


class TestSeedThreading:
    """The injector RNG is a pure function of (scenario seed, replica)."""

    def _garble_stream(self, injector, rounds=6):
        batch = encode_batch([b"request-one", b"request-two"])
        return [
            injector.transform_outgoing(
                AbcInitiate(request_id="rid", payload=batch)
            ).payload
            for _ in range(rounds)
        ]

    def test_derive_seed_distinct_per_scenario_and_replica(self):
        seeds = {
            FaultInjector.derive_seed(s, i) for s in range(4) for i in range(4)
        }
        assert len(seeds) == 16

    def test_reseed_replays_identically(self):
        a = FaultInjector(mode=CorruptionMode.MALFORMED_BATCHES)
        b = FaultInjector(mode=CorruptionMode.MALFORMED_BATCHES)
        a.reseed(7, 2)
        b.reseed(7, 2)
        assert self._garble_stream(a) == self._garble_stream(b)

    def test_scenario_seed_changes_the_stream(self):
        a = FaultInjector(mode=CorruptionMode.MALFORMED_BATCHES)
        b = FaultInjector(mode=CorruptionMode.MALFORMED_BATCHES)
        a.reseed(1, 2)
        b.reseed(2, 2)
        assert self._garble_stream(a) != self._garble_stream(b)

    def test_service_threads_seed_into_injectors(self):
        from repro.config import ServiceConfig
        from repro.core.service import ReplicatedNameService
        from repro.sim.machines import lan_setup

        svc = ReplicatedNameService(
            ServiceConfig(n=4, t=1), topology=lan_setup(4), seed=11
        )
        svc.corrupt(0, CorruptionMode.MALFORMED_BATCHES)
        assert svc.replicas[0].fault.seed == FaultInjector.derive_seed(11, 0)
        # Uncorrupted replicas got per-replica seeds too (no shared RNG).
        assert svc.replicas[1].fault.seed == FaultInjector.derive_seed(11, 1)
