"""The paper's goals G1/G2/G3 and their weak variants, end to end."""

import pytest

from repro.config import ServiceConfig
from repro.core.faults import CorruptionMode
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.sim.machines import lan_setup


def make(n=4, t=1, **kwargs):
    config_extra = kwargs.pop("config_extra", {})
    kwargs.setdefault("topology", lan_setup(n))
    return ReplicatedNameService(ServiceConfig(n=n, t=t, **config_extra), **kwargs)


class TestG1Correctness:
    """Full-client model: every acceptable response is correct."""

    def test_majority_vote_defeats_t_stale_replicas(self):
        svc = make(client_model="full")
        svc.add_record("g1.example.com.", c.TYPE_A, 300, "192.0.2.11")
        svc.corrupt(2, CorruptionMode.STALE_READS)
        op = svc.query("g1.example.com.", c.TYPE_A)
        addresses = {
            rr.rdata.address for rr in op.response.answers if rr.rtype == c.TYPE_A
        }
        assert addresses == {"192.0.2.11"}


class TestG2Liveness:
    """Every request eventually gets an acceptable response."""

    def test_full_client_with_crashed_replica(self):
        svc = make(client_model="full")
        svc.corrupt(3, CorruptionMode.CRASH)
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NOERROR

    def test_pragmatic_liveness_via_retry(self):
        """G2' + round-robin retry ≈ liveness in practice (§3.4)."""
        svc = make(config_extra={"client_timeout": 5.0})
        svc.corrupt(0, CorruptionMode.CRASH)  # gateway dead
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NOERROR
        assert op.retries >= 1

    def test_write_liveness_with_t_corruptions(self):
        svc = make()
        svc.corrupt(2, CorruptionMode.BAD_SHARES)
        op = svc.add_record("live.example.com.", c.TYPE_A, 300, "192.0.2.12")
        assert op.response.rcode == c.RCODE_NOERROR


class TestG1PrimeWeakCorrectness:
    """Pragmatic model: acceptable responses are signed, possibly stale."""

    def test_stale_gateway_data_is_still_zone_signed(self):
        """A corrupted server can replay old data, but that data carries
        valid zone signatures — it cannot fabricate records (G1')."""
        svc = make()
        svc.corrupt(0, CorruptionMode.STALE_READS)
        op = svc.query("www.example.com.", c.TYPE_A)  # pre-existing name
        # The stale snapshot is the signed initial zone: SIGs verify.
        assert op.verified

    def test_fabrication_impossible_without_t_plus_1(self):
        """Even colluding t servers cannot produce a SIG for made-up data:
        a signature assembled with any invalid share fails validation."""
        svc = make()
        public = svc.deployment.zone_public
        shares = [r.zone_share for r in svc.deployment.replicas]
        fake_record = b"evil.example.com. 3600 IN A 6.6.6.6 (canonical form)"
        # t = 1 corrupted server alone:
        from repro.errors import AssemblyError

        with pytest.raises(AssemblyError):
            public.assemble(fake_record, [shares[0].generate_share(fake_record)])


class TestG3Secrecy:
    """The zone key is never reconstructible from t shares."""

    def test_shares_are_distinct_and_secret_dependent(self):
        svc = make()
        secrets = [r.zone_share.secret for r in svc.deployment.replicas]
        assert len(set(secrets)) == len(secrets)

    def test_zone_key_never_at_any_single_replica(self):
        """No replica object holds the private exponent — only its share
        and the public parameters."""
        svc = make()
        public = svc.deployment.zone_public
        for replica in svc.replicas:
            share = replica.deployment.replicas[replica.index].zone_share
            # The share alone cannot produce a valid signature.
            message = b"attempted solo signature"
            from repro.errors import AssemblyError

            with pytest.raises(AssemblyError):
                public.assemble(message, [share.generate_share(message)])

    def test_signing_leaks_only_shares_not_secrets(self):
        """Messages on the wire never contain a key-share secret."""
        svc = make()
        secrets = {r.zone_share.secret for r in svc.deployment.replicas}
        observed = []
        original_transmit = svc.net.transmit

        def spy(src, dest, payload, departure):
            observed.append(payload)
            original_transmit(src, dest, payload, departure)

        svc.net.transmit = spy
        svc.add_record("spy.example.com.", c.TYPE_A, 300, "192.0.2.13")
        from repro.broadcast.messages import WrapperSigning

        for payload in observed:
            if isinstance(payload, WrapperSigning) and payload.inner.share:
                assert payload.inner.share.value not in secrets
