"""Randomized service-vs-oracle equivalence (the strongest G1 check).

Drives the replicated service and the §3.1 trusted server through the
same randomized sequences of reads, adds, and deletes, and asserts the
responses and final states agree — with and without a corrupted replica.
"""

import random

import pytest

from repro.config import ServiceConfig
from repro.core.faults import CorruptionMode
from repro.core.oracle import TrustedServer, responses_match
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.dns.message import RR, make_query, make_update
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.sim.machines import lan_setup

from tests.conftest import ZONE_TEXT


def random_ops(rng, count):
    """A reproducible mixed workload over a small name pool."""
    pool = [f"h{i}.example.com." for i in range(5)]
    ops = []
    for _ in range(count):
        kind = rng.choice(["read", "read", "add", "delete"])
        name = Name.from_text(rng.choice(pool))
        if kind == "add":
            address = f"192.0.2.{rng.randrange(1, 250)}"
            ops.append(("add", name, address))
        elif kind == "delete":
            ops.append(("delete", name, None))
        else:
            ops.append(("read", name, None))
    return ops


def replay(seed, corrupted=None, op_count=10):
    rng = random.Random(seed)
    ops = random_ops(rng, op_count)

    from repro.dns.zonefile import parse_zone_text

    oracle = TrustedServer(parse_zone_text(ZONE_TEXT))
    service = ReplicatedNameService(
        ServiceConfig(n=4, t=1),
        topology=lan_setup(4),
        zone_text=ZONE_TEXT,
        seed=seed,
    )
    if corrupted is not None:
        service.corrupt(corrupted, CorruptionMode.BAD_SHARES)

    mismatches = []
    for kind, name, address in ops:
        if kind == "read":
            spec = oracle.process(make_query(name, c.TYPE_A, msg_id=1))
            op = service.query(name, c.TYPE_A)
            if not responses_match(spec, op.response):
                mismatches.append((kind, name.to_text()))
        elif kind == "add":
            update = make_update(oracle.zone.origin, msg_id=2)
            update.authority.append(
                RR(name, c.TYPE_A, c.CLASS_IN, 300, A(address))
            )
            spec = oracle.process(update)
            op = service.add_record(name, c.TYPE_A, 300, address)
            if spec.rcode != op.response.rcode:
                mismatches.append((kind, name.to_text()))
        else:
            update = make_update(oracle.zone.origin, msg_id=3)
            update.authority.append(RR(name, c.TYPE_ANY, c.CLASS_ANY, 0, None))
            spec = oracle.process(update)
            op = service.delete_name(name)
            if spec.rcode != op.response.rcode:
                mismatches.append((kind, name.to_text()))
    return oracle, service, mismatches


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_random_workload_matches_trusted_server(seed):
    oracle, service, mismatches = replay(seed)
    assert mismatches == []
    # Final zone content agrees too (ignoring DNSSEC metadata records).
    service.settle()
    for replica in service.honest_replicas():
        for name in oracle.zone.names():
            spec_rrset = oracle.zone.find_rrset(name, c.TYPE_A)
            got_rrset = replica.zone.find_rrset(name, c.TYPE_A)
            if spec_rrset is None:
                assert got_rrset is None, name.to_text()
            else:
                assert got_rrset is not None, name.to_text()
                assert set(spec_rrset.rdatas) == set(got_rrset.rdatas)


@pytest.mark.parametrize("seed", [31])
def test_random_workload_with_corrupted_replica(seed):
    oracle, service, mismatches = replay(seed, corrupted=2, op_count=8)
    assert mismatches == []
    assert service.verify_all_zones() > 0
