"""Goals G1/G1' checked against the trusted-server oracles (§3.1, §3.4)."""

from repro.config import ServiceConfig
from repro.core.faults import CorruptionMode
from repro.core.oracle import TrustedServer, WeakTrustedServer, responses_match
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.dns.message import RR, make_query, make_update
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.sim.machines import lan_setup

WWW = Name.from_text("www.example.com.")
NEW = Name.from_text("new.example.com.")


def make_service(**kwargs):
    from tests.conftest import ZONE_TEXT

    kwargs.setdefault("topology", lan_setup(4))
    kwargs.setdefault("zone_text", ZONE_TEXT)  # same zone as the oracle
    config_extra = kwargs.pop("config_extra", {})
    return ReplicatedNameService(
        ServiceConfig(n=4, t=1, **config_extra), **kwargs
    )


class TestTrustedServerOracle:
    def test_query_matches_spec(self, zone):
        oracle = TrustedServer(zone)
        svc = make_service()
        request = make_query(WWW, c.TYPE_A, msg_id=1)
        spec = oracle.process(request)
        op = svc.query(WWW, c.TYPE_A)
        assert responses_match(spec, op.response)

    def test_update_sequence_matches_spec(self, zone):
        oracle = TrustedServer(zone)
        svc = make_service()
        # Apply the same update to both.
        update = make_update(Name.from_text("example.com."), msg_id=2)
        update.authority.append(RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9")))
        oracle.process(update)
        svc.add_record(NEW, c.TYPE_A, 300, "192.0.2.9")
        # Subsequent reads agree.
        request = make_query(NEW, c.TYPE_A, msg_id=3)
        spec = oracle.process(request)
        op = svc.query(NEW, c.TYPE_A)
        assert responses_match(spec, op.response)

    def test_history_snapshots(self, zone):
        oracle = WeakTrustedServer(zone)
        update = make_update(Name.from_text("example.com."))
        update.authority.append(RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9")))
        oracle.process(update)
        assert len(oracle.history) == 2


class TestWeakCorrectness:
    def test_fresh_response_is_approximate(self, zone):
        oracle = WeakTrustedServer(zone)
        request = make_query(WWW, c.TYPE_A)
        fresh = oracle.process(request)
        assert oracle.is_approximate(request, fresh)

    def test_stale_response_is_approximate(self, zone):
        """G1' permits answers from any previous state (§3.4)."""
        oracle = WeakTrustedServer(zone)
        stale_answer = oracle.process(make_query(NEW, c.TYPE_A))  # NXDOMAIN now
        update = make_update(Name.from_text("example.com."))
        update.authority.append(RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9")))
        oracle.process(update)
        request = make_query(NEW, c.TYPE_A)
        assert oracle.is_approximate(request, stale_answer)

    def test_fabricated_response_is_not_approximate(self, zone):
        oracle = WeakTrustedServer(zone)
        request = make_query(WWW, c.TYPE_A)
        fake = oracle.process(request).copy()
        fake.answers = [RR(WWW, c.TYPE_A, c.CLASS_IN, 300, A("6.6.6.6"))]
        assert not oracle.is_approximate(request, fake)

    def test_stale_replica_satisfies_g1_prime_end_to_end(self, zone):
        """A corrupted stale-reading gateway still gives *approximate*
        responses — the weakened guarantee unmodified clients get."""
        oracle = WeakTrustedServer(zone)
        svc = make_service(verify_signatures=False)
        svc.corrupt(0, CorruptionMode.STALE_READS)  # gateway serves old data

        # One update goes through (via the honest replicas executing it).
        update = make_update(Name.from_text("example.com."))
        update.authority.append(RR(NEW, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.9")))
        oracle.process(update)
        svc.add_record(NEW, c.TYPE_A, 300, "192.0.2.9")

        request = make_query(NEW, c.TYPE_A)
        op = svc.query(NEW, c.TYPE_A)
        # The gateway's answer is stale (NXDOMAIN) but approximate.
        assert oracle.is_approximate(request, op.response)

    def test_sig_records_ignored_in_comparison(self, zone):
        oracle = WeakTrustedServer(zone)
        svc = make_service()
        request = make_query(WWW, c.TYPE_A)
        spec = oracle.process(request)
        op = svc.query(WWW, c.TYPE_A)  # service answers carry SIG records
        assert responses_match(spec, op.response)
