"""Command-line interface."""

import os

import pytest

from repro.cli import main

ZONE = """
$ORIGIN cli.example.
$TTL 300
@ IN SOA ns.cli.example. admin.cli.example. 1 2 3 4 5
  IN NS ns
ns IN A 10.0.0.1
www IN A 10.0.0.80
"""


@pytest.fixture()
def zone_file(tmp_path):
    path = tmp_path / "zone.db"
    path.write_text(ZONE)
    return str(path)


class TestKeygen:
    def test_writes_key_files(self, tmp_path, capsys):
        out = str(tmp_path / "keys")
        assert main(["keygen", "-n", "4", "-t", "1", "--bits", "512", "--out", out]) == 0
        files = sorted(os.listdir(out))
        assert files == [f"replica-{i}.keys" for i in range(4)]
        captured = capsys.readouterr().out
        assert "-bit RSA, (4,1)-shared" in captured


class TestSignVerify:
    def test_signzone_then_verifyzone(self, zone_file, capsys):
        assert main(["signzone", zone_file, "--bits", "512"]) == 0
        signed = zone_file + ".signed"
        assert os.path.exists(signed)
        assert main(["verifyzone", signed]) == 0
        captured = capsys.readouterr().out
        assert "OK:" in captured

    def test_verifyzone_unsigned_fails(self, zone_file, capsys):
        assert main(["verifyzone", zone_file]) == 1


class TestDig:
    def test_existing_name(self, zone_file, capsys):
        code = main(["dig", "www.cli.example.", "A", "--zone-file", zone_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "10.0.0.80" in out
        assert "signatures verified: True" in out

    def test_missing_name(self, zone_file, capsys):
        code = main(["dig", "nope.cli.example.", "A", "--zone-file", zone_file])
        assert code == 1
        assert "NXDOMAIN" in capsys.readouterr().out


class TestNsupdate:
    def test_add(self, zone_file, capsys):
        code = main(
            ["nsupdate", "add", "new.cli.example.", "A", "10.0.0.9",
             "--zone-file", zone_file]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rcode: NOERROR" in out
        assert "consistent: True" in out

    def test_delete(self, zone_file, capsys):
        code = main(
            ["nsupdate", "delete", "www.cli.example.", "--zone-file", zone_file]
        )
        assert code == 0
        assert "NOERROR" in capsys.readouterr().out

    def test_add_without_rdata(self, zone_file, capsys):
        code = main(
            ["nsupdate", "add", "new.cli.example.", "A", "--zone-file", zone_file]
        )
        assert code == 2


class TestBench:
    def test_one_cell(self, capsys):
        code = main(
            ["bench", "-n", "4", "-t", "1", "--protocol", "optte",
             "--repetitions", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "read" in out and "add" in out and "delete" in out
