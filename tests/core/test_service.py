"""End-to-end replicated name service tests (the paper's whole system)."""

import pytest

from repro.config import ServiceConfig
from repro.core.faults import CorruptionMode
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.sim.machines import lan_setup, paper_setup


def make_service(n=4, t=1, k=0, proto="optte", **kwargs):
    kwargs.setdefault("topology", lan_setup(n) if n <= 4 else paper_setup(n))
    svc = ReplicatedNameService(
        ServiceConfig(n=n, t=t, signing_protocol=proto, **kwargs.pop("config_extra", {})),
        **kwargs,
    )
    if k:
        svc.corrupt_paper_style(k)
    return svc


class TestReads:
    def test_query_answers_correctly(self):
        svc = make_service()
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NOERROR
        addresses = {
            rr.rdata.address for rr in op.response.answers if rr.rtype == c.TYPE_A
        }
        assert addresses == {"192.0.2.80"}

    def test_read_response_carries_verifiable_sigs(self):
        svc = make_service()
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.verified  # zone signatures check out at the client

    def test_nxdomain_propagates(self):
        svc = make_service()
        op = svc.query("missing.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NXDOMAIN

    def test_read_does_not_change_state(self):
        svc = make_service()
        before = svc.zone_digests()
        svc.query("www.example.com.", c.TYPE_A)
        assert svc.zone_digests() == before


class TestWrites:
    def test_add_visible_on_all_replicas(self):
        svc = make_service()
        op = svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        assert op.response.rcode == c.RCODE_NOERROR
        assert svc.states_consistent()
        for replica in svc.replicas:
            from repro.dns.name import Name

            assert replica.zone.find_rrset(
                Name.from_text("new.example.com."), c.TYPE_A
            ) is not None

    def test_add_then_read_returns_new_data(self):
        svc = make_service()
        svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        op = svc.query("new.example.com.", c.TYPE_A)
        assert op.response.answers
        assert op.verified

    def test_delete_visible_on_all_replicas(self):
        svc = make_service()
        svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        svc.delete_name("new.example.com.")
        op = svc.query("new.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NXDOMAIN
        assert svc.states_consistent()

    def test_zone_signatures_valid_after_updates(self):
        svc = make_service()
        svc.add_record("a.example.com.", c.TYPE_A, 300, "192.0.2.1")
        svc.add_record("b.example.com.", c.TYPE_A, 300, "192.0.2.2")
        svc.delete_name("a.example.com.")
        assert svc.verify_all_zones() > 0
        assert svc.states_consistent()

    def test_serial_advances_once_per_update(self):
        svc = make_service()
        initial = svc.replicas[0].zone.serial
        svc.add_record("x.example.com.", c.TYPE_A, 300, "192.0.2.1")
        assert svc.replicas[0].zone.serial == initial + 1

    def test_failed_prerequisite_rejected_consistently(self):
        svc = make_service()
        from repro.dns.message import RR, make_update
        from repro.dns.name import Name

        update = make_update(svc.zone_origin)
        update.answers.append(
            RR(Name.from_text("ghost.example.com."), c.TYPE_ANY, c.CLASS_ANY, 0, None)
        )
        from repro.dns.rdata import A

        update.authority.append(
            RR(Name.from_text("new.example.com."), c.TYPE_A, c.CLASS_IN, 1, A("1.1.1.1"))
        )
        op = svc._await_op(lambda cb: svc.client.send_update(update, cb))
        assert op.response.rcode == c.RCODE_NXDOMAIN
        assert svc.states_consistent()


class TestCorruption:
    @pytest.mark.parametrize("proto", ["basic", "optproof", "optte"])
    def test_updates_succeed_with_one_corrupted(self, proto):
        svc = make_service(proto=proto)
        svc.corrupt(1, CorruptionMode.BAD_SHARES)
        op = svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        assert op.response.rcode == c.RCODE_NOERROR
        assert svc.verify_all_zones() > 0

    def test_two_corruptions_n7(self):
        svc = make_service(n=7, t=2, k=2)
        op = svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        assert op.response.rcode == c.RCODE_NOERROR
        honest_digests = svc.zone_digests()
        assert len(set(honest_digests)) == 1

    def test_crashed_gateway_client_retries(self):
        svc = make_service(config_extra={"client_timeout": 5.0})
        svc.corrupt(0, CorruptionMode.CRASH)  # replica 0 is the gateway
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.retries >= 1
        assert op.response.rcode == c.RCODE_NOERROR

    def test_mute_gateway_client_retries(self):
        svc = make_service(config_extra={"client_timeout": 5.0})
        svc.corrupt(0, CorruptionMode.MUTE_TO_CLIENTS)
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.retries >= 1
        assert op.response.rcode == c.RCODE_NOERROR


class TestClientModels:
    def test_full_client_majority_vote(self):
        svc = make_service(client_model="full")
        op = svc.query("www.example.com.", c.TYPE_A)
        assert op.response.rcode == c.RCODE_NOERROR

    def test_full_client_outvotes_stale_replica(self):
        svc = make_service(client_model="full")
        svc.add_record("fresh.example.com.", c.TYPE_A, 300, "192.0.2.50")
        svc.corrupt(1, CorruptionMode.STALE_READS)
        op = svc.query("fresh.example.com.", c.TYPE_A)
        # Majority of honest replicas returns the fresh record (G1).
        assert op.response.answers

    def test_update_with_full_client(self):
        svc = make_service(client_model="full")
        op = svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        assert op.response.rcode == c.RCODE_NOERROR
        assert svc.states_consistent()


class TestTsig:
    def test_tsig_signed_update_accepted(self):
        svc = make_service(config_extra={"require_tsig": True})
        op = svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        assert op.response.rcode == c.RCODE_NOERROR

    def test_unsigned_update_refused(self):
        svc = make_service(config_extra={"require_tsig": True})
        # Bypass the client's TSIG key to send an unsigned update.
        svc.client.tsig_key = None
        op = svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        assert op.response.rcode == c.RCODE_REFUSED
        from repro.dns.name import Name

        assert svc.replicas[0].zone.find_rrset(
            Name.from_text("new.example.com."), c.TYPE_A
        ) is None


class TestBaseCase:
    def test_unreplicated_base_case(self):
        svc = make_service(n=1, t=0, topology=paper_setup(1))
        read = svc.query("www.example.com.", c.TYPE_A)
        assert read.response.rcode == c.RCODE_NOERROR
        add = svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        assert add.response.rcode == c.RCODE_NOERROR
        assert svc.verify_all_zones() > 0


class TestUnsignedZone:
    def test_updates_skip_signing(self):
        svc = make_service(config_extra={"signed_zone": False})
        op = svc.add_record("new.example.com.", c.TYPE_A, 300, "192.0.2.9")
        assert op.response.rcode == c.RCODE_NOERROR
        assert svc.replicas[0].stats["signatures_completed"] == 0
        assert svc.states_consistent()


class TestNsupdateSemantics:
    def test_add_preceded_by_read(self):
        svc = make_service()
        read_op, add_op, total = svc.nsupdate_add(
            "new.example.com.", c.TYPE_A, 300, "192.0.2.9"
        )
        assert read_op.kind == "read" and add_op.kind == "add"
        assert total == pytest.approx(read_op.latency + add_op.latency)

    def test_add_roughly_twice_delete(self):
        svc = make_service()
        _, _, add_total = svc.nsupdate_add("x.example.com.", c.TYPE_A, 300, "192.0.2.9")
        _, _, delete_total = svc.nsupdate_delete("x.example.com.")
        assert 1.5 < add_total / delete_total < 2.6
