"""Service configuration validation."""

import dataclasses

import pytest

from repro.config import ServiceConfig
from repro.errors import ConfigError


class TestValidation:
    def test_minimal_bft_sizes(self):
        assert ServiceConfig(n=4, t=1).quorum == 3
        assert ServiceConfig(n=7, t=2).quorum == 5
        assert ServiceConfig(n=10, t=3).quorum == 7

    def test_n_must_exceed_3t(self):
        for n, t in ((3, 1), (6, 2), (9, 3)):
            with pytest.raises(ConfigError):
                ServiceConfig(n=n, t=t)

    def test_unreplicated_base_case_allowed(self):
        config = ServiceConfig(n=1, t=0)
        assert not config.replicated

    def test_negative_t(self):
        with pytest.raises(ConfigError):
            ServiceConfig(n=4, t=-1)

    def test_zero_servers(self):
        with pytest.raises(ConfigError):
            ServiceConfig(n=0, t=0)

    def test_protocol_names(self):
        for protocol in ("basic", "optproof", "optte"):
            assert ServiceConfig(n=4, t=1, signing_protocol=protocol)
        with pytest.raises(ConfigError):
            ServiceConfig(n=4, t=1, signing_protocol="pbft")

    def test_frozen(self):
        config = ServiceConfig(n=4, t=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.n = 7  # type: ignore[misc]

    def test_defaults_match_paper_model(self):
        config = ServiceConfig(n=4, t=1)
        assert config.signed_zone          # DNSSEC zone by default
        assert config.reads_via_abc        # §3.3: reads also disseminated
        assert not config.sign_every_response  # §3.4 rejects that design
