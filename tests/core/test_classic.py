"""Classic primary/secondary replication and its single point of failure."""

import pytest

from repro.core.classic import ClassicZoneService
from repro.dns import constants as c
from repro.dns.axfr import (
    apply_axfr_response,
    build_axfr_response,
    make_axfr_query,
    transfer_zone,
)
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.errors import WireFormatError

from tests.conftest import ZONE_TEXT


class TestAxfr:
    def test_transfer_reproduces_zone(self, zone):
        copy = transfer_zone(zone)
        assert copy == zone
        assert copy is not zone

    def test_stream_is_soa_framed(self, zone):
        response = build_axfr_response(zone, make_axfr_query(zone.origin))
        assert response.answers[0].rtype == c.TYPE_SOA
        assert response.answers[-1].rtype == c.TYPE_SOA
        assert response.answers[0].rdata == response.answers[-1].rdata

    def test_unframed_stream_rejected(self, zone):
        response = build_axfr_response(zone, make_axfr_query(zone.origin))
        response.answers.pop()  # drop the closing SOA
        with pytest.raises(WireFormatError):
            apply_axfr_response(response)

    def test_mismatched_soas_rejected(self, zone):
        response = build_axfr_response(zone, make_axfr_query(zone.origin))
        bumped = zone.copy()
        bumped.bump_serial()
        from repro.dns.message import rrset_to_rrs

        response.answers[-1] = rrset_to_rrs(bumped.soa_rrset)[0]
        with pytest.raises(WireFormatError):
            apply_axfr_response(response)

    def test_wire_roundtrip(self, zone):
        from repro.dns.message import Message

        response = build_axfr_response(zone, make_axfr_query(zone.origin))
        decoded = Message.from_wire(response.to_wire())
        assert apply_axfr_response(decoded) == zone


class TestClassicReplication:
    def test_secondaries_track_primary(self):
        service = ClassicZoneService(ZONE_TEXT, server_count=3)
        # Update the primary directly (as its processor would).
        service.primary.zone.add_rdata(
            Name.from_text("new.example.com."), c.TYPE_A, 300, A("192.0.2.9")
        )
        service.primary.zone.bump_serial()
        service.run_for(10.0)  # past a refresh interval
        assert len(set(service.serials())) == 1
        for secondary in service.secondaries:
            assert secondary.zone.find_rrset(
                Name.from_text("new.example.com."), c.TYPE_A
            )

    def test_queries_served_by_any_server(self):
        service = ClassicZoneService(ZONE_TEXT, server_count=3)
        for index in range(3):
            response = service.query("www.example.com.", c.TYPE_A, server=index)
            assert response.rcode == c.RCODE_NOERROR

    def test_updates_only_at_primary(self):
        service = ClassicZoneService(ZONE_TEXT, server_count=3)
        from repro.broadcast.messages import ClientRequest
        from repro.dns.message import Message, RR, make_update

        update = make_update(service.zone_origin)
        update.authority.append(
            RR(Name.from_text("x.example.com."), c.TYPE_A, c.CLASS_IN, 1, A("1.1.1.1"))
        )
        responses = []
        client = service.net.add_node(service.net.topology.machine(0))
        client.set_handler(
            lambda s, m: responses.append(Message.from_wire(m.wire))
        )
        client.run_local(
            0.0, lambda: client.send(1, ClientRequest("u", update.to_wire()))
        )
        service.net.sim.run(condition=lambda: bool(responses))
        assert responses[0].rcode == c.RCODE_NOTAUTH


class TestSinglePointOfFailure:
    def test_compromised_primary_poisons_every_secondary(self):
        """§1's attack: corrupt the primary alone and wait for refresh —
        every server in the zone now serves the attacker's data."""
        service = ClassicZoneService(ZONE_TEXT, server_count=4)

        def defacement(zone):
            www = Name.from_text("www.example.com.")
            zone.delete_rrset(www, c.TYPE_A)
            zone.add_rdata(www, c.TYPE_A, 300, A("203.0.113.66"))

        service.primary.compromise(defacement)
        service.run_for(10.0)
        for index in range(4):
            response = service.query("www.example.com.", c.TYPE_A, server=index)
            addresses = {
                rr.rdata.address for rr in response.answers if rr.rtype == c.TYPE_A
            }
            assert addresses == {"203.0.113.66"}, (
                f"server {index} should have been poisoned via AXFR"
            )

    def test_bft_service_resists_the_same_attack(self):
        """The same single-server compromise against the paper's design:
        t corrupted replicas cannot change what honest replicas serve."""
        from repro.config import ServiceConfig
        from repro.core.faults import CorruptionMode
        from repro.core.service import ReplicatedNameService
        from repro.sim.machines import lan_setup

        service = ReplicatedNameService(
            ServiceConfig(n=4, t=1), topology=lan_setup(4), zone_text=ZONE_TEXT,
            client_model="full",
        )
        # "Compromise" one replica: it serves stale/fabricated data.
        service.corrupt(1, CorruptionMode.STALE_READS)
        service.add_record("canary.example.com.", c.TYPE_A, 300, "192.0.2.55")
        op = service.query("canary.example.com.", c.TYPE_A)
        addresses = {
            rr.rdata.address for rr in op.response.answers if rr.rtype == c.TYPE_A
        }
        assert addresses == {"192.0.2.55"}  # majority of honest replicas wins
