"""Setup shim for offline editable installs (no `wheel` package available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Secure Distributed DNS: BFT replicated DNS zone service with "
        "threshold-signed DNSSEC (reproduction of Cachin & Samar, DSN 2004)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.crypto": ["data/*.json"]},
    python_requires=">=3.10",
)
