"""Table 3: breakdown of one BASIC threshold signature.

Two reproductions of the same table:

* **wall-clock** — pytest-benchmark times this implementation's own
  primitives on a 1024-bit modulus; the *relative* split must match the
  paper's profile (share generation and verification together dominate,
  assembly is small, final verification is negligible);
* **simulated** — the calibrated cost model's absolute numbers, which are
  the paper's values by construction, printed for the record.
"""

from __future__ import annotations

import pytest

from repro.crypto.costmodel import (
    GENERATE_SHARE_BARE,
    GENERATE_PROOF,
    TABLE3_ASSEMBLE,
    TABLE3_GENERATE_WITH_PROOF,
    TABLE3_VERIFY_SHARE,
    TABLE3_VERIFY_SIGNATURE,
)
from repro.crypto.params import demo_threshold_key

MESSAGE = b"table3 benchmark: one SIG record's worth of canonical RRset data"


@pytest.fixture(scope="module")
def key_1024():
    return demo_threshold_key(4, 1, 1024)


@pytest.fixture(scope="module")
def prepared(key_1024):
    public, shares = key_1024
    with_proof = shares[0].generate_share_with_proof(MESSAGE)
    bare = [s.generate_share(MESSAGE) for s in shares[:2]]
    signature = public.assemble(MESSAGE, bare)
    return public, shares, with_proof, bare, signature


def test_generate_share_with_proof(benchmark, key_1024):
    """Table 3 row 1: 'generate share' (share value + correctness proof)."""
    _, shares = key_1024
    result = benchmark(shares[0].generate_share_with_proof, MESSAGE)
    assert result.proof is not None


def test_verify_share(benchmark, prepared):
    """Table 3 row 2: 'verify share' (checking the correctness proof)."""
    public, _, with_proof, _, _ = prepared
    benchmark(public.verify_share, MESSAGE, with_proof)


def test_assemble_signature(benchmark, prepared):
    """Table 3 row 3: 'assemble sig.' from t+1 shares."""
    public, _, _, bare, _ = prepared
    result = benchmark(public.assemble, MESSAGE, bare)
    public.verify_signature(MESSAGE, result)


def test_verify_signature(benchmark, prepared):
    """Table 3 row 4: 'verify sig.' (plain RSA verify, e = 65537)."""
    public, _, _, _, signature = prepared
    benchmark(public.verify_signature, MESSAGE, signature)


def test_table3_relative_breakdown(benchmark, key_1024):
    """Measure all four ops together and check the relative profile."""
    import time

    public, shares = key_1024

    def profile():
        timings = {}
        start = time.perf_counter()
        share = shares[0].generate_share_with_proof(MESSAGE)
        timings["generate share"] = time.perf_counter() - start

        start = time.perf_counter()
        public.verify_share(MESSAGE, share)
        timings["verify share"] = time.perf_counter() - start

        bare = [s.generate_share(MESSAGE) for s in shares[:2]]
        start = time.perf_counter()
        signature = public.assemble(MESSAGE, bare)
        timings["assemble sig."] = time.perf_counter() - start

        start = time.perf_counter()
        public.verify_signature(MESSAGE, signature)
        timings["verify sig."] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(profile, rounds=3, iterations=1)
    total = sum(timings.values())
    paper_relative = {
        "generate share": 49.6,
        "verify share": 47.2,
        "assemble sig.": 3.0,
        "verify sig.": 0.2,
    }
    print("\nTable 3 (BASIC threshold signature breakdown, 1024-bit modulus)")
    print(f"{'operation':<16}{'measured s':>11}{'measured %':>12}{'paper %':>9}")
    for op, seconds in timings.items():
        print(
            f"{op:<16}{seconds:>11.4f}{100 * seconds / total:>11.1f}%"
            f"{paper_relative[op]:>8.1f}%"
        )
    benchmark.extra_info.update(
        {op: round(seconds, 5) for op, seconds in timings.items()}
    )
    # Shape: generation+verification dominate (>90%), final verify ~free.
    dominant = timings["generate share"] + timings["verify share"]
    assert dominant / total > 0.85
    assert timings["verify sig."] / total < 0.05
    assert timings["assemble sig."] < timings["verify share"]


def test_table3_simulated_absolute(benchmark):
    """The calibrated cost model reproduces the paper's absolute values."""

    def model():
        return {
            "generate share": GENERATE_SHARE_BARE + GENERATE_PROOF,
            "verify share": TABLE3_VERIFY_SHARE,
            "assemble sig.": TABLE3_ASSEMBLE,
            "verify sig.": TABLE3_VERIFY_SIGNATURE,
        }

    costs = benchmark(model)
    total = sum(costs.values())
    print("\nTable 3 (simulated 266 MHz reference machine, seconds)")
    for op, seconds in costs.items():
        print(f"  {op:<16}{seconds:>7.3f}  ({100 * seconds / total:4.1f}%)")
    assert costs["generate share"] == pytest.approx(TABLE3_GENERATE_WITH_PROOF)
    assert 100 * costs["generate share"] / total == pytest.approx(49.6, abs=1.0)
    assert 100 * costs["verify share"] / total == pytest.approx(47.2, abs=1.0)
