"""Write-path benchmark: incremental re-signing vs whole-zone re-sign.

Drives the full replicated service (n=4, t=1, A3 fully-signed mode)
through the same mixed add/delete update workload twice in one run:

* **baseline** — ``resign_whole_zone=True``: after every RFC 2136 update
  the replicas re-derive and re-sign every RRset of the zone (the
  pre-incremental write path);
* **incremental** — the default write path: only the RRsets the update
  touched (plus their NXT denial neighbors) are re-signed, with every
  signing session of the update opened up front
  (``parallel_update_signing=True``).

The headline metric is **modelled write latency** in Table 3 reference
seconds (the simulator charges each crypto op from the cost model), so
the speedup measures what incremental task derivation does to the write
critical path — the dominant cost is one distributed signing round per
SIG, and incremental updates need ~4 instead of one per zone RRset.

A third leg repeats the incremental workload on the pooled executor
under OptTE to exercise the cancel-on-first-winner trial lanes and the
canonical-wire render cache; its stats are recorded for transparency.

Acceptance target: >= 3x modelled A3-mode write throughput for the
incremental path vs the whole-zone baseline, measured in the same run.

Results are written to ``BENCH_writes.json`` at the repo root.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_writes.py -v
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import dataclasses

from repro.config import ServiceConfig
from repro.core.keytool import generate_deployment
from repro.core.service import ReplicatedNameService
from repro.crypto.executor import (
    EXECUTOR_POOL,
    EXECUTOR_SERIAL,
    CryptoWorkerPool,
    PoolExecutor,
)
from repro.crypto.params import demo_threshold_key
from repro.crypto.protocols import PROTOCOL_OPTPROOF, PROTOCOL_OPTTE
from repro.dns import constants as c
from repro.sim.machines import lan_setup

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_writes.json"

SEED = 11
HOSTS = 18  # ~24 RRsets with the base records: a small but real zone

_results: dict = {}
_deployment = None


def _zone_text() -> str:
    lines = [
        "$ORIGIN example.com.",
        "$TTL 3600",
        "@    IN SOA ns1.example.com. admin.example.com. "
        "( 100 7200 900 604800 300 )",
        "     IN NS ns1",
        "     IN NS ns2",
        "ns1  IN A 192.0.2.1",
        "ns2  IN A 192.0.2.2",
        "www  IN A 192.0.2.80",
        "mail IN MX 10 www",
    ]
    for i in range(HOSTS):
        lines.append(f"h{i:02d} IN A 192.0.2.{100 + i}")
    return "\n".join(lines) + "\n"


def _get_deployment():
    global _deployment
    if _deployment is None:
        _deployment = generate_deployment(ServiceConfig(n=4, t=1))
    return _deployment


#: The measured workload: a mix of adds, deletes, and an RRset extension,
#: touching different names so render-cache survivors matter.
def _run_updates(service: ReplicatedNameService):
    ops = [
        service.add_record("w0.example.com.", c.TYPE_A, 300, "192.0.2.200"),
        service.add_record("w1.example.com.", c.TYPE_A, 300, "192.0.2.201"),
        service.delete_name("h03.example.com."),
        service.add_record("w0.example.com.", c.TYPE_A, 300, "192.0.2.202"),
        service.delete_name("w1.example.com."),
        service.add_record("w2.example.com.", c.TYPE_A, 300, "192.0.2.203"),
    ]
    service.settle()
    return ops


def run_leg(label: str, **config_kwargs):
    config = ServiceConfig(n=4, t=1, sign_every_response=True, **config_kwargs)
    deployment = dataclasses.replace(_get_deployment(), config=config)
    started = time.perf_counter()
    with ReplicatedNameService(
        config,
        topology=lan_setup(4),
        zone_text=_zone_text(),
        seed=SEED,
        deployment=deployment,
    ) as service:
        ops = _run_updates(service)
        wall = time.perf_counter() - started
        assert all(op.response.rcode == c.RCODE_NOERROR for op in ops), label
        latencies = [op.latency for op in ops]
        zone_digests = {r.zone.digest() for r in service.replicas}
        assert len(zone_digests) == 1, f"{label}: replicas disagree"
        record = {
            "label": label,
            "updates": len(ops),
            "mean_write_latency_ref_s": sum(latencies) / len(latencies),
            "write_latencies_ref_s": latencies,
            "writes_per_ref_s": len(latencies) / sum(latencies),
            "signing_rounds": service.total_signing_rounds(),
            "render_cache": service.render_cache_stats(),
            "cancelled_trials": service.cancelled_trials(),
            "wall_clock_s": wall,
        }
    return record, zone_digests.pop()


def test_incremental_write_path_speedup():
    baseline, baseline_digest = run_leg(
        "whole-zone-resign",
        signing_protocol=PROTOCOL_OPTPROOF,
        resign_whole_zone=True,
    )
    incremental, incremental_digest = run_leg(
        "incremental",
        signing_protocol=PROTOCOL_OPTPROOF,
        parallel_update_signing=True,
    )
    # (The two legs' zone digests differ by design: SIG inception times
    # derive from the serial at signing time, and the baseline re-stamps
    # every SIG on every update.  tests/dns/test_incremental_signing.py
    # checks byte-equivalence of the incremental vs full *update* paths.)
    # The structural evidence: whole-zone re-signing runs a distributed
    # signing round per zone RRset per update, incremental ~4.
    assert baseline["signing_rounds"] > 3 * incremental["signing_rounds"]
    speedup = (
        baseline["mean_write_latency_ref_s"]
        / incremental["mean_write_latency_ref_s"]
    )
    _results["baseline"] = baseline
    _results["incremental"] = incremental
    _results["write_speedup"] = speedup
    assert speedup >= 3.0, (
        f"incremental write path modelled speedup {speedup:.2f}x "
        "below the 3x target"
    )


def test_pooled_optte_leg_uses_render_cache():
    pooled, _digest = run_leg(
        "incremental-pool-optte",
        signing_protocol=PROTOCOL_OPTTE,
        parallel_update_signing=True,
        crypto_executor=EXECUTOR_POOL,
        crypto_workers=2,
    )
    _results["pool_optte"] = pooled
    # The render cache earns its keep on the write path.  (Lane
    # cancellation does not fire in an all-honest service run: shares
    # arrive one at a time, so OptTE trials one new subset per arrival
    # and the first one wins — see the dedicated leg below.)
    assert pooled["render_cache"]["hits"] > 0


def test_lane_cancellation_under_burst_trials():
    """Cancel-on-first-winner at the executor: a burst of candidate
    subsets (2t+1 shares arriving before the trial runs, as after a
    network hiccup) fans into waves; the winner in the first wave
    cancels the speculative second wave."""
    public, shares = demo_threshold_key(4, 1, 384)
    message = b"bench-lane-cancel"
    bare = [shares[i].generate_share(message) for i in (1, 2, 3)]
    subsets = [[bare[0], bare[1]], [bare[0], bare[2]], [bare[1], bare[2]]]
    with CryptoWorkerPool(2) as pool:
        executor = PoolExecutor(pool, "bench", key_share=shares[0])
        result = executor.assemble_candidates(message, subsets)
        assert result.winner == 0 and result.signature is not None
        cancelled = executor.stats["cancelled_trials"]
    _results["lane_cancel"] = {
        "candidate_subsets": len(subsets),
        "pool_workers": 2,
        "winner": result.winner,
        "cancelled_trials": cancelled,
    }
    # 3 candidates, width-2 waves: the wave-0 winner cancels wave 1.
    assert cancelled == 1


def teardown_module(module):
    if _results:
        _results["environment"] = {
            "cpu_count": os.cpu_count(),
            "hosts_in_zone": HOSTS,
            "executor_baseline": EXECUTOR_SERIAL,
            "note": (
                "latencies are simulated seconds on the Table 3 reference "
                "machines; write_speedup compares mean update latency of "
                "the whole-zone-re-sign baseline vs the incremental write "
                "path in the same run (A3 fully-signed mode, n=4 t=1)."
            ),
        }
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
