"""Table 1 (machines) and Figure 1 (topology RTTs) regeneration.

Table 1 is an *input* of the evaluation: this bench prints our encoding of
it and asserts it matches the paper.  Figure 1's round-trip times are
measured by actually ping-ponging messages across the simulated links.
"""

from __future__ import annotations

import pytest

from repro.sim.machines import (
    PAPER_MACHINES,
    Topology,
    site_rtt,
)
from repro.sim.network import SimNetwork


def test_table1_machines(benchmark):
    """Print Table 1 and check the encoded inventory."""

    def render() -> str:
        lines = [
            "Table 1. Details of machines used in the experiments.",
            f"{'Location':<10} {'#':>2} {'OS':<12} {'CPU':<12} {'MHz':>5} {'Java':<10}",
        ]
        seen = {}
        for machine in PAPER_MACHINES:
            key = (machine.location, machine.os, machine.cpu, machine.mhz, machine.java)
            seen[key] = seen.get(key, 0) + 1
        for (location, os_, cpu, mhz, java), count in seen.items():
            lines.append(
                f"{location:<10} {count:>2} {os_:<12} {cpu:<12} {mhz:>5} {java:<10}"
            )
        return "\n".join(lines)

    table = benchmark(render)
    print("\n" + table)
    locations = [m.location for m in PAPER_MACHINES]
    assert locations.count("Zurich") == 4
    assert len(PAPER_MACHINES) == 7
    mhz = {m.location: m.mhz for m in PAPER_MACHINES}
    assert mhz == {"Zurich": 266, "New York": 300, "Austin": 1260, "San Jose": 930}


def test_figure1_rtts(benchmark):
    """Ping across every simulated link; measured RTT must match Figure 1."""
    sites = ["Zurich", "New York", "Austin", "San Jose"]
    representatives = {}
    for i, machine in enumerate(PAPER_MACHINES):
        representatives.setdefault(machine.location, i)

    def ping_all():
        topology = Topology(list(PAPER_MACHINES))
        results = {}
        for a in sites:
            for b in sites:
                if sites.index(a) >= sites.index(b):
                    continue
                net = SimNetwork(topology, cpu_jitter=0.0)
                src, dst = representatives[a], representatives[b]
                done = []
                net.node(dst).set_handler(
                    lambda s, p, dst=dst: net.node(dst).send(s, b"pong")
                )
                net.node(src).set_handler(lambda s, p: done.append(net.sim.now))
                net.node(src).run_local(0.0, lambda: net.node(src).send(dst, b"ping"))
                net.run()
                results[(a, b)] = done[0]
        return results

    measured = benchmark(ping_all)
    print("\nFigure 1: measured round-trip times on simulated links (ms)")
    for (a, b), rtt in measured.items():
        configured = site_rtt(a, b)
        print(f"  {a:<10} <-> {b:<10} {rtt * 1000:7.1f}  (configured {configured * 1000:.1f})")
        assert rtt == pytest.approx(configured, rel=0.01)


def test_lan_latency_negligible(benchmark):
    """The paper: Zurich-LAN link latencies are negligible (§5.2)."""

    def lan_ping():
        topology = Topology(list(PAPER_MACHINES[:4]))
        net = SimNetwork(topology, cpu_jitter=0.0)
        done = []
        net.node(1).set_handler(lambda s, p: net.node(1).send(s, b"pong"))
        net.node(0).set_handler(lambda s, p: done.append(net.sim.now))
        net.node(0).run_local(0.0, lambda: net.node(0).send(1, b"ping"))
        net.run()
        return done[0]

    rtt = benchmark(lan_ping)
    print(f"\nZurich LAN RTT: {rtt * 1000:.2f} ms")
    assert rtt < 0.001  # well under a millisecond
