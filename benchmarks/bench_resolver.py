"""Resolver-tier benchmark: aggressive negative caching read offload.

Drives the validating :class:`~repro.dns.resolver.CachingResolver`
(DESIGN.md §5g) with an NXDOMAIN-heavy Zipf workload over a signed zone:
400 candidate names ranked by Zipf popularity, only every tenth of which
exists, queried 5000 times.  The resolver caches positive answers per
(qname, qtype, serial) and NXT denial proofs per covering interval
(RFC 8198), so repeat queries — and queries for *never-seen* names that
fall inside an already-cached NXT interval — are served without an
authoritative round trip.

The headline metric is **offload_ratio**: the fraction of resolver
queries that never reached the authoritative service.  Acceptance bar:
>= 0.80 on the Zipf workload (in practice ~0.97: only the first touch
of each name/interval goes upstream).

A second leg fronts the full replicated service (n=4, t=1) with the same
resolver to show the offload holds against the real deployment, and a
third pins the synthesis byte-equivalence claim: cached proofs replay
the exact authoritative wire bytes.

Results are written to ``BENCH_resolver.json`` at the repo root.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_resolver.py -v
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.config import ServiceConfig
from repro.core.service import ReplicatedNameService
from repro.crypto.rsa import generate_rsa_keypair
from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.message import Message, make_query
from repro.dns.name import Name
from repro.dns.rdata import KEY
from repro.dns.resolver import CachingResolver, build_in_memory_tree
from repro.dns.server import AuthoritativeServer
from repro.dns.zonefile import parse_zone_text

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_resolver.json"

SEED = 13
UNIVERSE = 400          # Zipf-ranked candidate names
EXISTS_EVERY = 10       # every tenth candidate actually exists
QUERIES = 5000
OFFLOAD_BAR = 0.80

_results: dict = {}


def _zone_text() -> str:
    lines = [
        "$ORIGIN bench.example.",
        "$TTL 3600",
        "@    IN SOA ns1.bench.example. admin.bench.example. "
        "( 100 7200 900 604800 300 )",
        "     IN NS ns1",
        "ns1  IN A 192.0.2.1",
    ]
    for i in range(0, UNIVERSE, EXISTS_EVERY):
        lines.append(f"h{i:03d} IN A 192.0.2.{(i // EXISTS_EVERY) % 250 + 2}")
    return "\n".join(lines) + "\n"


def _signed_zone():
    keypair = generate_rsa_keypair(512)
    zone = parse_zone_text(_zone_text())
    key_record = KEY.for_rsa(keypair.public.modulus, keypair.public.exponent)
    zone.add_rdata(zone.origin, c.TYPE_KEY, 3600, key_record)
    dnssec.sign_zone_locally(zone, key_record, keypair.private.sign)
    return zone, key_record


def _zipf_workload(origin: Name) -> list:
    """Zipf-ranked qnames: rank r drawn with weight 1/(r+1)."""
    rng = random.Random(SEED)
    names = [Name((f"h{i:03d}".encode(),) + origin.labels) for i in range(UNIVERSE)]
    weights = [1.0 / (rank + 1) for rank in range(UNIVERSE)]
    return rng.choices(names, weights=weights, k=QUERIES)


def test_zipf_offload_meets_bar():
    zone, key_record = _signed_zone()
    query = build_in_memory_tree([zone])
    resolver = CachingResolver(
        query,
        root=zone.origin,
        trusted_keys={zone.origin: key_record},
    )
    workload = _zipf_workload(zone.origin)
    nxdomain = noerror = 0
    started = time.perf_counter()
    for qname in workload:
        result = resolver.resolve(qname, c.TYPE_A)
        if result.rcode == c.RCODE_NXDOMAIN:
            nxdomain += 1
        elif result.ok:
            noerror += 1
    wall = time.perf_counter() - started

    stats = resolver.cache_stats()
    served = stats["resolver"]["queries"]
    upstream = stats["resolver"]["authoritative_queries"]
    offload = 1.0 - upstream / served
    _results["workload"] = {
        "universe": UNIVERSE,
        "existing_names": UNIVERSE // EXISTS_EVERY,
        "queries": QUERIES,
        "nxdomain_answers": nxdomain,
        "noerror_answers": noerror,
        "authoritative_queries": upstream,
        "synthesized_nxdomain": stats["resolver"]["synthesized_nxdomain"],
        "synthesized_nodata": stats["resolver"]["synthesized_nodata"],
        "positive_hits": stats["resolver"]["positive_hits"],
        "proofs_cached": stats["resolver"]["proofs_cached"],
        "wall_clock_s": wall,
        "queries_per_s": QUERIES / wall,
    }
    _results["offload_ratio"] = offload
    # The workload is genuinely NXDOMAIN-heavy, and everything served
    # from cache verified against the trust anchor.
    assert nxdomain > QUERIES // 2, "workload is not NXDOMAIN-heavy"
    assert stats["resolver"]["synthesized_nxdomain"] > 0
    assert stats["resolver"]["rejected_proofs"] == 0
    assert offload >= OFFLOAD_BAR, (
        f"resolver offload {offload:.3f} below the {OFFLOAD_BAR:.0%} bar"
    )


def test_synthesized_denial_matches_authoritative_bytes():
    """Synthesized NXDOMAIN replays the authoritative wire bytes."""
    zone, key_record = _signed_zone()
    server = AuthoritativeServer(zone)
    resolver = CachingResolver(
        build_in_memory_tree([zone]),
        root=zone.origin,
        trusted_keys={zone.origin: key_record},
    )
    # Cache the interval with one miss, then synthesize a *different*
    # covered name and compare against the authoritative response.
    probe = Name((b"h001",) + zone.origin.labels)
    covered = Name((b"h002",) + zone.origin.labels)
    resolver.resolve(probe, c.TYPE_A)
    query = make_query(covered, c.TYPE_A, msg_id=4242)
    synthesized = resolver.synthesize_response(query)
    assert synthesized is not None
    authoritative = server.handle_query(query)
    assert synthesized.to_wire() == authoritative.to_wire()
    _results["synthesis_byte_equivalent"] = True


def test_replicated_service_offload():
    """The resolver tier offloads reads from the real (4,1) deployment."""
    config = ServiceConfig(n=4, t=1)
    with ReplicatedNameService(config) as service:
        upstream_counter = {"queries": 0}

        def query_service(zone_origin: Name, message: Message) -> Message:
            upstream_counter["queries"] += 1
            question = message.questions[0]
            return service.query(question.name, question.rtype).response

        resolver = CachingResolver.from_config(query_service, config)
        rng = random.Random(SEED + 1)
        qnames = [Name.from_text("www.example.com."),
                  Name.from_text("ns1.example.com.")] + [
            Name.from_text(f"m{i}.example.com.") for i in range(10)
        ]
        total = 120
        for _ in range(total):
            resolver.resolve(rng.choice(qnames), c.TYPE_A)
        stats = resolver.cache_stats()
    offload = 1.0 - upstream_counter["queries"] / total
    _results["replicated"] = {
        "cluster": "4,1",
        "queries": total,
        "authoritative_queries": upstream_counter["queries"],
        "offload_ratio": offload,
        "synthesized_nxdomain": stats["resolver"]["synthesized_nxdomain"],
        "positive_hits": stats["resolver"]["positive_hits"],
    }
    # Twelve distinct (name, A) touches + serial priming go upstream;
    # the rest must come from the resolver tier.
    assert offload >= 0.5, f"replicated-leg offload {offload:.3f} too low"
    assert stats["resolver"]["synthesized_nxdomain"] > 0


def teardown_module(module):
    if _results:
        _results["environment"] = {
            "cpu_count": os.cpu_count(),
            "seed": SEED,
            "note": (
                "offload_ratio = 1 - authoritative_queries/resolver_queries "
                "on the NXDOMAIN-heavy Zipf workload (400 candidate names, "
                "1-in-10 existing, 5000 queries); the resolver synthesizes "
                "negatives from cached NXT covering intervals (RFC 8198) "
                "and serves repeat positives from the (qname, qtype, "
                "serial) cache."
            ),
        }
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
