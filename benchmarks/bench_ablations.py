"""Ablation benches for the design decisions the paper discusses.

A1 — reads via atomic broadcast vs direct reads (§3.4 last paragraph:
     rarely-updated zones can skip ABC for reads at no extra cost).
A2 — pragmatic single-gateway client vs full multicast/majority client.
A3 — threshold-signing every response (the rejected Reiter–Birman-style
     design of §3.4: "the costs ... would be prohibitive").
A4 — OptTE trial-and-error subset growth with t (exponential worst case,
     §3.5: "works only for relatively small n").
A5 — optimistic fast path vs fall-back epoch change cost in the ABC.
"""

from __future__ import annotations

import math
from statistics import mean

from benchmarks.conftest import build_service
from repro.config import ServiceConfig
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.sim.machines import lan_setup, paper_setup


def test_a1_read_path_ablation(benchmark):
    """Reads without ABC cost what an unreplicated read costs (§3.4)."""

    def run():
        with_abc = build_service("(4,0)", "optte")
        direct = ReplicatedNameService(
            ServiceConfig(n=4, t=1, reads_via_abc=False),
            topology=paper_setup(4),
        )
        return (
            with_abc.query("www.example.com.", c.TYPE_A).latency,
            direct.query("www.example.com.", c.TYPE_A).latency,
        )

    abc_read, direct_read = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nA1: read via ABC {abc_read:.3f}s, direct read {direct_read:.3f}s")
    benchmark.extra_info.update(abc_read=abc_read, direct_read=direct_read)
    # Direct reads skip the WAN agreement round entirely.
    assert direct_read < abc_read / 2


def test_a2_client_model_ablation(benchmark):
    """Full (multicast + majority vote) vs pragmatic client latency."""

    def run():
        pragmatic = ReplicatedNameService(
            ServiceConfig(n=4, t=1), topology=paper_setup(4), client_model="pragmatic"
        )
        full = ReplicatedNameService(
            ServiceConfig(n=4, t=1), topology=paper_setup(4), client_model="full"
        )
        return (
            pragmatic.query("www.example.com.", c.TYPE_A).latency,
            full.query("www.example.com.", c.TYPE_A).latency,
        )

    pragmatic_read, full_read = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nA2: pragmatic read {pragmatic_read:.3f}s, full client {full_read:.3f}s")
    benchmark.extra_info.update(pragmatic=pragmatic_read, full=full_read)
    # The full client waits for n-t responses including remote replicas,
    # so it cannot beat the gateway-local pragmatic client by much.
    assert full_read > pragmatic_read * 0.8


def test_a3_sign_every_response(benchmark):
    """Threshold-signing each read response is prohibitive (§3.4)."""

    # Distinct questions: repeated identical queries now reuse the cached
    # canonical-wire signature (and the answer cache), which would hide
    # exactly the per-response signing cost this ablation prices.
    names = ["www.example.com.", "ns1.example.com.", "ns2.example.com."]

    def run():
        normal = build_service("(4,0)", "optte")
        signing = ReplicatedNameService(
            ServiceConfig(n=4, t=1, sign_every_response=True),
            topology=paper_setup(4),
        )
        return (
            mean(normal.query(name, c.TYPE_A).latency for name in names),
            mean(signing.query(name, c.TYPE_A).latency for name in names),
        )

    normal_read, signed_read = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nA3: plain read {normal_read:.3f}s, threshold-signed read {signed_read:.3f}s")
    benchmark.extra_info.update(plain=normal_read, signed=signed_read)
    # One threshold signature per read multiplies read latency severalfold.
    assert signed_read > 2.5 * normal_read


def test_a4_optte_subset_growth(benchmark):
    """OptTE's worst-case assemblies grow as C(2t+1, t+1) (§3.5)."""
    from tests.crypto.test_protocols import run_protocol
    from repro.crypto.params import demo_threshold_key

    def run():
        measurements = {}
        for n, t in ((4, 1), (7, 2), (10, 3)):
            key = demo_threshold_key(n, t, 384)
            corrupted = set(range(t))

            def bad_first(item):
                sender, _, _ = item
                return (0 if sender in corrupted else 1, sender)

            protocols = run_protocol(key, "optte", corrupted=corrupted, order=bad_first)
            honest_attempts = [
                p.attempts for i, p in enumerate(protocols) if i not in corrupted
            ]
            measurements[(n, t)] = (max(honest_attempts), math.comb(2 * t + 1, t + 1))
        return measurements

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nA4: OptTE assembly attempts under adversarial share ordering")
    for (n, t), (attempts, bound) in measurements.items():
        print(f"  n={n:<3} t={t}:  {attempts:>3} attempts (bound C(2t+1,t+1) = {bound})")
        assert attempts <= bound
    # Worst-case work grows with t.
    assert measurements[(10, 3)][1] > measurements[(4, 1)][1]


def test_a5_abc_fallback_cost(benchmark):
    """Epoch change (leader crash -> ABA -> new epoch) vs fast path."""

    def run():
        fast = build_service("(4,0)*", "optte")
        fast_read = fast.query("www.example.com.", c.TYPE_A).latency

        crashed = ReplicatedNameService(
            ServiceConfig(n=4, t=1, abc_timeout=1.0, client_timeout=120.0),
            topology=lan_setup(4),
            gateway=1,  # client talks to replica 1; leader 0 is crashed
        )
        from repro.core.faults import CorruptionMode

        crashed.corrupt(0, CorruptionMode.CRASH)
        recovery_read = crashed.query("www.example.com.", c.TYPE_A).latency
        epoch_changes = crashed.replicas[1].abc.stats["epoch_changes"]
        follow_up = crashed.query("ns1.example.com.", c.TYPE_A).latency
        return fast_read, recovery_read, epoch_changes, follow_up

    fast_read, recovery_read, epoch_changes, follow_up = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nA5: fast-path read {fast_read:.3f}s; first read through leader "
        f"crash {recovery_read:.3f}s ({epoch_changes} epoch change); "
        f"next read {follow_up:.3f}s"
    )
    benchmark.extra_info.update(
        fast=fast_read, recovery=recovery_read, after=follow_up
    )
    assert epoch_changes >= 1
    assert recovery_read > 1.0  # dominated by the suspicion timeout
    assert follow_up < recovery_read / 3  # new epoch is fast again
