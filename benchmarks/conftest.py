"""Shared benchmark helpers.

Benchmarks report two kinds of numbers:

* **simulated seconds** — latencies measured on the deterministic
  simulator with the paper's topology (Figure 1), machines (Table 1), and
  calibrated crypto costs (Table 3).  These are the numbers compared
  against the paper's tables; they are attached to each benchmark as
  ``extra_info`` and printed as paper-style rows.
* **wall-clock seconds** — real timings of this implementation's
  primitives (pytest-benchmark's own measurement), used for the Table 3
  relative breakdown.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, Tuple

import pytest

from repro.config import ServiceConfig
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.sim.machines import lan_setup, paper_setup

# Table 2 of the paper, for side-by-side printing:
# (setup, protocol) -> (add seconds, delete seconds)
PAPER_TABLE2: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("(4,0)*", "basic"): (7.09, 3.80),
    ("(4,0)*", "optproof"): (1.72, 0.96),
    ("(4,0)*", "optte"): (1.53, 0.92),
    ("(4,0)", "basic"): (6.36, 3.10),
    ("(4,0)", "optproof"): (3.09, 1.78),
    ("(4,0)", "optte"): (3.01, 1.80),
    ("(4,1)", "basic"): (9.29, 5.04),
    ("(4,1)", "optproof"): (6.48, 3.99),
    ("(4,1)", "optte"): (3.10, 1.90),
    ("(7,0)", "basic"): (21.73, 10.09),
    ("(7,0)", "optproof"): (3.06, 1.74),
    ("(7,0)", "optte"): (2.30, 1.83),
    ("(7,1)", "basic"): (24.57, 10.85),
    ("(7,1)", "optproof"): (4.20, 2.73),
    ("(7,1)", "optte"): (3.46, 2.03),
    ("(7,2)", "basic"): (21.21, 10.55),
    ("(7,2)", "optproof"): (15.79, 8.32),
    ("(7,2)", "optte"): (4.01, 2.27),
}

# Paper read latencies per setup (the "Read" column of Table 2).
PAPER_READS = {"(1,0)": 0.047, "(4,0)*": 0.05, "(4,0)": 0.37, "(7,0)": 0.44}

# Table 2 row definitions: label -> (n, t, corruptions, on_lan)
TABLE2_SETUPS = {
    "(4,0)*": (4, 1, 0, True),
    "(4,0)": (4, 1, 0, False),
    "(4,1)": (4, 1, 1, False),
    "(7,0)": (7, 2, 0, False),
    "(7,1)": (7, 2, 1, False),
    "(7,2)": (7, 2, 2, False),
}

REPETITIONS = 3  # paper used 20; simulated runs are deterministic per seed


def build_service(
    label: str, protocol: str, seed: int = 0, **config_extra
) -> ReplicatedNameService:
    n, t, k, lan = TABLE2_SETUPS[label]
    topology = lan_setup(n) if lan else paper_setup(n)
    service = ReplicatedNameService(
        ServiceConfig(n=n, t=t, signing_protocol=protocol, **config_extra),
        topology=topology,
        seed=seed,
    )
    if k:
        service.corrupt_paper_style(k)
    return service


def measure_cell(label: str, protocol: str, reps: int = REPETITIONS):
    """One Table 2 cell: mean read/add/delete simulated latency."""
    reads, adds, deletes = [], [], []
    for seed in range(reps):
        service = build_service(label, protocol, seed=seed)
        reads.append(service.query("www.example.com.", c.TYPE_A).latency)
        _, _, add_total = service.nsupdate_add(
            "bench.example.com.", c.TYPE_A, 3600, "192.0.2.99"
        )
        _, _, delete_total = service.nsupdate_delete("bench.example.com.")
        adds.append(add_total)
        deletes.append(delete_total)
    return mean(reads), mean(adds), mean(deletes)


@pytest.fixture(scope="session")
def table2_results():
    """Session-scoped cache so the summary row reuses per-cell results."""
    return {}
