"""Table 2: read / add / delete latencies for every (n, k) x protocol cell.

Each cell runs the *entire system* — client, atomic broadcast, replicated
update execution, threshold signing — on the simulated Figure 1 topology
with Table 1 machine speeds, averaged over several seeded repetitions
(the paper averaged 20 wall-clock runs).

The numbers to compare are **simulated seconds** (printed, and attached
as ``extra_info``); pytest-benchmark's own timing measures how fast this
implementation simulates a cell, which is not a paper metric.

Shape expectations from the paper (§5.3) are asserted in
``test_table2_shape_claims``:

* BASIC is 4–6x slower than the optimistic protocols without corruption;
* an add costs roughly twice a delete (4 vs 2 SIG records);
* OptProof degrades much faster with corruptions than OptTE, which at
  (7,2) stays ~4–5x faster than BASIC;
* reads are tens of ms on the LAN and a few hundred ms on the WAN.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    PAPER_READS,
    PAPER_TABLE2,
    TABLE2_SETUPS,
    measure_cell,
)
from repro.dns import constants as c

CELLS = [
    (label, protocol)
    for label in TABLE2_SETUPS
    for protocol in ("basic", "optproof", "optte")
]


def test_table2_base_case(benchmark, table2_results):
    """The (1,0) row: unmodified named on one Zurich machine."""
    from repro.config import ServiceConfig
    from repro.core.service import ReplicatedNameService
    from repro.sim.machines import paper_setup

    def run():
        service = ReplicatedNameService(
            ServiceConfig(n=1, t=0), topology=paper_setup(1)
        )
        read = service.query("www.example.com.", c.TYPE_A).latency
        add = service.add_record(
            "bench.example.com.", c.TYPE_A, 3600, "192.0.2.99"
        ).latency
        delete = service.delete_name("bench.example.com.").latency
        return read, add, delete

    read, add, delete = benchmark.pedantic(run, rounds=1, iterations=1)
    table2_results["(1,0)"] = {"read": read, "add": add, "delete": delete}
    benchmark.extra_info.update(sim_read=read, sim_add=add, sim_delete=delete)
    print(
        f"\n(1,0) base case  read {read:.3f}s (paper {PAPER_READS['(1,0)']})  "
        f"add {add:.3f}s  delete {delete:.3f}s (paper delete 0.022)"
    )
    assert add > delete  # 4 local signatures vs 2


@pytest.mark.parametrize("label,protocol", CELLS, ids=[f"{l}-{p}" for l, p in CELLS])
def test_table2_cell(benchmark, table2_results, label, protocol):
    result = benchmark.pedantic(
        measure_cell, args=(label, protocol), rounds=1, iterations=1
    )
    read, add, delete = result
    paper_add, paper_delete = PAPER_TABLE2[(label, protocol)]
    table2_results[(label, protocol)] = {
        "read": read,
        "add": add,
        "delete": delete,
        "paper_add": paper_add,
        "paper_delete": paper_delete,
    }
    benchmark.extra_info.update(
        sim_read=round(read, 4),
        sim_add=round(add, 3),
        sim_delete=round(delete, 3),
        paper_add=paper_add,
        paper_delete=paper_delete,
    )
    print(
        f"\n{label} {protocol:<9} read {read:6.3f}  "
        f"add {add:6.2f} (paper {paper_add:6.2f})  "
        f"delete {delete:5.2f} (paper {paper_delete:5.2f})"
    )
    # Sanity per cell: add costs more than delete (4 vs 2 signatures).
    assert add > delete


def test_table2_shape_claims(benchmark, table2_results):
    """Assert the paper's §5.3 qualitative conclusions and print the table."""

    def collect():
        # Fill any cells not yet measured (e.g. single-test runs).
        for label, protocol in CELLS:
            if (label, protocol) not in table2_results:
                read, add, delete = measure_cell(label, protocol)
                paper_add, paper_delete = PAPER_TABLE2[(label, protocol)]
                table2_results[(label, protocol)] = {
                    "read": read,
                    "add": add,
                    "delete": delete,
                    "paper_add": paper_add,
                    "paper_delete": paper_delete,
                }
        return table2_results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    print("\n\nTable 2 (simulated vs paper, seconds)")
    header = (
        f"{'(n,k)':<8}{'Read':>7} | "
        f"{'Add B':>7}{'Add OP':>8}{'Add OT':>8} | "
        f"{'Del B':>7}{'Del OP':>8}{'Del OT':>8}"
    )
    print(header)
    for label in TABLE2_SETUPS:
        row = results[(label, "basic")]
        cells = [results[(label, p)] for p in ("basic", "optproof", "optte")]
        print(
            f"{label:<8}{row['read']:>7.3f} | "
            + "".join(f"{cell['add']:>7.2f} " for cell in cells)
            + "| "
            + "".join(f"{cell['delete']:>7.2f} " for cell in cells)
        )
        print(
            f"{'paper':<8}{PAPER_READS.get(label, float('nan')):>7} | "
            + "".join(f"{cell['paper_add']:>7.2f} " for cell in cells)
            + "| "
            + "".join(f"{cell['paper_delete']:>7.2f} " for cell in cells)
        )

    get = lambda label, proto, kind: results[(label, proto)][kind]

    # 1. BASIC is several times slower than the optimized protocols (§5.3).
    for label in ("(4,0)*", "(4,0)", "(7,0)"):
        for kind in ("add", "delete"):
            ratio = get(label, "basic", kind) / get(label, "optte", kind)
            assert ratio > 3.0, f"{label} {kind}: BASIC only {ratio:.1f}x slower"

    # 2. Adds cost roughly twice deletes (4 vs 2 SIG computations).
    for label, protocol in CELLS:
        ratio = get(label, protocol, "add") / get(label, protocol, "delete")
        assert 1.4 < ratio < 2.8, f"{label} {protocol}: add/delete = {ratio:.2f}"

    # 3. OptProof deteriorates much faster with corruptions than OptTE:
    #    at (7,2), OptProof approaches BASIC while OptTE stays 4-5x faster.
    optproof_degradation = get("(7,2)", "optproof", "add") / get("(7,0)", "optproof", "add")
    optte_degradation = get("(7,2)", "optte", "add") / get("(7,0)", "optte", "add")
    assert optproof_degradation > 2 * optte_degradation
    assert get("(7,2)", "optproof", "add") > 0.6 * get("(7,2)", "basic", "add")
    assert get("(7,2)", "basic", "add") / get("(7,2)", "optte", "add") > 3.0

    # 4. Reads: tens of ms on the LAN, hundreds of ms over the WAN.
    assert get("(4,0)*", "optte", "read") < 0.1
    assert 0.05 < get("(4,0)", "optte", "read") < 0.6
    assert 0.05 < get("(7,0)", "optte", "read") < 0.7

    # 5. Corruption makes every protocol at least as slow, never faster.
    for protocol in ("basic", "optproof", "optte"):
        assert get("(7,2)", protocol, "add") >= get("(7,0)", protocol, "add") * 0.95
