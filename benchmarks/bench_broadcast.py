"""Broadcast-plane bandwidth benchmark: digest votes and erasure coding.

Drives the reliable-broadcast layer (DESIGN.md §5i) over the
deterministic simulator at the big-n target cluster (n=10, t=3) with
4 KiB batch payloads and measures what each dissemination mode puts on
the wire, using the per-type/per-replica byte ledgers the simulated
network keeps for every transmit:

* **full** — Bracha's original shape: every replica echoes the whole
  payload to everyone, so the echo lane alone carries ``n * (n-1) * |m|``
  bytes per broadcast.
* **digest** — echoes and readies carry a 32-byte digest instead of the
  payload; the payload crosses each link once (SEND), with a pull
  fallback for withholding senders.
* **erasure** — the sender disperses ``n`` Reed-Solomon fragments (any
  ``n - 2t`` reconstruct) with Merkle proofs; no link ever carries the
  whole payload and the per-replica cost stays near-flat as ``n`` grows.

Headline metrics (gated by ``check_regression.py``):

* ``digest_echo_reduction`` / ``erasure_echo_reduction`` — per-replica
  echo-lane traffic of full mode divided by the same measure in
  digest/erasure mode at (10, 3) with 4 KiB payloads.  Acceptance bar:
  >= 5x (in practice ~100x: 32-byte votes vs 4 KiB payload echoes).
* ``erasure_flatness_headroom`` — how much slower erasure-mode
  per-replica bytes grow than full-mode as the cluster scales
  4 -> 7 -> 10 (higher is better; > 1 means flatter).

Results are written to ``BENCH_broadcast.json`` at the repo root.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_broadcast.py -v
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Tuple

from repro.broadcast.rbc import RBC_MODES, ReliableBroadcast
from repro.sim.machines import lan_setup
from repro.sim.network import SimNetwork

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_broadcast.json"

TARGET_CLUSTER = (10, 3)
PAYLOAD_SIZE = 4096  # one 4 KiB batch frame
BATCHES = 4
REDUCTION_BAR = 5.0

#: Message types that make up each mode's echo-vote lane (the all-to-all
#: amplification traffic the digest rewrite shrinks).  READY votes were
#: digest-sized already.
ECHO_TYPES: Dict[str, Tuple[str, ...]] = {
    "full": ("RbcEcho",),
    "digest": ("RbcEchoDigest",),
    # In erasure mode the proof-carrying fragments double as echo votes,
    # so the vote lane carries |m|/(n-2t) per message instead of 32 bytes
    # — its reduction is n-2t-fold, not |m|/32-fold.
    "erasure": ("RbcEchoDigest", "RbcFrag"),
}

#: Message types that carry payload data (the dissemination lane).  In
#: full/digest mode the sender ships the whole payload per link (SEND);
#: in erasure mode each link carries one |m|/(n-2t) fragment (VAL) and
#: each replica forwards its own fragment once (FRAG).
DISSEMINATION_TYPES: Dict[str, Tuple[str, ...]] = {
    "full": ("RbcSend",),
    "digest": ("RbcSend", "RbcPayload"),
    "erasure": ("RbcVal", "RbcFrag", "RbcPayload"),
}

_results: dict = {}


def _run_mode(n: int, t: int, mode: str) -> Dict[str, float]:
    """Broadcast BATCHES payloads in ``mode``; return the byte ledgers."""
    net = SimNetwork(lan_setup(n), seed=7, cpu_jitter=0.0)
    delivered: Dict[int, Dict[str, bytes]] = {i: {} for i in range(n)}
    nodes = []
    for i in range(n):
        rbc = ReliableBroadcast(
            n,
            t,
            i,
            deliver=lambda sid, payload, i=i: delivered[i].__setitem__(sid, payload),
            mode=mode,
            schedule=net.node(i).schedule_timer,
            emit=(
                lambda outs, i=i: [
                    net.node(i).send(dest, m)
                    for dest, m in outs
                    if dest != i
                ]
            ),
        )
        nodes.append(rbc)

        def handler(sender, msg, rbc=rbc, i=i):
            for dest, out in rbc.on_message(sender, msg):
                if dest == -1:
                    for peer in range(n):
                        if peer != i:
                            net.node(i).send(peer, out)
                elif dest != i:
                    net.node(i).send(dest, out)

        net.node(i).set_handler(handler)

    payloads = {
        f"batch-{b}": bytes([b]) * PAYLOAD_SIZE for b in range(BATCHES)
    }
    # One gateway disseminates every batch (the deployment shape: clients
    # talk to one replica, §3.4) so the sender-link hotspot is visible.
    for sid, payload in payloads.items():
        sender = 0
        for dest, out in nodes[sender].broadcast(sid, payload):
            if dest == -1:
                for peer in range(n):
                    if peer != sender:
                        net.node(sender).send(peer, out)
            elif dest != sender:
                net.node(sender).send(dest, out)
    net.run()

    for i in range(n):
        assert delivered[i] == payloads, (
            f"mode={mode} n={n} replica {i} delivered "
            f"{sorted(delivered[i])} != {sorted(payloads)}"
        )
    echo_bytes = sum(net.bytes_by_type.get(mt, 0) for mt in ECHO_TYPES[mode])
    dissemination_bytes = sum(
        net.bytes_by_type.get(mt, 0) for mt in DISSEMINATION_TYPES[mode]
    )
    return {
        "total_bytes": float(net.bytes_sent),
        "echo_bytes": float(echo_bytes),
        "dissemination_bytes": float(dissemination_bytes),
        "per_replica_echo_bytes": echo_bytes / n,
        "per_replica_total_bytes": net.bytes_sent / n,
        "max_link_bytes": float(max(net.bytes_by_link.values())),
        "bytes_by_type": {k: float(v) for k, v in sorted(net.bytes_by_type.items())},
    }


def test_echo_reduction_at_target_cluster():
    """Digest votes cut per-replica echo traffic >= 5x at (10,3), 4 KiB."""
    n, t = TARGET_CLUSTER
    by_mode = {mode: _run_mode(n, t, mode) for mode in RBC_MODES}
    full_echo = by_mode["full"]["per_replica_echo_bytes"]
    reductions = {}
    for mode in ("digest", "erasure"):
        reductions[mode] = full_echo / by_mode[mode]["per_replica_echo_bytes"]
    _results["target_cluster"] = {
        "n": n,
        "t": t,
        "payload_size": PAYLOAD_SIZE,
        "batches": BATCHES,
        "modes": by_mode,
    }
    _results["digest_echo_reduction"] = reductions["digest"]
    _results["erasure_echo_reduction"] = reductions["erasure"]
    assert reductions["digest"] >= REDUCTION_BAR, (
        f"digest mode reduced per-replica echo bytes only "
        f"{reductions['digest']:.1f}x (< {REDUCTION_BAR}x) at n={n} with "
        f"{PAYLOAD_SIZE}-byte payloads"
    )
    # Erasure's vote lane carries fragments, so its reduction is bounded
    # by n-2t (times proof overhead), not |m|/32 — but it must still beat
    # full-payload echoes comfortably.
    assert reductions["erasure"] >= 2.0, (
        f"erasure mode reduced per-replica echo bytes only "
        f"{reductions['erasure']:.1f}x at n={n}"
    )
    # Digest mode also shrinks *total* traffic: votes dominate Bracha.
    assert (
        by_mode["digest"]["total_bytes"] < by_mode["full"]["total_bytes"]
    ), "digest mode did not reduce total broadcast traffic"
    # Erasure mode removes the whole-payload link hotspot: its busiest
    # link carries less than one full payload per batch, where full and
    # digest mode ship |m| per sender link.
    assert (
        by_mode["erasure"]["max_link_bytes"]
        < by_mode["digest"]["max_link_bytes"]
    ), "erasure mode did not shrink the busiest link"
    _results["erasure_max_link_bytes_per_batch"] = (
        by_mode["erasure"]["max_link_bytes"] / BATCHES
    )


def test_erasure_per_replica_bytes_near_flat():
    """Erasure-mode per-replica bytes stay near-flat as n grows."""
    clusters: List[Tuple[int, int]] = [(4, 1), (7, 2), (10, 3)]
    growth = {}
    sweep = {}
    for mode in ("full", "erasure"):
        per_replica = []
        for n, t in clusters:
            result = _run_mode(n, t, mode)
            per_replica.append(result["per_replica_total_bytes"])
            sweep[f"{mode}(n={n},t={t})"] = result["per_replica_total_bytes"]
        growth[mode] = per_replica[-1] / per_replica[0]
    _results["scaling_sweep"] = {
        "clusters": [list(c) for c in clusters],
        "per_replica_total_bytes": sweep,
        "growth_4_to_10": growth,
    }
    # Full mode's per-replica cost grows ~linearly with n (payload echo
    # to every peer); erasure's fragment size shrinks as 1/(n-2t) while
    # fan-out grows with n, so the product stays nearly constant.
    headroom = growth["full"] / growth["erasure"]
    _results["erasure_flatness_headroom"] = headroom
    assert growth["erasure"] < 2.0, (
        f"erasure per-replica bytes grew {growth['erasure']:.2f}x from "
        f"n=4 to n=10 — not near-flat"
    )
    assert headroom > 1.2, (
        f"erasure scaling headroom over full mode is only {headroom:.2f}x"
    )


def teardown_module(module):
    if _results:
        _results["environment"] = {
            "cpu_count": os.cpu_count(),
            "note": (
                "per_replica_echo_bytes = echo-lane bytes / n measured by "
                "the simulated network's per-type ledgers; echo lane is "
                "RbcEcho (full), RbcEchoDigest (digest), RbcEchoDigest+"
                "RbcFrag (erasure).  Reductions compare full mode against "
                "digest/erasure at (10,3) with 4 KiB batch payloads."
            ),
        }
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
