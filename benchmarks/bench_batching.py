"""Throughput benchmark: batched atomic broadcast + signed-answer cache.

Measures sustained request throughput of the replicated service under a
closed-loop multi-client workload, comparing the seed configuration
(one payload per agreement instance, no caching) against the optimized
fast path (SINTRA-style batching plus the signed-answer cache).

Acceptance target: >= 2x request throughput on the read-heavy workload
with batch_size >= 8, and zero additional signing rounds for repeated
identical queries in sign-every-response mode.

Results are also written to ``BENCH_batching.json`` at the repo root.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batching.py -v
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

from repro.config import ServiceConfig
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import rdata_from_text
from repro.sim.machines import lan_setup

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_batching.json"

N_CLIENTS = 6
DURATION = 10.0  # simulated seconds of sustained load
BATCH_SIZE = 8

# Read-heavy hot-name workload: a popular name dominates, as in real DNS.
HOT_NAMES = ["www.example.com."] * 8 + ["ns1.example.com.", "ns2.example.com."]

_results: dict = {}


def make_service(batched: bool, **config_extra) -> ReplicatedNameService:
    config = ServiceConfig(
        n=4,
        t=1,
        batch_size=BATCH_SIZE if batched else 1,
        answer_cache=batched,
        **config_extra,
    )
    return ReplicatedNameService(config, topology=lan_setup(4))


def make_clients(svc: ReplicatedNameService, count: int = N_CLIENTS):
    return [svc.client] + [svc.add_client() for _ in range(count - 1)]


def run_closed_loop(svc, clients, duration, names, update_every=0):
    """Each client keeps one request in flight until the deadline.

    ``update_every`` > 0 turns every k-th operation of the first client
    into an nsupdate-style add (the mixed workload).
    """
    sim = svc.net.sim
    end = sim.now + duration
    completed = []
    qnames = [Name.from_text(n) for n in names]
    next_q = itertools.count()
    next_addr = itertools.count(1)

    def issue(client, is_writer):
        seq = next(next_q)

        def cb(op):
            completed.append(op)
            if sim.now < end:
                issue(client, is_writer)

        if is_writer and update_every and seq % update_every == update_every - 1:
            i = next(next_addr)
            rdata_name = Name.from_text(f"load{i}.example.com.")
            rdata = rdata_from_text(c.TYPE_A, [f"192.0.2.{i % 250 + 1}"], svc.zone_origin)
            client.add_record(rdata_name, c.TYPE_A, 300, rdata, cb)
        else:
            client.query(qnames[seq % len(qnames)], c.TYPE_A, cb)

    for idx, client in enumerate(clients):
        issue(client, is_writer=(idx == 0))
    sim.run(until=end)
    return completed


def throughput(completed, duration=DURATION):
    return len(completed) / duration


class TestReadHeavyThroughput:
    def test_batching_doubles_read_throughput(self):
        unbatched = make_service(batched=False)
        base_ops = run_closed_loop(
            unbatched, make_clients(unbatched), DURATION, HOT_NAMES
        )
        base_tput = throughput(base_ops)

        batched = make_service(batched=True)
        fast_ops = run_closed_loop(
            batched, make_clients(batched), DURATION, HOT_NAMES
        )
        fast_tput = throughput(fast_ops)

        assert unbatched.states_consistent()
        assert batched.states_consistent()
        assert all(op.response is not None for op in fast_ops)
        speedup = fast_tput / base_tput
        _results["read_heavy"] = {
            "unbatched_tput": base_tput,
            "batched_tput": fast_tput,
            "speedup": speedup,
            "batch_size": BATCH_SIZE,
            "clients": N_CLIENTS,
            "duration_sim_s": DURATION,
            "answer_cache_hits": sum(
                r.stats["answer_cache_hits"] for r in batched.replicas
            ),
            "batches_delivered": sum(
                r.stats["batches_delivered"] for r in batched.replicas
            ),
        }
        # The acceptance bar: the fast path at least doubles throughput.
        assert speedup >= 2.0, (
            f"batching+cache speedup {speedup:.2f}x "
            f"({base_tput:.1f} -> {fast_tput:.1f} req/s) below 2x target"
        )


class TestMixedThroughput:
    def test_mixed_workload_improves_and_stays_consistent(self):
        unbatched = make_service(batched=False)
        base_ops = run_closed_loop(
            unbatched, make_clients(unbatched), DURATION, HOT_NAMES,
            update_every=20,
        )
        base_tput = throughput(base_ops)

        batched = make_service(batched=True)
        fast_ops = run_closed_loop(
            batched, make_clients(batched), DURATION, HOT_NAMES,
            update_every=20,
        )
        fast_tput = throughput(fast_ops)

        assert unbatched.states_consistent()
        assert batched.states_consistent()
        base_writes = sum(1 for op in base_ops if op.kind == "add")
        fast_writes = sum(1 for op in fast_ops if op.kind == "add")
        speedup = fast_tput / base_tput
        _results["mixed"] = {
            "unbatched_tput": base_tput,
            "batched_tput": fast_tput,
            "speedup": speedup,
            "unbatched_writes": base_writes,
            "batched_writes": fast_writes,
        }
        # Writes pay for distributed re-signing either way; still expect a
        # clear improvement from batching the read traffic around them.
        assert speedup >= 1.5, f"mixed-workload speedup {speedup:.2f}x below 1.5x"
        assert fast_writes >= 1


class TestSigningRoundReuse:
    def test_repeated_queries_need_no_extra_signing_rounds(self):
        svc = make_service(batched=True, sign_every_response=True)
        first = svc.query("www.example.com.", c.TYPE_A)
        assert first.response.rcode == c.RCODE_NOERROR
        rounds_after_first = svc.total_signing_rounds()
        assert rounds_after_first >= 1
        repeats = 10
        for _ in range(repeats):
            op = svc.query("www.example.com.", c.TYPE_A)
            assert op.response.rcode == c.RCODE_NOERROR
        extra = svc.total_signing_rounds() - rounds_after_first
        _results["signing_round_reuse"] = {
            "rounds_after_first_query": rounds_after_first,
            "repeated_queries": repeats,
            "extra_rounds": extra,
        }
        assert extra == 0, f"{extra} extra signing rounds for repeated queries"


def teardown_module(module):
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
