"""Real wall-clock micro-benchmarks of this implementation's substrates.

Not paper tables — these measure the Python implementation itself (wire
codec, zone lookups, update engine, RBC round) so regressions in the
substrate are visible independently of the simulated results.
"""

from __future__ import annotations

import pytest

from repro.dns import constants as c
from repro.dns.message import Message, make_query
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.dns.server import AuthoritativeServer
from repro.dns.update import UpdateProcessor
from repro.dns.zonefile import parse_zone_text

ZONE_TEXT = """
$ORIGIN bench.example.
$TTL 3600
@ IN SOA ns1.bench.example. admin.bench.example. ( 1 7200 900 604800 300 )
  IN NS ns1
ns1 IN A 192.0.2.1
"""


@pytest.fixture(scope="module")
def big_zone():
    zone = parse_zone_text(ZONE_TEXT)
    for i in range(500):
        zone.add_rdata(
            Name.from_text(f"host{i}.bench.example."),
            c.TYPE_A,
            3600,
            A(f"10.{(i >> 8) & 0xFF}.{i & 0xFF}.1"),
        )
    return zone


def test_wire_encode(benchmark, big_zone):
    server = AuthoritativeServer(big_zone)
    response = server.handle_query(
        make_query(Name.from_text("host42.bench.example."), c.TYPE_A)
    )
    wire = benchmark(response.to_wire)
    assert wire


def test_wire_decode(benchmark, big_zone):
    server = AuthoritativeServer(big_zone)
    wire = server.handle_query(
        make_query(Name.from_text("host42.bench.example."), c.TYPE_A)
    ).to_wire()
    message = benchmark(Message.from_wire, wire)
    assert message.answers


def test_query_engine_throughput(benchmark, big_zone):
    server = AuthoritativeServer(big_zone)
    query = make_query(Name.from_text("host123.bench.example."), c.TYPE_A)
    response = benchmark(server.handle_query, query)
    assert response.rcode == c.RCODE_NOERROR


def test_update_engine(benchmark, big_zone):
    from repro.dns.message import RR, make_update

    def apply_update():
        zone = big_zone.copy()
        update = make_update(zone.origin)
        update.authority.append(
            RR(
                Name.from_text("fresh.bench.example."),
                c.TYPE_A,
                c.CLASS_IN,
                300,
                A("10.9.9.9"),
            )
        )
        return UpdateProcessor(zone).apply(update)

    result = benchmark(apply_update)
    assert result.ok


def test_zone_digest(benchmark, big_zone):
    digest = benchmark(big_zone.digest)
    assert len(digest) == 32


def test_canonical_zone_iteration(benchmark, big_zone):
    count = benchmark(lambda: sum(1 for _ in big_zone))
    assert count > 500


def test_rbc_round_on_sim(benchmark):
    """One complete reliable-broadcast round among four simulated nodes."""
    from tests.broadcast.test_rbc import build
    from tests.broadcast.harness import make_lan

    def round_trip():
        net = make_lan(4)
        rbcs, routers, delivered = build(4, 1, net)
        routers[0].send_all(rbcs[0].broadcast("sid", b"payload"))
        net.run()
        return delivered

    delivered = benchmark(round_trip)
    assert all(delivered[i].get("sid") == b"payload" for i in range(4))


def test_threshold_sign_512(benchmark):
    """End-to-end threshold signature at the service's default key size."""
    from repro.crypto.params import demo_threshold_key

    public, shares = demo_threshold_key(4, 1, 512)

    def sign():
        sig_shares = [s.generate_share(b"bench message") for s in shares[:2]]
        return public.assemble(b"bench message", sig_shares)

    signature = benchmark(sign)
    public.verify_signature(b"bench message", signature)
