"""CI bench-regression gate: fresh BENCH_*.json vs committed baselines.

The bench-smoke job reruns every benchmark on each push; this script
compares the freshly produced headline metrics against the baselines
committed at the repo root and fails the job when any modelled speedup
(or the resolver offload ratio) drops more than ``--tolerance`` (default
20%) below its committed value.  Metrics landing *above* baseline never
fail — committing an improved baseline is the ratchet.

Usage (what CI runs, after the bench steps regenerated the files)::

    python benchmarks/check_regression.py \
        --baseline bench-baselines --fresh .

A baseline file that does not exist is skipped with a note (a brand-new
benchmark has nothing to regress against); a *fresh* file that is
missing while its baseline exists is a hard failure (the benchmark
silently stopped producing output).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

DEFAULT_TOLERANCE = 0.20


def _batching_metrics(data: dict) -> Dict[str, float]:
    return {
        "read_heavy.speedup": float(data["read_heavy"]["speedup"]),
        "mixed.speedup": float(data["mixed"]["speedup"]),
    }


def _parallel_metrics(data: dict) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for group in data["groups"]:
        key = f"{group['protocol']}(n={group['n']},t={group['t']}).model_speedup"
        out[key] = float(group["model_speedup"])
    return out


def _writes_metrics(data: dict) -> Dict[str, float]:
    return {"write_speedup": float(data["write_speedup"])}


def _resolver_metrics(data: dict) -> Dict[str, float]:
    return {"offload_ratio": float(data["offload_ratio"])}


def _broadcast_metrics(data: dict) -> Dict[str, float]:
    return {
        "digest_echo_reduction": float(data["digest_echo_reduction"]),
        "erasure_echo_reduction": float(data["erasure_echo_reduction"]),
        "erasure_flatness_headroom": float(data["erasure_flatness_headroom"]),
    }


#: filename -> extractor of {metric name: higher-is-better value}.
EXTRACTORS = {
    "BENCH_batching.json": _batching_metrics,
    "BENCH_parallel.json": _parallel_metrics,
    "BENCH_writes.json": _writes_metrics,
    "BENCH_resolver.json": _resolver_metrics,
    "BENCH_broadcast.json": _broadcast_metrics,
}


def _load(path: Path) -> dict:
    with path.open(encoding="utf-8") as handle:
        return json.load(handle)


def check(
    baseline_dir: Path, fresh_dir: Path, tolerance: float
) -> List[str]:
    """All regression messages (empty = gate passes)."""
    problems: List[str] = []
    for filename, extract in sorted(EXTRACTORS.items()):
        baseline_path = baseline_dir / filename
        fresh_path = fresh_dir / filename
        if not baseline_path.exists():
            print(f"{filename}: no committed baseline, skipping (new bench?)")
            continue
        if not fresh_path.exists():
            problems.append(
                f"{filename}: baseline exists but no fresh results were "
                "produced — did the benchmark stop writing its JSON?"
            )
            continue
        try:
            baseline = extract(_load(baseline_path))
        except (KeyError, TypeError, ValueError) as exc:
            problems.append(f"{filename}: unreadable baseline ({exc!r})")
            continue
        try:
            fresh = extract(_load(fresh_path))
        except (KeyError, TypeError, ValueError) as exc:
            problems.append(f"{filename}: unreadable fresh results ({exc!r})")
            continue
        for metric, committed in sorted(baseline.items()):
            if metric not in fresh:
                problems.append(
                    f"{filename}: metric {metric} vanished from fresh results"
                )
                continue
            floor = committed * (1.0 - tolerance)
            current = fresh[metric]
            verdict = "ok" if current >= floor else "REGRESSION"
            print(
                f"{filename}: {metric} baseline={committed:.3f} "
                f"fresh={current:.3f} floor={floor:.3f} {verdict}"
            )
            if current < floor:
                problems.append(
                    f"{filename}: {metric} regressed to {current:.3f}, "
                    f"more than {tolerance:.0%} below the committed "
                    f"{committed:.3f}"
                )
    return problems


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below baseline (default 0.20)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    problems = check(args.baseline, args.fresh, args.tolerance)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    print("bench-regression gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
