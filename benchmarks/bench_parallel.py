"""Signing-plane benchmark: serial vs pooled threshold-RSA execution.

Drives one replica's :class:`SigningCoordinator` through a pipelined
stream of signing sessions — peer shares arrive ahead of each session,
exactly as they do on a gateway replica under load — and compares the
:class:`SerialExecutor` against a :class:`PoolExecutor` backed by a real
4-worker process pool.

The headline metric is the **modelled makespan** from the executor's
:class:`WorkerClock`: every job is costed in Table 3 reference-machine
seconds and placed on a virtual greedy schedule, so the reported speedup
is a property of the *schedule* (what a 4-way pool does to the signing
critical path), not of how many physical cores the CI host happens to
have.  Wall-clock seconds and the host CPU count are recorded alongside
for transparency — on a single-core host the OS-level speedup is
necessarily ~1x even though the pool plane is doing its job.

Acceptance target: >= 2x modelled signing throughput with 4 pool
workers vs serial for BASIC and OptProof at (n=4, t=1).

Results are written to ``BENCH_parallel.json`` at the repo root.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -v
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.crypto.executor import (
    CryptoWorkerPool,
    PoolExecutor,
    SerialExecutor,
)
from repro.crypto.params import demo_threshold_key
from repro.crypto.protocols import (
    ALL_PROTOCOLS,
    PROTOCOL_BASIC,
    PROTOCOL_OPTPROOF,
    SigningCoordinator,
    SigningMessage,
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

POOL_WORKERS = 4
SESSIONS = 16
LOOKAHEAD = 6
MODULUS_BITS = 384  # small demo modulus: the clock models Table 3 costs

GROUPS = [(4, 1), (7, 2)]

_results: dict = {}
_keys: dict = {}


def _group_keys(n: int, t: int):
    if (n, t) not in _keys:
        _keys[(n, t)] = demo_threshold_key(n, t, MODULUS_BITS)
    return _keys[(n, t)]


def _peer_messages(shares, protocol_name, t, sid, message):
    """Shares the other replicas contribute (their CPUs, not this plane's).

    BASIC broadcasts proof-carrying shares and needs ``t`` valid peers on
    top of the trusted own share; the optimistic protocols assemble the
    first ``t + 1`` *received* bare shares (§3.5).
    """
    if protocol_name == PROTOCOL_BASIC:
        peers = range(1, t + 1)
        return [
            (i, SigningMessage.share_message(
                sid, shares[i].generate_share_with_proof(message)))
            for i in peers
        ]
    peers = range(1, t + 2)
    return [
        (i, SigningMessage.share_message(
            sid, shares[i].generate_share(message)))
        for i in peers
    ]


def run_signing_plane(executor, shares, protocol_name, t,
                      sessions=SESSIONS, lookahead=LOOKAHEAD):
    """Replica 0 signs a pipelined stream of messages through ``executor``.

    Peer shares for session ``k + lookahead`` are buffered (and the
    session prefetched) while session ``k`` runs — the same overlap the
    replica's signing dispatcher creates for multi-SIG updates.
    """
    coordinator = SigningCoordinator(
        protocol_name, shares[0], executor=executor, lookahead=lookahead
    )
    messages = [f"bench-{protocol_name}-{k}".encode() for k in range(sessions)]
    sids = [f"s{k}" for k in range(sessions)]

    def feed(j):
        for sender, msg in _peer_messages(
            shares, protocol_name, t, sids[j], messages[j]
        ):
            coordinator.on_message(sender, msg)
        coordinator.prefetch(sids[j], messages[j])

    started = time.perf_counter()
    for j in range(min(lookahead, sessions)):
        feed(j)
    for k in range(sessions):
        ahead = k + lookahead
        if ahead < sessions:
            feed(ahead)
        coordinator.sign(sids[k], messages[k])
        signature = coordinator.result(sids[k])
        assert signature is not None, (protocol_name, k)
    wall = time.perf_counter() - started
    return coordinator, wall


def _leg_record(executor, coordinator, wall, sessions=SESSIONS):
    clock = executor.clock
    return {
        "workers": clock.workers,
        "makespan_ref_s": clock.makespan,
        "throughput_sessions_per_ref_s": sessions / clock.makespan,
        "busy_ref_s": clock.busy,
        "jobs": executor.stats["jobs"],
        "batch_jobs": executor.stats["batch_jobs"],
        "batched_items": executor.stats["batched_items"],
        "pipeline": dict(coordinator.pipeline_stats),
        "wall_clock_s": wall,
    }


def run_comparison(n, t, protocol_name):
    public, shares = _group_keys(n, t)

    serial_exec = SerialExecutor(shares[0])
    serial_coord, serial_wall = run_signing_plane(
        serial_exec, shares, protocol_name, t
    )

    with CryptoWorkerPool(POOL_WORKERS) as pool:
        pool_exec = PoolExecutor(pool, "replica0", key_share=shares[0])
        pool_coord, pool_wall = run_signing_plane(
            pool_exec, shares, protocol_name, t
        )

    # Behavior preservation: both planes assembled the same signatures.
    assert serial_coord._completed == pool_coord._completed

    speedup = serial_exec.clock.makespan / pool_exec.clock.makespan
    record = {
        "n": n,
        "t": t,
        "protocol": protocol_name,
        "sessions": SESSIONS,
        "lookahead": LOOKAHEAD,
        "serial": _leg_record(serial_exec, serial_coord, serial_wall),
        "pool": _leg_record(pool_exec, pool_coord, pool_wall),
        "model_speedup": speedup,
    }
    _results.setdefault("groups", []).append(record)
    return record


@pytest.mark.parametrize("n,t", GROUPS)
@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_pool_speeds_up_signing(n, t, protocol):
    record = run_comparison(n, t, protocol)
    # Pooling must never model *slower* than serial for any group.
    assert record["model_speedup"] >= 1.0, record
    if (n, t) == (4, 1) and protocol in (PROTOCOL_BASIC, PROTOCOL_OPTPROOF):
        # The acceptance bar: the 4-worker pool at least doubles modelled
        # signing throughput for the proof-carrying and optimistic paths.
        assert record["model_speedup"] >= 2.0, (
            f"{protocol} ({n},{t}) modelled speedup "
            f"{record['model_speedup']:.2f}x below the 2x target"
        )


def test_pool_amortizes_verification_for_basic():
    record = next(
        (
            r
            for r in _results.get("groups", [])
            if r["protocol"] == PROTOCOL_BASIC and (r["n"], r["t"]) == (4, 1)
        ),
        None,
    ) or run_comparison(4, 1, PROTOCOL_BASIC)
    # BASIC's peer proofs ride batch jobs (one task per share batch), and
    # the pipelined sessions actually consumed their prefetched shares.
    assert record["pool"]["batch_jobs"] > 0
    assert record["pool"]["pipeline"]["used"] == SESSIONS
    # The coordinator batches identically under both planes — the serial
    # leg just runs each batch inline — so the verified-share volume (and
    # hence the charged op log) matches exactly.
    assert record["serial"]["batched_items"] == record["pool"]["batched_items"]


def teardown_module(module):
    if _results:
        _results["environment"] = {
            "cpu_count": os.cpu_count(),
            "pool_workers": POOL_WORKERS,
            "note": (
                "model_speedup compares WorkerClock makespans in Table 3 "
                "reference seconds; wall_clock_s is the real elapsed time "
                "on this host and stays ~flat on single-core runners."
            ),
        }
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
