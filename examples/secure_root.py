#!/usr/bin/env python3
"""Securing the root: the paper's closing recommendation.

"For highly critical parts of the DNS, like root servers or other
servers near the root, our service can provide increased security" (§6) —
and §1 notes that *nobody has yet taken on the responsibility for the
root key*, precisely because it would have to live somewhere.

This example serves the **root zone** from a BFT-replicated service whose
signing key is threshold-shared across seven servers on three continents,
then runs an iterative resolver from that root down a classic delegation
chain — with one root replica corrupted the whole way.

Run:  python examples/secure_root.py
"""

from repro.config import ServiceConfig
from repro.core.faults import CorruptionMode
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.resolver import IterativeResolver, ResolutionError
from repro.dns.server import AuthoritativeServer
from repro.dns.zonefile import parse_zone_text
from repro.sim.machines import paper_setup

ROOT_ZONE = """
$ORIGIN .
$TTL 86400
. IN SOA a.root-servers.net. nstld.verisign-grs.com. ( 2004060100 1800 900 604800 86400 )
. IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
com. IN NS a.gtld-servers.net.
a.gtld-servers.net. IN A 192.5.6.30
org. IN NS b.gtld-servers.net.
b.gtld-servers.net. IN A 192.5.6.31
"""

COM_ZONE = """
$ORIGIN com.
$TTL 86400
@ IN SOA a.gtld-servers.net. admin.com. 1 1800 900 604800 86400
  IN NS a.gtld-servers.net.
example IN NS ns1.example.com.
ns1.example IN A 192.0.2.1
"""

EXAMPLE_ZONE = """
$ORIGIN example.com.
$TTL 3600
@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300
  IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
"""


def main() -> None:
    print("Deploying the ROOT ZONE on 7 replicas across 4 sites,")
    print("root key (2048-bit equivalent) threshold-shared (7,2)...")
    root_service = ReplicatedNameService(
        ServiceConfig(n=7, t=2, signing_protocol="optte"),
        topology=paper_setup(7),
        zone_text=ROOT_ZONE,
    )
    # One root replica is corrupted the entire time.
    root_service.corrupt(1, CorruptionMode.BAD_SHARES)
    root_key = root_service.deployment.zone_key_record
    print(f"  root key tag: {root_key.key_tag()}; replica 1 corrupted\n")

    # Ordinary (unreplicated) servers for com. and example.com.
    classic = {
        Name.from_text("com."): AuthoritativeServer(parse_zone_text(COM_ZONE)),
        Name.from_text("example.com."): AuthoritativeServer(
            parse_zone_text(EXAMPLE_ZONE)
        ),
    }

    def query(zone_origin, message):
        if zone_origin.is_root:
            # Resolve through the replicated root service.
            op = root_service._await_op(
                lambda cb: root_service.client.query(
                    message.questions[0].name, message.questions[0].rtype, cb
                )
            )
            return op.response
        return classic[zone_origin].handle_query(message)

    resolver = IterativeResolver(
        query, trusted_keys={Name.from_text("."): root_key}
    )

    print("Resolving www.example.com. starting from the replicated root:")
    result = resolver.resolve(Name.from_text("www.example.com."), c.TYPE_A)
    for rr in result.answers:
        print(f"  {rr.to_text()}")
    print(f"  referrals followed: {result.referrals_followed} "
          "(root -> com -> example.com)")

    print("\nQuerying the root directly (signed apex data):")
    result = resolver.resolve(Name.from_text("a.root-servers.net."), c.TYPE_A)
    print(f"  {result.answers[0].to_text()}")
    print(f"  verified against the threshold root key: {result.verified}")

    print("\nDynamic update at the root — adding a new TLD, signed online")
    print("by 3-of-7 servers (the root key never exists in one place):")
    op = root_service.add_record("nu.", c.TYPE_NS, 86400, "a.gtld-servers.net.")
    print(f"  rcode: {c.rcode_to_text(op.response.rcode)} "
          f"({op.latency:.2f} s simulated)")
    print(f"  honest root replicas consistent: {root_service.states_consistent()}")
    print(f"  root zone signatures verify: {root_service.verify_all_zones()} SIGs")


if __name__ == "__main__":
    main()
