#!/usr/bin/env python3
"""Quickstart: a Byzantine-fault-tolerant DNS zone in a few lines.

Builds the paper's replicated name service — four authoritative servers,
threshold-shared zone key, atomic broadcast — on the deterministic
simulator, then performs a signed read, a dynamic add, and a delete.

Run:  python examples/quickstart.py
"""

from repro.config import ServiceConfig
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.sim.machines import lan_setup


def main() -> None:
    # n = 4 servers tolerating t = 1 Byzantine corruption, OptTE signing.
    config = ServiceConfig(n=4, t=1, signing_protocol="optte")
    service = ReplicatedNameService(config, topology=lan_setup(4))
    print(f"zone {service.zone_origin.to_text()} served by {config.n} replicas "
          f"(tolerating {config.t} Byzantine)")

    # A DNSSEC read: the client verifies the threshold-produced SIG records.
    op = service.query("www.example.com.", c.TYPE_A)
    print(f"\n$ dig www.example.com A         ({op.latency * 1000:.0f} ms simulated)")
    print(f"  rcode={c.rcode_to_text(op.response.rcode)}  "
          f"signature-verified={op.verified}")
    for rr in op.response.answers:
        print(f"  {rr.to_text()[:100]}")

    # A dynamic update: all four replicas agree on the order, apply it,
    # and jointly sign the new records with the shared zone key.
    op = service.add_record("api.example.com.", c.TYPE_A, 300, "192.0.2.10")
    print(f"\n$ nsupdate add api.example.com  ({op.latency:.2f} s simulated)")
    print(f"  rcode={c.rcode_to_text(op.response.rcode)}")
    print(f"  replica states consistent: {service.states_consistent()}")
    print(f"  all zone signatures valid: {service.verify_all_zones()} SIGs checked")

    # Read it back — freshly signed by the distributed key.
    op = service.query("api.example.com.", c.TYPE_A)
    print(f"\n$ dig api.example.com A         ({op.latency * 1000:.0f} ms simulated)")
    print(f"  signature-verified={op.verified}")

    # And delete it again.
    op = service.delete_name("api.example.com.")
    print(f"\n$ nsupdate delete api.example.com  ({op.latency:.2f} s simulated)")
    op = service.query("api.example.com.", c.TYPE_A)
    print(f"  now: {c.rcode_to_text(op.response.rcode)}")


if __name__ == "__main__":
    main()
