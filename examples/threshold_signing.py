#!/usr/bin/env python3
"""Shoup threshold RSA, step by step — the paper's key-management core.

Walks through dealing an (n, t) zone key, producing signature shares with
correctness proofs, assembling a standard RSA signature, and verifying it
with an ordinary DNSSEC-style verifier that has no idea the key was ever
shared.  Also shows why t shares reveal nothing and how a bit-inverted
share (the paper's corruption) is caught.

Run:  python examples/threshold_signing.py
"""

from repro.crypto.params import demo_threshold_key
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.shoup import SignatureShare
from repro.errors import AssemblyError

MESSAGE = b"www.example.com. 3600 IN A 192.0.2.80"


def main() -> None:
    n, t = 4, 1
    print(f"Dealing a ({n}, {t})-threshold RSA zone key (1024-bit modulus)...")
    public, shares = demo_threshold_key(n, t, 1024)
    print(f"  modulus: {public.modulus.bit_length()} bits, e = {public.exponent}")
    print(f"  any {t + 1} of {n} servers can sign; {t} learn nothing\n")

    print("Each server computes its signature share (with a ZK proof):")
    sig_shares = []
    for share in shares:
        sig_share = share.generate_share_with_proof(MESSAGE)
        ok = public.share_is_valid(MESSAGE, sig_share)
        sig_shares.append(sig_share)
        print(f"  server {share.index}: share value "
              f"{hex(sig_share.value)[2:18]}..., proof valid: {ok}")

    print(f"\nAssembling from servers 2 and 4 (any {t + 1} work):")
    signature = public.assemble(MESSAGE, [sig_shares[1], sig_shares[3]])
    print(f"  signature: {signature.hex()[:48]}... ({len(signature)} bytes)")

    other = public.assemble(MESSAGE, [sig_shares[0], sig_shares[2]])
    print(f"  servers 1 and 3 produce the identical signature: {other == signature}")

    print("\nA vanilla RSA verifier (a DNSSEC client) accepts it:")
    vanilla = RsaPublicKey(modulus=public.modulus, exponent=public.exponent)
    vanilla.verify(MESSAGE, signature)
    print("  standard PKCS#1 v1.5 / SHA-1 verification: OK")

    print(f"\n{t} share(s) alone cannot sign:")
    try:
        public.assemble(MESSAGE, [sig_shares[0]])
    except AssemblyError as exc:
        print(f"  AssemblyError: {exc}")

    print("\nA corrupted server inverts its share's bits (§4.4):")
    width = public.modulus.bit_length()
    bad = SignatureShare(
        index=2,
        value=(sig_shares[1].value ^ ((1 << width) - 1)) % public.modulus,
        proof=sig_shares[1].proof,
    )
    print(f"  share verification catches it: valid = "
          f"{public.share_is_valid(MESSAGE, bad)}")
    garbage = public.assemble(MESSAGE, [bad, sig_shares[3]])
    print(f"  and a signature assembled from it fails: valid = "
          f"{public.signature_is_valid(MESSAGE, garbage)}")

    print("\nThis is exactly how the replicated name service signs SIG")
    print("records during dynamic updates without the zone key ever")
    print("existing at any single server.")


if __name__ == "__main__":
    main()
