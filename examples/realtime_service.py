#!/usr/bin/env python3
"""The same service in real time: asyncio instead of the simulator.

Every protocol in this repository is sans-IO, so the exact replica and
client objects that run on the deterministic simulator also run
concurrently on an asyncio bus with real wall-clock timing and real
crypto costs.  This example serves a zone live, issues concurrent
queries, performs a signed dynamic update, and survives a corrupted
signer — all in a couple of wall-clock seconds.

Run:  python examples/realtime_service.py
"""

import asyncio
import time

from repro.config import ServiceConfig
from repro.core.faults import CorruptionMode
from repro.dns import constants as c
from repro.net.local import AsyncNameService


async def main() -> None:
    service = AsyncNameService(ServiceConfig(n=4, t=1, signing_protocol="optte"))
    print("4-replica service live on the asyncio bus (t=1 Byzantine tolerated)")

    start = time.perf_counter()
    results = await asyncio.gather(
        service.query("www.example.com.", c.TYPE_A),
        service.query("ns1.example.com.", c.TYPE_A),
        service.query("ns2.example.com.", c.TYPE_A),
    )
    elapsed = time.perf_counter() - start
    print(f"\n3 concurrent signed reads in {elapsed * 1000:.1f} ms wall-clock:")
    for op in results:
        answer = op.response.answers[0].to_text() if op.response.answers else "-"
        print(f"  {answer[:60]:<60} verified={op.verified}")

    start = time.perf_counter()
    op = await service.add_record("live.example.com.", c.TYPE_A, 300, "192.0.2.123")
    elapsed = time.perf_counter() - start
    print(f"\nthreshold-signed dynamic update in {elapsed * 1000:.1f} ms wall-clock "
          f"(rcode {c.rcode_to_text(op.response.rcode)})")
    await service.settle()
    print(f"  states consistent: {service.states_consistent()}, "
          f"SIGs verified: {service.verify_all_zones()}")

    service.replicas[2].corrupt(CorruptionMode.BAD_SHARES)
    start = time.perf_counter()
    op = await service.add_record("survivor.example.com.", c.TYPE_A, 300, "192.0.2.7")
    elapsed = time.perf_counter() - start
    print(f"\nupdate with a corrupted signer in {elapsed * 1000:.1f} ms "
          f"(rcode {c.rcode_to_text(op.response.rcode)})")
    await service.settle()
    print(f"  zone still verifies on honest replicas: "
          f"{service.verify_all_zones()} SIGs")


if __name__ == "__main__":
    asyncio.run(main())
