#!/usr/bin/env python3
"""Why replicate with BFT at all?  Classic DNS vs the paper's design.

Conventional DNS replication (§1): a primary holds the zone, secondaries
pull it via zone transfer.  Compromise the primary and — after one
refresh interval — *every* authoritative server serves the attacker's
records.  The paper's replicated service removes that single point of
failure: corrupting up to t of n servers changes nothing.

Run:  python examples/classic_vs_bft.py
"""

from repro.config import ServiceConfig
from repro.core.classic import ClassicZoneService
from repro.core.faults import CorruptionMode
from repro.core.service import DEFAULT_ZONE, ReplicatedNameService
from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import A
from repro.sim.machines import lan_setup


def attack_classic() -> None:
    print("=" * 64)
    print("Classic primary + 3 secondaries (master/slave, AXFR refresh)")
    service = ClassicZoneService(DEFAULT_ZONE, server_count=4)
    response = service.query("www.example.com.", c.TYPE_A, server=2)
    print(f"  before attack, secondary 2 says: "
          f"{response.answers[0].rdata.to_text()}")

    print("  >>> attacker compromises THE PRIMARY ONLY <<<")

    def defacement(zone):
        www = Name.from_text("www.example.com.")
        zone.delete_rrset(www, c.TYPE_A)
        zone.add_rdata(www, c.TYPE_A, 300, A("203.0.113.66"))

    service.primary.compromise(defacement)
    service.run_for(10.0)  # one refresh cycle passes
    for index in range(4):
        response = service.query("www.example.com.", c.TYPE_A, server=index)
        role = "primary " if index == 0 else f"secondary {index}"
        print(f"  after refresh, {role} says: "
              f"{response.answers[0].rdata.to_text()}  <- poisoned")
    print("  one compromise, zone-wide defacement.")


def attack_bft() -> None:
    print("=" * 64)
    print("The paper's service: 4 replicas, t=1, threshold-signed zone")
    service = ReplicatedNameService(
        ServiceConfig(n=4, t=1), topology=lan_setup(4), client_model="full"
    )
    print("  >>> attacker compromises one replica (same budget) <<<")
    service.corrupt(1, CorruptionMode.STALE_READS)
    op = service.query("www.example.com.", c.TYPE_A)
    fresh = [rr.rdata.to_text() for rr in op.response.answers if rr.rtype == c.TYPE_A]
    print(f"  client majority-vote answer: {fresh[0]}  <- still correct")

    op = service.add_record("canary.example.com.", c.TYPE_A, 300, "192.0.2.55")
    print(f"  dynamic update with the corrupted replica present: "
          f"{c.rcode_to_text(op.response.rcode)}")
    print(f"  honest replicas consistent: {service.states_consistent()}")
    print(f"  zone signatures verify: {service.verify_all_zones()} SIGs")
    print("  the attacker would need to corrupt t+1 = 2 servers to matter,")
    print("  and 2 servers to even *see* the zone key (it never exists whole).")


def main() -> None:
    attack_classic()
    attack_bft()


if __name__ == "__main__":
    main()
