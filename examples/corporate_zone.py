#!/usr/bin/env python3
"""The paper's motivating scenario: a multinational corporation's zone.

Figure 1's deployment — a cluster of name servers in Zurich (close to
where most queries arise) plus remote replicas in New York, Austin, and
San Jose — serving a corporate zone with dynamic updates, compared across
the three threshold-signing protocols.

Run:  python examples/corporate_zone.py
"""

from repro.config import ServiceConfig
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.sim.machines import PAPER_SITE_RTTS, paper_setup

CORPORATE_ZONE = """
$ORIGIN corp.example.
$TTL 3600
@      IN SOA ns-zrh1.corp.example. hostmaster.corp.example. ( 2004060100 7200 900 2419200 300 )
       IN NS ns-zrh1
       IN NS ns-zrh2
       IN NS ns-nyc
       IN NS ns-sjc
       IN MX 10 mail-zrh
       IN MX 20 mail-nyc
ns-zrh1 IN A 198.51.100.1
ns-zrh2 IN A 198.51.100.2
ns-nyc  IN A 203.0.113.1
ns-sjc  IN A 203.0.113.65
mail-zrh IN A 198.51.100.25
mail-nyc IN A 203.0.113.25
www     IN A 198.51.100.80
intranet IN A 198.51.100.81
vpn     IN A 198.51.100.82
"""


def main() -> None:
    print("Figure 1 topology (avg round-trip times):")
    for (a, b), rtt in PAPER_SITE_RTTS.items():
        if a != b:
            print(f"  {a:<10} <-> {b:<10} {rtt * 1000:6.1f} ms")

    print("\nServing corp.example from 7 replicas (Zurich x4, NY, Austin, San Jose)")
    print(f"{'protocol':<10}{'read':>9}{'add':>9}{'delete':>9}   (simulated seconds)")
    for protocol in ("basic", "optproof", "optte"):
        service = ReplicatedNameService(
            ServiceConfig(n=7, t=2, signing_protocol=protocol),
            topology=paper_setup(7),
            zone_text=CORPORATE_ZONE,
        )
        read = service.query("www.corp.example.", c.TYPE_A).latency
        # A laptop gets a DHCP lease and registers itself (dynamic DNS):
        _, _, add = service.nsupdate_add(
            "laptop-042.corp.example.", c.TYPE_A, 300, "198.51.100.142"
        )
        _, _, delete = service.nsupdate_delete("laptop-042.corp.example.")
        print(f"{protocol:<10}{read:>9.3f}{add:>9.2f}{delete:>9.2f}")
        assert service.states_consistent()

    print("\nWith OptTE, a dynamic-DNS registration completes in a couple of")
    print("seconds across three continents while the zone key never exists")
    print("in one place — any 3 of the 7 servers sign, no 2 can forge.")


if __name__ == "__main__":
    main()
