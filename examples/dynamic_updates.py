#!/usr/bin/env python3
"""Secure dynamic updates (RFC 2136) against the replicated zone.

Shows the update features the service supports: TSIG-authorized writes
(§3.3 requires every write to carry a transaction signature), RFC 2136
prerequisites (compare-and-swap on DNS data), atomic multi-record
updates, and the automatic re-signing that keeps the zone verifiable.

Run:  python examples/dynamic_updates.py
"""

from repro.config import ServiceConfig
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.dns.message import RR, make_update
from repro.dns.name import Name
from repro.dns.rdata import A, TXT
from repro.sim.machines import lan_setup


def main() -> None:
    service = ReplicatedNameService(
        ServiceConfig(n=4, t=1, require_tsig=True), topology=lan_setup(4)
    )
    origin = service.zone_origin
    host = Name.from_text("db1.example.com.")

    print("1. TSIG-authorized add (the client holds the shared update key):")
    op = service.add_record(host, c.TYPE_A, 300, "192.0.2.30")
    print(f"   rcode: {c.rcode_to_text(op.response.rcode)}")

    print("\n2. An unsigned update is refused:")
    saved_key, service.client.tsig_key = service.client.tsig_key, None
    op = service.add_record("evil.example.com.", c.TYPE_A, 300, "203.0.113.66")
    print(f"   rcode: {c.rcode_to_text(op.response.rcode)}")
    service.client.tsig_key = saved_key

    print("\n3. Prerequisite-guarded update (compare-and-swap):")
    # Move db1 to a new address *only if* it still has the old one.
    update = make_update(origin)
    update.answers.append(  # prerequisite: value-dependent RRset match
        RR(host, c.TYPE_A, c.CLASS_IN, 0, A("192.0.2.30"))
    )
    update.authority.append(RR(host, c.TYPE_A, c.CLASS_ANY, 0, None))  # del RRset
    update.authority.append(RR(host, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.31")))
    op = service._await_op(lambda cb: service.client.send_update(update, cb))
    print(f"   swap 192.0.2.30 -> .31: {c.rcode_to_text(op.response.rcode)}")

    update = make_update(origin)
    update.answers.append(RR(host, c.TYPE_A, c.CLASS_IN, 0, A("192.0.2.30")))
    update.authority.append(RR(host, c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.99")))
    op = service._await_op(lambda cb: service.client.send_update(update, cb))
    print(f"   replaying the same swap:  {c.rcode_to_text(op.response.rcode)} "
          "(prerequisite no longer holds)")

    print("\n4. Atomic multi-record update (all-or-nothing):")
    update = make_update(origin)
    update.authority.append(
        RR(Name.from_text("app.example.com."), c.TYPE_A, c.CLASS_IN, 300, A("192.0.2.40"))
    )
    update.authority.append(
        RR(Name.from_text("app.example.com."), c.TYPE_TXT, c.CLASS_IN, 300,
           TXT([b"v=1 owner=platform-team"]))
    )
    op = service._await_op(lambda cb: service.client.send_update(update, cb))
    print(f"   A + TXT in one update: {c.rcode_to_text(op.response.rcode)}")

    print("\n5. Everything stays signed and consistent:")
    read = service.query("app.example.com.", c.TYPE_A)
    print(f"   read-back verified: {read.verified}")
    print(f"   replica states consistent: {service.states_consistent()}")
    print(f"   total SIG records verified: {service.verify_all_zones()}")
    serial = service.replicas[0].zone.serial
    print(f"   zone serial advanced to: {serial}")


if __name__ == "__main__":
    main()
