#!/usr/bin/env python3
"""Surviving corrupted name servers.

Demonstrates the paper's fault-tolerance claims end to end:

1. a replica sending bit-inverted signature shares (§4.4) cannot prevent
   updates or corrupt the zone;
2. a crashed atomic-broadcast leader triggers the fall-back (Byzantine
   agreement + epoch change) and the service keeps answering;
3. a stale-reading gateway illustrates G1' (an unmodified client can get
   old-but-authentic data) while the full client of §3.3 gets fresh data
   by majority vote (G1).

Run:  python examples/byzantine_faults.py
"""

from repro.config import ServiceConfig
from repro.core.faults import CorruptionMode
from repro.core.service import ReplicatedNameService
from repro.dns import constants as c
from repro.sim.machines import lan_setup


def corrupted_signer() -> None:
    print("=" * 64)
    print("1. Corrupted server inverts its signature shares (Table 2's k=1)")
    service = ReplicatedNameService(
        ServiceConfig(n=4, t=1, signing_protocol="optte"), topology=lan_setup(4)
    )
    service.corrupt(1, CorruptionMode.BAD_SHARES)
    op = service.add_record("victim.example.com.", c.TYPE_A, 300, "192.0.2.66")
    print(f"   update rcode: {c.rcode_to_text(op.response.rcode)} "
          f"({op.latency:.2f} s — slightly slower than fault-free)")
    print(f"   honest replica states consistent: {service.states_consistent()}")
    print(f"   zone signatures all verify:       {service.verify_all_zones()} SIGs")
    bad_sessions = service.replicas[1].fault.corrupted_sessions
    print(f"   corrupted replica poisoned {len(bad_sessions)} signing sessions — "
          "all detected and routed around")


def crashed_leader() -> None:
    print("=" * 64)
    print("2. Crashed broadcast leader: fall-back mode and epoch change")
    service = ReplicatedNameService(
        ServiceConfig(n=4, t=1, abc_timeout=2.0, client_timeout=120.0),
        topology=lan_setup(4),
        gateway=1,  # the client talks to replica 1; replica 0 leads epoch 0
    )
    service.corrupt(0, CorruptionMode.CRASH)
    op = service.query("www.example.com.", c.TYPE_A)
    stats = service.replicas[1].abc.stats
    print(f"   first read: {op.latency:.2f} s "
          f"(includes the {2.0:.0f} s leader-suspicion timeout)")
    print(f"   epoch changes: {stats['epoch_changes']}, "
          f"complaints sent: {stats['complaints_sent']}")
    op = service.query("ns1.example.com.", c.TYPE_A)
    print(f"   next read under the new leader: {op.latency * 1000:.0f} ms — fast again")
    op = service.add_record("post-crash.example.com.", c.TYPE_A, 300, "192.0.2.77")
    print(f"   update still works: {c.rcode_to_text(op.response.rcode)} "
          f"({op.latency:.2f} s)")


def stale_gateway() -> None:
    print("=" * 64)
    print("3. Stale-reading gateway: weak correctness G1' vs full G1")
    # Pragmatic client (unmodified DNS client): gets the gateway's answer.
    pragmatic = ReplicatedNameService(
        ServiceConfig(n=4, t=1), topology=lan_setup(4), verify_signatures=False
    )
    pragmatic.corrupt(0, CorruptionMode.STALE_READS)
    pragmatic.add_record("fresh.example.com.", c.TYPE_A, 300, "192.0.2.50")
    op = pragmatic.query("fresh.example.com.", c.TYPE_A)
    print(f"   pragmatic client sees: {c.rcode_to_text(op.response.rcode)} "
          "(the gateway replays pre-update state: allowed by G1', not fresh)")

    # Full client (§3.3): multicast + majority vote outvotes the liar.
    full = ReplicatedNameService(
        ServiceConfig(n=4, t=1), topology=lan_setup(4), client_model="full"
    )
    full.corrupt(0, CorruptionMode.STALE_READS)
    full.add_record("fresh.example.com.", c.TYPE_A, 300, "192.0.2.50")
    op = full.query("fresh.example.com.", c.TYPE_A)
    answers = [rr.to_text() for rr in op.response.answers if rr.rtype == c.TYPE_A]
    print(f"   full client majority vote sees:   {answers[0] if answers else 'nothing'}")
    print("   -> modified clients achieve G1/G2; unmodified ones get G1'/G2'")


def main() -> None:
    corrupted_signer()
    crashed_leader()
    stale_gateway()


if __name__ == "__main__":
    main()
