"""Exception hierarchy for the secure distributed DNS reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
distinguish library failures from programming errors.  Protocol-level
misbehaviour (a peer sending malformed or unjustified messages) raises
:class:`ProtocolViolation`, which honest nodes treat as evidence of
corruption and never let crash the node.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid system configuration (e.g. n <= 3t, duplicate replica ids)."""


# --------------------------------------------------------------------------
# DNS subsystem
# --------------------------------------------------------------------------


class DnsError(ReproError):
    """Base class for DNS data-model and protocol errors."""


class NameError_(DnsError):
    """Malformed domain name (label too long, name too long, bad escape)."""


class WireFormatError(DnsError):
    """Malformed DNS wire data (truncation, bad pointer, bad rdata)."""


class ZoneError(DnsError):
    """Zone database violation (out-of-zone name, missing SOA, CNAME clash)."""


class ZoneFileError(DnsError):
    """Master-file syntax error."""


class UpdateError(DnsError):
    """Dynamic update failed; carries the RFC 2136 response code."""

    def __init__(self, rcode: int, message: str = "") -> None:
        super().__init__(message or f"update failed with rcode {rcode}")
        self.rcode = rcode


class TsigError(DnsError):
    """Transaction signature verification failed."""


class DnssecError(DnsError):
    """Zone signing or signature verification failure."""


# --------------------------------------------------------------------------
# Cryptography
# --------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyGenerationError(CryptoError):
    """Key generation could not complete (e.g. no safe prime found)."""


class InvalidSignature(CryptoError):
    """A signature (or signature share) failed verification."""


class InvalidShare(CryptoError):
    """A threshold signature share or its correctness proof is invalid."""


class AssemblyError(CryptoError):
    """Threshold signature assembly could not produce a valid signature."""


# --------------------------------------------------------------------------
# Distributed protocols
# --------------------------------------------------------------------------


class BroadcastError(ReproError):
    """Base class for broadcast/agreement protocol errors."""


class ProtocolViolation(BroadcastError):
    """A peer sent a message that violates the protocol.

    Honest nodes log the violating peer and drop the message; this exception
    is raised by validation helpers and caught at the dispatch boundary.
    """

    def __init__(self, sender: int, message: str) -> None:
        super().__init__(f"protocol violation by replica {sender}: {message}")
        self.sender = sender


class ServiceError(ReproError):
    """Replicated name service failure visible to a client."""


class TimeoutError_(ReproError):
    """An operation did not complete within its deadline."""
