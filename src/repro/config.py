"""Service-level configuration.

Mirrors the Wrapper's configuration file (§4.1): the values of ``n`` and
``t``, the identities of all servers, and which threshold-signature
protocol to use — plus the knobs this reproduction adds for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broadcast.abc import DISSEMINATION_MODES
from repro.crypto.executor import ALL_EXECUTORS, EXECUTOR_SERIAL
from repro.crypto.protocols import ALL_PROTOCOLS, PROTOCOL_OPTTE
from repro.errors import ConfigError


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration shared by every replica of one replicated zone."""

    n: int
    t: int
    signing_protocol: str = PROTOCOL_OPTTE
    signed_zone: bool = True
    require_tsig: bool = False
    # §3.4 last paragraph: in rarely-updated zones, reads can skip atomic
    # broadcast entirely.  Ablation A1 flips this.
    reads_via_abc: bool = True
    # Ablation A3 (the rejected Reiter–Birman design): threshold-sign every
    # response so unmodified clients get full G1.
    sign_every_response: bool = False
    # Leader-suspicion timeout of the optimistic atomic broadcast (seconds).
    abc_timeout: float = 30.0
    # Client request timeout before retrying the next server (§3.4).
    client_timeout: float = 60.0
    # Request batching (SINTRA-style payload amortization): a gateway
    # buffers up to ``batch_size`` client payloads (flushing early after
    # ``batch_delay`` seconds) and atomic broadcast orders the whole batch
    # in one sequence slot.  ``batch_size=1`` disables batching and keeps
    # the paper's one-payload-per-instance behaviour.
    batch_size: int = 1
    batch_delay: float = 0.02
    # Signed-answer cache: replicas memoize complete response wires (and,
    # with sign_every_response, assembled threshold signatures) keyed by
    # (qname, qtype, zone serial); entries are invalidated when an update
    # executes and bumps the serial.
    answer_cache: bool = True
    # Crypto execution plane: "serial" keeps every bigint operation inline
    # and deterministic (the simulator's default); "pool" fans share
    # generation, proof checks, subset trials, and RSA authenticator work
    # out to ``crypto_workers`` processes that deserialize key material
    # once at warmup.  Both planes are behaviour-preserving: a run yields
    # identical ABC transcripts and signatures under either.
    crypto_executor: str = EXECUTOR_SERIAL
    crypto_workers: int = 4
    # Session pipelining: the signing coordinator speculatively generates
    # shares (and, on the pool plane, pre-verifies buffered peer shares)
    # for up to this many upcoming signing tasks while the current session
    # assembles.  0 disables pipelining.
    signing_lookahead: int = 2
    # Leader-side re-batching on epoch change: the new leader re-frames
    # the recovery backlog into batches of up to this many payloads per
    # sequence slot.  1 keeps the paper's one-request-per-slot recovery.
    recovery_batch_size: int = 32
    # Write-path fan-out: start every signing session of an update at
    # once (the coordinator multiplexes them; the pool plane overlaps
    # their share generation).  Off by default: the serialized
    # session-at-a-time schedule is what reproduces Table 2's add:delete
    # latency shape, so only the write-throughput experiments flip this.
    parallel_update_signing: bool = False
    # Baseline ablation for the write-path benchmark: derive an update's
    # re-sign work from the whole zone (every RRset) instead of the
    # incremental touched-set.  Measures what incremental re-signing buys.
    resign_whole_zone: bool = False
    # Broadcast-plane dissemination mode (DESIGN.md §5i): "full" ships
    # whole payloads in INITIATE and ORDER frames; "digest" strips ORDER
    # frames down to the payload-derived request id (with a pull fallback
    # for withheld payloads); "erasure" additionally replaces the INITIATE
    # fan-out with per-replica Reed-Solomon fragments so no link out of
    # the gateway carries the whole batch.
    broadcast_mode: str = "digest"
    # Payloads below this many bytes skip erasure framing (fragment +
    # Merkle-proof overhead exceeds the payload) and travel full.
    erasure_min_bytes: int = 256
    # Validating resolver tier (DESIGN.md §5g): bounds on the positive
    # (qname, qtype, serial) answer cache and the NXT denial-proof cache
    # fronting the replicated service.
    resolver_positive_cache: int = 4096
    resolver_negative_cache: int = 2048
    # KeyTrap validation budgets: per-response caps on RSA signature
    # checks and (signature, candidate key) trials during validation.
    # Exhaustion yields SERVFAIL instead of unbounded verify work.
    resolver_max_sig_checks: int = 16
    resolver_max_key_trials: int = 8

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError("need at least one server")
        if self.t < 0:
            raise ConfigError("t cannot be negative")
        if self.n > 1 and self.n <= 3 * self.t:
            raise ConfigError(
                f"Byzantine fault tolerance requires n > 3t (got n={self.n}, "
                f"t={self.t})"
            )
        if self.signing_protocol not in ALL_PROTOCOLS:
            raise ConfigError(
                f"unknown signing protocol {self.signing_protocol!r}; "
                f"choose from {ALL_PROTOCOLS}"
            )
        if self.batch_size < 1:
            raise ConfigError("batch_size must be at least 1")
        if self.batch_size > 1 and self.batch_delay <= 0:
            raise ConfigError("batching requires a positive batch_delay")
        if self.crypto_executor not in ALL_EXECUTORS:
            raise ConfigError(
                f"unknown crypto executor {self.crypto_executor!r}; "
                f"choose from {ALL_EXECUTORS}"
            )
        if self.crypto_workers < 1:
            raise ConfigError("crypto_workers must be at least 1")
        if self.signing_lookahead < 0:
            raise ConfigError("signing_lookahead cannot be negative")
        if self.recovery_batch_size < 1:
            raise ConfigError("recovery_batch_size must be at least 1")
        if self.broadcast_mode not in DISSEMINATION_MODES:
            raise ConfigError(
                f"unknown broadcast_mode {self.broadcast_mode!r}; "
                f"choose from {DISSEMINATION_MODES}"
            )
        if self.erasure_min_bytes < 0:
            raise ConfigError("erasure_min_bytes cannot be negative")
        if self.resolver_positive_cache < 1:
            raise ConfigError("resolver_positive_cache must be at least 1")
        if self.resolver_negative_cache < 1:
            raise ConfigError("resolver_negative_cache must be at least 1")
        if self.resolver_max_sig_checks < 1:
            raise ConfigError("resolver_max_sig_checks must be at least 1")
        if self.resolver_max_key_trials < 1:
            raise ConfigError("resolver_max_key_trials must be at least 1")

    @property
    def quorum(self) -> int:
        """Responses a full-model client needs before majority voting."""
        return self.n - self.t

    @property
    def replicated(self) -> bool:
        return self.n > 1
