"""DNS messages: header, question, and resource record sections.

The same :class:`Message` structure carries queries, responses, and
RFC 2136 UPDATE messages (where the four sections are reinterpreted as
Zone / Prerequisite / Update / Additional).  Messages round-trip through
the compressed wire format byte-for-byte semantically.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import Rdata, decode_rdata
from repro.dns.rrset import RRset
from repro.dns.wire import WireReader, WireWriter
from repro.errors import WireFormatError


@dataclass(frozen=True)
class Question:
    """A question section entry (QNAME, QTYPE, QCLASS)."""

    name: Name
    rtype: int
    rclass: int = c.CLASS_IN

    def to_text(self) -> str:
        return (
            f"{self.name.to_text()} {c.class_to_text(self.rclass)} "
            f"{c.type_to_text(self.rtype)}"
        )


@dataclass(frozen=True)
class RR:
    """A single resource record as carried in a message section.

    Update messages use the class field for semantics (NONE = delete this
    RR, ANY = delete RRset), so sections hold individual RRs rather than
    RRsets.  ``rdata`` is ``None`` for the empty-rdata records RFC 2136
    prerequisites and RRset-deletes use.
    """

    name: Name
    rtype: int
    rclass: int
    ttl: int
    rdata: Rdata | None

    def to_text(self) -> str:
        rdata_text = self.rdata.to_text() if self.rdata is not None else ""
        return (
            f"{self.name.to_text()} {self.ttl} {c.class_to_text(self.rclass)} "
            f"{c.type_to_text(self.rtype)} {rdata_text}".rstrip()
        )


def rrset_to_rrs(rrset: RRset) -> List[RR]:
    return [
        RR(rrset.name, rrset.rtype, rrset.rclass, rrset.ttl, rdata)
        for rdata in rrset
    ]


def rrs_to_rrsets(rrs: List[RR]) -> List[RRset]:
    """Group adjacent-compatible RRs into RRsets (preserving order)."""
    grouped: Dict[Tuple[Name, int, int], List[RR]] = {}
    order: List[Tuple[Name, int, int]] = []
    for rr in rrs:
        key = (rr.name, rr.rtype, rr.rclass)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(rr)
    rrsets: List[RRset] = []
    for key in order:
        members = grouped[key]
        ttl = min(m.ttl for m in members)
        # Empty-rdata RRs (RFC 2136 prerequisites / RRset-deletes) carry no
        # data to group; responses never contain them.
        rdatas = [m.rdata for m in members if m.rdata is not None]
        rrsets.append(RRset(key[0], key[1], ttl, rdatas, key[2]))
    return rrsets


@dataclass
class Message:
    """A DNS message (query, response, or dynamic update)."""

    msg_id: int = 0
    flags: int = 0
    opcode: int = c.OPCODE_QUERY
    rcode: int = c.RCODE_NOERROR
    questions: List[Question] = field(default_factory=list)
    answers: List[RR] = field(default_factory=list)
    authority: List[RR] = field(default_factory=list)
    additional: List[RR] = field(default_factory=list)

    # -- flag helpers -----------------------------------------------------------

    @property
    def is_response(self) -> bool:
        return bool(self.flags & c.FLAG_QR)

    @property
    def is_authoritative(self) -> bool:
        return bool(self.flags & c.FLAG_AA)

    def set_flag(self, flag: int, value: bool = True) -> None:
        if value:
            self.flags |= flag
        else:
            self.flags &= ~flag

    # -- update-section aliases (RFC 2136 nomenclature) ---------------------------

    @property
    def zone(self) -> List[Question]:
        return self.questions

    @property
    def prerequisites(self) -> List[RR]:
        return self.answers

    @property
    def updates(self) -> List[RR]:
        return self.authority

    # -- wire ----------------------------------------------------------------------

    def to_wire(self) -> bytes:
        writer = WireWriter()
        flags_word = (
            (self.flags & 0x87B0)
            | ((self.opcode & 0xF) << 11)
            | (self.rcode & 0xF)
        )
        writer.write_u16(self.msg_id)
        writer.write_u16(flags_word)
        writer.write_u16(len(self.questions))
        writer.write_u16(len(self.answers))
        writer.write_u16(len(self.authority))
        writer.write_u16(len(self.additional))
        for question in self.questions:
            writer.write_name(question.name)
            writer.write_u16(question.rtype)
            writer.write_u16(question.rclass)
        for section in (self.answers, self.authority, self.additional):
            for rr in section:
                writer.write_name(rr.name)
                writer.write_u16(rr.rtype)
                writer.write_u16(rr.rclass)
                writer.write_u32(rr.ttl)
                length_pos = len(writer)
                writer.write_u16(0)
                start = len(writer)
                # Rdata is emitted uncompressed: legal for all types and
                # required for canonical-form comparisons.
                if rr.rdata is not None:
                    writer.write(rr.rdata.to_wire())
                writer.patch_u16(length_pos, len(writer) - start)
        return writer.getvalue()

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        reader = WireReader(data)
        msg_id = reader.read_u16()
        flags_word = reader.read_u16()
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()
        # Every entry consumes at least one byte of wire, so a section
        # count exceeding the bytes left is malformed; rejecting it here
        # keeps the parse loops from being sized by an attacker-chosen
        # header field (KeyTrap-style count inflation).
        if (
            qdcount > reader.remaining
            or ancount > reader.remaining
            or nscount > reader.remaining
            or arcount > reader.remaining
        ):
            raise WireFormatError("section count exceeds message size")
        msg = cls(
            msg_id=msg_id,
            flags=flags_word & 0x87B0,
            opcode=(flags_word >> 11) & 0xF,
            rcode=flags_word & 0xF,
        )
        for _ in range(qdcount):
            name = reader.read_name()
            rtype = reader.read_u16()
            rclass = reader.read_u16()
            msg.questions.append(Question(name, rtype, rclass))
        for section, count in (
            (msg.answers, ancount),
            (msg.authority, nscount),
            (msg.additional, arcount),
        ):
            for _ in range(count):
                name = reader.read_name()
                rtype = reader.read_u16()
                rclass = reader.read_u16()
                ttl = reader.read_u32()
                rdlength = reader.read_u16()
                if reader.remaining < rdlength:
                    raise WireFormatError("rdata overruns message")
                rdata: Rdata | None = None
                if rdlength != 0:
                    rdata = decode_rdata(rtype, reader.data, reader.offset, rdlength)
                reader.offset += rdlength
                section.append(RR(name, rtype, rclass, ttl, rdata))
        return msg

    # -- text (dig-style) --------------------------------------------------------

    def to_text(self) -> str:
        lines = [
            f";; opcode: {c.OPCODE_NAMES.get(self.opcode, self.opcode)}, "
            f"status: {c.rcode_to_text(self.rcode)}, id: {self.msg_id}",
        ]
        flag_names = []
        for flag, label in (
            (c.FLAG_QR, "qr"),
            (c.FLAG_AA, "aa"),
            (c.FLAG_TC, "tc"),
            (c.FLAG_RD, "rd"),
            (c.FLAG_RA, "ra"),
            (c.FLAG_AD, "ad"),
        ):
            if self.flags & flag:
                flag_names.append(label)
        lines.append(f";; flags: {' '.join(flag_names)}")
        if self.questions:
            lines.append(";; QUESTION SECTION:")
            lines.extend(f";{q.to_text()}" for q in self.questions)
        for label, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authority),
            ("ADDITIONAL", self.additional),
        ):
            if section:
                lines.append(f";; {label} SECTION:")
                lines.extend(rr.to_text() for rr in section)
        return "\n".join(lines)

    def copy(self) -> "Message":
        return replace(
            self,
            questions=list(self.questions),
            answers=list(self.answers),
            authority=list(self.authority),
            additional=list(self.additional),
        )


def make_query(
    name: Name, rtype: int, rclass: int = c.CLASS_IN, msg_id: int | None = None
) -> Message:
    """Build a standard query (what ``dig`` sends)."""
    msg = Message(
        msg_id=msg_id if msg_id is not None else secrets.randbelow(0x10000),
        opcode=c.OPCODE_QUERY,
    )
    msg.set_flag(c.FLAG_RD, False)
    msg.questions.append(Question(name, rtype, rclass))
    return msg


def make_response(query: Message, rcode: int = c.RCODE_NOERROR) -> Message:
    """Build a response skeleton echoing id, opcode, and question."""
    response = Message(
        msg_id=query.msg_id,
        opcode=query.opcode,
        rcode=rcode,
        questions=list(query.questions),
    )
    response.set_flag(c.FLAG_QR)
    return response


def make_update(zone_name: Name, msg_id: int | None = None) -> Message:
    """Build an UPDATE message skeleton (what ``nsupdate`` sends)."""
    msg = Message(
        msg_id=msg_id if msg_id is not None else secrets.randbelow(0x10000),
        opcode=c.OPCODE_UPDATE,
    )
    msg.questions.append(Question(zone_name, c.TYPE_SOA, c.CLASS_IN))
    return msg
