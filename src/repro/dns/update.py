"""RFC 2136 dynamic update processing — the update half of our `named`.

Applies an UPDATE message to a zone: zone-section screening, all four
prerequisite forms, and the add / delete-RRset / delete-RR /
delete-all-at-name update semantics, with the apex SOA/NS protections the
RFC mandates.  Returns which owner names changed so the DNSSEC layer knows
what to re-sign (and which NXT-chain entries to fix up).

In the replicated service every replica executes the same update at the
same point in the atomic-broadcast sequence, so this module must be
completely deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.dns import constants as c
from repro.dns.message import Message, RR, make_response
from repro.dns.name import Name
from repro.dns.rdata import SOA
from repro.dns.zone import Zone
from repro.errors import UpdateError, ZoneError

# Meta / DNSSEC-managed types that clients may not update directly.
_PROTECTED_TYPES = (c.TYPE_SIG, c.TYPE_NXT, c.TYPE_TSIG)


@dataclass
class UpdateResult:
    """Outcome of applying one UPDATE message."""

    rcode: int
    changed_names: Set[Name] = field(default_factory=set)
    added_names: Set[Name] = field(default_factory=set)
    deleted_names: Set[Name] = field(default_factory=set)
    serial_bumped: bool = False

    @property
    def ok(self) -> bool:
        return self.rcode == c.RCODE_NOERROR

    @property
    def data_changed(self) -> bool:
        return bool(self.changed_names or self.added_names or self.deleted_names)


class UpdateProcessor:
    """Applies UPDATE messages to a zone (RFC 2136 §3)."""

    def __init__(self, zone: Zone) -> None:
        self.zone = zone

    # -- public API ----------------------------------------------------------

    def apply(self, update: Message) -> UpdateResult:
        """Screen, check prerequisites, and apply the update sections.

        On failure the zone is untouched (mutations are applied to a copy
        and swapped in only on success).
        """
        try:
            self._screen(update)
            self._check_prerequisites(update)
        except UpdateError as exc:
            return UpdateResult(rcode=exc.rcode)

        working = self.zone.copy()
        names_before = set(working.names())
        changed: Set[Name] = set()
        try:
            for rr in update.updates:
                self._apply_one(working, rr, changed)
        except UpdateError as exc:
            return UpdateResult(rcode=exc.rcode)

        names_after = set(working.names())
        added = {n for n in names_after - names_before}
        deleted = {n for n in names_before - names_after}
        changed -= added | deleted

        result = UpdateResult(
            rcode=c.RCODE_NOERROR,
            changed_names=changed,
            added_names=added,
            deleted_names=deleted,
        )
        if result.data_changed:
            working.bump_serial()
            result.serial_bumped = True
        # Swap the mutated copy into place.  The swap bypasses the zone's
        # mutation hooks, so repair the render cache explicitly: drop the
        # touched names, migrate untouched entries to the new serial.
        self.zone._nodes = working._nodes  # noqa: SLF001 — same-module ownership
        if result.data_changed:
            self.zone.render.rekey_for_update(
                changed | added | deleted,
                working.serial,
                soa_name=self.zone.origin,
                soa_type=c.TYPE_SOA,
            )
        return result

    def respond(self, update: Message) -> tuple[Message, UpdateResult]:
        """Apply and build the UPDATE response message."""
        result = self.apply(update)
        response = make_response(update, result.rcode)
        return response, result

    # -- screening (RFC 2136 §3.1) ----------------------------------------------

    def _screen(self, update: Message) -> None:
        if update.opcode != c.OPCODE_UPDATE:
            raise UpdateError(c.RCODE_FORMERR, "not an UPDATE message")
        if len(update.zone) != 1:
            raise UpdateError(c.RCODE_FORMERR, "zone section must have one entry")
        zone_entry = update.zone[0]
        if zone_entry.rtype != c.TYPE_SOA:
            raise UpdateError(c.RCODE_FORMERR, "zone section type must be SOA")
        if zone_entry.name != self.zone.origin:
            raise UpdateError(
                c.RCODE_NOTAUTH,
                f"not authoritative for {zone_entry.name.to_text()}",
            )

    # -- prerequisites (RFC 2136 §3.2) ---------------------------------------------

    def _check_prerequisites(self, update: Message) -> None:
        # Value-dependent prerequisites accumulate into temporary RRsets
        # compared as complete sets (§3.2.3).
        value_dependent: dict[tuple[Name, int], List[RR]] = {}
        for rr in update.prerequisites:
            if rr.ttl != 0:
                raise UpdateError(c.RCODE_FORMERR, "prerequisite TTL must be 0")
            if not self.zone.is_in_zone(rr.name):
                raise UpdateError(c.RCODE_NOTZONE, "prerequisite out of zone")
            if rr.rclass == c.CLASS_ANY:
                if rr.rdata is not None:
                    raise UpdateError(c.RCODE_FORMERR, "ANY prereq with rdata")
                if rr.rtype == c.TYPE_ANY:
                    if not self.zone.contains_name(rr.name):
                        raise UpdateError(c.RCODE_NXDOMAIN, "name not in use")
                elif self.zone.find_rrset(rr.name, rr.rtype) is None:
                    raise UpdateError(c.RCODE_NXRRSET, "RRset does not exist")
            elif rr.rclass == c.CLASS_NONE:
                if rr.rdata is not None:
                    raise UpdateError(c.RCODE_FORMERR, "NONE prereq with rdata")
                if rr.rtype == c.TYPE_ANY:
                    if self.zone.contains_name(rr.name):
                        raise UpdateError(c.RCODE_YXDOMAIN, "name is in use")
                elif self.zone.find_rrset(rr.name, rr.rtype) is not None:
                    raise UpdateError(c.RCODE_YXRRSET, "RRset exists")
            elif rr.rclass == c.CLASS_IN:
                if rr.rdata is None:
                    raise UpdateError(c.RCODE_FORMERR, "IN prereq without rdata")
                value_dependent.setdefault((rr.name, rr.rtype), []).append(rr)
            else:
                raise UpdateError(c.RCODE_FORMERR, "bad prerequisite class")

        for (name, rtype), rrs in value_dependent.items():
            existing = self.zone.find_rrset(name, rtype)
            if existing is None:
                raise UpdateError(c.RCODE_NXRRSET, "RRset does not exist")
            wanted = {rr.rdata for rr in rrs}
            if wanted != set(existing.rdatas):
                raise UpdateError(c.RCODE_NXRRSET, "RRset value mismatch")

    # -- update section (RFC 2136 §3.4) -----------------------------------------------

    def _apply_one(self, zone: Zone, rr: RR, changed: Set[Name]) -> None:
        if not zone.is_in_zone(rr.name):
            raise UpdateError(c.RCODE_NOTZONE, "update out of zone")

        if rr.rclass == c.CLASS_IN:
            self._apply_add(zone, rr, changed)
        elif rr.rclass == c.CLASS_ANY:
            self._apply_delete_rrset(zone, rr, changed)
        elif rr.rclass == c.CLASS_NONE:
            self._apply_delete_rr(zone, rr, changed)
        else:
            raise UpdateError(c.RCODE_FORMERR, "bad update class")

    def _apply_add(self, zone: Zone, rr: RR, changed: Set[Name]) -> None:
        if rr.rdata is None:
            raise UpdateError(c.RCODE_FORMERR, "add without rdata")
        if rr.rtype in _PROTECTED_TYPES:
            raise UpdateError(
                c.RCODE_REFUSED, "SIG/NXT records are server-maintained"
            )
        if rr.rtype == c.TYPE_ANY:
            raise UpdateError(c.RCODE_FORMERR, "cannot add type ANY")
        if rr.rtype == c.TYPE_SOA:
            # §3.4.2.2: SOA add replaces, but only if serial is newer.
            current: Optional[SOA]
            try:
                current = zone.soa
            except ZoneError:
                current = None
            if current is not None and rr.rdata.serial <= current.serial:  # type: ignore[attr-defined]
                return  # silently ignored per the RFC
        try:
            if zone.add_rdata(rr.name, rr.rtype, rr.ttl, rr.rdata):
                changed.add(rr.name)
        except ZoneError as exc:
            # CNAME conflicts are silently ignored per §3.4.2.2.
            if "CNAME" in str(exc):
                return
            raise UpdateError(c.RCODE_SERVFAIL, str(exc)) from exc

    def _apply_delete_rrset(self, zone: Zone, rr: RR, changed: Set[Name]) -> None:
        if rr.rdata is not None or rr.ttl != 0:
            raise UpdateError(c.RCODE_FORMERR, "delete with rdata or TTL")
        if rr.rtype == c.TYPE_ANY:
            # Delete all RRsets at the name; the apex keeps SOA and NS.
            if rr.name == zone.origin:
                if zone.delete_name(
                    rr.name, keep_types=(c.TYPE_SOA, c.TYPE_NS, c.TYPE_KEY)
                ):
                    changed.add(rr.name)
            else:
                if zone.delete_name(rr.name):
                    changed.add(rr.name)
            return
        if rr.name == zone.origin and rr.rtype in (c.TYPE_SOA, c.TYPE_NS):
            return  # §3.4.2.3: apex SOA/NS delete-RRset is ignored
        if zone.delete_rrset(rr.name, rr.rtype):
            changed.add(rr.name)
        # Also drop the covering SIGs for the removed set.
        self._drop_covering_sigs(zone, rr.name, rr.rtype, changed)

    def _apply_delete_rr(self, zone: Zone, rr: RR, changed: Set[Name]) -> None:
        if rr.rdata is None:
            raise UpdateError(c.RCODE_FORMERR, "delete-RR without rdata")
        if rr.ttl != 0:
            raise UpdateError(c.RCODE_FORMERR, "delete-RR TTL must be 0")
        if rr.rtype == c.TYPE_SOA:
            return  # §3.4.2.4: SOA deletes are ignored
        if rr.name == zone.origin and rr.rtype == c.TYPE_NS:
            ns = zone.find_rrset(rr.name, c.TYPE_NS)
            if ns is not None and len(ns) == 1 and rr.rdata in ns:
                return  # never delete the last apex NS
        if zone.delete_rdata(rr.name, rr.rtype, rr.rdata):
            changed.add(rr.name)
            if zone.find_rrset(rr.name, rr.rtype) is None:
                self._drop_covering_sigs(zone, rr.name, rr.rtype, changed)

    @staticmethod
    def _drop_covering_sigs(
        zone: Zone, name: Name, rtype: int, changed: Set[Name]
    ) -> None:
        sigs = zone.find_rrset(name, c.TYPE_SIG)
        if sigs is None:
            return
        keep = [s for s in sigs if s.type_covered != rtype]  # type: ignore[attr-defined]
        if len(keep) == len(sigs):
            return
        zone.delete_rrset(name, c.TYPE_SIG)
        if keep:
            from repro.dns.rrset import RRset

            zone.put_rrset(RRset(name, c.TYPE_SIG, sigs.ttl, keep))
        changed.add(name)
