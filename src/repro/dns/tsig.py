"""Transaction signatures (TSIG, RFC 2845): per-message authentication.

The paper's design requires write requests to be "authorized by a
transaction signature of the client" (§3.3) and assumes client–server
links are authenticated.  This module implements HMAC-based TSIG: a
shared-secret keyring, request signing, and server-side verification.

A TSIG record travels as the last record of the additional section.  The
MAC covers the message (with the TSIG removed and the original message id
restored) plus the TSIG variables, as in RFC 2845 §3.4.
"""

from __future__ import annotations

import hmac
import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dns import constants as c
from repro.dns.message import Message
from repro.dns.name import Name
from repro.errors import TsigError

# Algorithm name used in the TSIG record (we implement HMAC-SHA1;
# SHA-1 matches the paper's hash everywhere else).
HMAC_SHA1 = Name.from_text("hmac-sha1.sig-alg.reg.int.")

_FUDGE_DEFAULT = 300


@dataclass(frozen=True)
class TsigKey:
    """A named shared secret."""

    name: Name
    secret: bytes

    def mac(self, data: bytes) -> bytes:
        return hmac.new(self.secret, data, hashlib.sha1).digest()


class TsigKeyring:
    """Mapping from key names to shared secrets."""

    def __init__(self) -> None:
        self._keys: Dict[Name, TsigKey] = {}

    def add(self, key: TsigKey) -> None:
        self._keys[key.name] = key

    def get(self, name: Name) -> Optional[TsigKey]:
        return self._keys.get(name)

    def __contains__(self, name: Name) -> bool:
        return name in self._keys

    def __len__(self) -> int:
        return len(self._keys)


def _tsig_variables(
    key_name: Name,
    algorithm: Name,
    time_signed: int,
    fudge: int,
    error: int,
    other: bytes,
) -> bytes:
    """The TSIG variable block covered by the MAC (RFC 2845 §3.4.2)."""
    return (
        key_name.canonical_wire()
        + struct.pack(">HI", c.CLASS_ANY, 0)
        + algorithm.canonical_wire()
        + struct.pack(">HIH", (time_signed >> 32) & 0xFFFF, time_signed & 0xFFFFFFFF, fudge)
        + struct.pack(">HH", error, len(other))
        + other
    )


def _tsig_rdata_wire(
    algorithm: Name,
    time_signed: int,
    fudge: int,
    mac: bytes,
    original_id: int,
    error: int,
    other: bytes,
) -> bytes:
    return (
        algorithm.to_wire()
        + struct.pack(
            ">HIH", (time_signed >> 32) & 0xFFFF, time_signed & 0xFFFFFFFF, fudge
        )
        + struct.pack(">H", len(mac))
        + mac
        + struct.pack(">HHH", original_id, error, len(other))
        + other
    )


@dataclass(frozen=True)
class TsigData:
    """Parsed TSIG record contents."""

    key_name: Name
    algorithm: Name
    time_signed: int
    fudge: int
    mac: bytes
    original_id: int
    error: int
    other: bytes


def _parse_tsig_rdata(key_name: Name, wire: bytes) -> TsigData:
    algorithm, offset = Name.from_wire(wire, 0)
    if offset + 10 > len(wire):
        raise TsigError("truncated TSIG rdata")
    high, low, fudge = struct.unpack_from(">HIH", wire, offset)
    offset += 8
    (mac_len,) = struct.unpack_from(">H", wire, offset)
    offset += 2
    if offset + mac_len + 6 > len(wire):
        raise TsigError("truncated TSIG MAC")
    mac = wire[offset : offset + mac_len]
    offset += mac_len
    original_id, error, other_len = struct.unpack_from(">HHH", wire, offset)
    offset += 6
    other = wire[offset : offset + other_len]
    return TsigData(
        key_name=key_name,
        algorithm=algorithm,
        time_signed=(high << 32) | low,
        fudge=fudge,
        mac=mac,
        original_id=original_id,
        error=error,
        other=other,
    )


def sign_message(
    message: Message,
    key: TsigKey,
    time_signed: int,
    fudge: int = _FUDGE_DEFAULT,
    request_mac: bytes = b"",
) -> bytes:
    """Serialize ``message`` and append a TSIG record; returns the wire form.

    ``request_mac`` is the MAC of the request when signing a response
    (RFC 2845 §3.4.1 chains response MACs to the request).
    """
    base_wire = message.to_wire()
    to_mac = b""
    if request_mac:
        to_mac += struct.pack(">H", len(request_mac)) + request_mac
    to_mac += base_wire
    to_mac += _tsig_variables(key.name, HMAC_SHA1, time_signed, fudge, 0, b"")
    mac = key.mac(to_mac)
    rdata_wire = _tsig_rdata_wire(
        HMAC_SHA1, time_signed, fudge, mac, message.msg_id, 0, b""
    )
    # Append the TSIG RR by hand: additional-section count += 1.
    out = bytearray(base_wire)
    arcount = struct.unpack_from(">H", out, 10)[0]
    struct.pack_into(">H", out, 10, arcount + 1)
    out += key.name.to_wire()
    out += struct.pack(">HHI", c.TYPE_TSIG, c.CLASS_ANY, 0)
    out += struct.pack(">H", len(rdata_wire))
    out += rdata_wire
    return bytes(out)


def split_tsig(wire: bytes) -> Tuple[bytes, Optional[TsigData]]:
    """Separate a message's base wire form from a trailing TSIG record.

    Returns ``(base_wire, tsig)`` where ``base_wire`` has the additional
    count decremented and ``tsig`` is ``None`` if the message is unsigned.
    """
    message = Message.from_wire(wire)
    # Cheap check first: look for a TSIG among the decoded additionals.
    # (Our decoder represents TSIG rdata as GenericRdata bytes.)
    if not message.additional or message.additional[-1].rtype != c.TYPE_TSIG:
        return wire, None
    # Re-scan the wire to find where the last record begins.
    offset = _skip_to_last_record(wire)
    tsig_name, cursor = Name.from_wire(wire, offset)
    rtype, rclass, ttl = struct.unpack_from(">HHI", wire, cursor)
    cursor += 8
    (rdlength,) = struct.unpack_from(">H", wire, cursor)
    cursor += 2
    if rtype != c.TYPE_TSIG:
        return wire, None
    tsig = _parse_tsig_rdata(tsig_name, wire[cursor : cursor + rdlength])
    base = bytearray(wire[:offset])
    arcount = struct.unpack_from(">H", base, 10)[0]
    struct.pack_into(">H", base, 10, arcount - 1)
    # Restore the original message id (RFC 2845 §3.4.1).
    struct.pack_into(">H", base, 0, tsig.original_id)
    return bytes(base), tsig


def _skip_to_last_record(wire: bytes) -> int:
    """Offset of the final record in the message (the TSIG candidate)."""
    qdcount, ancount, nscount, arcount = struct.unpack_from(">HHHH", wire, 4)
    offset = 12
    for _ in range(qdcount):
        _, offset = Name.from_wire(wire, offset)
        offset += 4
    total_rrs = ancount + nscount + arcount
    last_start = offset
    for _ in range(total_rrs):
        last_start = offset
        _, offset = Name.from_wire(wire, offset)
        offset += 8
        (rdlength,) = struct.unpack_from(">H", wire, offset)
        offset += 2 + rdlength
    return last_start


def verify_message(
    wire: bytes,
    keyring: TsigKeyring,
    now: Optional[int] = None,
    request_mac: bytes = b"",
) -> Tuple[Message, TsigData]:
    """Verify a signed message; returns ``(message, tsig)`` or raises.

    ``now`` enables the freshness window check (time_signed ± fudge);
    pass ``None`` to skip it (the deterministic simulator supplies its
    own notion of time).
    """
    base_wire, tsig = split_tsig(wire)
    if tsig is None:
        raise TsigError("message carries no TSIG record")
    key = keyring.get(tsig.key_name)
    if key is None:
        raise TsigError(f"unknown TSIG key {tsig.key_name.to_text()}")
    # Algorithm *name* comparison — not key material, no timing oracle.
    # repro-lint: disable=C301
    if tsig.algorithm != HMAC_SHA1:
        raise TsigError(f"unsupported TSIG algorithm {tsig.algorithm.to_text()}")
    to_mac = b""
    if request_mac:
        to_mac += struct.pack(">H", len(request_mac)) + request_mac
    to_mac += base_wire
    to_mac += _tsig_variables(
        tsig.key_name, tsig.algorithm, tsig.time_signed, tsig.fudge, tsig.error, tsig.other
    )
    expected = key.mac(to_mac)
    if not hmac.compare_digest(expected, tsig.mac):
        raise TsigError("TSIG MAC mismatch")
    if now is not None and abs(now - tsig.time_signed) > tsig.fudge:
        raise TsigError("TSIG time outside fudge window")
    return Message.from_wire(base_wire), tsig
