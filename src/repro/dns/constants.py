"""DNS protocol constants (RFC 1035, 2136, 2535).

Numeric values match the IANA registries so wire messages produced here
are byte-compatible with real DNS software.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Resource record types
# --------------------------------------------------------------------------

TYPE_A = 1
TYPE_NS = 2
TYPE_CNAME = 5
TYPE_SOA = 6
TYPE_PTR = 12
TYPE_MX = 15
TYPE_TXT = 16
TYPE_KEY = 25     # RFC 2535 zone key record (predecessor of DNSKEY)
TYPE_SIG = 24     # RFC 2535 signature record (predecessor of RRSIG)
TYPE_AAAA = 28
TYPE_NXT = 30     # RFC 2535 authenticated denial (predecessor of NSEC)
TYPE_TSIG = 250   # RFC 2845 transaction signature (meta-RR)
TYPE_ANY = 255    # QTYPE only

TYPE_NAMES = {
    TYPE_A: "A",
    TYPE_NS: "NS",
    TYPE_CNAME: "CNAME",
    TYPE_SOA: "SOA",
    TYPE_PTR: "PTR",
    TYPE_MX: "MX",
    TYPE_TXT: "TXT",
    TYPE_KEY: "KEY",
    TYPE_SIG: "SIG",
    TYPE_AAAA: "AAAA",
    TYPE_NXT: "NXT",
    TYPE_TSIG: "TSIG",
    TYPE_ANY: "ANY",
}

TYPE_VALUES = {name: value for value, name in TYPE_NAMES.items()}


def type_to_text(rtype: int) -> str:
    return TYPE_NAMES.get(rtype, f"TYPE{rtype}")


def type_from_text(text: str) -> int:
    text = text.upper()
    if text in TYPE_VALUES:
        return TYPE_VALUES[text]
    if text.startswith("TYPE") and text[4:].isdigit():
        return int(text[4:])
    raise ValueError(f"unknown RR type {text!r}")


# --------------------------------------------------------------------------
# Classes
# --------------------------------------------------------------------------

CLASS_IN = 1
CLASS_NONE = 254  # RFC 2136: delete specific RR
CLASS_ANY = 255   # RFC 2136: delete RRset / prerequisite wildcards

CLASS_NAMES = {CLASS_IN: "IN", CLASS_NONE: "NONE", CLASS_ANY: "ANY"}
CLASS_VALUES = {name: value for value, name in CLASS_NAMES.items()}


def class_to_text(rclass: int) -> str:
    return CLASS_NAMES.get(rclass, f"CLASS{rclass}")


def class_from_text(text: str) -> int:
    text = text.upper()
    if text in CLASS_VALUES:
        return CLASS_VALUES[text]
    if text.startswith("CLASS") and text[5:].isdigit():
        return int(text[5:])
    raise ValueError(f"unknown class {text!r}")


# --------------------------------------------------------------------------
# Opcodes (RFC 1035 §4.1.1, RFC 2136 §1)
# --------------------------------------------------------------------------

OPCODE_QUERY = 0
OPCODE_UPDATE = 5

OPCODE_NAMES = {OPCODE_QUERY: "QUERY", OPCODE_UPDATE: "UPDATE"}

# --------------------------------------------------------------------------
# Response codes (RFC 1035 §4.1.1, RFC 2136 §2.2)
# --------------------------------------------------------------------------

RCODE_NOERROR = 0
RCODE_FORMERR = 1
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3
RCODE_NOTIMP = 4
RCODE_REFUSED = 5
RCODE_YXDOMAIN = 6
RCODE_YXRRSET = 7
RCODE_NXRRSET = 8
RCODE_NOTAUTH = 9
RCODE_NOTZONE = 10

RCODE_NAMES = {
    RCODE_NOERROR: "NOERROR",
    RCODE_FORMERR: "FORMERR",
    RCODE_SERVFAIL: "SERVFAIL",
    RCODE_NXDOMAIN: "NXDOMAIN",
    RCODE_NOTIMP: "NOTIMP",
    RCODE_REFUSED: "REFUSED",
    RCODE_YXDOMAIN: "YXDOMAIN",
    RCODE_YXRRSET: "YXRRSET",
    RCODE_NXRRSET: "NXRRSET",
    RCODE_NOTAUTH: "NOTAUTH",
    RCODE_NOTZONE: "NOTZONE",
}


def rcode_to_text(rcode: int) -> str:
    return RCODE_NAMES.get(rcode, f"RCODE{rcode}")


# --------------------------------------------------------------------------
# Header flag bits (within the 16-bit flags word, RFC 1035 §4.1.1)
# --------------------------------------------------------------------------

FLAG_QR = 0x8000  # response
FLAG_AA = 0x0400  # authoritative answer
FLAG_TC = 0x0200  # truncated
FLAG_RD = 0x0100  # recursion desired
FLAG_RA = 0x0080  # recursion available
FLAG_AD = 0x0020  # authentic data (DNSSEC)
FLAG_CD = 0x0010  # checking disabled (DNSSEC)

# --------------------------------------------------------------------------
# DNSSEC signature algorithm numbers (RFC 2535 §3.2)
# --------------------------------------------------------------------------

ALG_RSASHA1 = 5   # RSA/SHA-1, the algorithm the paper's prototype uses

# Limits (RFC 1035 §2.3.4)
MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
MAX_UDP_SIZE = 512
