"""An iterative (stub) resolver over authoritative servers.

The paper's introduction describes how a client's nearby name server
"retrieves the data in a series of queries to authoritative servers along
the path from the root node to the target name."  This module implements
that machinery over in-memory authoritative servers: starting from the
root zone, it follows delegation referrals downward, chases CNAMEs, and
optionally verifies zone signatures of the answering zone — which is what
lets a resolver detect a forged answer from a replicated zone's corrupted
replica (the end-to-end property DNSSEC zone signing buys, §2).

The resolver is deliberately transport-agnostic: it queries through a
``lookup`` callable mapping a zone origin to an
:class:`~repro.dns.server.AuthoritativeServer`-compatible object, so it
works over plain in-memory zones, over the simulated replicated service,
or in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.message import Message, make_query, rrs_to_rrsets
from repro.dns.name import Name, root_name
from repro.dns.rdata import KEY, SIG
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.errors import DnsError, DnssecError


class ResolutionError(DnsError):
    """Resolution failed (no servers, referral loop, depth exceeded)."""


@dataclass
class ResolutionResult:
    """Outcome of one iterative resolution."""

    rcode: int
    answers: List = field(default_factory=list)     # RR list
    zone_origin: Optional[Name] = None              # answering zone
    referrals_followed: int = 0
    cnames_followed: int = 0
    verified: bool = False

    @property
    def ok(self) -> bool:
        return self.rcode == c.RCODE_NOERROR and bool(self.answers)


QueryFn = Callable[[Name, Message], Message]


class IterativeResolver:
    """Walks the delegation tree from the root to the target name."""

    MAX_REFERRALS = 16
    MAX_CNAMES = 8

    def __init__(
        self,
        query: QueryFn,
        root: Name | None = None,
        trusted_keys: Optional[Dict[Name, KEY]] = None,
    ) -> None:
        """``query(zone_origin, message)`` sends a query to the zone's
        authoritative service and returns the response.  ``trusted_keys``
        maps zone origins to their trusted zone keys (statically
        configured, as the paper assumes clients know pk_zone)."""
        self._query = query
        self._root = root if root is not None else root_name()
        self._trusted_keys = dict(trusted_keys or {})

    def resolve(self, name: Name, rtype: int) -> ResolutionResult:
        result = ResolutionResult(rcode=c.RCODE_SERVFAIL)
        current_zone = self._root
        target = name
        for _ in range(self.MAX_REFERRALS):
            response = self._query(current_zone, make_query(target, rtype))
            if response.rcode not in (c.RCODE_NOERROR,) and not response.answers:
                result.rcode = response.rcode
                result.zone_origin = current_zone
                return result

            if response.answers:
                return self._finish(result, response, current_zone, target, rtype)

            referral = self._referral_target(response)
            if referral is None:
                # NODATA.
                result.rcode = response.rcode
                result.zone_origin = current_zone
                return result
            if not referral.is_subdomain_of(current_zone) or referral == current_zone:
                raise ResolutionError(
                    f"bogus referral from {current_zone.to_text()} to "
                    f"{referral.to_text()}"
                )
            current_zone = referral
            result.referrals_followed += 1
        raise ResolutionError(f"referral limit exceeded resolving {name.to_text()}")

    # -- helpers ------------------------------------------------------------

    def _referral_target(self, response: Message) -> Optional[Name]:
        for rr in response.authority:
            if rr.rtype == c.TYPE_NS:
                return rr.name
        return None

    def _finish(
        self,
        result: ResolutionResult,
        response: Message,
        zone_origin: Name,
        target: Name,
        rtype: int,
    ) -> ResolutionResult:
        result.rcode = response.rcode
        result.zone_origin = zone_origin
        result.answers.extend(
            rr for rr in response.answers if rr.rtype != c.TYPE_SIG
        )
        result.verified = self._verify(response, zone_origin)

        # Chase a CNAME whose target we have not answered yet.
        final_types = {rr.rtype for rr in result.answers}
        if (
            rtype != c.TYPE_CNAME
            and rtype not in final_types
            and c.TYPE_CNAME in final_types
        ):
            cname = next(
                rr for rr in result.answers if rr.rtype == c.TYPE_CNAME
            )
            if result.cnames_followed >= self.MAX_CNAMES:
                raise ResolutionError("CNAME chain too long")
            chased = self.resolve(cname.rdata.target, rtype)  # type: ignore[union-attr]
            result.answers.extend(chased.answers)
            result.cnames_followed += 1 + chased.cnames_followed
            result.referrals_followed += chased.referrals_followed
            result.verified = result.verified and chased.verified
            result.rcode = chased.rcode
        return result

    def _verify(self, response: Message, zone_origin: Name) -> bool:
        """Verify SIGs over the answer RRsets with the zone's trusted key."""
        key = self._trusted_keys.get(zone_origin)
        if key is None:
            return False
        rrsets = rrs_to_rrsets(response.answers)
        data_sets = [r for r in rrsets if r.rtype != c.TYPE_SIG]
        sigs = {
            (rrset.name, rdata.type_covered): rdata
            for rrset in rrsets
            if rrset.rtype == c.TYPE_SIG
            for rdata in rrset
            if isinstance(rdata, SIG)
        }
        if not data_sets:
            return False
        for rrset in data_sets:
            sig = sigs.get((rrset.name, rrset.rtype))
            if sig is None:
                return False
            try:
                dnssec.verify_rrset(rrset, sig, key)
            except DnssecError:
                return False
        return True


def build_in_memory_tree(zones: List[Zone]) -> QueryFn:
    """A ``query`` function over a set of in-memory zones.

    Each zone is served by a plain :class:`AuthoritativeServer`; the
    resolver's referrals select which zone a query goes to.
    """
    servers = {zone.origin: AuthoritativeServer(zone) for zone in zones}

    def query(zone_origin: Name, message: Message) -> Message:
        server = servers.get(zone_origin)
        if server is None:
            raise ResolutionError(f"no server for zone {zone_origin.to_text()}")
        return server.handle_query(message)

    return query
