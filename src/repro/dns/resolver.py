"""An iterative (stub) resolver over authoritative servers.

The paper's introduction describes how a client's nearby name server
"retrieves the data in a series of queries to authoritative servers along
the path from the root node to the target name."  This module implements
that machinery over in-memory authoritative servers: starting from the
root zone, it follows delegation referrals downward, chases CNAMEs, and
optionally verifies zone signatures of the answering zone — which is what
lets a resolver detect a forged answer from a replicated zone's corrupted
replica (the end-to-end property DNSSEC zone signing buys, §2).

Two hardening layers sit on top of the basic walk (DESIGN.md §5g):

* **Validation budgets** — ``_verify`` charges every RSA signature check
  and every candidate-key trial against a per-response
  :class:`ValidationBudget`.  An adversarial zone stuffed with colliding
  key tags and garbage SIGs (the KeyTrap attacks) exhausts the budget
  after a bounded amount of work and the response is refused with
  SERVFAIL instead of grinding through quadratically many verifies.
* **:class:`CachingResolver`** — a validating cache tier that serves
  repeat positive answers from a bounded (qname, qtype, serial) cache
  and *synthesizes* NXDOMAIN/NODATA from cached NXT denial proofs
  (RFC 8198 aggressive use), so NXDOMAIN-heavy read traffic never
  reaches the replicated authoritative service.

The resolver is deliberately transport-agnostic: it queries through a
``lookup`` callable mapping a zone origin to an
:class:`~repro.dns.server.AuthoritativeServer`-compatible object, so it
works over plain in-memory zones, over the simulated replicated service,
or in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.message import RR, Message, make_query, make_response, rrs_to_rrsets
from repro.dns.name import Name, root_name
from repro.dns.negcache import (
    CachedAnswer,
    NxtProof,
    NxtProofCache,
    PositiveAnswerCache,
)
from repro.dns.rdata import KEY, NXT, SIG, SOA
from repro.dns.rrset import RRset
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.errors import DnsError, DnssecError

if TYPE_CHECKING:
    from repro.config import ServiceConfig


class ResolutionError(DnsError):
    """Resolution failed (no servers, referral loop, depth exceeded)."""


@dataclass(frozen=True)
class ValidationBudget:
    """KeyTrap caps: the most validation work one response may cost.

    ``max_sig_checks`` bounds actual RSA verifications; ``max_key_trials``
    bounds (signature, candidate key) pairings examined.  Both are per
    response, so a colliding-tag zone costs O(budget), not O(sigs × keys).
    """

    max_sig_checks: int = 16
    max_key_trials: int = 8

    def __post_init__(self) -> None:
        if self.max_sig_checks < 1:
            raise ValueError("max_sig_checks must be >= 1")
        if self.max_key_trials < 1:
            raise ValueError("max_key_trials must be >= 1")


DEFAULT_BUDGET = ValidationBudget()


@dataclass
class ResolutionResult:
    """Outcome of one iterative resolution."""

    rcode: int
    answers: List[RR] = field(default_factory=list)
    zone_origin: Optional[Name] = None              # answering zone
    referrals_followed: int = 0
    cnames_followed: int = 0
    verified: bool = False
    sig_checks: int = 0                             # RSA verifies spent
    key_trials: int = 0                             # candidate keys tried
    budget_exhausted: bool = False
    from_cache: bool = False                        # served by the cache tier

    @property
    def ok(self) -> bool:
        return self.rcode == c.RCODE_NOERROR and bool(self.answers)


QueryFn = Callable[[Name, Message], Message]
TrustedKeySpec = Dict[Name, Union[KEY, Sequence[KEY]]]


def _normalize_trusted_keys(
    trusted_keys: Optional[TrustedKeySpec],
) -> Dict[Name, Tuple[KEY, ...]]:
    normalized: Dict[Name, Tuple[KEY, ...]] = {}
    for origin, keys in (trusted_keys or {}).items():
        if isinstance(keys, KEY):
            normalized[origin] = (keys,)
        else:
            normalized[origin] = tuple(keys)
    return normalized


class IterativeResolver:
    """Walks the delegation tree from the root to the target name."""

    MAX_REFERRALS = 16
    MAX_CNAMES = 8

    def __init__(
        self,
        query: QueryFn,
        root: Name | None = None,
        trusted_keys: Optional[TrustedKeySpec] = None,
        budget: ValidationBudget = DEFAULT_BUDGET,
    ) -> None:
        """``query(zone_origin, message)`` sends a query to the zone's
        authoritative service and returns the response.  ``trusted_keys``
        maps zone origins to their trusted zone keys (statically
        configured, as the paper assumes clients know pk_zone); each
        origin may list several keys to model rollovers — and KeyTrap
        key-collision attacks."""
        self._query = query
        self._root = root if root is not None else root_name()
        self._trusted_keys = _normalize_trusted_keys(trusted_keys)
        self._budget = budget

    @property
    def budget(self) -> ValidationBudget:
        return self._budget

    def resolve(self, name: Name, rtype: int) -> ResolutionResult:
        result = ResolutionResult(rcode=c.RCODE_SERVFAIL)
        current_zone = self._root
        target = name
        for _ in range(self.MAX_REFERRALS):
            response = self._query(current_zone, make_query(target, rtype))
            if response.rcode not in (c.RCODE_NOERROR,) and not response.answers:
                result.rcode = response.rcode
                result.zone_origin = current_zone
                return result

            if response.answers:
                return self._finish(result, response, current_zone, target, rtype)

            referral = self._referral_target(response)
            if referral is None:
                # NODATA.
                result.rcode = response.rcode
                result.zone_origin = current_zone
                return result
            if not referral.is_subdomain_of(current_zone) or referral == current_zone:
                raise ResolutionError(
                    f"bogus referral from {current_zone.to_text()} to "
                    f"{referral.to_text()}"
                )
            current_zone = referral
            result.referrals_followed += 1
        raise ResolutionError(f"referral limit exceeded resolving {name.to_text()}")

    # -- helpers ------------------------------------------------------------

    def _referral_target(self, response: Message) -> Optional[Name]:
        for rr in response.authority:
            if rr.rtype == c.TYPE_NS:
                return rr.name
        return None

    def _finish(
        self,
        result: ResolutionResult,
        response: Message,
        zone_origin: Name,
        target: Name,
        rtype: int,
    ) -> ResolutionResult:
        result.rcode = response.rcode
        result.zone_origin = zone_origin
        result.answers.extend(
            rr for rr in response.answers if rr.rtype != c.TYPE_SIG
        )
        result.verified = self._verify(response, zone_origin, result)
        if result.budget_exhausted:
            # KeyTrap refusal: the response demanded more validation work
            # than the budget allows, so treat it as unusable rather than
            # spending unbounded CPU deciding whether it is genuine.
            result.rcode = c.RCODE_SERVFAIL
            result.answers.clear()
            result.verified = False
            return result

        # Chase a CNAME whose target we have not answered yet.
        final_types = {rr.rtype for rr in result.answers}
        if (
            rtype != c.TYPE_CNAME
            and rtype not in final_types
            and c.TYPE_CNAME in final_types
        ):
            cname = next(
                rr for rr in result.answers if rr.rtype == c.TYPE_CNAME
            )
            if result.cnames_followed >= self.MAX_CNAMES:
                raise ResolutionError("CNAME chain too long")
            chased = self.resolve(
                cname.rdata.target, rtype  # type: ignore[attr-defined, union-attr]
            )
            result.answers.extend(chased.answers)
            result.cnames_followed += 1 + chased.cnames_followed
            result.referrals_followed += chased.referrals_followed
            result.sig_checks += chased.sig_checks
            result.key_trials += chased.key_trials
            result.budget_exhausted = (
                result.budget_exhausted or chased.budget_exhausted
            )
            result.verified = result.verified and chased.verified
            result.rcode = chased.rcode
        return result

    def _verify(
        self,
        response: Message,
        zone_origin: Name,
        result: ResolutionResult,
    ) -> bool:
        """Verify SIGs over the answer RRsets with the zone's trusted keys.

        Work is charged against the resolver's :class:`ValidationBudget`:
        exceeding either cap sets ``result.budget_exhausted`` and fails
        verification immediately.
        """
        keys = self._trusted_keys.get(zone_origin)
        if not keys:
            return False
        rrsets = rrs_to_rrsets(response.answers)
        data_sets = [r for r in rrsets if r.rtype != c.TYPE_SIG]
        sigs: Dict[Tuple[Name, int], List[SIG]] = {}
        for rrset in rrsets:
            if rrset.rtype != c.TYPE_SIG:
                continue
            for rdata in rrset:
                if isinstance(rdata, SIG):
                    sigs.setdefault((rrset.name, rdata.type_covered), []).append(
                        rdata
                    )
        if not data_sets:
            return False
        for rrset in data_sets:
            covering = sigs.get((rrset.name, rrset.rtype))
            if not covering:
                return False
            if not self._verify_one(rrset, covering, keys, result):
                return False
        return True

    def _verify_one(
        self,
        rrset: RRset,
        covering: Sequence[SIG],
        keys: Sequence[KEY],
        result: ResolutionResult,
    ) -> bool:
        """Try each (SIG, candidate key) pairing within the budget."""
        for sig in covering:
            for key in keys:
                if key.algorithm != sig.algorithm or key.key_tag() != sig.key_tag:
                    continue
                if result.key_trials >= self._budget.max_key_trials:
                    result.budget_exhausted = True
                    return False
                result.key_trials += 1
                if result.sig_checks >= self._budget.max_sig_checks:
                    result.budget_exhausted = True
                    return False
                result.sig_checks += 1
                try:
                    dnssec.verify_rrset(rrset, sig, key)
                    return True
                except DnssecError:
                    continue
        return False


class CachingResolver(IterativeResolver):
    """A validating cache tier in front of the authoritative service.

    Positive answers are cached per ``(qname, qtype, serial)``; NXT
    denial proofs observed in authoritative negative responses are
    cached per covering interval and replayed — byte for byte — to
    synthesize NXDOMAIN and NODATA for any name the interval covers
    (RFC 8198).  Zone serials are tracked from every SOA that passes
    through; a serial bump invalidates both caches for that origin.
    """

    #: Bound on the per-origin serial map — origins come from the
    #: configured trusted-key set plus observed zones, not attacker
    #: input, but the bound keeps the structure audit-clean.
    MAX_TRACKED_ORIGINS = 256

    def __init__(
        self,
        query: QueryFn,
        root: Name | None = None,
        trusted_keys: Optional[TrustedKeySpec] = None,
        budget: ValidationBudget = DEFAULT_BUDGET,
        positive_cache: Optional[PositiveAnswerCache] = None,
        negative_cache: Optional[NxtProofCache] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(self._observed_query, root, trusted_keys, budget)
        self._upstream = query
        # Explicit None checks: an empty cache is falsy via __len__, so
        # ``or`` would silently discard a caller-supplied (sized) cache.
        # The annotations key the taint analyzer's annotated-attribute
        # call resolution.
        self._positive: PositiveAnswerCache = (
            positive_cache if positive_cache is not None else PositiveAnswerCache()
        )
        self._negative: NxtProofCache = (
            negative_cache if negative_cache is not None else NxtProofCache()
        )
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._serials: Dict[Name, int] = {}
        self.stats: Dict[str, int] = {
            "queries": 0,
            "authoritative_queries": 0,
            "positive_hits": 0,
            "synthesized_nxdomain": 0,
            "synthesized_nodata": 0,
            "proofs_cached": 0,
            "serial_bumps": 0,
            "rejected_proofs": 0,
        }

    @classmethod
    def from_config(
        cls,
        query: QueryFn,
        config: "ServiceConfig",
        root: Name | None = None,
        trusted_keys: Optional[TrustedKeySpec] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> "CachingResolver":
        """Build a resolver tier sized by ``ServiceConfig`` knobs."""
        return cls(
            query,
            root=root,
            trusted_keys=trusted_keys,
            budget=ValidationBudget(
                max_sig_checks=config.resolver_max_sig_checks,
                max_key_trials=config.resolver_max_key_trials,
            ),
            positive_cache=PositiveAnswerCache(config.resolver_positive_cache),
            negative_cache=NxtProofCache(config.resolver_negative_cache),
            clock=clock,
        )

    @property
    def positive_cache(self) -> PositiveAnswerCache:
        return self._positive

    @property
    def negative_cache(self) -> NxtProofCache:
        return self._negative

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        return {
            "resolver": dict(self.stats),
            "positive": dict(self._positive.stats),
            "negative": dict(self._negative.stats),
        }

    # -- resolution ---------------------------------------------------------

    def resolve(self, name: Name, rtype: int) -> ResolutionResult:
        self.stats["queries"] += 1
        now = self._clock()
        origin = self._best_origin(name)
        if origin is not None:
            serial = self._serials.get(origin)
            if serial is not None:
                hit = self._positive.lookup(name, rtype, serial, now)
                if hit is not None:
                    self.stats["positive_hits"] += 1
                    return self._result_from_positive(hit, origin)
                denial = self._negative.lookup(origin, serial, name, rtype, now)
                if denial is not None:
                    kind, proof = denial
                    self.stats[f"synthesized_{kind}"] += 1
                    return self._result_from_proof(kind, proof, origin)
        result = super().resolve(name, rtype)
        self._maybe_cache_positive(name, rtype, result, now)
        return result

    def synthesize_response(self, query: Message) -> Optional[Message]:
        """A full negative :class:`Message` for ``query``, from cache only.

        Returns None when no cached proof covers the question.  The
        authority section replays the exact RRs of the authoritative
        denial, so the wire bytes match what the replicated service
        would have produced for this query.
        """
        if not query.questions:
            return None
        question = query.questions[0]
        origin = self._best_origin(question.name)
        if origin is None:
            return None
        serial = self._serials.get(origin)
        if serial is None:
            return None
        denial = self._negative.lookup(
            origin, serial, question.name, question.rtype, self._clock()
        )
        if denial is None:
            return None
        kind, proof = denial
        self.stats[f"synthesized_{kind}"] += 1
        rcode = c.RCODE_NXDOMAIN if kind == "nxdomain" else c.RCODE_NOERROR
        response = make_response(query, rcode)
        response.set_flag(c.FLAG_AA)
        response.authority.extend(proof.authority_rrs)
        return response

    # -- observation --------------------------------------------------------

    def _observed_query(self, zone_origin: Name, message: Message) -> Message:
        self.stats["authoritative_queries"] += 1
        response = self._upstream(zone_origin, message)
        self._observe(zone_origin, message, response)
        return response

    def _observe(self, zone_origin: Name, query: Message, response: Message) -> None:
        serial = self._note_serials(response)
        if not query.questions:
            return
        question = query.questions[0]
        negative = response.rcode == c.RCODE_NXDOMAIN or (
            response.rcode == c.RCODE_NOERROR
            and not response.answers
            and not any(rr.rtype == c.TYPE_NS for rr in response.authority)
        )
        if not negative or not response.is_authoritative:
            return
        if serial is None:
            return
        self._cache_proof(zone_origin, serial, response)

    def _note_serials(self, response: Message) -> Optional[int]:
        """Track zone serials from SOAs; returns the last serial seen."""
        seen: Optional[int] = None
        for rr in list(response.answers) + list(response.authority):
            if rr.rtype != c.TYPE_SOA or not isinstance(rr.rdata, SOA):
                continue
            seen = rr.rdata.serial
            self._note_serial(rr.name, rr.rdata.serial)
        return seen

    def _note_serial(self, origin: Name, serial: int) -> None:
        known = self._serials.get(origin)
        if known is not None and serial > known:
            self.stats["serial_bumps"] += 1
            self._positive.invalidate_origin(origin, keep_serial=serial)
            self._negative.invalidate_origin(origin, keep_serial=serial)
        if known is None and len(self._serials) >= self.MAX_TRACKED_ORIGINS:
            return
        if known is None or serial > known:
            # Bounded: MAX_TRACKED_ORIGINS guard above; origins are the
            # configured zone set, not per-query attacker input.
            self._serials[origin] = serial

    def _cache_proof(self, origin: Name, serial: int, response: Message) -> None:
        # The SOA owner is the authoritative statement of which zone the
        # denial comes from; prefer it over the queried zone label (they
        # differ when a single-zone service sits behind a generic root).
        for rr in response.authority:
            if rr.rtype == c.TYPE_SOA:
                origin = rr.name
                break
        nxt_rrs = [rr for rr in response.authority if rr.rtype == c.TYPE_NXT]
        if len(nxt_rrs) != 1:
            return
        nxt_rr = nxt_rrs[0]
        nxt_rdata = nxt_rr.rdata
        if not isinstance(nxt_rdata, NXT):
            return
        ttl = self._negative_ttl(response, nxt_rr.ttl)
        verified = self._proof_verified(origin, response)
        if verified is None:
            self.stats["rejected_proofs"] += 1
            return
        proof = NxtProof(
            origin=origin,
            serial=serial,
            owner=nxt_rr.name,
            nxt=nxt_rdata,
            authority_rrs=tuple(response.authority),
            verified=verified,
            expires=self._clock() + ttl,
        )
        self._negative.store(proof)
        self.stats["proofs_cached"] += 1

    def _proof_verified(self, origin: Name, response: Message) -> Optional[bool]:
        """Verify the denial's SOA+NXT SIGs.

        Returns True on success, False when no trusted key is configured
        (cached unverified, like unverified positive answers), and None
        when a trusted key exists but verification *fails* — such proofs
        are rejected outright rather than cached.
        """
        keys = self._trusted_keys.get(origin)
        if not keys:
            return False
        scratch = ResolutionResult(rcode=c.RCODE_NOERROR)
        rrsets = rrs_to_rrsets(list(response.authority))
        sigs: Dict[Tuple[Name, int], List[SIG]] = {}
        for rrset in rrsets:
            if rrset.rtype != c.TYPE_SIG:
                continue
            for rdata in rrset:
                if isinstance(rdata, SIG):
                    sigs.setdefault((rrset.name, rdata.type_covered), []).append(
                        rdata
                    )
        for rrset in rrsets:
            if rrset.rtype == c.TYPE_SIG:
                continue
            covering = sigs.get((rrset.name, rrset.rtype))
            if not covering:
                return None
            if not self._verify_one(rrset, covering, keys, scratch):
                return None
        return True

    @staticmethod
    def _negative_ttl(response: Message, nxt_ttl: int) -> int:
        """RFC 2308 negative TTL: min(SOA RR ttl, SOA.minimum)."""
        for rr in response.authority:
            if rr.rtype == c.TYPE_SOA and isinstance(rr.rdata, SOA):
                return min(rr.ttl, rr.rdata.minimum, nxt_ttl)
        return nxt_ttl

    # -- cache fills and synthesis ------------------------------------------

    def _maybe_cache_positive(
        self, name: Name, rtype: int, result: ResolutionResult, now: float
    ) -> None:
        if result.rcode != c.RCODE_NOERROR or not result.answers:
            return
        origin = result.zone_origin
        serial = self._serials.get(origin) if origin is not None else None
        if serial is None:
            # The queried zone label may be a generic root fronting a
            # single-zone service; fall back to the tracked origin the
            # name falls under (learned from observed SOAs).
            tracked = self._best_origin(name)
            if tracked is not None:
                origin = tracked
                serial = self._serials.get(tracked)
        if origin is None:
            return
        if serial is None:
            serial = self._prime_serial(origin)
            if serial is None:
                return
        ttl = min(rr.ttl for rr in result.answers)
        self._positive.store(
            name,
            rtype,
            CachedAnswer(
                origin=origin,
                serial=serial,
                rcode=result.rcode,
                answer_rrs=tuple(result.answers),
                verified=result.verified,
                expires=now + ttl,
            ),
        )

    def _prime_serial(self, origin: Name) -> Optional[int]:
        """Learn a zone's serial with one SOA query to its apex."""
        try:
            response = self._observed_query(
                origin, make_query(origin, c.TYPE_SOA)
            )
        except DnsError:
            return None
        for rr in response.answers:
            if rr.rtype == c.TYPE_SOA and isinstance(rr.rdata, SOA):
                return rr.rdata.serial
        return None

    def _best_origin(self, qname: Name) -> Optional[Name]:
        """The most specific tracked origin the query name falls under."""
        best: Optional[Name] = None
        for origin in self._serials:
            if qname.is_subdomain_of(origin) or qname == origin:
                if best is None or origin.is_subdomain_of(best):
                    best = origin
        return best

    def _result_from_positive(
        self, hit: CachedAnswer, origin: Name
    ) -> ResolutionResult:
        result = ResolutionResult(rcode=hit.rcode)
        result.answers.extend(hit.answer_rrs)
        result.zone_origin = origin
        result.verified = hit.verified
        result.from_cache = True
        return result

    def _result_from_proof(
        self, kind: str, proof: NxtProof, origin: Name
    ) -> ResolutionResult:
        rcode = c.RCODE_NXDOMAIN if kind == "nxdomain" else c.RCODE_NOERROR
        result = ResolutionResult(rcode=rcode)
        result.zone_origin = origin
        result.verified = proof.verified
        result.from_cache = True
        return result


def build_in_memory_tree(zones: List[Zone]) -> QueryFn:
    """A ``query`` function over a set of in-memory zones.

    Each zone is served by a plain :class:`AuthoritativeServer`; the
    resolver's referrals select which zone a query goes to.
    """
    servers = {zone.origin: AuthoritativeServer(zone) for zone in zones}

    def query(zone_origin: Name, message: Message) -> Message:
        server = servers.get(zone_origin)
        if server is None:
            raise ResolutionError(f"no server for zone {zone_origin.to_text()}")
        return server.handle_query(message)

    return query
