"""Bounded LRU cache for canonical RRset wire rendering.

Canonical rendering (RFC 2535 / RFC 4034 §6: sort rdatas by their wire
form, pack owner + header per record) is re-done for the same RRset many
times on the write path: once per signing task, once per zone digest,
once per verification pass.  This cache memoizes the rendered bytes keyed
by ``(owner name, rtype, zone serial)`` — the same keying discipline as
the replica's signed-answer cache — so a zone state between two updates
renders each RRset at most once.

Invalidation mirrors the answer cache's per-name semantics:

* every zone mutation primitive drops the mutated ``(name, rtype)``
  entries immediately (same-serial mutations happen: NXT maintenance
  runs *after* the serial bump);
* after an RFC 2136 update commits, :meth:`rekey_for_update` drops the
  touched names and re-keys untouched survivors to the new serial, so an
  update to one name does not cold-start rendering for the whole zone.

The cache is strictly bounded (KeyTrap hygiene): insertion beyond
``max_entries`` evicts the least-recently-used entry and counts it in
``stats["evictions"]``.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.dns.name import Name

#: Default bound: comfortably covers the benchmark zones (a few hundred
#: RRsets) while capping adversarial name churn at a few MB of wire.
DEFAULT_MAX_ENTRIES = 8192

_Key = Tuple[Name, int, int]  # (owner, rtype, serial)


class CanonicalRenderCache:
    """LRU map ``(name, rtype, serial) -> canonical wire bytes``."""

    __slots__ = ("max_entries", "_entries", "_by_name", "stats")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("render cache needs at least one entry")
        self.max_entries = max_entries
        # dict preserves insertion order; re-inserting on hit gives LRU.
        self._entries: Dict[_Key, bytes] = {}
        self._by_name: Dict[Name, Set[_Key]] = {}
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidated": 0,
            "rekeyed": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, name: Name, rtype: int, serial: int) -> Optional[bytes]:
        key = (name, rtype, serial)
        wire = self._entries.get(key)
        if wire is None:
            self.stats["misses"] += 1
            return None
        # refresh recency; re-inserting a just-deleted key cannot grow
        # the dict past the store()-enforced bound.
        del self._entries[key]
        # repro-lint: disable=T404
        self._entries[key] = wire
        self.stats["hits"] += 1
        return wire

    def store(self, name: Name, rtype: int, serial: int, wire: bytes) -> None:
        key = (name, rtype, serial)
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.stats["evictions"] += 1
        self._entries[key] = wire
        # Bounded: the eviction branch above caps len(_entries) at
        # max_entries, and _by_name only indexes live entry keys.
        # repro-lint: disable=T404
        self._by_name.setdefault(name, set()).add(key)

    def _drop(self, key: _Key) -> None:
        del self._entries[key]
        keys = self._by_name.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_name[key[0]]

    def invalidate(self, name: Name, rtype: Optional[int] = None) -> None:
        """Drop entries at ``name`` (all serials); ``rtype=None`` = all types."""
        keys = self._by_name.get(name)
        if not keys:
            return
        doomed = [k for k in keys if rtype is None or k[1] == rtype]
        for key in doomed:
            self._drop(key)
            self.stats["invalidated"] += 1

    def rekey_for_update(
        self,
        affected: Set[Name],
        new_serial: int,
        soa_name: Optional[Name] = None,
        soa_type: Optional[int] = None,
    ) -> None:
        """After an update commits: drop touched names, re-key survivors.

        ``affected`` is the update's changed|added|deleted name set.  The
        apex SOA changed too (serial bump), so its ``(soa_name, soa_type)``
        entries are dropped even when the apex is otherwise untouched.
        Survivors' rendered bytes are still exact — only the serial in
        their key is stale — so they migrate to ``new_serial`` instead of
        being re-rendered.
        """
        survivors: Dict[_Key, bytes] = {}
        for (name, rtype, _serial), wire in self._entries.items():
            if name in affected or (name == soa_name and rtype == soa_type):
                self.stats["invalidated"] += 1
                continue
            survivors[(name, rtype, new_serial)] = wire
            self.stats["rekeyed"] += 1
        self._entries = survivors
        self._by_name = {}
        for key in survivors:
            # Bounded: survivors is a subset of the already-bounded
            # entry set; this only rebuilds the per-name index over it.
            # repro-lint: disable=T404
            self._by_name.setdefault(key[0], set()).add(key)

    def clear(self) -> None:
        self._entries.clear()
        self._by_name.clear()
