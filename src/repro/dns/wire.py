"""DNS message wire codec with name compression (RFC 1035 §4.1.4).

Encoding keeps a per-message table of names already emitted and replaces
repeated suffixes with compression pointers, like every production DNS
implementation.  Decoding delegates pointer chasing to
:meth:`repro.dns.name.Name.from_wire`.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.dns.name import Name


class WireWriter:
    """Accumulates a DNS message, compressing names as it goes."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self._offsets: Dict[Tuple[bytes, ...], int] = {}

    def __len__(self) -> int:
        return len(self._buf)

    def write(self, data: bytes) -> None:
        self._buf.extend(data)

    def write_u8(self, value: int) -> None:
        self._buf.append(value)

    def write_u16(self, value: int) -> None:
        self._buf.extend(struct.pack(">H", value))

    def write_u32(self, value: int) -> None:
        self._buf.extend(struct.pack(">I", value))

    def write_name(self, name: Name, compress: bool = True) -> None:
        """Emit ``name``, using a pointer to an earlier occurrence if any.

        Compression keys are case-folded label tuples, so a pointer may
        target a name that differs in case — permitted by RFC 1035 (name
        comparison is case-insensitive).
        """
        labels = tuple(label.lower() for label in name.labels)
        raw_labels = name.labels
        for i in range(len(labels)):
            suffix = labels[i:]
            target = self._offsets.get(suffix)
            if compress and target is not None and target < 0x4000:
                for label in raw_labels[:i]:
                    self._buf.append(len(label))
                    self._buf.extend(label)
                self.write_u16(0xC000 | target)
                # Register the newly written prefixes for future pointers.
                self._register_prefixes(labels[:i], raw_labels[:i], len(self._buf) - 2 - sum(len(l) + 1 for l in raw_labels[:i]))
                return
        start = len(self._buf)
        for label in raw_labels:
            self._buf.append(len(label))
            self._buf.extend(label)
        self._buf.append(0)
        self._register_prefixes(labels, raw_labels, start)

    def _register_prefixes(
        self,
        labels: Tuple[bytes, ...],
        raw_labels: Tuple[bytes, ...],
        start: int,
    ) -> None:
        offset = start
        for i in range(len(labels)):
            suffix = labels[i:]
            if suffix not in self._offsets and offset < 0x4000:
                self._offsets[suffix] = offset
            offset += len(raw_labels[i]) + 1

    def patch_u16(self, position: int, value: int) -> None:
        struct.pack_into(">H", self._buf, position, value)

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class WireReader:
    """Cursor over a received DNS message."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    @property
    def remaining(self) -> int:
        return len(self.data) - self.offset

    def read_u8(self) -> int:
        from repro.errors import WireFormatError

        if self.remaining < 1:
            raise WireFormatError("truncated u8")
        value = self.data[self.offset]
        self.offset += 1
        return value

    def read_u16(self) -> int:
        from repro.errors import WireFormatError

        if self.remaining < 2:
            raise WireFormatError("truncated u16")
        (value,) = struct.unpack_from(">H", self.data, self.offset)
        self.offset += 2
        return value

    def read_u32(self) -> int:
        from repro.errors import WireFormatError

        if self.remaining < 4:
            raise WireFormatError("truncated u32")
        (value,) = struct.unpack_from(">I", self.data, self.offset)
        self.offset += 4
        return value

    def read_bytes(self, count: int) -> bytes:
        from repro.errors import WireFormatError

        if self.remaining < count:
            raise WireFormatError("truncated bytes")
        value = self.data[self.offset : self.offset + count]
        self.offset += count
        return bytes(value)

    def read_name(self) -> Name:
        name, self.offset = Name.from_wire(self.data, self.offset)
        return name
