"""Zone transfer (AXFR, RFC 5936-style) for classic primary/secondary DNS.

The paper's §1 describes how conventional DNS replicates a zone: the
original data lives at the primary server and secondaries periodically
obtain it via zone transfer — "this means that an attacker may corrupt
the data of all servers by compromising the primary alone."  This module
implements that transfer mechanism so the repository contains the
baseline design the paper's replicated service replaces (see
:mod:`repro.core.classic` and ablation benchmarks).

An AXFR response carries the entire zone as a record stream that begins
and ends with the SOA record.
"""

from __future__ import annotations

from typing import List

from repro.dns import constants as c
from repro.dns.message import Message, Question, RR, make_response, rrset_to_rrs
from repro.dns.name import Name
from repro.dns.zone import Zone
from repro.errors import WireFormatError, ZoneError

TYPE_AXFR = 252  # QTYPE only


def make_axfr_query(zone_origin: Name, msg_id: int = 0) -> Message:
    """Build the AXFR request a secondary sends to the primary."""
    query = Message(msg_id=msg_id, opcode=c.OPCODE_QUERY)
    query.questions.append(Question(zone_origin, TYPE_AXFR, c.CLASS_IN))
    return query


def build_axfr_response(zone: Zone, query: Message) -> Message:
    """Serialize the full zone: SOA first, everything, SOA again."""
    response = make_response(query)
    response.set_flag(c.FLAG_AA)
    soa_rrs = rrset_to_rrs(zone.soa_rrset)
    response.answers.extend(soa_rrs)
    for rrset in zone:
        if rrset.name == zone.origin and rrset.rtype == c.TYPE_SOA:
            continue
        response.answers.extend(rrset_to_rrs(rrset))
    response.answers.extend(soa_rrs)
    return response


def apply_axfr_response(response: Message) -> Zone:
    """Reconstruct a zone from an AXFR record stream.

    Validates the SOA framing; raises :class:`WireFormatError` on a
    malformed stream.
    """
    answers: List[RR] = response.answers
    if len(answers) < 2:
        raise WireFormatError("AXFR stream too short")
    first, last = answers[0], answers[-1]
    if first.rtype != c.TYPE_SOA or last.rtype != c.TYPE_SOA:
        raise WireFormatError("AXFR stream must be SOA-framed")
    if first.rdata != last.rdata or first.name != last.name:
        raise WireFormatError("AXFR opening and closing SOA differ")
    zone = Zone(first.name)
    try:
        zone.add_rdata(first.name, c.TYPE_SOA, first.ttl, first.rdata)
        for rr in answers[1:-1]:
            if rr.rdata is None:
                raise WireFormatError("empty rdata inside AXFR stream")
            zone.add_rdata(rr.name, rr.rtype, rr.ttl, rr.rdata)
    except ZoneError as exc:
        raise WireFormatError(f"bad AXFR content: {exc}") from exc
    return zone


def transfer_zone(primary_zone: Zone) -> Zone:
    """Direct in-process transfer (build + apply), used by secondaries."""
    query = make_axfr_query(primary_zone.origin)
    return apply_axfr_response(build_axfr_response(primary_zone, query))
