"""RRsets: all records sharing (name, type, class).

The RRset is the unit of DNSSEC signing — a SIG record covers an entire
RRset (the paper's footnote 1 notes this).  RRsets are value objects;
zone mutation goes through :class:`repro.dns.zone.Zone`.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Tuple

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import Rdata
from repro.errors import ZoneError


class RRset:
    """An immutable set of records with common name, type, and class."""

    __slots__ = ("name", "rtype", "rclass", "ttl", "_rdatas")

    def __init__(
        self,
        name: Name,
        rtype: int,
        ttl: int,
        rdatas: Iterable[Rdata],
        rclass: int = c.CLASS_IN,
    ) -> None:
        rdatas = tuple(dict.fromkeys(rdatas))  # dedupe, keep insertion order
        if not rdatas:
            raise ZoneError("RRset needs at least one record")
        for rdata in rdatas:
            if rdata.rtype != rtype:
                raise ZoneError(
                    f"rdata type {c.type_to_text(rdata.rtype)} does not match "
                    f"RRset type {c.type_to_text(rtype)}"
                )
        if not 0 <= ttl <= 0x7FFFFFFF:
            raise ZoneError(f"TTL {ttl} out of range")
        self.name = name
        self.rtype = rtype
        self.rclass = rclass
        self.ttl = ttl
        self._rdatas = rdatas

    @property
    def rdatas(self) -> Tuple[Rdata, ...]:
        return self._rdatas

    def __iter__(self) -> Iterator[Rdata]:
        return iter(self._rdatas)

    def __len__(self) -> int:
        return len(self._rdatas)

    def __contains__(self, rdata: Rdata) -> bool:
        return rdata in self._rdatas

    # -- derivation ----------------------------------------------------------

    def with_added(self, rdata: Rdata, ttl: int | None = None) -> "RRset":
        return RRset(
            self.name,
            self.rtype,
            ttl if ttl is not None else self.ttl,
            self._rdatas + (rdata,),
            self.rclass,
        )

    def with_removed(self, rdata: Rdata) -> "RRset | None":
        remaining = tuple(r for r in self._rdatas if r != rdata)
        if not remaining:
            return None
        return RRset(self.name, self.rtype, self.ttl, remaining, self.rclass)

    def sorted_canonically(self) -> "RRset":
        """Rdatas in RFC 4034 §6.3 order (by canonical wire form)."""
        return RRset(
            self.name,
            self.rtype,
            self.ttl,
            sorted(self._rdatas, key=lambda r: r.canonical_wire()),
            self.rclass,
        )

    # -- canonical form for signing (RFC 2535 §8.1 / RFC 4034 §6) --------------

    def canonical_wire(self) -> bytes:
        """Concatenated canonical RRs, sorted by rdata — the signing input."""
        owner = self.name.canonical_wire()
        out = bytearray()
        for rdata in sorted(self._rdatas, key=lambda r: r.canonical_wire()):
            rdata_wire = rdata.canonical_wire()
            out.extend(owner)
            out.extend(
                struct.pack(
                    ">HHIH", self.rtype, self.rclass, self.ttl, len(rdata_wire)
                )
            )
            out.extend(rdata_wire)
        return bytes(out)

    # -- text -------------------------------------------------------------------

    def to_text(self, origin: Name | None = None) -> str:
        lines: List[str] = []
        owner = self.name.relativize_text(origin) if origin else self.name.to_text()
        for rdata in self._rdatas:
            lines.append(
                f"{owner} {self.ttl} {c.class_to_text(self.rclass)} "
                f"{c.type_to_text(self.rtype)} {rdata.to_text(origin)}"
            )
        return "\n".join(lines)

    # -- equality -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RRset):
            return NotImplemented
        return (
            self.name == other.name
            and self.rtype == other.rtype
            and self.rclass == other.rclass
            and self.ttl == other.ttl
            and frozenset(self._rdatas) == frozenset(other._rdatas)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.rtype, self.rclass, self.ttl, frozenset(self._rdatas)))

    def __repr__(self) -> str:
        return (
            f"<RRset {self.name.to_text()} {self.ttl} "
            f"{c.class_to_text(self.rclass)} {c.type_to_text(self.rtype)} "
            f"({len(self._rdatas)} records)>"
        )
