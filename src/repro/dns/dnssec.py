"""DNSSEC zone signing (RFC 2535-era): SIG records, NXT chain, validation.

Signing is split into two phases so it works both locally and on top of
the threshold protocol:

1. :func:`signing_tasks_for_update` / :func:`signing_tasks_for_zone`
   produce a *deterministic, ordered* list of :class:`SigningTask` items —
   the exact byte strings to sign.  Every honest replica derives the same
   list with the same ``sign_id``s, which is what lets the distributed
   threshold signing sessions match up across replicas.
2. :func:`attach_signature` installs a completed signature into the zone
   as a SIG record.

The task list reproduces BIND's behaviour the paper measured (§5.2): a
dynamic add of a new name signs **four** RRsets (the new data RRset, the
new name's NXT, the predecessor's NXT, and the SOA), a delete signs
**two** (the predecessor's NXT and the SOA).  That 4:2 ratio is why adds
take roughly twice as long as deletes in Table 2.
"""

from __future__ import annotations

import bisect
import hashlib
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import KEY, NXT, SIG
from repro.dns.rrset import RRset
from repro.dns.update import UpdateResult
from repro.dns.zone import Zone
from repro.errors import DnssecError, InvalidSignature

# One day of signature validity by default; inception/expiration are
# *logical* times derived from the zone serial so replicas agree exactly.
DEFAULT_VALIDITY = 86_400 * 30


@dataclass(frozen=True)
class SigningPolicy:
    """Deterministic signature timing policy shared by all replicas."""

    inception_base: int = 1_000_000_000
    validity: int = DEFAULT_VALIDITY

    def inception(self, serial: int) -> int:
        return (self.inception_base + serial) & 0xFFFFFFFF

    def expiration(self, serial: int) -> int:
        return (self.inception(serial) + self.validity) & 0xFFFFFFFF


@dataclass(frozen=True)
class SigningTask:
    """One RRset to sign: the input bytes plus the SIG rdata template."""

    sign_id: str
    name: Name
    rtype: int
    data: bytes          # exact bytes the RSA signature covers
    template: SIG        # SIG rdata with empty signature field
    ttl: int             # TTL for the resulting SIG RRset


def _sig_template(
    rrset: RRset, key: KEY, signer_name: Name, policy: SigningPolicy, serial: int
) -> SIG:
    return SIG(
        type_covered=rrset.rtype,
        algorithm=key.algorithm,
        labels=len(rrset.name),
        original_ttl=rrset.ttl,
        expiration=policy.expiration(serial),
        inception=policy.inception(serial),
        key_tag=key.key_tag(),
        signer=signer_name,
        signature=b"",
    )


def sig_data(rrset: RRset, template: SIG, zone: Optional[Zone] = None) -> bytes:
    """The byte string a SIG covers: rdata-minus-signature || canonical RRset.

    With ``zone`` given the RRset rendering goes through the zone's
    canonical render cache (byte-identical output, memoized per serial).
    """
    rendered = (
        zone.canonical_rrset_wire(rrset) if zone is not None else rrset.canonical_wire()
    )
    return template.header_wire(canonical=True) + rendered


def make_signing_task(
    rrset: RRset,
    key: KEY,
    signer_name: Name,
    policy: SigningPolicy,
    serial: int,
    zone: Optional[Zone] = None,
) -> SigningTask:
    """Build the signing task for one RRset."""
    template = _sig_template(rrset, key, signer_name, policy, serial)
    data = sig_data(rrset, template, zone)
    digest = hashlib.sha256()
    digest.update(signer_name.canonical_wire())
    digest.update(struct.pack(">IH", serial, rrset.rtype))
    digest.update(rrset.name.canonical_wire())
    digest.update(data)
    return SigningTask(
        sign_id=digest.hexdigest()[:32],
        name=rrset.name,
        rtype=rrset.rtype,
        data=data,
        template=template,
        ttl=rrset.ttl,
    )


def attach_signature(zone: Zone, task: SigningTask, signature: bytes) -> None:
    """Install a completed signature as a SIG record in the zone.

    Replaces any existing SIG covering the same type at the same name.
    """
    sig_rdata = SIG(
        type_covered=task.template.type_covered,
        algorithm=task.template.algorithm,
        labels=task.template.labels,
        original_ttl=task.template.original_ttl,
        expiration=task.template.expiration,
        inception=task.template.inception,
        key_tag=task.template.key_tag,
        signer=task.template.signer,
        signature=signature,
    )
    existing = zone.find_rrset(task.name, c.TYPE_SIG)
    if existing is None:
        zone.put_rrset(RRset(task.name, c.TYPE_SIG, task.ttl, [sig_rdata]))
        return
    keep = [s for s in existing if s.type_covered != task.rtype]  # type: ignore[attr-defined]
    zone.put_rrset(
        RRset(task.name, c.TYPE_SIG, task.ttl, keep + [sig_rdata])
    )


# --------------------------------------------------------------------------
# NXT chain maintenance
# --------------------------------------------------------------------------


def rebuild_nxt_chain(zone: Zone, nxt_ttl: Optional[int] = None) -> Set[Name]:
    """(Re)build the zone's NXT chain; return names whose NXT changed.

    The chain links every authoritative owner name to the next one in
    canonical order, wrapping to the apex.  Bitmaps list the types present
    at the owner plus SIG and NXT themselves (present in any signed zone).
    """
    if nxt_ttl is None:
        nxt_ttl = zone.soa.minimum
    names = [n for n in zone.names() if _has_authoritative_data(zone, n)]
    changed: Set[Name] = set()
    wanted: Dict[Name, NXT] = {}
    for i, name in enumerate(names):
        wanted[name] = _wanted_nxt(zone, name, names[(i + 1) % len(names)])
    # Remove NXT records at names that no longer carry data.
    for name in zone.names():
        existing = zone.find_rrset(name, c.TYPE_NXT)
        if existing is not None and name not in wanted:
            # NXT maintenance only walks names the zone already contains;
            # the update that made them stale was TSIG/policy-verified
            # before it was applied.
            # repro-lint: disable=T405
            zone.delete_rrset(name, c.TYPE_NXT)
            changed.add(name)
    for name, nxt in wanted.items():
        existing = zone.find_rrset(name, c.TYPE_NXT)
        if existing is not None and len(existing) == 1 and existing.rdatas[0] == nxt:
            continue
        zone.put_rrset(RRset(name, c.TYPE_NXT, nxt_ttl, [nxt]))
        changed.add(name)
    return changed


def _has_authoritative_data(zone: Zone, name: Name) -> bool:
    """A name deserves an NXT entry if it has data besides NXT/SIG."""
    types = {rrset.rtype for rrset in zone.rrsets_at(name)}
    return bool(types - {c.TYPE_NXT, c.TYPE_SIG})


def _wanted_nxt(zone: Zone, name: Name, next_name: Name) -> NXT:
    types = {rrset.rtype for rrset in zone.rrsets_at(name)}
    types -= {c.TYPE_NXT}
    types |= {c.TYPE_SIG, c.TYPE_NXT}
    return NXT(next_name, sorted(types))


def update_nxt_chain_incremental(
    zone: Zone, result: UpdateResult, nxt_ttl: Optional[int] = None
) -> Set[Name]:
    """Repair the NXT chain after one update; return names whose NXT changed.

    Equivalent to :func:`rebuild_nxt_chain` when the chain was complete
    before the update (the steady state between committed updates), but
    only recomputes the NXT records the update could have moved: the
    touched names themselves (type bitmaps) and the canonical
    predecessors of names that entered or left the chain (next pointers).
    Falls back to the full rebuild when the apex data changed (the NXT
    TTL derives from SOA.minimum, which re-TTLs the whole chain) or when
    the chain turns out to be incomplete.
    """
    affected = result.changed_names | result.added_names | result.deleted_names
    if zone.origin in result.changed_names:
        return rebuild_nxt_chain(zone, nxt_ttl)
    if nxt_ttl is None:
        nxt_ttl = zone.soa.minimum
    names = [n for n in zone.names() if _has_authoritative_data(zone, n)]
    if not names:
        return rebuild_nxt_chain(zone, nxt_ttl)
    chain = set(names)
    targets: Set[Name] = set()
    for name in affected:
        if name in chain:
            targets.add(name)
        # the predecessor's next pointer moves when a chain entry appears
        # or disappears at this position
        idx = bisect.bisect_left(names, name)
        targets.add(names[(idx - 1) % len(names)])
    # precondition check: every untouched chain name must already carry
    # an NXT, otherwise the incremental repair cannot be equivalent
    if any(
        zone.find_rrset(name, c.TYPE_NXT) is None
        for name in names
        if name not in targets
    ):
        return rebuild_nxt_chain(zone, nxt_ttl)
    changed: Set[Name] = set()
    # names that dropped out of the chain lose their NXT
    for name in sorted(affected - chain):
        if zone.find_rrset(name, c.TYPE_NXT) is not None:
            # the update that emptied this name was TSIG/policy-verified
            # before it was applied (same justification as the rebuild).
            # repro-lint: disable=T405
            zone.delete_rrset(name, c.TYPE_NXT)
            changed.add(name)
    for name in sorted(targets):
        idx = bisect.bisect_left(names, name)
        nxt = _wanted_nxt(zone, name, names[(idx + 1) % len(names)])
        existing = zone.find_rrset(name, c.TYPE_NXT)
        if existing is not None and len(existing) == 1 and existing.rdatas[0] == nxt:
            continue
        zone.put_rrset(RRset(name, c.TYPE_NXT, nxt_ttl, [nxt]))
        changed.add(name)
    return changed


# --------------------------------------------------------------------------
# Task list construction
# --------------------------------------------------------------------------


def signing_tasks_for_zone(
    zone: Zone,
    key: KEY,
    policy: SigningPolicy = SigningPolicy(),
) -> List[SigningTask]:
    """Tasks for signing an entire zone (initial `signzone`, §4.3).

    Rebuilds the NXT chain, then signs every RRset except the SIGs
    themselves, apex first (SOA last overall so its signature covers the
    final serial... the serial does not change during signing, so order
    here is just canonical).
    """
    rebuild_nxt_chain(zone)
    serial = zone.serial
    signer_name = zone.origin
    tasks: List[SigningTask] = []
    for rrset in zone:
        if rrset.rtype == c.TYPE_SIG:
            continue
        tasks.append(
            make_signing_task(rrset, key, signer_name, policy, serial, zone)
        )
    return tasks


def signing_tasks_for_update(
    zone: Zone,
    result: UpdateResult,
    key: KEY,
    policy: SigningPolicy = SigningPolicy(),
    incremental: bool = True,
) -> List[SigningTask]:
    """Tasks for re-signing after a dynamic update (deterministic order).

    Order: changed/added data RRsets (canonical name order, type order),
    then changed NXT records, then the SOA.  For the paper's benchmark
    update shapes this yields exactly 4 tasks for an add-new-name and 2
    for a delete-name.

    ``incremental`` selects the NXT repair strategy: the default
    incremental repair touches only the affected chain region; the full
    rebuild walks the whole zone (kept as the test oracle — both produce
    identical task lists on a well-formed chain).
    """
    if not result.ok or not result.data_changed:
        return []
    if incremental:
        nxt_changed = update_nxt_chain_incremental(zone, result)
    else:
        nxt_changed = rebuild_nxt_chain(zone)
    serial = zone.serial
    signer_name = zone.origin
    tasks: List[SigningTask] = []

    data_names = sorted(result.changed_names | result.added_names)
    for name in data_names:
        for rrset in zone.rrsets_at(name):
            if rrset.rtype in (c.TYPE_SIG, c.TYPE_NXT, c.TYPE_SOA):
                continue
            tasks.append(
                make_signing_task(rrset, key, signer_name, policy, serial, zone)
            )

    for name in sorted(nxt_changed):
        nxt_rrset = zone.find_rrset(name, c.TYPE_NXT)
        if nxt_rrset is None:
            continue  # the name was deleted
        tasks.append(
            make_signing_task(nxt_rrset, key, signer_name, policy, serial, zone)
        )

    tasks.append(
        make_signing_task(zone.soa_rrset, key, signer_name, policy, serial, zone)
    )
    return tasks


# --------------------------------------------------------------------------
# Local (single-signer) convenience and verification
# --------------------------------------------------------------------------


def sign_zone_locally(
    zone: Zone,
    key: KEY,
    signer: Callable[[bytes], bytes],
    policy: SigningPolicy = SigningPolicy(),
) -> int:
    """Sign a whole zone with a local signing callable; returns #signatures.

    This is the single-server base case (the ``(1, 0)`` row of Table 2)
    and the test oracle for the distributed path.
    """
    tasks = signing_tasks_for_zone(zone, key, policy)
    for task in tasks:
        attach_signature(zone, task, signer(task.data))
    return len(tasks)


def resign_after_update_locally(
    zone: Zone,
    result: UpdateResult,
    key: KEY,
    signer: Callable[[bytes], bytes],
    policy: SigningPolicy = SigningPolicy(),
) -> int:
    """Re-sign after an update with a local signer; returns #signatures."""
    tasks = signing_tasks_for_update(zone, result, key, policy)
    for task in tasks:
        attach_signature(zone, task, signer(task.data))
    return len(tasks)


def verify_rrset(
    rrset: RRset,
    sig: SIG,
    key: KEY,
    now: Optional[int] = None,
    zone: Optional[Zone] = None,
) -> None:
    """Verify a SIG over an RRset against the zone KEY; raise on failure."""
    from repro.crypto.rsa import RsaPublicKey

    if sig.type_covered != rrset.rtype:
        raise DnssecError("SIG does not cover this RRset's type")
    if sig.algorithm != key.algorithm:
        raise DnssecError("algorithm mismatch between SIG and KEY")
    if sig.key_tag != key.key_tag():
        raise DnssecError("key tag mismatch")
    if now is not None:
        if not (sig.inception <= now <= sig.expiration):
            raise DnssecError("signature outside its validity window")
    modulus, exponent = key.rsa_parameters()
    public = RsaPublicKey(modulus=modulus, exponent=exponent)
    data = sig_data(rrset, sig, zone)
    try:
        public.verify(data, sig.signature)
    except InvalidSignature as exc:
        raise DnssecError(f"RSA verification failed: {exc}") from exc


def verify_zone(zone: Zone, key: KEY, now: Optional[int] = None) -> int:
    """Verify every SIG in the zone; returns the number verified."""
    count = 0
    for name in zone.names():
        sigs = zone.find_rrset(name, c.TYPE_SIG)
        if sigs is None:
            continue
        for sig in sigs:
            covered = zone.find_rrset(name, sig.type_covered)  # type: ignore[attr-defined]
            if covered is None:
                raise DnssecError(
                    f"SIG at {name.to_text()} covers missing type "
                    f"{c.type_to_text(sig.type_covered)}"  # type: ignore[attr-defined]
                )
            verify_rrset(covered, sig, key, now, zone)  # type: ignore[arg-type]
            count += 1
    return count


def zone_key_rrset(zone: Zone) -> Optional[RRset]:
    """The apex KEY RRset, if the zone is signed."""
    return zone.find_rrset(zone.origin, c.TYPE_KEY)
