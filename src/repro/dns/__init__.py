"""Pure-Python DNS substrate: the `named` the Wrapper proxies to.

Implements the DNS data model (RFC 1034/1035), wire format, zone storage,
master-file I/O, authoritative query processing, RFC 2136 dynamic updates,
TSIG-style transaction signatures, and RFC 2535-era DNSSEC zone signing —
everything the paper's modified BIND provided.
"""

from repro.dns.name import Name, root_name
from repro.dns.rdata import (
    Rdata,
    A,
    AAAA,
    NS,
    CNAME,
    PTR,
    MX,
    TXT,
    SOA,
    KEY,
    SIG,
)
from repro.dns.rrset import RRset
from repro.dns.message import Message, Question, make_query, make_response
from repro.dns.zone import Zone
from repro.dns.server import AuthoritativeServer

__all__ = [
    "Name",
    "root_name",
    "Rdata",
    "A",
    "AAAA",
    "NS",
    "CNAME",
    "PTR",
    "MX",
    "TXT",
    "SOA",
    "KEY",
    "SIG",
    "RRset",
    "Message",
    "Question",
    "make_query",
    "make_response",
    "Zone",
    "AuthoritativeServer",
]
