"""Domain names: labels, text and wire form, DNSSEC canonical ordering.

A :class:`Name` is an immutable sequence of labels, stored as raw bytes,
most-specific label first (``www.example.com.`` is
``(b"www", b"example", b"com")``).  All names in this library are absolute
(fully qualified); relative names appear only transiently during master
file parsing.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, List, Set, Tuple

from repro.dns.constants import MAX_LABEL_LENGTH, MAX_NAME_LENGTH
from repro.errors import NameError_, WireFormatError

_ESCAPABLE = b'."\\;@$()'


def _escape_label(label: bytes) -> str:
    out: List[str] = []
    for byte in label:
        char = bytes((byte,))
        if char in _ESCAPABLE:
            out.append("\\" + char.decode())
        elif 0x21 <= byte <= 0x7E:
            out.append(char.decode())
        else:
            out.append(f"\\{byte:03d}")
    return "".join(out)


def _parse_labels(text: str) -> Tuple[List[bytes], bool]:
    """Split a textual name into labels, handling ``\\.`` and ``\\DDD``.

    Returns ``(labels, absolute)`` where ``absolute`` is True iff the name
    ends with an *unescaped* dot.  Absoluteness must be decided here, while
    scanning escapes: a textual suffix test (``text.endswith("\\.")``)
    cannot tell ``a\\.`` (escaped dot, relative) from ``a\\\\.`` (escaped
    backslash followed by a real separator, absolute).
    """
    labels: List[bytes] = []
    current = bytearray()
    absolute = False
    i = 0
    while i < len(text):
        char = text[i]
        if char == "\\":
            if i + 3 < len(text) + 1 and text[i + 1 : i + 4].isdigit():
                code = int(text[i + 1 : i + 4])
                if code > 255:
                    raise NameError_(f"bad escape in name {text!r}")
                current.append(code)
                i += 4
                continue
            if i + 1 >= len(text):
                raise NameError_(f"trailing backslash in name {text!r}")
            current.append(ord(text[i + 1]))
            i += 2
            continue
        if char == ".":
            if not current and labels != [] and i != len(text) - 1:
                raise NameError_(f"empty interior label in {text!r}")
            if not current and not labels and i != len(text) - 1:
                raise NameError_(f"empty leading label in {text!r}")
            if current:
                labels.append(bytes(current))
                current = bytearray()
            if i == len(text) - 1:
                absolute = True
            i += 1
            continue
        current.append(ord(char))
        i += 1
    if current:
        labels.append(bytes(current))
    return labels, absolute


@total_ordering
class Name:
    """An absolute domain name.

    Comparison and hashing are case-insensitive, and ``<`` implements the
    DNSSEC *canonical ordering* (RFC 2535 §8.3 / RFC 4034 §6.1): names are
    compared right-to-left by label, with each label compared as a
    case-folded byte string.  Zone iteration and signed-zone layout rely
    on this ordering.
    """

    __slots__ = ("_labels", "_folded")

    def __init__(self, labels: Iterable[bytes]) -> None:
        labels = tuple(labels)
        total = sum(len(label) + 1 for label in labels) + 1
        if total > MAX_NAME_LENGTH:
            raise NameError_(f"name exceeds {MAX_NAME_LENGTH} octets")
        for label in labels:
            if not label:
                raise NameError_("empty label")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(
                    f"label {label!r} exceeds {MAX_LABEL_LENGTH} octets"
                )
        self._labels = labels
        self._folded = tuple(label.lower() for label in labels)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, origin: "Name | None" = None) -> "Name":
        """Parse a textual name; relative names require an ``origin``."""
        if text in (".", ""):
            if text == "" and origin is None:
                raise NameError_("empty name with no origin")
            return cls(()) if text == "." else origin  # type: ignore[return-value]
        if text == "@":
            if origin is None:
                raise NameError_("@ used without origin")
            return origin
        labels, absolute = _parse_labels(text)
        if absolute:
            return cls(labels)
        if origin is None:
            raise NameError_(f"relative name {text!r} with no origin")
        return cls(tuple(labels) + origin.labels)

    # -- properties -----------------------------------------------------------

    @property
    def labels(self) -> Tuple[bytes, ...]:
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def __len__(self) -> int:
        return len(self._labels)

    # -- text / wire ------------------------------------------------------------

    def to_text(self) -> str:
        if not self._labels:
            return "."
        return ".".join(_escape_label(label) for label in self._labels) + "."

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    def to_wire(self) -> bytes:
        """Uncompressed wire form (used in canonical/signed data)."""
        out = bytearray()
        for label in self._labels:
            out.append(len(label))
            out.extend(label)
        out.append(0)
        return bytes(out)

    def canonical_wire(self) -> bytes:
        """Wire form with labels lowercased (DNSSEC canonical form)."""
        out = bytearray()
        for label in self._folded:
            out.append(len(label))
            out.extend(label)
        out.append(0)
        return bytes(out)

    @classmethod
    def from_wire(cls, data: bytes, offset: int = 0) -> Tuple["Name", int]:
        """Decode a (possibly compressed) name; return ``(name, new_offset)``."""
        labels: List[bytes] = []
        seen_offsets: Set[int] = set()
        cursor = offset
        end = -1  # offset after the name in the original stream
        while True:
            if cursor >= len(data):
                raise WireFormatError("truncated name")
            length = data[cursor]
            if length == 0:
                if end < 0:
                    end = cursor + 1
                break
            if length & 0xC0 == 0xC0:
                if cursor + 1 >= len(data):
                    raise WireFormatError("truncated compression pointer")
                pointer = ((length & 0x3F) << 8) | data[cursor + 1]
                if pointer in seen_offsets or pointer >= cursor:
                    raise WireFormatError("bad compression pointer")
                seen_offsets.add(pointer)
                if end < 0:
                    end = cursor + 2
                cursor = pointer
                continue
            if length > MAX_LABEL_LENGTH:
                raise WireFormatError(f"label length {length} invalid")
            if cursor + 1 + length > len(data):
                raise WireFormatError("truncated label")
            labels.append(data[cursor + 1 : cursor + 1 + length])
            cursor += 1 + length
        try:
            return cls(labels), end
        except NameError_ as exc:
            raise WireFormatError(str(exc)) from exc

    # -- relations --------------------------------------------------------------

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if ``self`` is at or below ``other`` (RFC 1034 terminology)."""
        if len(other._folded) > len(self._folded):
            return False
        if not other._folded:
            return True
        return self._folded[-len(other._folded) :] == other._folded

    def parent(self) -> "Name":
        if not self._labels:
            raise NameError_("the root has no parent")
        return Name(self._labels[1:])

    def relativize_text(self, origin: "Name") -> str:
        """Textual form relative to ``origin`` (for zone file output)."""
        if self == origin:
            return "@"
        if self.is_subdomain_of(origin) and len(origin):
            rel = self._labels[: len(self._labels) - len(origin._labels)]
            return ".".join(_escape_label(label) for label in rel)
        return self.to_text()

    def concatenate(self, suffix: "Name") -> "Name":
        return Name(self._labels + suffix.labels)

    # -- ordering / hashing -------------------------------------------------------

    def _canonical_key(self) -> Tuple[bytes, ...]:
        return tuple(reversed(self._folded))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._folded == other._folded

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._canonical_key() < other._canonical_key()

    def __hash__(self) -> int:
        return hash(self._folded)


def root_name() -> Name:
    """The DNS root name ``.``."""
    return Name(())
