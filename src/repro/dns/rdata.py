"""Resource record data (rdata) types.

Implements the record types a zone service needs: A, AAAA, NS, CNAME, PTR,
MX, TXT, SOA, plus the RFC 2535 security records KEY and SIG that DNSSEC
zone signing uses.  Unknown types round-trip as opaque bytes
(:class:`GenericRdata`), in the spirit of RFC 3597.

Every rdata knows its text form (master files), wire form (messages) and
*canonical* wire form (DNSSEC signing input: embedded names lowercased and
uncompressed, RFC 2535 §8.1).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence, Tuple, Type

from repro.dns import constants as c
from repro.dns.name import Name
from repro.errors import WireFormatError, ZoneFileError

_REGISTRY: Dict[int, Type["Rdata"]] = {}


def register(cls: Type["Rdata"]) -> Type["Rdata"]:
    _REGISTRY[cls.rtype] = cls
    return cls


class Rdata:
    """Base class for typed rdata.  Instances are immutable and hashable."""

    rtype: int = 0

    def to_wire(self) -> bytes:
        raise NotImplementedError

    def canonical_wire(self) -> bytes:
        """Wire form for DNSSEC signing (names lowercased, no compression)."""
        return self.to_wire()

    def to_text(self, origin: Name | None = None) -> str:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "Rdata":
        """Decode from a message buffer (names in rdata may be compressed)."""
        raise NotImplementedError

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "Rdata":
        raise NotImplementedError

    # Identity is by type + canonical wire form, so A(1.2.3.4) == A(1.2.3.4)
    # and name case differences don't create duplicate records.

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rdata):
            return NotImplemented
        return (
            self.rtype == other.rtype
            and self.canonical_wire() == other.canonical_wire()
        )

    def __lt__(self, other: "Rdata") -> bool:
        # RFC 4034 §6.3 canonical rdata ordering within an RRset.
        return self.canonical_wire() < other.canonical_wire()

    def __hash__(self) -> int:
        return hash((self.rtype, self.canonical_wire()))

    def __repr__(self) -> str:
        return f"<{c.type_to_text(self.rtype)} {self.to_text()}>"


def _require_tokens(tokens: Sequence[str], count: int, what: str) -> None:
    if len(tokens) != count:
        raise ZoneFileError(f"{what} needs {count} fields, got {len(tokens)}")


@register
class A(Rdata):
    """IPv4 address record."""

    rtype = c.TYPE_A
    __slots__ = ("address",)

    def __init__(self, address: str) -> None:
        parts = address.split(".")
        if len(parts) != 4 or not all(
            p.isdigit() and 0 <= int(p) <= 255 for p in parts
        ):
            raise ZoneFileError(f"bad IPv4 address {address!r}")
        self.address = ".".join(str(int(p)) for p in parts)

    def to_wire(self) -> bytes:
        return bytes(int(p) for p in self.address.split("."))

    def to_text(self, origin: Name | None = None) -> str:
        return self.address

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "A":
        if rdlength != 4:
            raise WireFormatError("A rdata must be 4 bytes")
        return cls(".".join(str(b) for b in buf[offset : offset + 4]))

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "A":
        _require_tokens(tokens, 1, "A")
        return cls(tokens[0])


@register
class AAAA(Rdata):
    """IPv6 address record."""

    rtype = c.TYPE_AAAA
    __slots__ = ("packed",)

    def __init__(self, address: str) -> None:
        self.packed = self._parse(address)

    @staticmethod
    def _parse(address: str) -> bytes:
        if "::" in address:
            head, _, tail = address.partition("::")
            head_groups = head.split(":") if head else []
            tail_groups = tail.split(":") if tail else []
            missing = 8 - len(head_groups) - len(tail_groups)
            if missing < 1:
                raise ZoneFileError(f"bad IPv6 address {address!r}")
            groups = head_groups + ["0"] * missing + tail_groups
        else:
            groups = address.split(":")
        if len(groups) != 8:
            raise ZoneFileError(f"bad IPv6 address {address!r}")
        try:
            return b"".join(struct.pack(">H", int(g, 16)) for g in groups)
        except ValueError as exc:
            raise ZoneFileError(f"bad IPv6 address {address!r}") from exc

    def to_wire(self) -> bytes:
        return self.packed

    def to_text(self, origin: Name | None = None) -> str:
        groups = [
            f"{struct.unpack_from('>H', self.packed, i * 2)[0]:x}"
            for i in range(8)
        ]
        return ":".join(groups)

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "AAAA":
        if rdlength != 16:
            raise WireFormatError("AAAA rdata must be 16 bytes")
        instance = cls.__new__(cls)
        instance.packed = bytes(buf[offset : offset + 16])
        return instance

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "AAAA":
        _require_tokens(tokens, 1, "AAAA")
        return cls(tokens[0])


class _SingleName(Rdata):
    """Shared implementation for NS / CNAME / PTR."""

    __slots__ = ("target",)

    def __init__(self, target: Name) -> None:
        self.target = target

    def to_wire(self) -> bytes:
        return self.target.to_wire()

    def canonical_wire(self) -> bytes:
        return self.target.canonical_wire()

    def to_text(self, origin: Name | None = None) -> str:
        return self.target.to_text()

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int):
        target, _ = Name.from_wire(buf, offset)
        return cls(target)

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None):
        _require_tokens(tokens, 1, c.type_to_text(cls.rtype))
        return cls(Name.from_text(tokens[0], origin))


@register
class NS(_SingleName):
    """Name server record."""

    rtype = c.TYPE_NS


@register
class CNAME(_SingleName):
    """Canonical name (alias) record."""

    rtype = c.TYPE_CNAME


@register
class PTR(_SingleName):
    """Pointer record (reverse mapping)."""

    rtype = c.TYPE_PTR


@register
class MX(Rdata):
    """Mail exchanger record."""

    rtype = c.TYPE_MX
    __slots__ = ("preference", "exchange")

    def __init__(self, preference: int, exchange: Name) -> None:
        if not 0 <= preference <= 0xFFFF:
            raise ZoneFileError("MX preference out of range")
        self.preference = preference
        self.exchange = exchange

    def to_wire(self) -> bytes:
        return struct.pack(">H", self.preference) + self.exchange.to_wire()

    def canonical_wire(self) -> bytes:
        return struct.pack(">H", self.preference) + self.exchange.canonical_wire()

    def to_text(self, origin: Name | None = None) -> str:
        return f"{self.preference} {self.exchange.to_text()}"

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "MX":
        if rdlength < 3:
            raise WireFormatError("MX rdata too short")
        (preference,) = struct.unpack_from(">H", buf, offset)
        exchange, _ = Name.from_wire(buf, offset + 2)
        return cls(preference, exchange)

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "MX":
        _require_tokens(tokens, 2, "MX")
        return cls(int(tokens[0]), Name.from_text(tokens[1], origin))


@register
class TXT(Rdata):
    """Text record: one or more character strings."""

    rtype = c.TYPE_TXT
    __slots__ = ("strings",)

    def __init__(self, strings: Sequence[bytes]) -> None:
        strings = tuple(strings)
        if not strings:
            raise ZoneFileError("TXT needs at least one string")
        for s in strings:
            if len(s) > 255:
                raise ZoneFileError("TXT string exceeds 255 bytes")
        self.strings = strings

    def to_wire(self) -> bytes:
        return b"".join(bytes((len(s),)) + s for s in self.strings)

    def to_text(self, origin: Name | None = None) -> str:
        return " ".join(
            '"' + s.decode("latin-1").replace("\\", "\\\\").replace('"', '\\"') + '"'
            for s in self.strings
        )

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "TXT":
        end = offset + rdlength
        strings: List[bytes] = []
        while offset < end:
            length = buf[offset]
            offset += 1
            if offset + length > end:
                raise WireFormatError("truncated TXT string")
            strings.append(bytes(buf[offset : offset + length]))
            offset += length
        return cls(strings)

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "TXT":
        if not tokens:
            raise ZoneFileError("TXT needs at least one string")
        strings = []
        for token in tokens:
            if token.startswith('"') and token.endswith('"') and len(token) >= 2:
                token = token[1:-1]
            strings.append(
                token.replace('\\"', '"').replace("\\\\", "\\").encode("latin-1")
            )
        return cls(strings)


@register
class SOA(Rdata):
    """Start of authority record."""

    rtype = c.TYPE_SOA
    __slots__ = ("mname", "rname", "serial", "refresh", "retry", "expire", "minimum")

    def __init__(
        self,
        mname: Name,
        rname: Name,
        serial: int,
        refresh: int,
        retry: int,
        expire: int,
        minimum: int,
    ) -> None:
        self.mname = mname
        self.rname = rname
        for field_name, value in (
            ("serial", serial),
            ("refresh", refresh),
            ("retry", retry),
            ("expire", expire),
            ("minimum", minimum),
        ):
            if not 0 <= value <= 0xFFFFFFFF:
                raise ZoneFileError(f"SOA {field_name} out of range")
        self.serial = serial
        self.refresh = refresh
        self.retry = retry
        self.expire = expire
        self.minimum = minimum

    def with_serial(self, serial: int) -> "SOA":
        return SOA(
            self.mname,
            self.rname,
            serial,
            self.refresh,
            self.retry,
            self.expire,
            self.minimum,
        )

    def _tail(self) -> bytes:
        return struct.pack(
            ">IIIII", self.serial, self.refresh, self.retry, self.expire, self.minimum
        )

    def to_wire(self) -> bytes:
        return self.mname.to_wire() + self.rname.to_wire() + self._tail()

    def canonical_wire(self) -> bytes:
        return self.mname.canonical_wire() + self.rname.canonical_wire() + self._tail()

    def to_text(self, origin: Name | None = None) -> str:
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "SOA":
        mname, offset = Name.from_wire(buf, offset)
        rname, offset = Name.from_wire(buf, offset)
        if offset + 20 > len(buf):
            raise WireFormatError("truncated SOA")
        serial, refresh, retry, expire, minimum = struct.unpack_from(
            ">IIIII", buf, offset
        )
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "SOA":
        _require_tokens(tokens, 7, "SOA")
        return cls(
            Name.from_text(tokens[0], origin),
            Name.from_text(tokens[1], origin),
            *(int(t) for t in tokens[2:]),
        )


@register
class KEY(Rdata):
    """RFC 2535 KEY record carrying the zone's public key.

    The public key field uses the RFC 3110 RSA layout: exponent length,
    exponent, modulus.
    """

    rtype = c.TYPE_KEY
    __slots__ = ("flags", "protocol", "algorithm", "public_key")

    # Flags value for a zone key (RFC 2535 §3.1.2: zone-key bit set).
    ZONE_KEY_FLAGS = 0x0100

    def __init__(
        self, flags: int, protocol: int, algorithm: int, public_key: bytes
    ) -> None:
        self.flags = flags
        self.protocol = protocol
        self.algorithm = algorithm
        self.public_key = public_key

    @classmethod
    def for_rsa(cls, modulus: int, exponent: int) -> "KEY":
        """Build a zone KEY record from RSA parameters (RFC 3110 layout)."""
        exp_bytes = exponent.to_bytes((exponent.bit_length() + 7) // 8, "big")
        mod_bytes = modulus.to_bytes((modulus.bit_length() + 7) // 8, "big")
        if len(exp_bytes) <= 255:
            blob = bytes((len(exp_bytes),)) + exp_bytes + mod_bytes
        else:
            blob = b"\x00" + struct.pack(">H", len(exp_bytes)) + exp_bytes + mod_bytes
        return cls(cls.ZONE_KEY_FLAGS, 3, c.ALG_RSASHA1, blob)

    def rsa_parameters(self) -> Tuple[int, int]:
        """Extract ``(modulus, exponent)`` from the RFC 3110 key blob."""
        blob = self.public_key
        if not blob:
            raise WireFormatError("empty KEY public key")
        exp_len = blob[0]
        offset = 1
        if exp_len == 0:
            if len(blob) < 3:
                raise WireFormatError("truncated KEY exponent length")
            (exp_len,) = struct.unpack_from(">H", blob, 1)
            offset = 3
        if offset + exp_len > len(blob):
            raise WireFormatError("truncated KEY exponent")
        exponent = int.from_bytes(blob[offset : offset + exp_len], "big")
        modulus = int.from_bytes(blob[offset + exp_len :], "big")
        return modulus, exponent

    def key_tag(self) -> int:
        """RFC 2535 App. C key tag over the rdata (modern RFC 4034 variant)."""
        rdata = self.to_wire()
        acc = 0
        for i, byte in enumerate(rdata):
            acc += byte << 8 if i % 2 == 0 else byte
        acc += (acc >> 16) & 0xFFFF
        return acc & 0xFFFF

    def to_wire(self) -> bytes:
        return (
            struct.pack(">HBB", self.flags, self.protocol, self.algorithm)
            + self.public_key
        )

    def to_text(self, origin: Name | None = None) -> str:
        import base64

        key_b64 = base64.b64encode(self.public_key).decode()
        return f"{self.flags} {self.protocol} {self.algorithm} {key_b64}"

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "KEY":
        if rdlength < 4:
            raise WireFormatError("KEY rdata too short")
        flags, protocol, algorithm = struct.unpack_from(">HBB", buf, offset)
        public_key = bytes(buf[offset + 4 : offset + rdlength])
        return cls(flags, protocol, algorithm, public_key)

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "KEY":
        import base64

        if len(tokens) < 4:
            raise ZoneFileError("KEY needs flags protocol algorithm key")
        return cls(
            int(tokens[0]),
            int(tokens[1]),
            int(tokens[2]),
            base64.b64decode("".join(tokens[3:])),
        )


@register
class SIG(Rdata):
    """RFC 2535 SIG record: a signature over an RRset.

    The signed data is ``rdata-without-signature || canonical RRset``
    (RFC 2535 §4.1.8); :mod:`repro.dns.dnssec` builds that buffer.
    """

    rtype = c.TYPE_SIG
    __slots__ = (
        "type_covered",
        "algorithm",
        "labels",
        "original_ttl",
        "expiration",
        "inception",
        "key_tag",
        "signer",
        "signature",
    )

    def __init__(
        self,
        type_covered: int,
        algorithm: int,
        labels: int,
        original_ttl: int,
        expiration: int,
        inception: int,
        key_tag: int,
        signer: Name,
        signature: bytes,
    ) -> None:
        self.type_covered = type_covered
        self.algorithm = algorithm
        self.labels = labels
        self.original_ttl = original_ttl
        self.expiration = expiration
        self.inception = inception
        self.key_tag = key_tag
        self.signer = signer
        self.signature = signature

    def header_wire(self, canonical: bool = True) -> bytes:
        """The rdata prefix covered by the signature (everything but sig)."""
        signer = self.signer.canonical_wire() if canonical else self.signer.to_wire()
        return (
            struct.pack(
                ">HBBIIIH",
                self.type_covered,
                self.algorithm,
                self.labels,
                self.original_ttl,
                self.expiration,
                self.inception,
                self.key_tag,
            )
            + signer
        )

    def to_wire(self) -> bytes:
        return self.header_wire(canonical=False) + self.signature

    def canonical_wire(self) -> bytes:
        return self.header_wire(canonical=True) + self.signature

    def to_text(self, origin: Name | None = None) -> str:
        import base64

        sig_b64 = base64.b64encode(self.signature).decode()
        return (
            f"{c.type_to_text(self.type_covered)} {self.algorithm} {self.labels} "
            f"{self.original_ttl} {self.expiration} {self.inception} "
            f"{self.key_tag} {self.signer.to_text()} {sig_b64}"
        )

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "SIG":
        end = offset + rdlength
        if rdlength < 18:
            raise WireFormatError("SIG rdata too short")
        (
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
        ) = struct.unpack_from(">HBBIIIH", buf, offset)
        signer, offset = Name.from_wire(buf, offset + 18)
        if offset > end:
            raise WireFormatError("SIG signer name overruns rdata")
        return cls(
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer,
            bytes(buf[offset:end]),
        )

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "SIG":
        import base64

        if len(tokens) < 9:
            raise ZoneFileError("SIG needs 9 fields")
        return cls(
            c.type_from_text(tokens[0]),
            int(tokens[1]),
            int(tokens[2]),
            int(tokens[3]),
            int(tokens[4]),
            int(tokens[5]),
            int(tokens[6]),
            Name.from_text(tokens[7], origin),
            base64.b64decode("".join(tokens[8:])),
        )


@register
class NXT(Rdata):
    """RFC 2535 NXT record: authenticated denial of existence.

    Points to the next owner name in the zone's canonical ordering and
    carries a bitmap of the types present at this owner.  Dynamic updates
    that create or delete owner names must maintain the NXT chain and
    re-sign the affected NXT records — this is why an add signs four SIG
    records and a delete two (§5.2 of the paper).

    The RFC 2535 bitmap covers types 0..127; type NXT itself (30) fits.
    """

    rtype = c.TYPE_NXT
    __slots__ = ("next_name", "types")

    def __init__(self, next_name: Name, types: Sequence[int]) -> None:
        self.next_name = next_name
        cleaned = sorted({t for t in types})
        for t in cleaned:
            if not 0 < t <= 127:
                raise ZoneFileError(f"NXT bitmap cannot encode type {t}")
        self.types = tuple(cleaned)

    def _bitmap(self) -> bytes:
        if not self.types:
            return b""
        length = (max(self.types) // 8) + 1
        bitmap = bytearray(length)
        for t in self.types:
            bitmap[t // 8] |= 0x80 >> (t % 8)
        return bytes(bitmap)

    def to_wire(self) -> bytes:
        return self.next_name.to_wire() + self._bitmap()

    def canonical_wire(self) -> bytes:
        return self.next_name.canonical_wire() + self._bitmap()

    def to_text(self, origin: Name | None = None) -> str:
        type_names = " ".join(c.type_to_text(t) for t in self.types)
        return f"{self.next_name.to_text()} {type_names}".rstrip()

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "NXT":
        end = offset + rdlength
        next_name, offset = Name.from_wire(buf, offset)
        if offset > end:
            raise WireFormatError("NXT name overruns rdata")
        types = []
        for i, byte in enumerate(buf[offset:end]):
            for bit in range(8):
                if byte & (0x80 >> bit):
                    types.append(i * 8 + bit)
        return cls(next_name, types)

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "NXT":
        if not tokens:
            raise ZoneFileError("NXT needs a next-name")
        next_name = Name.from_text(tokens[0], origin)
        types = [c.type_from_text(t) for t in tokens[1:]]
        return cls(next_name, types)


class GenericRdata(Rdata):
    """Opaque rdata for types without a dedicated class (RFC 3597 spirit)."""

    __slots__ = ("rtype_value", "data")

    def __init__(self, rtype: int, data: bytes) -> None:
        self.rtype_value = rtype
        self.data = data

    @property
    def rtype(self) -> int:  # type: ignore[override]
        return self.rtype_value

    def to_wire(self) -> bytes:
        return self.data

    def to_text(self, origin: Name | None = None) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"

    @classmethod
    def from_wire(cls, buf: bytes, offset: int, rdlength: int) -> "GenericRdata":
        raise NotImplementedError("use decode_rdata")

    @classmethod
    def from_text(cls, tokens: Sequence[str], origin: Name | None) -> "GenericRdata":
        raise NotImplementedError("use rdata_from_text")


def decode_rdata(rtype: int, buf: bytes, offset: int, rdlength: int) -> Rdata:
    """Decode rdata of ``rtype`` from a message buffer."""
    if offset + rdlength > len(buf):
        raise WireFormatError("rdata overruns message")
    cls = _REGISTRY.get(rtype)
    if cls is None:
        return GenericRdata(rtype, bytes(buf[offset : offset + rdlength]))
    return cls.from_wire(buf, offset, rdlength)


def rdata_from_text(
    rtype: int, tokens: Sequence[str], origin: Name | None = None
) -> Rdata:
    """Parse rdata of ``rtype`` from master-file tokens."""
    if tokens and tokens[0] == "\\#":
        if len(tokens) < 2:
            raise ZoneFileError("generic rdata needs a length")
        data = bytes.fromhex("".join(tokens[2:]))
        if len(data) != int(tokens[1]):
            raise ZoneFileError("generic rdata length mismatch")
        return GenericRdata(rtype, data)
    cls = _REGISTRY.get(rtype)
    if cls is None:
        raise ZoneFileError(
            f"no text parser for type {c.type_to_text(rtype)}; use \\# form"
        )
    return cls.from_text(tokens, origin)
