"""The zone database: every replica's master copy of one zone's data.

In the paper's design all replicas run "in primary mode" and each maintains
its own master copy (§3.3).  The zone is a mapping from owner names to
per-type RRsets.  All mutation is funneled through explicit methods so the
replicated state machine stays deterministic, and :meth:`digest` gives a
canonical hash used to compare replica states in tests and recovery.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import Rdata, SOA
from repro.dns.rendercache import CanonicalRenderCache
from repro.dns.rrset import RRset
from repro.errors import ZoneError


class Zone:
    """Authoritative data for one zone, keyed by owner name and type."""

    def __init__(
        self, origin: Name, render_cache: Optional[CanonicalRenderCache] = None
    ) -> None:
        self.origin = origin
        self._nodes: Dict[Name, Dict[int, RRset]] = {}
        # The explicit annotation also keys the taint analyzer's
        # annotated-attribute call resolution (store/lookup are no longer
        # globally unique method names).
        self.render: CanonicalRenderCache = (
            render_cache if render_cache is not None else CanonicalRenderCache()
        )

    # -- lookup -----------------------------------------------------------------

    def __contains__(self, name: Name) -> bool:
        return name in self._nodes

    def node(self, name: Name) -> Optional[Dict[int, RRset]]:
        return self._nodes.get(name)

    def find_rrset(self, name: Name, rtype: int) -> Optional[RRset]:
        node = self._nodes.get(name)
        if node is None:
            return None
        return node.get(rtype)

    def rrsets_at(self, name: Name) -> List[RRset]:
        node = self._nodes.get(name)
        if node is None:
            return []
        return [node[rtype] for rtype in sorted(node)]

    @property
    def soa(self) -> SOA:
        rrset = self.find_rrset(self.origin, c.TYPE_SOA)
        if rrset is None:
            raise ZoneError(f"zone {self.origin.to_text()} has no SOA")
        return rrset.rdatas[0]  # type: ignore[return-value]

    @property
    def soa_rrset(self) -> RRset:
        rrset = self.find_rrset(self.origin, c.TYPE_SOA)
        if rrset is None:
            raise ZoneError(f"zone {self.origin.to_text()} has no SOA")
        return rrset

    @property
    def serial(self) -> int:
        return self.soa.serial

    def names(self) -> List[Name]:
        """All owner names in DNSSEC canonical order."""
        return sorted(self._nodes)

    def __iter__(self) -> Iterator[RRset]:
        """All RRsets, names in canonical order, types ascending."""
        for name in self.names():
            node = self._nodes[name]
            for rtype in sorted(node):
                yield node[rtype]

    def rrset_count(self) -> int:
        return sum(len(node) for node in self._nodes.values())

    def record_count(self) -> int:
        return sum(
            len(rrset) for node in self._nodes.values() for rrset in node.values()
        )

    # -- membership / structure ---------------------------------------------------

    def contains_name(self, name: Name) -> bool:
        """RFC 2136 "name is in use": any RR exists at the name."""
        return bool(self._nodes.get(name))

    def is_in_zone(self, name: Name) -> bool:
        return name.is_subdomain_of(self.origin)

    def is_delegation(self, name: Name) -> bool:
        """True if ``name`` is a zone cut (NS records below the apex)."""
        if name == self.origin:
            return False
        node = self._nodes.get(name)
        return bool(node and c.TYPE_NS in node)

    def closest_delegation(self, name: Name) -> Optional[Name]:
        """The zone cut at or above ``name``, if any (for referrals)."""
        if not name.is_subdomain_of(self.origin):
            return None
        current = name
        while current != self.origin:
            if self.is_delegation(current):
                return current
            current = current.parent()
        return None

    # -- mutation -------------------------------------------------------------------

    def put_rrset(self, rrset: RRset) -> None:
        """Insert or replace the RRset for (name, type)."""
        self._check_in_zone(rrset.name)
        if rrset.rclass != c.CLASS_IN:
            raise ZoneError("zone data must be class IN")
        # put_rrset is the authorized mutation primitive: every remote
        # path into it runs behind TSIG verification and RFC 2136
        # prerequisite checks (update.py), and _check_in_zone above keeps
        # the key inside the zone's namespace.
        # repro-lint: disable=T404
        node = self._nodes.setdefault(rrset.name, {})
        # RFC 2535 §2.3.5: in signed zones SIG and NXT coexist with CNAME.
        cname_compatible = (c.TYPE_CNAME, c.TYPE_SIG, c.TYPE_NXT)
        if rrset.rtype == c.TYPE_CNAME and any(
            t not in cname_compatible for t in node
        ):
            raise ZoneError(f"CNAME clashes with other data at {rrset.name.to_text()}")
        if (
            rrset.rtype not in cname_compatible
            and c.TYPE_CNAME in node
        ):
            raise ZoneError(f"data clashes with CNAME at {rrset.name.to_text()}")
        node[rrset.rtype] = rrset
        self.render.invalidate(rrset.name, rrset.rtype)

    def add_rdata(self, name: Name, rtype: int, ttl: int, rdata: Rdata) -> bool:
        """Add one record; returns False if it already existed.

        Per RFC 2136 §3.4.2.2 the new TTL wins for the whole RRset, and a
        CNAME add at a node with a CNAME replaces it.
        """
        self._check_in_zone(name)
        existing = self.find_rrset(name, rtype)
        if existing is None:
            self.put_rrset(RRset(name, rtype, ttl, [rdata]))
            return True
        if rtype == c.TYPE_CNAME or rtype == c.TYPE_SOA:
            self.put_rrset(RRset(name, rtype, ttl, [rdata]))
            return True
        if rdata in existing:
            if ttl != existing.ttl:
                self.put_rrset(
                    RRset(name, rtype, ttl, existing.rdatas)
                )
                return True
            return False
        self.put_rrset(RRset(name, rtype, ttl, existing.rdatas + (rdata,)))
        return True

    def delete_rdata(self, name: Name, rtype: int, rdata: Rdata) -> bool:
        """Delete one record; returns True if something was removed."""
        node = self._nodes.get(name)
        if node is None or rtype not in node:
            return False
        remaining = node[rtype].with_removed(rdata)
        if remaining is node[rtype]:
            return False
        if remaining is None:
            del node[rtype]
            if not node:
                del self._nodes[name]
            self.render.invalidate(name, rtype)
            return True
        if len(remaining) == len(node[rtype]):
            return False
        node[rtype] = remaining
        self.render.invalidate(name, rtype)
        return True

    def delete_rrset(self, name: Name, rtype: int) -> bool:
        node = self._nodes.get(name)
        if node is None or rtype not in node:
            return False
        del node[rtype]
        if not node:
            del self._nodes[name]
        self.render.invalidate(name, rtype)
        return True

    def delete_name(self, name: Name, keep_types: Tuple[int, ...] = ()) -> bool:
        node = self._nodes.get(name)
        if node is None:
            return False
        if keep_types:
            kept = {t: rrset for t, rrset in node.items() if t in keep_types}
            removed = len(kept) != len(node)
            if kept:
                self._nodes[name] = kept
            else:
                del self._nodes[name]
            if removed:
                self.render.invalidate(name)
            return removed
        del self._nodes[name]
        self.render.invalidate(name)
        return True

    def bump_serial(self) -> int:
        """Increment the SOA serial (serial arithmetic, RFC 1982 simplified)."""
        soa_rrset = self.soa_rrset
        soa = self.soa
        new_serial = (soa.serial + 1) & 0xFFFFFFFF or 1
        self.put_rrset(
            RRset(
                soa_rrset.name,
                c.TYPE_SOA,
                soa_rrset.ttl,
                [soa.with_serial(new_serial)],
            )
        )
        return new_serial

    def _check_in_zone(self, name: Name) -> None:
        if not self.is_in_zone(name):
            raise ZoneError(
                f"{name.to_text()} is not in zone {self.origin.to_text()}"
            )

    # -- canonical rendering ------------------------------------------------------

    def canonical_rrset_wire(self, rrset: RRset) -> bytes:
        """Canonical wire for an RRset, memoized while it lives in this zone.

        Cache entries are keyed ``(name, rtype, serial)`` and only used
        when ``rrset`` is the zone's *current* RRset for that key (an
        identity check), so stale or foreign RRsets always render fresh.
        """
        try:
            serial = self.serial
        except ZoneError:
            return rrset.canonical_wire()
        if self.find_rrset(rrset.name, rrset.rtype) is not rrset:
            return rrset.canonical_wire()
        wire = self.render.lookup(rrset.name, rrset.rtype, serial)
        if wire is None:
            wire = rrset.canonical_wire()
            self.render.store(rrset.name, rrset.rtype, serial, wire)
        return wire

    # -- snapshots / comparison --------------------------------------------------------

    def copy(self) -> "Zone":
        # The clone gets a fresh (empty) render cache: working copies are
        # short-lived and the committed zone re-keys its own cache.
        clone = Zone(self.origin)
        for name, node in self._nodes.items():
            clone._nodes[name] = dict(node)
        return clone

    def digest(self) -> bytes:
        """Canonical SHA-256 over all RRsets — replica state fingerprint."""
        h = hashlib.sha256()
        for rrset in self:
            h.update(self.canonical_rrset_wire(rrset))
        return h.digest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Zone):
            return NotImplemented
        return self.origin == other.origin and self.digest() == other.digest()

    def __hash__(self) -> int:
        return hash((self.origin, self.digest()))

    def to_text(self) -> str:
        lines = [f"$ORIGIN {self.origin.to_text()}"]
        apex = self.rrsets_at(self.origin)
        soa_first = sorted(apex, key=lambda r: (r.rtype != c.TYPE_SOA, r.rtype))
        for rrset in soa_first:
            lines.append(rrset.to_text(self.origin))
        for name in self.names():
            if name == self.origin:
                continue
            for rrset in self.rrsets_at(name):
                lines.append(rrset.to_text(self.origin))
        return "\n".join(lines) + "\n"
