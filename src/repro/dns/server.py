"""Authoritative query processing — the query half of our `named`.

Implements the RFC 1034 §4.3.2 algorithm for an authoritative-only server:
exact matches, ANY queries, CNAME chasing within the zone, delegation
referrals, NXDOMAIN/NODATA with the SOA in the authority section, and —
when the zone is signed — inclusion of the covering SIG records so DNSSEC
clients can validate responses (the paper's G1' hinges on those
signatures).
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro.dns import constants as c
from repro.dns.message import Message, make_response, rrset_to_rrs
from repro.dns.name import Name
from repro.dns.rrset import RRset
from repro.dns.zone import Zone


class AuthoritativeServer:
    """Deterministic query engine over a single zone.

    This object is the per-replica "named"; the replicated state machine
    executes queries and updates against it.  Determinism matters: every
    honest replica must produce byte-identical responses (§3.3).
    """

    def __init__(self, zone: Zone, include_sigs: bool = True) -> None:
        self.zone = zone
        self.include_sigs = include_sigs

    # -- public API ---------------------------------------------------------

    def handle_query(self, query: Message) -> Message:
        """Process one standard query and return the response."""
        if query.opcode != c.OPCODE_QUERY:
            return make_response(query, c.RCODE_NOTIMP)
        if len(query.questions) != 1:
            return make_response(query, c.RCODE_FORMERR)
        question = query.questions[0]
        if question.rclass not in (c.CLASS_IN, c.CLASS_ANY):
            return make_response(query, c.RCODE_REFUSED)
        if not self.zone.is_in_zone(question.name):
            response = make_response(query, c.RCODE_REFUSED)
            return response

        response = make_response(query)
        response.set_flag(c.FLAG_AA)

        delegation = self.zone.closest_delegation(question.name)
        if delegation is not None and not (
            delegation == question.name and question.rtype == c.TYPE_NS
        ):
            self._add_referral(response, delegation)
            return response

        self._answer_question(response, question.name, question.rtype)
        return response

    # -- internals ------------------------------------------------------------

    def _answer_question(
        self, response: Message, qname: Name, qtype: int, cname_depth: int = 0
    ) -> None:
        node_rrsets = self.zone.rrsets_at(qname)
        if not node_rrsets:
            self._nxdomain_or_nodata(response, qname, nxdomain=True)
            return

        if qtype == c.TYPE_ANY:
            for rrset in node_rrsets:
                self._add_answer(response, rrset)
            return

        match = self.zone.find_rrset(qname, qtype)
        if match is not None:
            self._add_answer(response, match)
            self._add_useful_additionals(response, match)
            return

        cname = self.zone.find_rrset(qname, c.TYPE_CNAME)
        if cname is not None and qtype != c.TYPE_CNAME:
            self._add_answer(response, cname)
            target: Name = cname.rdatas[0].target  # type: ignore[attr-defined]
            if self.zone.is_in_zone(target) and cname_depth < 8:
                self._answer_question(response, target, qtype, cname_depth + 1)
            return

        # Name exists, type doesn't: NODATA.
        self._nxdomain_or_nodata(response, qname, nxdomain=False)

    def _add_answer(self, response: Message, rrset: RRset) -> None:
        response.answers.extend(rrset_to_rrs(rrset))
        if self.include_sigs:
            sig = self._covering_sig(rrset)
            if sig is not None:
                response.answers.extend(rrset_to_rrs(sig))

    def _covering_sig(self, rrset: RRset) -> Optional[RRset]:
        """The SIG RRset covering ``rrset``'s type, if the zone is signed."""
        sigs = self.zone.find_rrset(rrset.name, c.TYPE_SIG)
        if sigs is None:
            return None
        covering = [
            rdata
            for rdata in sigs
            if rdata.type_covered == rrset.rtype  # type: ignore[attr-defined]
        ]
        if not covering:
            return None
        return RRset(rrset.name, c.TYPE_SIG, sigs.ttl, covering)

    def _add_useful_additionals(self, response: Message, rrset: RRset) -> None:
        """Glue-style additional data for NS/MX targets inside the zone."""
        targets: List[Name] = []
        for rdata in rrset:
            if rrset.rtype == c.TYPE_NS:
                targets.append(rdata.target)  # type: ignore[attr-defined]
            elif rrset.rtype == c.TYPE_MX:
                targets.append(rdata.exchange)  # type: ignore[attr-defined]
        seen = {
            (rr.name, rr.rtype) for rr in response.answers + response.additional
        }
        for target in targets:
            if not self.zone.is_in_zone(target):
                continue
            for rtype in (c.TYPE_A, c.TYPE_AAAA):
                address = self.zone.find_rrset(target, rtype)
                if address is not None and (target, rtype) not in seen:
                    response.additional.extend(rrset_to_rrs(address))
                    seen.add((target, rtype))

    def _add_referral(self, response: Message, delegation: Name) -> None:
        """Answer with a referral to the delegated zone (no AA flag)."""
        response.set_flag(c.FLAG_AA, False)
        ns_rrset = self.zone.find_rrset(delegation, c.TYPE_NS)
        if ns_rrset is None:
            response.rcode = c.RCODE_SERVFAIL
            return
        response.authority.extend(rrset_to_rrs(ns_rrset))
        for rdata in ns_rrset:
            target: Name = rdata.target  # type: ignore[attr-defined]
            if not self.zone.is_in_zone(target):
                continue
            for rtype in (c.TYPE_A, c.TYPE_AAAA):
                glue = self.zone.find_rrset(target, rtype)
                if glue is not None:
                    response.additional.extend(rrset_to_rrs(glue))

    def _nxdomain_or_nodata(
        self, response: Message, qname: Name, nxdomain: bool
    ) -> None:
        if nxdomain:
            response.rcode = c.RCODE_NXDOMAIN
        soa = self.zone.find_rrset(self.zone.origin, c.TYPE_SOA)
        if soa is not None:
            response.authority.extend(rrset_to_rrs(soa))
            if self.include_sigs:
                sig = self._covering_sig(soa)
                if sig is not None:
                    response.authority.extend(rrset_to_rrs(sig))
        # RFC 2535 authenticated denial: the NXT whose interval covers
        # the (missing) name, or the name's own NXT for NODATA, plus its
        # SIG so validating resolvers can cache and replay the proof.
        nxt = self._covering_nxt(qname, nxdomain)
        if nxt is not None:
            response.authority.extend(rrset_to_rrs(nxt))
            if self.include_sigs:
                sig = self._covering_sig(nxt)
                if sig is not None:
                    response.authority.extend(rrset_to_rrs(sig))

    def _covering_nxt(self, qname: Name, nxdomain: bool) -> Optional[RRset]:
        """The zone's NXT proving ``qname`` (or its type) absent."""
        if not nxdomain:
            return self.zone.find_rrset(qname, c.TYPE_NXT)
        # The covering NXT lives at the canonical predecessor of qname
        # among names that carry an NXT.  Any in-zone name sorts at or
        # after the apex, so walking backwards needs no wrap-around.
        names = self.zone.names()
        idx = bisect.bisect_left(names, qname)
        # Bounded: bisect_left returns <= len(names), so the walk visits
        # at most the zone's own names regardless of the queried qname.
        # repro-lint: disable=T403
        for i in range(idx - 1, -1, -1):
            nxt = self.zone.find_rrset(names[i], c.TYPE_NXT)
            if nxt is not None:
                return nxt
        return None
