"""Resolver-tier caches: positive answers and NXT denial proofs.

The validating resolver tier (DESIGN.md §5g) keeps two bounded caches in
front of the replicated authoritative service:

* :class:`PositiveAnswerCache` — completed, verified answer sections
  keyed ``(qname, qtype, zone serial)``, the same keying discipline as
  the replica's signed-answer cache, with RFC 2181 TTL expiry.
* :class:`NxtProofCache` — RFC 2535 NXT denial proofs with
  *covering-interval* lookup (RFC 8198 aggressive use): one cached
  ``a.example ↦ d.example`` NXT synthesizes NXDOMAIN for ``b.example``
  and NODATA for covered owner names, without touching the replicas.

Both caches are strictly bounded LRU maps (KeyTrap hygiene — every
key is attacker-influenceable, so growth must be capped), mirror the
``stats`` discipline of :mod:`repro.dns.rendercache`, and are enumerated
in :data:`repro.util.cachestats.AUDITED_INSTANCE_CACHES`.

Serial keying gives cheap whole-zone invalidation: a serial bump makes
every old-serial key unreachable, and :meth:`invalidate_origin` reclaims
the stale entries eagerly so the bound stays available for live data.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.dns import constants as c
from repro.dns.message import RR
from repro.dns.name import Name
from repro.dns.rdata import NXT

#: Default bounds: sized like the replica's answer cache (positive) and
#: the zone's NXT chain plus adversarial churn headroom (negative).
DEFAULT_POSITIVE_ENTRIES = 4096
DEFAULT_NEGATIVE_ENTRIES = 2048

_PosKey = Tuple[Name, int, int]  # (qname, qtype, serial)
_NegKey = Tuple[Name, int, Name]  # (origin, serial, NXT owner)


@dataclass(frozen=True)
class CachedAnswer:
    """One positive cache entry: a completed answer section."""

    origin: Name
    serial: int
    rcode: int
    answer_rrs: Tuple[RR, ...]
    verified: bool
    expires: float


@dataclass(frozen=True)
class NxtProof:
    """One cached denial proof: a covering NXT plus its authority bytes.

    ``authority_rrs`` is the *exact* authority section of the observed
    authoritative denial (SOA, SIG(SOA), NXT, SIG(NXT) in emission
    order), so a synthesized negative response replays the very bytes
    the authoritative service would have returned.
    """

    origin: Name
    serial: int
    owner: Name
    nxt: NXT
    authority_rrs: Tuple[RR, ...]
    verified: bool
    expires: float

    def covers(self, qname: Name) -> bool:
        """True if ``qname`` falls strictly inside this NXT's interval."""
        nxt_next = self.nxt.next_name
        if self.owner < nxt_next:
            return self.owner < qname < nxt_next
        # Wrap-around NXT (last owner points back to the apex): the
        # interval covers everything after the owner plus everything
        # before the apex successor.
        return qname > self.owner or qname < nxt_next

    def denies_type(self, qtype: int) -> bool:
        """True if the type bitmap proves ``qtype`` absent at the owner."""
        return qtype not in self.nxt.types

    @property
    def is_delegation_cut(self) -> bool:
        """NXT at a zone cut: names below it get referrals, not NXDOMAIN."""
        return c.TYPE_NS in self.nxt.types and self.owner != self.origin


class PositiveAnswerCache:
    """Bounded LRU map ``(qname, qtype, serial) -> CachedAnswer``."""

    __slots__ = ("max_entries", "_entries", "_by_origin", "stats")

    def __init__(self, max_entries: int = DEFAULT_POSITIVE_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("positive answer cache needs at least one entry")
        self.max_entries = max_entries
        # dict preserves insertion order; re-inserting on hit gives LRU.
        self._entries: Dict[_PosKey, CachedAnswer] = {}
        self._by_origin: Dict[Name, Set[_PosKey]] = {}
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "expired": 0,
            "invalidated": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, qname: Name, qtype: int, serial: int, now: float
    ) -> Optional[CachedAnswer]:
        key = (qname, qtype, serial)
        entry = self._entries.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        if now >= entry.expires:
            self._drop(key)
            self.stats["expired"] += 1
            self.stats["misses"] += 1
            return None
        # Refresh recency; re-inserting a just-deleted key cannot grow
        # the dict past the store()-enforced bound.
        del self._entries[key]
        self._entries[key] = entry
        self.stats["hits"] += 1
        return entry

    def store(self, qname: Name, qtype: int, entry: CachedAnswer) -> None:
        key = (qname, qtype, entry.serial)
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.stats["evictions"] += 1
        # Bounded: the eviction branch above caps len(_entries) at
        # max_entries, and _by_origin only indexes live entry keys.
        self._entries[key] = entry
        self._by_origin.setdefault(entry.origin, set()).add(key)

    def invalidate_origin(
        self, origin: Name, keep_serial: Optional[int] = None
    ) -> int:
        """Drop an origin's entries; ``keep_serial`` spares that serial."""
        keys = self._by_origin.get(origin)
        if not keys:
            return 0
        doomed = [k for k in keys if keep_serial is None or k[2] != keep_serial]
        for key in doomed:
            self._drop(key)
            self.stats["invalidated"] += 1
        return len(doomed)

    def _drop(self, key: _PosKey) -> None:
        entry = self._entries.pop(key)
        keys = self._by_origin.get(entry.origin)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_origin[entry.origin]

    def clear(self) -> None:
        self._entries.clear()
        self._by_origin.clear()


class NxtProofCache:
    """Bounded LRU map of NXT denial proofs with covering-interval lookup.

    Entries are keyed ``(origin, serial, NXT owner)``; lookups bisect a
    per-``(origin, serial)`` sorted owner list to find the proof whose
    interval covers the query name (or sits exactly at it, for NODATA).
    """

    __slots__ = ("max_entries", "_entries", "_owners", "stats")

    def __init__(self, max_entries: int = DEFAULT_NEGATIVE_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("NXT proof cache needs at least one entry")
        self.max_entries = max_entries
        self._entries: Dict[_NegKey, NxtProof] = {}
        self._owners: Dict[Tuple[Name, int], List[Name]] = {}
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "expired": 0,
            "invalidated": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def store(self, proof: NxtProof) -> None:
        key = (proof.origin, proof.serial, proof.owner)
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.stats["evictions"] += 1
        # Bounded: the eviction branch above caps len(_entries) at
        # max_entries, and _owners only indexes live entry keys.
        self._entries[key] = proof
        owners = self._owners.setdefault((proof.origin, proof.serial), [])
        idx = bisect.bisect_left(owners, proof.owner)
        if idx >= len(owners) or owners[idx] != proof.owner:
            owners.insert(idx, proof.owner)

    def lookup(
        self, origin: Name, serial: int, qname: Name, qtype: int, now: float
    ) -> Optional[Tuple[str, NxtProof]]:
        """The proof denying ``(qname, qtype)``, as ``(kind, proof)``.

        ``kind`` is ``"nxdomain"`` (qname strictly inside a covering
        interval) or ``"nodata"`` (qname is the NXT owner and ``qtype``
        is absent from its bitmap).  Returns None on any miss.
        """
        owners = self._owners.get((origin, serial))
        if not owners:
            self.stats["misses"] += 1
            return None
        # Candidate owners: the canonical predecessor (covers interior
        # names and exact-owner NODATA) and the last owner (whose
        # wrap-around NXT covers names past the end of the chain).
        idx = bisect.bisect_right(owners, qname) - 1
        candidates = []
        if idx >= 0:
            candidates.append(owners[idx])
        if owners[-1] not in candidates:
            candidates.append(owners[-1])
        for owner in candidates:
            key = (origin, serial, owner)
            proof = self._entries.get(key)
            if proof is None:
                continue
            if now >= proof.expires:
                self._drop(key)
                self.stats["expired"] += 1
                continue
            if owner == qname:
                if proof.denies_type(qtype):
                    self._refresh(key, proof)
                    return ("nodata", proof)
                break  # the name exists with that type; nothing to deny
            if proof.covers(qname):
                if proof.is_delegation_cut and qname.is_subdomain_of(owner):
                    # Below a zone cut the authoritative answer is a
                    # referral; an NXT at the cut proves nothing here.
                    break
                self._refresh(key, proof)
                return ("nxdomain", proof)
        self.stats["misses"] += 1
        return None

    def invalidate_origin(
        self, origin: Name, keep_serial: Optional[int] = None
    ) -> int:
        """Drop an origin's proofs; ``keep_serial`` spares that serial."""
        doomed = [
            key
            for key in self._entries
            if key[0] == origin
            and (keep_serial is None or key[1] != keep_serial)
        ]
        for key in doomed:
            self._drop(key)
            self.stats["invalidated"] += 1
        return len(doomed)

    def _refresh(self, key: _NegKey, proof: NxtProof) -> None:
        # Recency refresh: re-inserting a just-deleted key cannot grow
        # the dict past the store()-enforced bound.
        del self._entries[key]
        self._entries[key] = proof
        self.stats["hits"] += 1

    def _drop(self, key: _NegKey) -> None:
        del self._entries[key]
        owners = self._owners.get((key[0], key[1]))
        if owners is not None:
            idx = bisect.bisect_left(owners, key[2])
            if idx < len(owners) and owners[idx] == key[2]:
                owners.pop(idx)
            if not owners:
                del self._owners[(key[0], key[1])]

    def clear(self) -> None:
        self._entries.clear()
        self._owners.clear()
