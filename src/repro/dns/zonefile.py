"""Master (zone) file parsing and writing (RFC 1035 §5).

Supports the constructs real zone files use: ``$ORIGIN`` and ``$TTL``
directives, relative names, ``@`` for the origin, blank owner fields
(inherit the previous owner), comments, quoted strings, and parentheses
for multi-line records (SOA).
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple

from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import rdata_from_text
from repro.dns.zone import Zone
from repro.errors import ZoneFileError

_TOKEN_RE = re.compile(r'"(?:[^"\\]|\\.)*"|[^\s]+')


def _strip_comment(line: str) -> str:
    """Remove a trailing ``;`` comment, respecting quoted strings."""
    in_quotes = False
    i = 0
    while i < len(line):
        char = line[i]
        if char == "\\":
            i += 2
            continue
        if char == '"':
            in_quotes = not in_quotes
        elif char == ";" and not in_quotes:
            return line[:i]
        i += 1
    return line


def _logical_lines(text: str) -> Iterator[Tuple[int, str, bool]]:
    """Yield ``(line_number, logical_line, owner_is_blank)`` entries.

    Parenthesized groups are joined into one logical line.  A record whose
    physical line starts with whitespace inherits the previous owner name.
    """
    pending: List[str] = []
    pending_start = 0
    pending_blank = False
    depth = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line.strip() and depth == 0:
            continue
        if depth == 0:
            pending = []
            pending_start = lineno
            pending_blank = raw[:1] in (" ", "\t")
        depth += line.count("(") - line.count(")")
        if depth < 0:
            raise ZoneFileError(f"line {lineno}: unbalanced parentheses")
        pending.append(line.replace("(", " ").replace(")", " "))
        if depth == 0:
            yield pending_start, " ".join(pending), pending_blank
    if depth != 0:
        raise ZoneFileError("unterminated parenthesized record")


def parse_zone_text(
    text: str, origin: Optional[Name] = None, default_ttl: int = 3600
) -> Zone:
    """Parse master-file text into a :class:`Zone`.

    ``origin`` may come from the caller or a leading ``$ORIGIN`` directive;
    the zone origin is the owner name of the (required) SOA record.
    """
    current_origin = origin
    ttl = default_ttl
    last_owner: Optional[Name] = None
    records: List[Tuple[Name, int, int, object]] = []

    for lineno, line, owner_blank in _logical_lines(text):
        tokens = _TOKEN_RE.findall(line)
        if not tokens:
            continue
        directive = tokens[0].upper()
        if directive == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneFileError(f"line {lineno}: $ORIGIN needs one argument")
            current_origin = Name.from_text(tokens[1], current_origin)
            continue
        if directive == "$TTL":
            if len(tokens) != 2 or not tokens[1].isdigit():
                raise ZoneFileError(f"line {lineno}: $TTL needs a number")
            ttl = int(tokens[1])
            continue
        if directive.startswith("$"):
            raise ZoneFileError(f"line {lineno}: unsupported directive {directive}")

        # Owner name: blank leading field inherits the previous owner.
        if owner_blank:
            owner = last_owner
            rest = tokens
        else:
            if current_origin is None and not tokens[0].endswith("."):
                raise ZoneFileError(
                    f"line {lineno}: relative owner with no $ORIGIN"
                )
            owner = Name.from_text(tokens[0], current_origin)
            rest = tokens[1:]
        if owner is None:
            raise ZoneFileError(f"line {lineno}: no owner name available")
        last_owner = owner

        # Optional TTL and class may appear in either order before the type.
        record_ttl = ttl
        index = 0
        while index < len(rest):
            token = rest[index].upper()
            if token.isdigit():
                record_ttl = int(token)
                index += 1
            elif token in ("IN", "CH", "HS"):
                if token != "IN":
                    raise ZoneFileError(f"line {lineno}: only class IN supported")
                index += 1
            else:
                break
        if index >= len(rest):
            raise ZoneFileError(f"line {lineno}: missing RR type")
        try:
            rtype = c.type_from_text(rest[index])
        except ValueError as exc:
            raise ZoneFileError(f"line {lineno}: {exc}") from exc
        rdata_tokens = rest[index + 1 :]
        try:
            rdata = rdata_from_text(rtype, rdata_tokens, current_origin)
        except ZoneFileError as exc:
            raise ZoneFileError(f"line {lineno}: {exc}") from exc
        records.append((owner, rtype, record_ttl, rdata))

    soa_entries = [r for r in records if r[1] == c.TYPE_SOA]
    if not soa_entries:
        raise ZoneFileError("zone file has no SOA record")
    if len(soa_entries) > 1:
        raise ZoneFileError("zone file has multiple SOA records")
    zone_origin = soa_entries[0][0]
    if origin is not None and zone_origin != origin:
        raise ZoneFileError(
            f"SOA owner {zone_origin.to_text()} does not match expected "
            f"origin {origin.to_text()}"
        )

    zone = Zone(zone_origin)
    for owner, rtype, record_ttl, rdata in records:
        zone.add_rdata(owner, rtype, record_ttl, rdata)  # type: ignore[arg-type]
    return zone


def parse_zone_file(path: str, origin: Optional[Name] = None) -> Zone:
    """Parse the master file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_zone_text(handle.read(), origin=origin)


def write_zone_text(zone: Zone) -> str:
    """Serialize a zone back to master-file text (parseable round trip)."""
    return zone.to_text()


def write_zone_file(zone: Zone, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_zone_text(zone))
