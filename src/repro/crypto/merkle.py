"""Merkle trees for erasure-fragment authenticity (DESIGN.md §5i).

The erasure-coded dissemination mode ships each replica one Reed-Solomon
fragment plus a Merkle inclusion proof against the batch's fragment-tree
root, so a replica can verify *its own* fragment without seeing the other
``n - 1`` — the AVID-M trick that keeps per-link traffic at ``|m|/k``.

Hashing is domain-separated (leaf vs. interior prefixes) so an interior
node can never be replayed as a leaf, and an odd node at any level is
*promoted* unchanged rather than paired with a duplicate of itself (the
duplicate-last-leaf construction admits well-known second-preimage
mischief).  Proof verification is strictly bounded: a proof longer than
:data:`MAX_PROOF_DEPTH` is rejected before any hashing happens, so a
Byzantine peer cannot buy CPU with an absurd proof.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

#: A proof is one sibling hash per tree level; 32 levels covers 2^32
#: leaves — vastly above any fragment count (n <= 255) — while keeping
#: verification cost strictly bounded against Byzantine proofs.
MAX_PROOF_DEPTH = 32

#: One proof step: (sibling digest, sibling_is_right).
ProofStep = Tuple[bytes, bool]
Proof = Tuple[ProofStep, ...]


def _leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def _node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Root of the tree over ``leaves`` (raw leaf data, not digests)."""
    if not leaves:
        raise ValueError("merkle tree needs at least one leaf")
    level: List[bytes] = [_leaf(data) for data in leaves]
    while len(level) > 1:
        nxt: List[bytes] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(_node(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])  # odd node promoted unchanged
        level = nxt
    return level[0]


def merkle_proof(leaves: Sequence[bytes], index: int) -> Proof:
    """Inclusion proof for ``leaves[index]`` against ``merkle_root(leaves)``."""
    if not 0 <= index < len(leaves):
        raise ValueError(f"leaf index {index} out of range 0..{len(leaves) - 1}")
    level: List[bytes] = [_leaf(data) for data in leaves]
    pos = index
    steps: List[ProofStep] = []
    while len(level) > 1:
        nxt: List[bytes] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(_node(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        paired = pos ^ 1
        if paired < len(level):
            steps.append((level[paired], paired > pos))
        # A promoted odd node keeps its hash and lands at index L//2 of
        # the next level, which for even pos is exactly pos // 2.
        pos //= 2
        level = nxt
    return tuple(steps)


def merkle_verify(root: bytes, leaf_data: bytes, proof: Proof) -> bool:
    """Check ``leaf_data``'s inclusion under ``root`` via ``proof``.

    Total and bounded: malformed or over-long proofs return ``False``
    (after at most :data:`MAX_PROOF_DEPTH` hash evaluations), never raise.
    """
    if len(proof) > MAX_PROOF_DEPTH:
        return False
    acc = _leaf(leaf_data)
    for step in proof:
        if not isinstance(step, tuple) or len(step) != 2:
            return False
        sibling, sibling_is_right = step
        if not isinstance(sibling, bytes) or len(sibling) != 32:
            return False
        if sibling_is_right:
            acc = _node(acc, sibling)
        else:
            acc = _node(sibling, acc)
    return acc == root
