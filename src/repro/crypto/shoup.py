"""Shoup's practical threshold RSA signature scheme (Eurocrypt 2000).

This is the scheme the paper uses to share the DNSSEC zone key among the
``n`` authoritative servers (§2, §3.3): any ``t+1`` servers can jointly
produce a standard RSA/SHA-1/PKCS#1 signature, while ``t`` or fewer learn
nothing about the private key.  The scheme is non-interactive — each server
computes a *signature share* locally and (optionally) a non-interactive
zero-knowledge *correctness proof*; any party can then assemble ``t+1``
valid shares into the final signature.

Notation follows Shoup's paper:

* ``N = p*q`` with safe primes ``p = 2p' + 1``, ``q = 2q' + 1``;
  ``m = p'q'`` is the order of the subgroup of squares ``Q_N``.
* The private exponent ``d = e^{-1} mod m`` is shared with a random
  degree-``t`` polynomial ``f`` over ``Z_m`` with ``f(0) = d``;
  server ``i`` holds ``s_i = f(i) mod m``.
* ``delta = n!``.  A share on a PKCS#1-encoded message ``x`` is
  ``x_i = x^{2*delta*s_i} mod N``.
* Verification values: ``v`` generates ``Q_N``; ``v_i = v^{s_i}``.
* Assembly over a subset ``S`` of ``t+1`` shares uses integer-scaled
  Lagrange coefficients ``lambda_i = delta * prod_{j}(0-j)/(i-j)``:
  ``w = prod x_i^{2*lambda_i}`` satisfies ``w^e = x^{4*delta^2}``, and with
  ``a, b`` such that ``4*delta^2*a + e*b = 1`` the final signature is
  ``y = w^a * x^b`` with ``y^e = x``.

The correctness proof is the Fiat–Shamir discrete-log-equality proof of
Shoup §4: knowledge of ``s_i`` with ``x_i^2 = (x^{4*delta})^{s_i}`` and
``v_i = v^{s_i}``.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from repro.crypto import pkcs1
from repro.crypto.rsa import RsaPublicKey
from repro.errors import (
    AssemblyError,
    ConfigError,
    InvalidShare,
    InvalidSignature,
    KeyGenerationError,
)
from repro.util.numth import (
    egcd,
    factorial,
    invmod,
    random_safe_prime,
    scaled_lagrange_coefficient,
)
from repro.util.serialization import (
    int_to_bytes,
    pack_int,
    pack_u16,
    unpack_int,
    unpack_u16,
)

# Bit length of the Fiat-Shamir challenge (SHA-256 output).
_CHALLENGE_BITS = 256


@lru_cache(maxsize=256)
def _verification_base(x: int, delta: int, modulus: int) -> int:
    """``x~ = x^{4*delta} mod N`` — the base of the share-correctness proofs.

    Every prover computes it once per message and every verifier once per
    share; all inputs are public, so memoizing leaks nothing and turns
    ``t`` extra wide modexps per signing round into dictionary hits.
    Secret-dependent powers (share values, nonce commitments) are never
    cached.
    """
    return pow(x, 4 * delta, modulus)


def verification_base_cache_stats() -> Dict[str, int]:
    """Bound/usage stats of the ``x^{4 delta}`` memo (KeyTrap hygiene audit).

    The cache is keyed by attacker-influenceable inputs (the message hash
    ``x``), so its explicit bound matters; see
    :mod:`repro.util.cachestats` for the repo-wide audit.
    """
    info = _verification_base.cache_info()
    return {
        "maxsize": int(info.maxsize or 0),
        "currsize": info.currsize,
        "hits": info.hits,
        "misses": info.misses,
        "evictions": info.misses - info.currsize,
    }


def _proof_challenge(
    modulus: int,
    v: int,
    x_tilde: int,
    v_i: int,
    x_i_sq: int,
    commit_v: int,
    commit_x: int,
) -> int:
    """Fiat–Shamir challenge ``c = H'(v, x~, v_i, x_i^2, v^r, x~^r)``."""
    h = hashlib.sha256()
    for value in (modulus, v, x_tilde, v_i, x_i_sq, commit_v, commit_x):
        data = int_to_bytes(value)
        h.update(len(data).to_bytes(4, "big"))
        h.update(data)
    return int.from_bytes(h.digest(), "big")


@dataclass(frozen=True)
class ShareProof:
    """Non-interactive proof of correctness ``(z, c)`` for a signature share."""

    z: int
    c: int

    def to_bytes(self) -> bytes:
        return pack_int(self.z) + pack_int(self.c)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> Tuple["ShareProof", int]:
        z, offset = unpack_int(data, offset)
        c, offset = unpack_int(data, offset)
        return cls(z=z, c=c), offset


@dataclass(frozen=True)
class SignatureShare:
    """One server's contribution ``x_i = x^{2*delta*s_i}`` to a signature.

    ``proof`` is present for the BASIC protocol and for the on-demand phase
    of OptProof; the optimistic protocols ship bare share values.
    """

    index: int
    value: int
    proof: Optional[ShareProof] = None

    def with_proof(self, proof: ShareProof) -> "SignatureShare":
        return SignatureShare(index=self.index, value=self.value, proof=proof)

    def without_proof(self) -> "SignatureShare":
        return SignatureShare(index=self.index, value=self.value, proof=None)

    def to_bytes(self) -> bytes:
        has_proof = b"\x01" if self.proof else b"\x00"
        out = pack_u16(self.index) + pack_int(self.value) + has_proof
        if self.proof:
            out += self.proof.to_bytes()
        return out

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> Tuple["SignatureShare", int]:
        index, offset = unpack_u16(data, offset)
        value, offset = unpack_int(data, offset)
        flag = data[offset]
        offset += 1
        proof: Optional[ShareProof] = None
        if flag:
            proof, offset = ShareProof.from_bytes(data, offset)
        return cls(index=index, value=value, proof=proof), offset


@dataclass(frozen=True)
class ThresholdPublicKey:
    """Public parameters of an ``(n, t)``-threshold RSA key.

    ``rsa`` is the ordinary RSA public key — DNSSEC clients verify against
    it without knowing the key is threshold-shared.
    """

    rsa: RsaPublicKey
    n: int
    t: int
    verifier: int                       # v, generator of Q_N
    share_verifiers: Tuple[int, ...]    # v_i = v^{s_i}, indexed from 1

    def __post_init__(self) -> None:
        if self.n <= 3 * self.t and self.t > 0:
            # The signing scheme itself only needs t < n/2, but the service
            # model requires n > 3t; the dealer enforces the weaker bound and
            # the service config the stronger one.  Here enforce t < n/2.
            pass
        if self.t >= self.n:
            raise ConfigError("threshold t must be smaller than n")
        if len(self.share_verifiers) != self.n:
            raise ConfigError("need one verification value per server")

    @property
    def modulus(self) -> int:
        return self.rsa.modulus

    @property
    def exponent(self) -> int:
        return self.rsa.exponent

    @property
    def delta(self) -> int:
        return factorial(self.n)

    def share_verifier(self, index: int) -> int:
        if not 1 <= index <= self.n:
            raise ValueError(f"share index {index} out of range 1..{self.n}")
        return self.share_verifiers[index - 1]

    # -- share verification -------------------------------------------------

    def verify_share(self, message: bytes, share: SignatureShare) -> None:
        """Check a share's correctness proof; raise :class:`InvalidShare`.

        This is the "share verification" step whose cost dominates the
        BASIC protocol (Table 3: 47.2 % of signing time).
        """
        if share.proof is None:
            raise InvalidShare(f"share {share.index} carries no proof")
        if not 1 <= share.index <= self.n:
            raise InvalidShare(f"share index {share.index} out of range")
        N = self.modulus
        x = pkcs1.encode_to_int(message, N)
        x_tilde = _verification_base(x, self.delta, N)
        v = self.verifier
        v_i = self.share_verifier(share.index)
        x_i = share.value % N
        if x_i in (0, 1) or x_i == N - 1:
            raise InvalidShare(f"degenerate share value from {share.index}")
        x_i_sq = pow(x_i, 2, N)
        z, c = share.proof.z, share.proof.c
        # Recompute the commitments: v^z * v_i^{-c} and x~^z * x_i^{-2c}.
        try:
            commit_v = (pow(v, z, N) * pow(v_i, -c, N)) % N
            commit_x = (pow(x_tilde, z, N) * pow(x_i_sq, -c, N)) % N
        except ValueError as exc:  # non-invertible => bogus share
            raise InvalidShare(f"share {share.index}: {exc}") from exc
        expected = _proof_challenge(N, v, x_tilde, v_i, x_i_sq, commit_v, commit_x)
        if expected != c:
            raise InvalidShare(f"share {share.index}: proof challenge mismatch")

    def share_is_valid(self, message: bytes, share: SignatureShare) -> bool:
        try:
            self.verify_share(message, share)
        except InvalidShare:
            return False
        return True

    # -- signature assembly ---------------------------------------------------

    def assemble(self, message: bytes, shares: Sequence[SignatureShare]) -> bytes:
        """Combine ``t+1`` shares into a standard RSA signature.

        Does *not* verify share proofs; the caller chooses the policy
        (BASIC verifies each share first, the optimistic protocols verify
        the assembled signature instead).  Raises :class:`AssemblyError`
        if the inputs are structurally unusable.
        """
        if len(shares) < self.t + 1:
            raise AssemblyError(
                f"need {self.t + 1} shares, got {len(shares)}"
            )
        chosen = list(shares[: self.t + 1])
        indices = tuple(s.index for s in chosen)
        if len(set(indices)) != len(indices):
            raise AssemblyError("duplicate share indices")
        if not all(1 <= i <= self.n for i in indices):
            raise AssemblyError("share index out of range")
        N = self.modulus
        e = self.exponent
        delta = self.delta
        x = pkcs1.encode_to_int(message, N)
        w = 1
        for share in chosen:
            lam = scaled_lagrange_coefficient(delta, indices, share.index, 0)
            try:
                w = (w * pow(share.value, 2 * lam, N)) % N
            except ValueError as exc:
                raise AssemblyError(f"share {share.index} not invertible") from exc
        # w^e == x^{e'} with e' = 4*delta^2;  find a,b with e'*a + e*b = 1.
        e_prime = 4 * delta * delta
        g, a, b = egcd(e_prime, e)
        if g != 1:
            raise AssemblyError(
                f"gcd(4*delta^2, e) = {g} != 1; choose a prime e > n"
            )
        try:
            y = (pow(w, a, N) * pow(x, b, N)) % N
        except ValueError as exc:
            raise AssemblyError("assembled value not invertible") from exc
        size = (N.bit_length() + 7) // 8
        return y.to_bytes(size, "big")

    def verify_signature(self, message: bytes, signature: bytes) -> None:
        """Verify the assembled signature as a plain RSA/SHA-1 signature.

        Cheap (Table 3: 0.2 % of signing time with e = 65537).
        """
        self.rsa.verify(message, signature)

    def signature_is_valid(self, message: bytes, signature: bytes) -> bool:
        try:
            self.verify_signature(message, signature)
        except InvalidSignature:
            return False
        return True

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = self.rsa.to_bytes()
        out += pack_u16(self.n) + pack_u16(self.t)
        out += pack_int(self.verifier)
        for v_i in self.share_verifiers:
            out += pack_int(v_i)
        return out

    @classmethod
    def from_bytes(cls, data: bytes) -> "ThresholdPublicKey":
        modulus, offset = unpack_int(data, 0)
        exponent, offset = unpack_int(data, offset)
        n, offset = unpack_u16(data, offset)
        t, offset = unpack_u16(data, offset)
        verifier, offset = unpack_int(data, offset)
        share_verifiers: list[int] = []
        for _ in range(n):
            v_i, offset = unpack_int(data, offset)
            share_verifiers.append(v_i)
        return cls(
            rsa=RsaPublicKey(modulus=modulus, exponent=exponent),
            n=n,
            t=t,
            verifier=verifier,
            share_verifiers=tuple(share_verifiers),
        )


@dataclass(frozen=True)
class ThresholdKeyShare:
    """Server ``index``'s private share ``s_i`` plus the public parameters.

    This is the file the SINTRA-style key utility distributes to each
    server over a secure channel (§4.3).
    """

    index: int
    secret: int
    public: ThresholdPublicKey

    def generate_share(self, message: bytes) -> SignatureShare:
        """Compute the bare signature share ``x_i = x^{2*delta*s_i}``.

        "generate share" in Table 3 (49.6 % of BASIC signing time) is this
        plus :meth:`prove`; the optimistic protocols call only this.
        """
        N = self.public.modulus
        x = pkcs1.encode_to_int(message, N)
        value = pow(x, 2 * self.public.delta * self.secret, N)
        return SignatureShare(index=self.index, value=value)

    def prove(self, message: bytes, share: SignatureShare) -> ShareProof:
        """Produce the non-interactive correctness proof for ``share``."""
        if share.index != self.index:
            raise ValueError("cannot prove another server's share")
        N = self.public.modulus
        x = pkcs1.encode_to_int(message, N)
        x_tilde = _verification_base(x, self.public.delta, N)
        v = self.public.verifier
        v_i = self.public.share_verifier(self.index)
        x_i_sq = pow(share.value, 2, N)
        # Random nonce wide enough to statistically hide s_i * c.
        r_bits = N.bit_length() + 2 * _CHALLENGE_BITS
        r = secrets.randbits(r_bits)
        commit_v = pow(v, r, N)
        commit_x = pow(x_tilde, r, N)
        c = _proof_challenge(N, v, x_tilde, v_i, x_i_sq, commit_v, commit_x)
        z = self.secret * c + r
        return ShareProof(z=z, c=c)

    def generate_share_with_proof(self, message: bytes) -> SignatureShare:
        """Share plus proof — what the BASIC protocol sends (§3.3)."""
        share = self.generate_share(message)
        return share.with_proof(self.prove(message, share))

    def to_bytes(self) -> bytes:
        return pack_u16(self.index) + pack_int(self.secret) + self.public.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "ThresholdKeyShare":
        index, offset = unpack_u16(data, 0)
        secret, offset = unpack_int(data, offset)
        public = ThresholdPublicKey.from_bytes(data[offset:])
        return cls(index=index, secret=secret, public=public)


@dataclass
class ThresholdDealer:
    """Trusted dealer: generates the shared key and all server shares.

    Mirrors SINTRA's key generation utility (§4.3): run once by a trusted
    entity, output files shipped to each server over a secure channel.
    """

    bits: int
    n: int
    t: int
    exponent: int = 65537
    # Pre-generated safe primes may be supplied to skip the (slow) search.
    prime_p: int = 0
    prime_q: int = 0
    _m: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError("need at least one server")
        if not 0 <= self.t < self.n:
            raise ConfigError("require 0 <= t < n")
        if 2 * self.t + 1 > self.n:
            raise ConfigError("threshold scheme requires n >= 2t + 1")
        if self.exponent <= self.n:
            raise ConfigError("public exponent must be a prime larger than n")

    def deal(self) -> Tuple[ThresholdPublicKey, Tuple[ThresholdKeyShare, ...]]:
        """Generate the key and return ``(public_key, shares)``."""
        p, q = self._primes()
        N = p * q
        m = ((p - 1) // 2) * ((q - 1) // 2)
        self._m = m
        try:
            d = invmod(self.exponent, m)
        except ValueError as exc:
            raise KeyGenerationError(
                "public exponent shares a factor with p'q'"
            ) from exc
        # Random degree-t polynomial over Z_m with f(0) = d.
        coeffs = [d] + [secrets.randbelow(m) for _ in range(self.t)]
        secrets_by_index: Dict[int, int] = {}
        for i in range(1, self.n + 1):
            acc = 0
            for coeff in reversed(coeffs):
                acc = (acc * i + coeff) % m
            secrets_by_index[i] = acc
        # v: random generator of Q_N (a random square generates Q_N w.h.p.).
        while True:
            r = secrets.randbelow(N - 2) + 2
            if egcd(r, N)[0] == 1:
                break
        v = pow(r, 2, N)
        share_verifiers = tuple(
            pow(v, secrets_by_index[i], N) for i in range(1, self.n + 1)
        )
        public = ThresholdPublicKey(
            rsa=RsaPublicKey(modulus=N, exponent=self.exponent),
            n=self.n,
            t=self.t,
            verifier=v,
            share_verifiers=share_verifiers,
        )
        shares = tuple(
            ThresholdKeyShare(index=i, secret=secrets_by_index[i], public=public)
            for i in range(1, self.n + 1)
        )
        return public, shares

    def _primes(self) -> Tuple[int, int]:
        if self.prime_p and self.prime_q:
            return self.prime_p, self.prime_q
        half = self.bits // 2
        p = random_safe_prime(half)
        while True:
            q = random_safe_prime(self.bits - half)
            if q != p:
                return p, q


def deal_threshold_key(
    n: int,
    t: int,
    bits: int = 1024,
    exponent: int = 65537,
    prime_p: int = 0,
    prime_q: int = 0,
) -> Tuple[ThresholdPublicKey, Tuple[ThresholdKeyShare, ...]]:
    """Convenience wrapper around :class:`ThresholdDealer`."""
    dealer = ThresholdDealer(
        bits=bits, n=n, t=t, exponent=exponent, prime_p=prime_p, prime_q=prime_q
    )
    return dealer.deal()


def reshare(
    public: ThresholdPublicKey,
    shares: Sequence[ThresholdKeyShare],
    dealer: ThresholdDealer,
) -> Tuple[ThresholdKeyShare, ...]:
    """Dealer-assisted share refresh (proactive-security extension).

    Produces a fresh, independent sharing of the *same* private exponent:
    old and new shares are unlinkable, so an adversary must corrupt ``t+1``
    servers within one refresh epoch.  The paper lists proactivization as a
    natural extension; this utility implements the dealer-based variant.
    """
    if dealer._m == 0:
        raise KeyGenerationError("dealer has not dealt the original key")
    m = dealer._m
    d_check = invmod(public.exponent, m)
    coeffs = [d_check] + [secrets.randbelow(m) for _ in range(public.t)]
    new_shares: list[int] = []
    N = public.modulus
    new_verifiers: list[int] = []
    for i in range(1, public.n + 1):
        acc = 0
        for coeff in reversed(coeffs):
            acc = (acc * i + coeff) % m
        new_shares.append(acc)
        new_verifiers.append(pow(public.verifier, acc, N))
    new_public = ThresholdPublicKey(
        rsa=public.rsa,
        n=public.n,
        t=public.t,
        verifier=public.verifier,
        share_verifiers=tuple(new_verifiers),
    )
    return tuple(
        ThresholdKeyShare(index=i + 1, secret=s, public=new_public)
        for i, s in enumerate(new_shares)
    )
