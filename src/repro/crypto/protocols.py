"""The three threshold-signing protocols of the paper (§3.3, §3.5).

* **BASIC** — every server broadcasts its share *with* a correctness proof;
  receivers verify each share and assemble ``t+1`` valid ones.
* **OptProof** — shares are broadcast *without* proofs; the first ``t+1``
  are optimistically assembled and only the final signature is verified.
  If that fails, the server asks everyone to resend shares with proofs and
  proceeds as in BASIC, while in parallel accepting a valid final
  signature from any peer.
* **OptTE** — shares are broadcast without proofs and assembly proceeds by
  trial and error over all ``t+1``-subsets of up to ``2t+1`` collected
  shares; since at most ``t`` shares are invalid, some subset succeeds.

The protocol classes are *sans-IO*: they consume ``(sender, message)``
events and return lists of outgoing messages, so the same implementation
runs on the discrete-event simulator (benchmarks) and on the asyncio
transport (examples).  Every cryptographic operation performed is recorded
in an operation log so the simulator can charge calibrated CPU time per
operation (this is how Table 2 and Table 3 shapes are reproduced).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.crypto.executor import (
    OP_ASSEMBLE,
    OP_GENERATE_PROOF,
    OP_GENERATE_SHARE,
    OP_VERIFY_SHARE,
    OP_VERIFY_SIGNATURE,
    CryptoExecutor,
    CryptoFuture,
    SerialExecutor,
)
from repro.crypto.shoup import (
    SignatureShare,
    ThresholdKeyShare,
    ThresholdPublicKey,
)
from repro.errors import ConfigError
from repro.util.serialization import (
    pack_bytes,
    pack_str,
    pack_u8,
    unpack_bytes,
    unpack_str,
    unpack_u8,
)

PROTOCOL_BASIC = "basic"
PROTOCOL_OPTPROOF = "optproof"
PROTOCOL_OPTTE = "optte"

ALL_PROTOCOLS = (PROTOCOL_BASIC, PROTOCOL_OPTPROOF, PROTOCOL_OPTTE)

# The OP_* operation names used in the op log (matching Table 3's row
# labels) are defined in repro.crypto.executor and re-exported here; the
# cost model keys its per-operation prices on them.

BROADCAST = -1  # destination meaning "all other replicas"

#: Cap on buffered not-yet-started signing sessions per coordinator.
MAX_PENDING_SESSIONS = 4096

_MSG_SHARE = 1
_MSG_PROOF_REQUEST = 2
_MSG_FINAL = 3


@dataclass(frozen=True)
class SigningMessage:
    """Wire message of the signing protocols.

    ``kind`` is one of share / proof-request / final; ``sign_id`` names the
    signing session (derived from the record being signed, identical on
    every replica).
    """

    kind: int
    sign_id: str
    share: Optional[SignatureShare] = None
    signature: bytes = b""

    def to_bytes(self) -> bytes:
        out = pack_u8(self.kind) + pack_str(self.sign_id)
        if self.kind == _MSG_SHARE:
            assert self.share is not None
            out += self.share.to_bytes()
        elif self.kind == _MSG_FINAL:
            out += pack_bytes(self.signature)
        return out

    @classmethod
    def from_bytes(cls, data: bytes) -> "SigningMessage":
        kind, offset = unpack_u8(data, 0)
        sign_id, offset = unpack_str(data, offset)
        share = None
        signature = b""
        if kind == _MSG_SHARE:
            share, offset = SignatureShare.from_bytes(data, offset)
        elif kind == _MSG_FINAL:
            signature, offset = unpack_bytes(data, offset)
        return cls(kind=kind, sign_id=sign_id, share=share, signature=signature)

    @classmethod
    def share_message(cls, sign_id: str, share: SignatureShare) -> "SigningMessage":
        return cls(kind=_MSG_SHARE, sign_id=sign_id, share=share)

    @classmethod
    def proof_request(cls, sign_id: str) -> "SigningMessage":
        return cls(kind=_MSG_PROOF_REQUEST, sign_id=sign_id)

    @classmethod
    def final(cls, sign_id: str, signature: bytes) -> "SigningMessage":
        return cls(kind=_MSG_FINAL, sign_id=sign_id, signature=signature)

    @property
    def is_share(self) -> bool:
        return self.kind == _MSG_SHARE

    @property
    def is_proof_request(self) -> bool:
        return self.kind == _MSG_PROOF_REQUEST

    @property
    def is_final(self) -> bool:
        return self.kind == _MSG_FINAL


Outgoing = Tuple[int, SigningMessage]  # (destination replica id or BROADCAST, msg)


class SigningProtocol:
    """Base class: one instance per replica per signing session."""

    name = "abstract"

    def __init__(
        self,
        key_share: ThresholdKeyShare,
        sign_id: str,
        message: bytes,
        executor: Optional[CryptoExecutor] = None,
        own_share: Optional[CryptoFuture] = None,
    ) -> None:
        self.key_share = key_share
        self.public: ThresholdPublicKey = key_share.public
        self.sign_id = sign_id
        self.message = message
        self.executor: CryptoExecutor = (
            executor if executor is not None else SerialExecutor(key_share)
        )
        self.signature: Optional[bytes] = None
        self._ops: List[Tuple[str, int]] = []
        self._shares: Dict[int, SignatureShare] = {}
        self._arrival_order: List[int] = []
        # Speculatively generated own share (coordinator pipelining).
        self._own_future = own_share
        # Memoized proof-check verdicts, keyed by the (frozen) share.
        # Populated lazily by _share_valid and in batches by prevalidate /
        # preload_verdicts; bounded by _store_share's one-share-per-replica
        # rule plus the coordinator's pre-session buffer caps.
        self._preverified: Dict[SignatureShare, bool] = {}
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.signature is not None

    def start(self) -> List[Outgoing]:
        """Generate and broadcast this replica's own share."""
        raise NotImplementedError

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        """Feed a received protocol message; returns messages to send."""
        raise NotImplementedError

    # -- op accounting --------------------------------------------------------

    def record_op(self, op: str, count: int = 1) -> None:
        self._ops.append((op, count))

    def drain_ops(self) -> List[Tuple[str, int]]:
        """Return and clear the log of crypto ops performed since last call."""
        ops, self._ops = self._ops, []
        return ops

    # -- shared helpers -------------------------------------------------------

    def _accept_final(self, msg: SigningMessage) -> bool:
        """Validate and adopt a final signature received from a peer."""
        self.record_op(OP_VERIFY_SIGNATURE)
        if self.executor.verify_signature(self.message, msg.signature):
            self.signature = msg.signature
            return True
        return False

    def _materialize_own_share(self, with_proof: bool) -> SignatureShare:
        """Our own share: take the pipelined prefetch or generate now."""
        if self._own_future is not None:
            share = self._own_future.result()
            self._own_future = None
            if isinstance(share, SignatureShare):
                if with_proof and share.proof is None:
                    # Prefetched bare but the protocol wants a proof —
                    # finish the job rather than redo it.
                    proof = self.executor.generate_proof(self.message, share)
                    share = share.with_proof(proof)
                return share
        return self.executor.generate_share(self.message, with_proof=with_proof)

    def _share_valid(self, share: SignatureShare) -> bool:
        """Proof-check one share through the executor, memoizing the verdict."""
        cached = self._preverified.get(share)
        if cached is None:
            self.record_op(OP_VERIFY_SHARE)
            cached = self.executor.verify_shares(self.message, [share])[0]
            self._preverified[share] = cached
        return cached

    def _prevalidate_limit(self) -> int:
        # Our own share is trusted without verification, so t valid peer
        # shares complete a t+1 assembly set; checking more up front would
        # charge verification the serial protocol never performs.
        return self.public.t

    def prevalidate(self, shares: Sequence[SignatureShare]) -> None:
        """Amortized verification: one executor task checks a share batch.

        No-op for executors that don't batch (serial execution keeps the
        exact lazy verification order of the unpooled protocol).
        """
        if not self.executor.prefers_batching:
            return
        fresh = [
            share
            for share in shares
            if share.proof is not None and share not in self._preverified
        ]
        fresh = fresh[: self._prevalidate_limit()]
        if not fresh:
            return
        self.record_op(OP_VERIFY_SHARE, len(fresh))
        for share, ok in zip(
            fresh, self.executor.verify_shares(self.message, fresh), strict=True
        ):
            self._preverified[share] = ok

    def preload_verdicts(
        self, shares: Sequence[SignatureShare], verdicts: Sequence[bool]
    ) -> None:
        """Adopt verdicts from a pipelined background verification job."""
        for share, ok in zip(shares, verdicts, strict=True):
            if share not in self._preverified:
                self.record_op(OP_VERIFY_SHARE)
                self._preverified[share] = ok

    def _store_share(self, sender: int, share: SignatureShare) -> bool:
        """Store a share by sender index; returns False on duplicates.

        The claimed share index must match the authenticated sender
        (replica ids are 0-based, share indices 1-based): without this
        check a single Byzantine peer could stuff the pool with shares
        for arbitrary indices, growing state and poisoning interpolation
        sets with shares it never proved it holds.

        A proof-carrying share may replace a previously stored bare share
        (needed by OptProof's fall-back phase).
        """
        if share.index != sender + 1 or not 1 <= share.index <= self.public.n:
            return False
        existing = self._shares.get(share.index)
        if existing is not None and (existing.proof or not share.proof):
            return False
        if existing is None:
            self._arrival_order.append(share.index)
        self._shares[share.index] = share
        return True


class BasicSigningProtocol(SigningProtocol):
    """Unoptimized protocol: every share carries and gets a verified proof."""

    name = PROTOCOL_BASIC

    def __init__(self, key_share, sign_id, message, executor=None, own_share=None) -> None:
        super().__init__(
            key_share, sign_id, message, executor=executor, own_share=own_share
        )
        self._valid: Dict[int, SignatureShare] = {}

    def start(self) -> List[Outgoing]:
        if self._started:
            return []
        self._started = True
        share = self._materialize_own_share(with_proof=True)
        self.record_op(OP_GENERATE_SHARE)
        self.record_op(OP_GENERATE_PROOF)
        out: List[Outgoing] = [(BROADCAST, SigningMessage.share_message(self.sign_id, share))]
        # Our own share is trusted without verification (we computed it);
        # _try_finish revalidates it defensively if assembly ever fails.
        self._own_index = share.index
        self._valid[share.index] = share
        out.extend(self._try_finish())
        return out

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        if self.done:
            return []
        if msg.is_final:
            self._accept_final(msg)
            return []
        if not msg.is_share or msg.share is None:
            return []
        if not self._store_share(sender, msg.share):
            return []
        if msg.share.index in self._valid:
            return []
        if self._share_valid(msg.share):
            # Bounded: _store_share pins index == sender + 1 <= n, so at
            # most one entry per replica.
            # repro-lint: disable=C304
            self._valid[msg.share.index] = msg.share
        return self._try_finish()

    def _try_finish(self) -> List[Outgoing]:
        if self.done or len(self._valid) < self.public.t + 1:
            return []
        shares = list(self._valid.values())[: self.public.t + 1]
        self.record_op(OP_ASSEMBLE)
        signature = self.executor.assemble(self.message, shares)
        self.record_op(OP_VERIFY_SIGNATURE)
        if signature is not None and self.executor.verify_signature(
            self.message, signature
        ):
            self.signature = signature
            return []
        # Assembly from verified shares cannot fail — unless our own,
        # never-verified share is bad (we might BE the corrupted server).
        # Re-validate it; if bogus, drop it and wait for more shares.
        own = self._valid.get(getattr(self, "_own_index", -1))
        if own is not None:
            self.record_op(OP_VERIFY_SHARE)
            if not self.executor.verify_shares(self.message, [own])[0]:
                del self._valid[own.index]
        return []


class OptProofSigningProtocol(SigningProtocol):
    """Optimistic protocol with proofs generated/verified only on demand."""

    name = PROTOCOL_OPTPROOF

    def __init__(self, key_share, sign_id, message, executor=None, own_share=None) -> None:
        super().__init__(
            key_share, sign_id, message, executor=executor, own_share=own_share
        )
        self._own_share: Optional[SignatureShare] = None
        self._fallback = False
        self._valid: Dict[int, SignatureShare] = {}
        self._optimistic_tried = False

    @property
    def fallback_entered(self) -> bool:
        """True once optimistic assembly failed and the proof phase started.

        The chaos harness asserts on this: a share-withholding or
        bad-share schedule must demonstrably force the slow path.
        """
        return self._fallback

    def start(self) -> List[Outgoing]:
        if self._started:
            return []
        self._started = True
        self._own_share = self._materialize_own_share(with_proof=False)
        self.record_op(OP_GENERATE_SHARE)
        # Per §3.5 the server assembles the first t+1 shares it *receives*;
        # its own share is sent to the others but not put in the pool.
        return [
            (BROADCAST, SigningMessage.share_message(self.sign_id, self._own_share))
        ]

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        if self.done:
            return []
        if msg.is_final:
            if self._accept_final(msg):
                return []
            return []
        if msg.is_proof_request:
            return self._answer_proof_request()
        if not msg.is_share or msg.share is None:
            return []
        if not self._store_share(sender, msg.share):
            return []
        out: List[Outgoing] = []
        if not self._fallback:
            out.extend(self._try_optimistic())
        if self._fallback and not self.done:
            out.extend(self._try_fallback(msg.share))
        return out

    def _try_optimistic(self) -> List[Outgoing]:
        """Assemble the first ``t+1`` bare shares and verify the result."""
        needed = self.public.t + 1
        if self._optimistic_tried or len(self._shares) < needed:
            return []
        self._optimistic_tried = True
        shares = list(self._shares.values())[:needed]
        self.record_op(OP_ASSEMBLE)
        signature = self.executor.assemble(self.message, shares)
        self.record_op(OP_VERIFY_SIGNATURE)
        if signature is not None and self.executor.verify_signature(
            self.message, signature
        ):
            self.signature = signature
            return [(BROADCAST, SigningMessage.final(self.sign_id, signature))]
        # Some collected share was bogus: request proofs from everyone and
        # fall back to verified assembly; keep accepting a final in parallel.
        self._fallback = True
        out: List[Outgoing] = [
            (BROADCAST, SigningMessage.proof_request(self.sign_id))
        ]
        out.extend(self._answer_proof_request())
        # Re-examine shares that already carry proofs (none yet, typically);
        # amortize their proof checks into one executor batch first.
        self.prevalidate(list(self._shares.values()))
        for share in list(self._shares.values()):
            out.extend(self._try_fallback(share))
        return out

    def _answer_proof_request(self) -> List[Outgoing]:
        """Resend our share, now with a correctness proof attached."""
        if self._own_share is None:
            return []
        if self._own_share.proof is None:
            proof = self.executor.generate_proof(self.message, self._own_share)
            self.record_op(OP_GENERATE_PROOF)
            self._own_share = self._own_share.with_proof(proof)
            self._store_share(self.key_share.index - 1, self._own_share)
            self._valid[self._own_share.index] = self._own_share
        return [
            (BROADCAST, SigningMessage.share_message(self.sign_id, self._own_share))
        ]

    def _try_fallback(self, share: SignatureShare) -> List[Outgoing]:
        """BASIC-style verified processing of proof-carrying shares."""
        if share.proof is None or share.index in self._valid:
            return []
        if not self._share_valid(share):
            return []
        self._valid[share.index] = share
        if len(self._valid) < self.public.t + 1:
            return []
        chosen = list(self._valid.values())[: self.public.t + 1]
        self.record_op(OP_ASSEMBLE)
        signature = self.executor.assemble(self.message, chosen)
        self.record_op(OP_VERIFY_SIGNATURE)
        if signature is None or not self.executor.verify_signature(
            self.message, signature
        ):
            # Our own never-verified share may be the bad one (we might BE
            # the corrupted server); re-validate and drop it if so.
            own = self._own_share
            if own is not None and own.index in self._valid and own.proof:
                self.record_op(OP_VERIFY_SHARE)
                if not self.executor.verify_shares(self.message, [own])[0]:
                    del self._valid[own.index]
            return []
        self.signature = signature
        # Unlike the optimistic success case, fall-back completion does not
        # broadcast the final signature — it proceeds "in the same way as
        # the unoptimized algorithm" (§3.5), which sends nothing extra.
        return []


class OptTESigningProtocol(SigningProtocol):
    """Optimistic protocol with trial-and-error subset assembly.

    Collects up to ``2t+1`` bare shares and tries every ``t+1``-subset; at
    most ``t`` shares are invalid, so a valid subset must exist among any
    ``2t+1``.  Exponential in the worst case but fastest for practical
    ``n`` (§3.5, Table 2).
    """

    name = PROTOCOL_OPTTE

    def __init__(self, key_share, sign_id, message, executor=None, own_share=None) -> None:
        super().__init__(
            key_share, sign_id, message, executor=executor, own_share=own_share
        )
        self._tried: Set[Tuple[int, ...]] = set()
        # Subset-assembly attempts actually evaluated (exposed for the A4
        # ablation bench).  A pooled trial evaluates whole candidate
        # batches in parallel, so this may exceed the serial early-exit
        # count; the signature found is identical either way.
        self.attempts = 0

    def start(self) -> List[Outgoing]:
        if self._started:
            return []
        self._started = True
        share = self._materialize_own_share(with_proof=False)
        self.record_op(OP_GENERATE_SHARE)
        # As in OptProof, assembly draws on the shares *received* (§3.5);
        # the local share is only sent to the other servers.
        return [
            (BROADCAST, SigningMessage.share_message(self.sign_id, share))
        ]

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        if self.done:
            return []
        if msg.is_final:
            self._accept_final(msg)
            return []
        if not msg.is_share or msg.share is None:
            return []
        if not self._store_share(sender, msg.share):
            return []
        return self._try_subsets()

    def _candidate_subsets(self) -> Iterator[Tuple[int, ...]]:
        # The paper caps collection at 2t+1 shares (§3.5): among any 2t+1
        # there are at most t invalid ones, so some (t+1)-subset works.
        # Shares are considered in arrival order, earliest first.
        limit = 2 * self.public.t + 1
        indices = self._arrival_order[:limit]
        size = self.public.t + 1
        if len(indices) < size:
            return iter(())
        return (
            tuple(sorted(combo))
            for combo in itertools.combinations(indices, size)
        )

    def _try_subsets(self) -> List[Outgoing]:
        subsets = [s for s in self._candidate_subsets() if s not in self._tried]
        if not subsets:
            return []
        # Trial-and-error assembly as one executor job: the serial
        # executor evaluates candidates lazily with early exit (the
        # pre-pool behavior, op for op); the pool fans the whole candidate
        # batch across workers and keeps the first winner in subset order.
        share_lists = [[self._shares[i] for i in subset] for subset in subsets]
        result = self.executor.assemble_candidates(self.message, share_lists)
        self.attempts += result.assembled
        if result.assembled:
            self.record_op(OP_ASSEMBLE, result.assembled)
        if result.verified:
            self.record_op(OP_VERIFY_SIGNATURE, result.verified)
        if result.winner is not None:
            self._tried.update(subsets[: result.winner + 1])
            assert result.signature is not None
            self.signature = result.signature
            return [
                (BROADCAST, SigningMessage.final(self.sign_id, result.signature))
            ]
        self._tried.update(subsets)
        return []


_PROTOCOL_CLASSES = {
    PROTOCOL_BASIC: BasicSigningProtocol,
    PROTOCOL_OPTPROOF: OptProofSigningProtocol,
    PROTOCOL_OPTTE: OptTESigningProtocol,
}


def make_signing_protocol(
    name: str,
    key_share: ThresholdKeyShare,
    sign_id: str,
    message: bytes,
    executor: Optional[CryptoExecutor] = None,
    own_share: Optional[CryptoFuture] = None,
) -> SigningProtocol:
    """Instantiate a signing protocol by configuration name."""
    try:
        cls = _PROTOCOL_CLASSES[name]
    except KeyError:
        raise ConfigError(
            f"unknown signing protocol {name!r}; choose from {ALL_PROTOCOLS}"
        ) from None
    return cls(key_share, sign_id, message, executor=executor, own_share=own_share)


@dataclass
class _Prefetch:
    """In-flight speculative work for a not-yet-started signing session."""

    message: bytes
    share: CryptoFuture
    verify_shares: List[SignatureShare]
    verify: Optional[CryptoFuture]


class SigningCoordinator:
    """Multiplexes concurrent signing sessions for one replica.

    The Wrapper's signing dispatcher (§4.1) hands each SIG-record signing
    request to the coordinator; messages for sessions that have not started
    locally yet are buffered until the local state machine reaches the same
    update and calls :meth:`sign`.
    """

    def __init__(
        self,
        protocol_name: str,
        key_share: ThresholdKeyShare,
        executor: Optional[CryptoExecutor] = None,
        lookahead: int = 0,
    ) -> None:
        if protocol_name not in _PROTOCOL_CLASSES:
            raise ConfigError(f"unknown signing protocol {protocol_name!r}")
        self.protocol_name = protocol_name
        self.key_share = key_share
        self.executor: CryptoExecutor = (
            executor if executor is not None else SerialExecutor(key_share)
        )
        # Session pipelining: how many upcoming sessions the replica may
        # prefetch (session k's assembly overlaps k+1's share generation).
        self.lookahead = max(0, lookahead)
        self.max_inflight_prefetch = max(2, 2 * self.executor.clock.workers)
        self._prefetched: Dict[str, _Prefetch] = {}
        self.pipeline_stats: Dict[str, int] = {
            "prefetched": 0,  # speculative share generations submitted
            "used": 0,        # prefetches consumed by a started session
            "dropped": 0,     # refused: in-flight queue full (backpressure)
            "discarded": 0,   # stale: message changed before the session started
        }
        self.sessions: Dict[str, SigningProtocol] = {}
        self._pending: Dict[str, List[Tuple[int, SigningMessage]]] = {}
        self._completed: Dict[str, bytes] = {}
        # KeyTrap-style bounds on the not-yet-started buffer: a Byzantine
        # peer could otherwise stuff unbounded sign_ids (or unbounded
        # messages for one sign_id) into memory before the local state
        # machine ever starts the session.
        self.max_pending_sessions = MAX_PENDING_SESSIONS
        self.max_pending_per_session = 3 * key_share.public.n
        self.dropped_messages = 0
        # Distributed signing rounds actually started (a completed or
        # already-running sign_id does not start a new round).  Benchmarks
        # use this to show the signed-answer cache eliminating rounds.
        self.rounds_started = 0

    def prefetch(self, sign_id: str, message: bytes) -> bool:
        """Speculatively start share generation for an upcoming session.

        Returns True if a prefetch was submitted.  The in-flight queue is
        bounded; refusals bump the backpressure counter and the session
        simply generates its share on demand when it starts.
        """
        if (
            sign_id in self._completed
            or sign_id in self.sessions
            or sign_id in self._prefetched
        ):
            return False
        if len(self._prefetched) >= self.max_inflight_prefetch:
            self.pipeline_stats["dropped"] += 1
            return False
        with_proof = self.protocol_name == PROTOCOL_BASIC
        entry = _Prefetch(
            message=message,
            share=self.executor.submit_generate_share(message, with_proof=with_proof),
            verify_shares=[],
            verify=None,
        )
        if self.executor.prefers_batching:
            # Amortized verification ahead of the session: batch-check the
            # proof-carrying shares already buffered for this sign_id.
            buffered = [
                m.share
                for _, m in self._pending.get(sign_id, [])
                if m.is_share and m.share is not None and m.share.proof is not None
            ]
            buffered = buffered[: self.key_share.public.t]
            if buffered:
                entry.verify_shares = buffered
                entry.verify = self.executor.submit_verify_shares(message, buffered)
        self._prefetched[sign_id] = entry
        self.pipeline_stats["prefetched"] += 1
        return True

    def _take_prefetch(self, sign_id: str, message: bytes) -> Optional[_Prefetch]:
        entry = self._prefetched.pop(sign_id, None)
        if entry is None:
            return None
        if entry.message != message:
            self.pipeline_stats["discarded"] += 1
            return None
        self.pipeline_stats["used"] += 1
        return entry

    def sign(self, sign_id: str, message: bytes) -> List[Outgoing]:
        """Start (or resume) a signing session for ``message``."""
        if sign_id in self._completed:
            return []
        if sign_id in self.sessions:
            return []
        self.rounds_started += 1
        entry = self._take_prefetch(sign_id, message)
        protocol = make_signing_protocol(
            self.protocol_name,
            self.key_share,
            sign_id,
            message,
            executor=self.executor,
            own_share=entry.share if entry is not None else None,
        )
        self.sessions[sign_id] = protocol
        out = protocol.start()
        if entry is not None and entry.verify is not None:
            verdicts = entry.verify.result()
            if isinstance(verdicts, list):
                protocol.preload_verdicts(entry.verify_shares, verdicts)
        if self.executor.prefers_batching:
            protocol.prevalidate(
                [
                    m.share
                    for _, m in self._pending.get(sign_id, [])
                    if m.is_share and m.share is not None
                ]
            )
        for sender, msg in self._pending.pop(sign_id, []):
            if protocol.done:
                break
            out.extend(protocol.on_message(sender, msg))
        if protocol.done:
            self._finish(sign_id, protocol)
        return out

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        """Route an incoming signing message to its session."""
        if msg.sign_id in self._completed:
            return []
        protocol = self.sessions.get(msg.sign_id)
        if protocol is None:
            pending = self._pending.get(msg.sign_id)
            if pending is None:
                if len(self._pending) >= self.max_pending_sessions:
                    self.dropped_messages += 1
                    return []
                pending = self._pending[msg.sign_id] = []
            if len(pending) >= self.max_pending_per_session:
                self.dropped_messages += 1
                return []
            pending.append((sender, msg))
            return []
        out = protocol.on_message(sender, msg)
        if protocol.done:
            self._finish(msg.sign_id, protocol)
        return out

    def _finish(self, sign_id: str, protocol: SigningProtocol) -> None:
        assert protocol.signature is not None
        self._completed[sign_id] = protocol.signature
        self._prefetched.pop(sign_id, None)

    def result(self, sign_id: str) -> Optional[bytes]:
        """The assembled signature for a completed session, if any."""
        return self._completed.get(sign_id)

    def session(self, sign_id: str) -> Optional[SigningProtocol]:
        return self.sessions.get(sign_id)

    def fallback_rounds(self) -> int:
        """How many OptProof sessions were forced onto the slow path."""
        return sum(
            1
            for protocol in self.sessions.values()
            if getattr(protocol, "fallback_entered", False)
        )

    def drain_ops(self) -> List[Tuple[str, int]]:
        """Collect op logs from all sessions (for simulator cost charging)."""
        ops: List[Tuple[str, int]] = []
        for protocol in self.sessions.values():
            ops.extend(protocol.drain_ops())
        return ops
