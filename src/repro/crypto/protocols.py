"""The three threshold-signing protocols of the paper (§3.3, §3.5).

* **BASIC** — every server broadcasts its share *with* a correctness proof;
  receivers verify each share and assemble ``t+1`` valid ones.
* **OptProof** — shares are broadcast *without* proofs; the first ``t+1``
  are optimistically assembled and only the final signature is verified.
  If that fails, the server asks everyone to resend shares with proofs and
  proceeds as in BASIC, while in parallel accepting a valid final
  signature from any peer.
* **OptTE** — shares are broadcast without proofs and assembly proceeds by
  trial and error over all ``t+1``-subsets of up to ``2t+1`` collected
  shares; since at most ``t`` shares are invalid, some subset succeeds.

The protocol classes are *sans-IO*: they consume ``(sender, message)``
events and return lists of outgoing messages, so the same implementation
runs on the discrete-event simulator (benchmarks) and on the asyncio
transport (examples).  Every cryptographic operation performed is recorded
in an operation log so the simulator can charge calibrated CPU time per
operation (this is how Table 2 and Table 3 shapes are reproduced).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.crypto.shoup import (
    SignatureShare,
    ThresholdKeyShare,
    ThresholdPublicKey,
)
from repro.errors import AssemblyError, ConfigError
from repro.util.serialization import (
    pack_bytes,
    pack_str,
    pack_u8,
    unpack_bytes,
    unpack_str,
    unpack_u8,
)

PROTOCOL_BASIC = "basic"
PROTOCOL_OPTPROOF = "optproof"
PROTOCOL_OPTTE = "optte"

ALL_PROTOCOLS = (PROTOCOL_BASIC, PROTOCOL_OPTPROOF, PROTOCOL_OPTTE)

# Operation names used in the op log (match Table 3's row labels).
OP_GENERATE_SHARE = "generate_share"
OP_GENERATE_PROOF = "generate_proof"
OP_VERIFY_SHARE = "verify_share"
OP_ASSEMBLE = "assemble"
OP_VERIFY_SIGNATURE = "verify_signature"

BROADCAST = -1  # destination meaning "all other replicas"

#: Cap on buffered not-yet-started signing sessions per coordinator.
MAX_PENDING_SESSIONS = 4096

_MSG_SHARE = 1
_MSG_PROOF_REQUEST = 2
_MSG_FINAL = 3


@dataclass(frozen=True)
class SigningMessage:
    """Wire message of the signing protocols.

    ``kind`` is one of share / proof-request / final; ``sign_id`` names the
    signing session (derived from the record being signed, identical on
    every replica).
    """

    kind: int
    sign_id: str
    share: Optional[SignatureShare] = None
    signature: bytes = b""

    def to_bytes(self) -> bytes:
        out = pack_u8(self.kind) + pack_str(self.sign_id)
        if self.kind == _MSG_SHARE:
            assert self.share is not None
            out += self.share.to_bytes()
        elif self.kind == _MSG_FINAL:
            out += pack_bytes(self.signature)
        return out

    @classmethod
    def from_bytes(cls, data: bytes) -> "SigningMessage":
        kind, offset = unpack_u8(data, 0)
        sign_id, offset = unpack_str(data, offset)
        share = None
        signature = b""
        if kind == _MSG_SHARE:
            share, offset = SignatureShare.from_bytes(data, offset)
        elif kind == _MSG_FINAL:
            signature, offset = unpack_bytes(data, offset)
        return cls(kind=kind, sign_id=sign_id, share=share, signature=signature)

    @classmethod
    def share_message(cls, sign_id: str, share: SignatureShare) -> "SigningMessage":
        return cls(kind=_MSG_SHARE, sign_id=sign_id, share=share)

    @classmethod
    def proof_request(cls, sign_id: str) -> "SigningMessage":
        return cls(kind=_MSG_PROOF_REQUEST, sign_id=sign_id)

    @classmethod
    def final(cls, sign_id: str, signature: bytes) -> "SigningMessage":
        return cls(kind=_MSG_FINAL, sign_id=sign_id, signature=signature)

    @property
    def is_share(self) -> bool:
        return self.kind == _MSG_SHARE

    @property
    def is_proof_request(self) -> bool:
        return self.kind == _MSG_PROOF_REQUEST

    @property
    def is_final(self) -> bool:
        return self.kind == _MSG_FINAL


Outgoing = Tuple[int, SigningMessage]  # (destination replica id or BROADCAST, msg)


class SigningProtocol:
    """Base class: one instance per replica per signing session."""

    name = "abstract"

    def __init__(
        self,
        key_share: ThresholdKeyShare,
        sign_id: str,
        message: bytes,
    ) -> None:
        self.key_share = key_share
        self.public: ThresholdPublicKey = key_share.public
        self.sign_id = sign_id
        self.message = message
        self.signature: Optional[bytes] = None
        self._ops: List[Tuple[str, int]] = []
        self._shares: Dict[int, SignatureShare] = {}
        self._arrival_order: List[int] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.signature is not None

    def start(self) -> List[Outgoing]:
        """Generate and broadcast this replica's own share."""
        raise NotImplementedError

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        """Feed a received protocol message; returns messages to send."""
        raise NotImplementedError

    # -- op accounting --------------------------------------------------------

    def record_op(self, op: str, count: int = 1) -> None:
        self._ops.append((op, count))

    def drain_ops(self) -> List[Tuple[str, int]]:
        """Return and clear the log of crypto ops performed since last call."""
        ops, self._ops = self._ops, []
        return ops

    # -- shared helpers -------------------------------------------------------

    def _accept_final(self, msg: SigningMessage) -> bool:
        """Validate and adopt a final signature received from a peer."""
        self.record_op(OP_VERIFY_SIGNATURE)
        if self.public.signature_is_valid(self.message, msg.signature):
            self.signature = msg.signature
            return True
        return False

    def _store_share(self, sender: int, share: SignatureShare) -> bool:
        """Store a share by sender index; returns False on duplicates.

        The claimed share index must match the authenticated sender
        (replica ids are 0-based, share indices 1-based): without this
        check a single Byzantine peer could stuff the pool with shares
        for arbitrary indices, growing state and poisoning interpolation
        sets with shares it never proved it holds.

        A proof-carrying share may replace a previously stored bare share
        (needed by OptProof's fall-back phase).
        """
        if share.index != sender + 1 or not 1 <= share.index <= self.public.n:
            return False
        existing = self._shares.get(share.index)
        if existing is not None and (existing.proof or not share.proof):
            return False
        if existing is None:
            self._arrival_order.append(share.index)
        self._shares[share.index] = share
        return True


class BasicSigningProtocol(SigningProtocol):
    """Unoptimized protocol: every share carries and gets a verified proof."""

    name = PROTOCOL_BASIC

    def __init__(self, key_share, sign_id, message) -> None:
        super().__init__(key_share, sign_id, message)
        self._valid: Dict[int, SignatureShare] = {}

    def start(self) -> List[Outgoing]:
        if self._started:
            return []
        self._started = True
        share = self.key_share.generate_share_with_proof(self.message)
        self.record_op(OP_GENERATE_SHARE)
        self.record_op(OP_GENERATE_PROOF)
        out: List[Outgoing] = [(BROADCAST, SigningMessage.share_message(self.sign_id, share))]
        # Our own share is trusted without verification (we computed it);
        # _try_finish revalidates it defensively if assembly ever fails.
        self._own_index = share.index
        self._valid[share.index] = share
        out.extend(self._try_finish())
        return out

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        if self.done:
            return []
        if msg.is_final:
            self._accept_final(msg)
            return []
        if not msg.is_share or msg.share is None:
            return []
        if not self._store_share(sender, msg.share):
            return []
        if msg.share.index in self._valid:
            return []
        self.record_op(OP_VERIFY_SHARE)
        if self.public.share_is_valid(self.message, msg.share):
            # Bounded: _store_share pins index == sender + 1 <= n, so at
            # most one entry per replica.
            # repro-lint: disable=C304
            self._valid[msg.share.index] = msg.share
        return self._try_finish()

    def _try_finish(self) -> List[Outgoing]:
        if self.done or len(self._valid) < self.public.t + 1:
            return []
        shares = list(self._valid.values())[: self.public.t + 1]
        self.record_op(OP_ASSEMBLE)
        try:
            signature = self.public.assemble(self.message, shares)
        except AssemblyError:
            signature = None
        self.record_op(OP_VERIFY_SIGNATURE)
        if signature is not None and self.public.signature_is_valid(
            self.message, signature
        ):
            self.signature = signature
            return []
        # Assembly from verified shares cannot fail — unless our own,
        # never-verified share is bad (we might BE the corrupted server).
        # Re-validate it; if bogus, drop it and wait for more shares.
        own = self._valid.get(getattr(self, "_own_index", -1))
        if own is not None:
            self.record_op(OP_VERIFY_SHARE)
            if not self.public.share_is_valid(self.message, own):
                del self._valid[own.index]
        return []


class OptProofSigningProtocol(SigningProtocol):
    """Optimistic protocol with proofs generated/verified only on demand."""

    name = PROTOCOL_OPTPROOF

    def __init__(self, key_share, sign_id, message) -> None:
        super().__init__(key_share, sign_id, message)
        self._own_share: Optional[SignatureShare] = None
        self._fallback = False
        self._valid: Dict[int, SignatureShare] = {}
        self._optimistic_tried = False

    @property
    def fallback_entered(self) -> bool:
        """True once optimistic assembly failed and the proof phase started.

        The chaos harness asserts on this: a share-withholding or
        bad-share schedule must demonstrably force the slow path.
        """
        return self._fallback

    def start(self) -> List[Outgoing]:
        if self._started:
            return []
        self._started = True
        self._own_share = self.key_share.generate_share(self.message)
        self.record_op(OP_GENERATE_SHARE)
        # Per §3.5 the server assembles the first t+1 shares it *receives*;
        # its own share is sent to the others but not put in the pool.
        return [
            (BROADCAST, SigningMessage.share_message(self.sign_id, self._own_share))
        ]

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        if self.done:
            return []
        if msg.is_final:
            if self._accept_final(msg):
                return []
            return []
        if msg.is_proof_request:
            return self._answer_proof_request()
        if not msg.is_share or msg.share is None:
            return []
        if not self._store_share(sender, msg.share):
            return []
        out: List[Outgoing] = []
        if not self._fallback:
            out.extend(self._try_optimistic())
        if self._fallback and not self.done:
            out.extend(self._try_fallback(msg.share))
        return out

    def _try_optimistic(self) -> List[Outgoing]:
        """Assemble the first ``t+1`` bare shares and verify the result."""
        needed = self.public.t + 1
        if self._optimistic_tried or len(self._shares) < needed:
            return []
        self._optimistic_tried = True
        shares = list(self._shares.values())[:needed]
        self.record_op(OP_ASSEMBLE)
        try:
            signature = self.public.assemble(self.message, shares)
        except AssemblyError:
            signature = None
        self.record_op(OP_VERIFY_SIGNATURE)
        if signature is not None and self.public.signature_is_valid(
            self.message, signature
        ):
            self.signature = signature
            return [(BROADCAST, SigningMessage.final(self.sign_id, signature))]
        # Some collected share was bogus: request proofs from everyone and
        # fall back to verified assembly; keep accepting a final in parallel.
        self._fallback = True
        out: List[Outgoing] = [
            (BROADCAST, SigningMessage.proof_request(self.sign_id))
        ]
        out.extend(self._answer_proof_request())
        # Re-examine shares that already carry proofs (none yet, typically).
        for share in list(self._shares.values()):
            out.extend(self._try_fallback(share))
        return out

    def _answer_proof_request(self) -> List[Outgoing]:
        """Resend our share, now with a correctness proof attached."""
        if self._own_share is None:
            return []
        if self._own_share.proof is None:
            proof = self.key_share.prove(self.message, self._own_share)
            self.record_op(OP_GENERATE_PROOF)
            self._own_share = self._own_share.with_proof(proof)
            self._store_share(self.key_share.index - 1, self._own_share)
            self._valid[self._own_share.index] = self._own_share
        return [
            (BROADCAST, SigningMessage.share_message(self.sign_id, self._own_share))
        ]

    def _try_fallback(self, share: SignatureShare) -> List[Outgoing]:
        """BASIC-style verified processing of proof-carrying shares."""
        if share.proof is None or share.index in self._valid:
            return []
        self.record_op(OP_VERIFY_SHARE)
        if not self.public.share_is_valid(self.message, share):
            return []
        self._valid[share.index] = share
        if len(self._valid) < self.public.t + 1:
            return []
        chosen = list(self._valid.values())[: self.public.t + 1]
        self.record_op(OP_ASSEMBLE)
        try:
            signature = self.public.assemble(self.message, chosen)
        except AssemblyError:
            signature = None
        self.record_op(OP_VERIFY_SIGNATURE)
        if signature is None or not self.public.signature_is_valid(
            self.message, signature
        ):
            # Our own never-verified share may be the bad one (we might BE
            # the corrupted server); re-validate and drop it if so.
            own = self._own_share
            if own is not None and own.index in self._valid and own.proof:
                self.record_op(OP_VERIFY_SHARE)
                if not self.public.share_is_valid(self.message, own):
                    del self._valid[own.index]
            return []
        self.signature = signature
        # Unlike the optimistic success case, fall-back completion does not
        # broadcast the final signature — it proceeds "in the same way as
        # the unoptimized algorithm" (§3.5), which sends nothing extra.
        return []


class OptTESigningProtocol(SigningProtocol):
    """Optimistic protocol with trial-and-error subset assembly.

    Collects up to ``2t+1`` bare shares and tries every ``t+1``-subset; at
    most ``t`` shares are invalid, so a valid subset must exist among any
    ``2t+1``.  Exponential in the worst case but fastest for practical
    ``n`` (§3.5, Table 2).
    """

    name = PROTOCOL_OPTTE

    def __init__(self, key_share, sign_id, message) -> None:
        super().__init__(key_share, sign_id, message)
        self._tried: Set[Tuple[int, ...]] = set()
        self.attempts = 0  # exposed for the A4 ablation bench

    def start(self) -> List[Outgoing]:
        if self._started:
            return []
        self._started = True
        share = self.key_share.generate_share(self.message)
        self.record_op(OP_GENERATE_SHARE)
        # As in OptProof, assembly draws on the shares *received* (§3.5);
        # the local share is only sent to the other servers.
        return [
            (BROADCAST, SigningMessage.share_message(self.sign_id, share))
        ]

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        if self.done:
            return []
        if msg.is_final:
            self._accept_final(msg)
            return []
        if not msg.is_share or msg.share is None:
            return []
        if not self._store_share(sender, msg.share):
            return []
        return self._try_subsets()

    def _candidate_subsets(self) -> Iterator[Tuple[int, ...]]:
        # The paper caps collection at 2t+1 shares (§3.5): among any 2t+1
        # there are at most t invalid ones, so some (t+1)-subset works.
        # Shares are considered in arrival order, earliest first.
        limit = 2 * self.public.t + 1
        indices = self._arrival_order[:limit]
        size = self.public.t + 1
        if len(indices) < size:
            return iter(())
        return (
            tuple(sorted(combo))
            for combo in itertools.combinations(indices, size)
        )

    def _try_subsets(self) -> List[Outgoing]:
        for subset in self._candidate_subsets():
            if subset in self._tried:
                continue
            self._tried.add(subset)
            self.attempts += 1
            shares = [self._shares[i] for i in subset]
            self.record_op(OP_ASSEMBLE)
            try:
                signature = self.public.assemble(self.message, shares)
            except AssemblyError:
                continue
            self.record_op(OP_VERIFY_SIGNATURE)
            if self.public.signature_is_valid(self.message, signature):
                self.signature = signature
                return [(BROADCAST, SigningMessage.final(self.sign_id, signature))]
        return []


_PROTOCOL_CLASSES = {
    PROTOCOL_BASIC: BasicSigningProtocol,
    PROTOCOL_OPTPROOF: OptProofSigningProtocol,
    PROTOCOL_OPTTE: OptTESigningProtocol,
}


def make_signing_protocol(
    name: str,
    key_share: ThresholdKeyShare,
    sign_id: str,
    message: bytes,
) -> SigningProtocol:
    """Instantiate a signing protocol by configuration name."""
    try:
        cls = _PROTOCOL_CLASSES[name]
    except KeyError:
        raise ConfigError(
            f"unknown signing protocol {name!r}; choose from {ALL_PROTOCOLS}"
        ) from None
    return cls(key_share, sign_id, message)


class SigningCoordinator:
    """Multiplexes concurrent signing sessions for one replica.

    The Wrapper's signing dispatcher (§4.1) hands each SIG-record signing
    request to the coordinator; messages for sessions that have not started
    locally yet are buffered until the local state machine reaches the same
    update and calls :meth:`sign`.
    """

    def __init__(self, protocol_name: str, key_share: ThresholdKeyShare) -> None:
        if protocol_name not in _PROTOCOL_CLASSES:
            raise ConfigError(f"unknown signing protocol {protocol_name!r}")
        self.protocol_name = protocol_name
        self.key_share = key_share
        self.sessions: Dict[str, SigningProtocol] = {}
        self._pending: Dict[str, List[Tuple[int, SigningMessage]]] = {}
        self._completed: Dict[str, bytes] = {}
        # KeyTrap-style bounds on the not-yet-started buffer: a Byzantine
        # peer could otherwise stuff unbounded sign_ids (or unbounded
        # messages for one sign_id) into memory before the local state
        # machine ever starts the session.
        self.max_pending_sessions = MAX_PENDING_SESSIONS
        self.max_pending_per_session = 3 * key_share.public.n
        self.dropped_messages = 0
        # Distributed signing rounds actually started (a completed or
        # already-running sign_id does not start a new round).  Benchmarks
        # use this to show the signed-answer cache eliminating rounds.
        self.rounds_started = 0

    def sign(self, sign_id: str, message: bytes) -> List[Outgoing]:
        """Start (or resume) a signing session for ``message``."""
        if sign_id in self._completed:
            return []
        if sign_id in self.sessions:
            return []
        self.rounds_started += 1
        protocol = make_signing_protocol(
            self.protocol_name, self.key_share, sign_id, message
        )
        self.sessions[sign_id] = protocol
        out = protocol.start()
        for sender, msg in self._pending.pop(sign_id, []):
            if protocol.done:
                break
            out.extend(protocol.on_message(sender, msg))
        if protocol.done:
            self._finish(sign_id, protocol)
        return out

    def on_message(self, sender: int, msg: SigningMessage) -> List[Outgoing]:
        """Route an incoming signing message to its session."""
        if msg.sign_id in self._completed:
            return []
        protocol = self.sessions.get(msg.sign_id)
        if protocol is None:
            pending = self._pending.get(msg.sign_id)
            if pending is None:
                if len(self._pending) >= self.max_pending_sessions:
                    self.dropped_messages += 1
                    return []
                pending = self._pending[msg.sign_id] = []
            if len(pending) >= self.max_pending_per_session:
                self.dropped_messages += 1
                return []
            pending.append((sender, msg))
            return []
        out = protocol.on_message(sender, msg)
        if protocol.done:
            self._finish(msg.sign_id, protocol)
        return out

    def _finish(self, sign_id: str, protocol: SigningProtocol) -> None:
        assert protocol.signature is not None
        self._completed[sign_id] = protocol.signature

    def result(self, sign_id: str) -> Optional[bytes]:
        """The assembled signature for a completed session, if any."""
        return self._completed.get(sign_id)

    def session(self, sign_id: str) -> Optional[SigningProtocol]:
        return self.sessions.get(sign_id)

    def fallback_rounds(self) -> int:
        """How many OptProof sessions were forced onto the slow path."""
        return sum(
            1
            for protocol in self.sessions.values()
            if getattr(protocol, "fallback_entered", False)
        )

    def drain_ops(self) -> List[Tuple[str, int]]:
        """Collect op logs from all sessions (for simulator cost charging)."""
        ops: List[Tuple[str, int]] = []
        for protocol in self.sessions.values():
            ops.extend(protocol.drain_ops())
        return ops
