"""EMSA-PKCS1-v1_5 message encoding with SHA-1 (RFC 2313 / RFC 8017 §9.2).

The paper's zone signatures are "1024-bit RSA moduli with SHA-1 and PKCS #1
encoding" (§5.1); DNSSEC's RSA/SHA-1 algorithm (RFC 2535 / 3110) uses
exactly this encoding, so signatures produced by the threshold scheme are
byte-identical to what an unmodified single-key signer would produce.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.errors import CryptoError

# DER prefix of the DigestInfo structure for SHA-1 (RFC 8017 §9.2 note 1).
_SHA1_DIGEST_INFO_PREFIX = bytes.fromhex("3021300906052b0e03021a05000414")

SHA1_DIGEST_SIZE = 20


def sha1(data: bytes) -> bytes:
    """SHA-1 digest (the hash the paper and RFC 2535 DNSSEC use)."""
    return hashlib.sha1(data).digest()


def emsa_pkcs1_v15_encode(message: bytes, em_len: int) -> bytes:
    """Encode ``message`` into an ``em_len``-byte PKCS#1 v1.5 block.

    ``em_len`` is the RSA modulus size in bytes.  The result is
    ``0x00 0x01 PS 0x00 DigestInfo`` where PS is at least eight 0xFF bytes.
    """
    digest_info = _SHA1_DIGEST_INFO_PREFIX + sha1(message)
    if em_len < len(digest_info) + 11:
        raise CryptoError(
            f"modulus too small for PKCS#1 encoding: need {len(digest_info) + 11} "
            f"bytes, have {em_len}"
        )
    padding = b"\xff" * (em_len - len(digest_info) - 3)
    return b"\x00\x01" + padding + b"\x00" + digest_info


def emsa_pkcs1_v15_verify(message: bytes, em: bytes) -> bool:
    """Constant-structure comparison of the expected encoding against ``em``."""
    try:
        expected = emsa_pkcs1_v15_encode(message, len(em))
    except CryptoError:
        return False
    return expected == em


@lru_cache(maxsize=512)
def _encode_to_int_cached(message: bytes, em_len: int) -> int:
    return int.from_bytes(emsa_pkcs1_v15_encode(message, em_len), "big")


def encode_to_int(message: bytes, modulus: int) -> int:
    """PKCS#1-encode ``message`` for ``modulus`` and return it as an integer.

    This integer is the value ``x`` that the (threshold) RSA signing
    operation raises to the private exponent.

    Memoized (bounded): during one threshold signing round every server
    encodes the same message once per share operation; the encoding is a
    pure function of the message and the modulus size.
    """
    em_len = (modulus.bit_length() + 7) // 8
    return _encode_to_int_cached(message, em_len)
