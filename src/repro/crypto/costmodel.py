"""Calibrated CPU costs of cryptographic operations for the simulator.

The paper's Table 3 breaks down one BASIC threshold signature on the
266 MHz Zurich reference machines (1024-bit modulus, Java BigInteger):

======================  =========  ========
operation               seconds    share
======================  =========  ========
generate share (+proof)   0.82      49.6 %
verify share (proof)      0.78      47.2 %
assemble signature        0.05       3.0 %
verify final signature    0.003      0.2 %
======================  =========  ========

"Generate share" includes the correctness proof; the optimistic protocols
skip the proof, so the model splits 0.82 s into the bare share value and
the proof using the exponentiation-count ratio (one |s_i|-bit modexp for
the share vs. two wider modexps for the proof commitments).

The same table drives both the simulator (:class:`CostModel` charges
simulated seconds per logged operation, scaled by the machine's CPU
factor) and the sanity cross-check against real wall-clock measurements
in ``benchmarks/bench_table3.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.crypto.protocols import (
    OP_ASSEMBLE,
    OP_GENERATE_PROOF,
    OP_GENERATE_SHARE,
    OP_VERIFY_SHARE,
    OP_VERIFY_SIGNATURE,
)

# Table 3 totals on the reference machine.
TABLE3_GENERATE_WITH_PROOF = 0.82
TABLE3_VERIFY_SHARE = 0.78
TABLE3_ASSEMBLE = 0.05
TABLE3_VERIFY_SIGNATURE = 0.003

# Split of "generate share" into bare value vs. proof: the share value is
# one ~1024-bit-exponent modexp; the proof is two modexps with ~1540-bit
# exponents, i.e. roughly 1 : 2 in multiplies.  0.82 * (1/3, 2/3):
GENERATE_SHARE_BARE = 0.28
GENERATE_PROOF = 0.54

#: Default per-operation costs (seconds on the 266 MHz reference machine).
PAPER_CRYPTO_COSTS: Dict[str, float] = {
    OP_GENERATE_SHARE: GENERATE_SHARE_BARE,
    OP_GENERATE_PROOF: GENERATE_PROOF,
    OP_VERIFY_SHARE: TABLE3_VERIFY_SHARE,
    OP_ASSEMBLE: TABLE3_ASSEMBLE,
    OP_VERIFY_SIGNATURE: TABLE3_VERIFY_SIGNATURE,
}

# Non-crypto costs, also in reference-machine seconds.  Calibrated from
# Table 2's (1,0) base row: an unreplicated read takes 0.047 s end-to-end,
# of which most is named's request handling and client overhead.
DNS_PROCESSING_COST = 0.030      # named handling one query/update
CLIENT_OVERHEAD = 0.015          # dig/nsupdate per-request overhead
MESSAGE_HANDLING_COST = 0.0002   # deserializing/dispatching one message

# Broadcast-layer authentication (transferable prepare authenticators).
# Priced as a 512-bit RSA-CRT signature / small-exponent verification in
# a 2003-era optimized bignum implementation on the reference machine.
AUTH_SIGN_COST = 0.004
AUTH_VERIFY_COST = 0.0005

# Unmodified named signing a SIG record with its own local key (native
# OpenSSL RSA-1024 on the reference machine) — the (1,0) base case, whose
# 4-vs-2 signature pattern yields Table 2's 0.047 s add / 0.022 s delete.
LOCAL_SIGN_COST = 0.008

# Serving a memoized answer from the signed-answer cache: parse the query
# header/question and splice the message id into the cached wire — no zone
# lookup, no response rendering, no signing.
ANSWER_CACHE_HIT_COST = 0.004


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs on the reference machine.

    The simulator multiplies these by each machine's ``cpu_factor``
    (266 MHz / machine MHz) when charging busy time.
    """

    crypto: Dict[str, float] = field(
        default_factory=lambda: dict(PAPER_CRYPTO_COSTS)
    )
    dns_processing: float = DNS_PROCESSING_COST
    client_overhead: float = CLIENT_OVERHEAD
    message_handling: float = MESSAGE_HANDLING_COST
    auth_sign: float = AUTH_SIGN_COST
    auth_verify: float = AUTH_VERIFY_COST
    local_sign: float = LOCAL_SIGN_COST
    answer_cache_hit: float = ANSWER_CACHE_HIT_COST

    def crypto_cost(self, op: str, count: int = 1) -> float:
        try:
            return self.crypto[op] * count
        except KeyError:
            raise KeyError(f"no cost configured for crypto op {op!r}") from None

    def ops_cost(self, ops: Tuple[Tuple[str, int], ...] | list) -> float:
        return sum(self.crypto_cost(op, count) for op, count in ops)


def measure_local_costs(modulus_bits: int = 1024, repetitions: int = 3) -> Dict[str, float]:
    """Measure real wall-clock costs of the threshold primitives locally.

    Used by the Table 3 benchmark to show that the *relative* breakdown of
    this pure-Python implementation matches the paper's Java prototype.
    """
    from repro.crypto.params import demo_threshold_key

    public, shares = demo_threshold_key(4, 1, modulus_bits)
    message = b"cost-model calibration message"
    results: Dict[str, float] = {}

    start = time.perf_counter()
    bare = [shares[0].generate_share(message) for _ in range(repetitions)]
    results[OP_GENERATE_SHARE] = (time.perf_counter() - start) / repetitions

    start = time.perf_counter()
    proved = [
        shares[0].generate_share(message).with_proof(
            shares[0].prove(message, bare[0])
        )
        for _ in range(repetitions)
    ]
    results[OP_GENERATE_PROOF] = (
        (time.perf_counter() - start) / repetitions - results[OP_GENERATE_SHARE]
    )

    start = time.perf_counter()
    for _ in range(repetitions):
        public.verify_share(message, proved[0])
    results[OP_VERIFY_SHARE] = (time.perf_counter() - start) / repetitions

    both = [s.generate_share(message) for s in shares[:2]]
    start = time.perf_counter()
    for _ in range(repetitions):
        signature = public.assemble(message, both)
    results[OP_ASSEMBLE] = (time.perf_counter() - start) / repetitions

    start = time.perf_counter()
    for _ in range(repetitions):
        public.verify_signature(message, signature)
    results[OP_VERIFY_SIGNATURE] = (time.perf_counter() - start) / repetitions
    return results
