"""Pluggable crypto execution plane: serial or multicore threshold RSA.

The paper's evaluation (§4, Tables 2–3) shows threshold-signature share
generation and verification dominate end-to-end latency.  The protocol
layer is sans-IO and records operation *costs* for the simulator, but the
actual bigint modexps still run serially under the GIL, so real-time
(``net.local``) runs are crypto-bound on one core.  This module makes the
execution strategy pluggable:

* :class:`SerialExecutor` — the deterministic default.  Every job runs
  inline in the calling thread; the simulator and the chaos harness keep
  bit-identical transcripts.
* :class:`PoolExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  facade.  Worker processes deserialize key material **once at warmup**
  (via the pool initializer) and then service fine-grained jobs: share and
  proof generation, amortized share-batch verification, trial-and-error
  subset assembly, and RSA PREPARE sign/verify for the broadcast layer.

Determinism contract
--------------------
Both executors compute the *same functions on the same inputs*: share
values, assembled signatures, and verification verdicts are pure, so a run
produces identical ABC transcripts and identical assembled signatures
under either executor.  The only randomized output is the Fiat–Shamir
proof nonce, which never enters the broadcast transcript (proofs are
verified and discarded).  ``tests/core/test_executor_equivalence.py``
asserts the contract end-to-end.

Job taxonomy (what gets offloaded)
----------------------------------
==========================  ============================================
job                         issued by
==========================  ============================================
``generate_share``          all three signing protocols (``start`` /
                            coordinator prefetch)
``generate_proof``          OptProof's on-demand proof phase
``verify_shares``           BASIC / OptProof fall-back — **one task per
                            share batch**, not one per signature
``assemble_candidates``     OptTE trial-and-error subset assembly
``rsa_sign``                ABC PREPARE / EPOCH_FINAL authenticators
``rsa_verify_many``         ABC certificate pools, client-side answer
                            verification — one task per pool
==========================  ============================================

Every executor also keeps a :class:`WorkerClock` — a virtual greedy list
schedule of the jobs it actually executed, costed in reference-machine
seconds (Table 3).  Benchmarks report modelled makespans from this clock
so the measured speedup is a property of the schedule, not of how many
physical cores the CI host happens to have.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.shoup import (
    ShareProof,
    SignatureShare,
    ThresholdKeyShare,
)
from repro.errors import AssemblyError, ConfigError

if TYPE_CHECKING:
    from repro.crypto.costmodel import CostModel

EXECUTOR_SERIAL = "serial"
EXECUTOR_POOL = "pool"
ALL_EXECUTORS = (EXECUTOR_SERIAL, EXECUTOR_POOL)

DEFAULT_POOL_WORKERS = 4

# Operation names used in the protocol op logs (match Table 3's row
# labels).  Defined here — the root of the crypto package's import graph —
# and re-exported by :mod:`repro.crypto.protocols` for the cost model.
OP_GENERATE_SHARE = "generate_share"
OP_GENERATE_PROOF = "generate_proof"
OP_VERIFY_SHARE = "verify_share"
OP_ASSEMBLE = "assemble"
OP_VERIFY_SIGNATURE = "verify_signature"


def _default_costs() -> "CostModel":
    # Imported lazily: costmodel -> protocols -> executor would otherwise
    # be a cycle at module load time.
    from repro.crypto.costmodel import CostModel

    return CostModel()


class WorkerClock:
    """Virtual makespan accounting for executor jobs (reference seconds).

    A greedy list schedule: each job is placed on the least-loaded virtual
    worker at submission time; blocking calls advance the main-thread
    clock to the job's completion, background submissions only push the
    worker's clock.  Costs are Table 3 reference-machine seconds, so the
    resulting makespan models what a W-way pool does to the signing
    critical path independently of the physical core count of the host
    running the benchmark.
    """

    def __init__(self, workers: int, costs: Optional["CostModel"] = None) -> None:
        if workers < 1:
            raise ConfigError("worker clock needs at least one worker")
        self.costs = costs if costs is not None else _default_costs()
        self._workers = [0.0] * workers
        self.main = 0.0
        self.jobs = 0
        self.busy = 0.0  # total reference-seconds of crypto work executed

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def makespan(self) -> float:
        """Virtual completion time of everything submitted so far."""
        return max(self.main, max(self._workers))

    def _submit(self, cost: float) -> float:
        """Place one job on the least-loaded worker; return its end time."""
        w = min(range(len(self._workers)), key=self._workers.__getitem__)
        start = max(self._workers[w], self.main)
        end = start + cost
        self._workers[w] = end
        self.jobs += 1
        self.busy += cost
        return end

    def run(self, cost: float) -> None:
        """Blocking job: the main thread waits for its completion."""
        self.main = max(self.main, self._submit(cost))

    def background(self, cost: float) -> float:
        """Offloaded job: returns its virtual completion time."""
        return self._submit(cost)

    def wait_until(self, vtime: float) -> None:
        """Main thread blocks on a previously offloaded job's result."""
        self.main = max(self.main, vtime)

    def crypto_cost(self, op: str, count: int = 1) -> float:
        return self.costs.crypto_cost(op, count)


class CryptoFuture:
    """Handle to an offloaded crypto job.

    ``result()`` synchronizes the virtual clock (main thread waits for the
    job's modelled completion) and returns the computed value.  Serial
    executors hand out already-resolved futures, so pipelined call sites
    behave identically under both executors.
    """

    def __init__(
        self,
        clock: WorkerClock,
        vtime: float,
        value: object = None,
        future: Optional[Future] = None,
    ) -> None:
        self._clock = clock
        self.vtime = vtime
        self._value = value
        self._future = future

    def result(self) -> object:
        self._clock.wait_until(self.vtime)
        if self._future is not None:
            self._value = self._future.result()
            self._future = None
        return self._value


@dataclass(frozen=True)
class SubsetTrialResult:
    """Outcome of trial-and-error assembly over candidate share subsets.

    ``winner`` is the index (into the submitted subset list) of the first
    subset that assembled into a valid signature, or ``None``.
    ``assembled``/``verified`` count the attempts actually evaluated, for
    op-log accounting (a pooled trial may evaluate more candidates than a
    serial early-exit would have — the chosen signature is identical).
    """

    winner: Optional[int]
    signature: Optional[bytes]
    assembled: int
    verified: int


class CryptoExecutor:
    """Abstract crypto execution plane (see module docstring)."""

    kind = "abstract"

    def __init__(
        self,
        key_share: Optional[ThresholdKeyShare] = None,
        auth_key: Optional[RsaPrivateKey] = None,
        costs: Optional["CostModel"] = None,
        workers: int = 1,
    ) -> None:
        self.key_share = key_share
        self.public = key_share.public if key_share is not None else None
        self.auth_key = auth_key
        self.clock = WorkerClock(workers, costs)
        self.stats: Dict[str, int] = {
            "jobs": 0,
            "batch_jobs": 0,
            "batched_items": 0,
            # OptTE lane-cancel protocol: speculative subset trials whose
            # lanes were cancelled after an earlier wave produced the
            # winner (always 0 on the serial plane).
            "cancelled_trials": 0,
        }

    @property
    def prefers_batching(self) -> bool:
        """Whether call sites should amortize work into batch jobs.

        Serial execution gains nothing from batching (and must keep the
        exact lazy evaluation order of the unpooled code paths), so the
        coordinator only pre-validates share batches when this is True.
        """
        return False

    # -- threshold jobs -----------------------------------------------------

    def generate_share(
        self, message: bytes, with_proof: bool = False
    ) -> SignatureShare:
        raise NotImplementedError

    def submit_generate_share(
        self, message: bytes, with_proof: bool = False
    ) -> CryptoFuture:
        raise NotImplementedError

    def generate_proof(self, message: bytes, share: SignatureShare) -> ShareProof:
        raise NotImplementedError

    def verify_shares(
        self, message: bytes, shares: Sequence[SignatureShare]
    ) -> List[bool]:
        raise NotImplementedError

    def submit_verify_shares(
        self, message: bytes, shares: Sequence[SignatureShare]
    ) -> CryptoFuture:
        raise NotImplementedError

    def assemble(
        self, message: bytes, shares: Sequence[SignatureShare]
    ) -> Optional[bytes]:
        raise NotImplementedError

    def verify_signature(self, message: bytes, signature: bytes) -> bool:
        raise NotImplementedError

    def assemble_candidates(
        self, message: bytes, subsets: Sequence[Sequence[SignatureShare]]
    ) -> SubsetTrialResult:
        raise NotImplementedError

    # -- plain-RSA jobs (broadcast authenticators, client verification) -----

    def rsa_sign(self, message: bytes) -> bytes:
        raise NotImplementedError

    def rsa_verify(
        self, key: RsaPublicKey, message: bytes, signature: bytes
    ) -> bool:
        raise NotImplementedError

    def rsa_verify_many(
        self, items: Sequence[Tuple[RsaPublicKey, bytes, bytes]]
    ) -> List[bool]:
        raise NotImplementedError

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release executor resources (no-op for serial execution)."""

    # -- shared helpers -----------------------------------------------------

    def _require_key_share(self) -> ThresholdKeyShare:
        if self.key_share is None:
            raise ConfigError(f"{self.kind} executor has no threshold key share")
        return self.key_share

    def _require_auth_key(self) -> RsaPrivateKey:
        if self.auth_key is None:
            raise ConfigError(f"{self.kind} executor has no RSA signing key")
        return self.auth_key

    def _count_job(self, batch: int = 0) -> None:
        self.stats["jobs"] += 1
        if batch:
            self.stats["batch_jobs"] += 1
            self.stats["batched_items"] += batch

    def _assemble_candidates_inline(
        self, message: bytes, subsets: Sequence[Sequence[SignatureShare]]
    ) -> SubsetTrialResult:
        """Serial early-exit subset trials, shared by both planes."""
        public = self._require_key_share().public
        assembled = verified = 0
        for i, shares in enumerate(subsets):
            assembled += 1
            self._count_job()
            self.clock.run(self.clock.crypto_cost(OP_ASSEMBLE))
            try:
                signature = public.assemble(message, shares)
            except AssemblyError:
                continue
            verified += 1
            self.clock.run(self.clock.crypto_cost(OP_VERIFY_SIGNATURE))
            if public.signature_is_valid(message, signature):
                return SubsetTrialResult(i, signature, assembled, verified)
        return SubsetTrialResult(None, None, assembled, verified)


class SerialExecutor(CryptoExecutor):
    """Run every job inline — the deterministic reference executor."""

    kind = EXECUTOR_SERIAL

    def generate_share(
        self, message: bytes, with_proof: bool = False
    ) -> SignatureShare:
        key_share = self._require_key_share()
        self._count_job()
        cost = self.clock.crypto_cost(OP_GENERATE_SHARE)
        if with_proof:
            cost += self.clock.crypto_cost(OP_GENERATE_PROOF)
            share = key_share.generate_share_with_proof(message)
        else:
            share = key_share.generate_share(message)
        self.clock.run(cost)
        return share

    def submit_generate_share(
        self, message: bytes, with_proof: bool = False
    ) -> CryptoFuture:
        # Serial "prefetch" computes eagerly: same value, same total cost,
        # just produced earlier — pipelined call sites stay deterministic.
        share = self.generate_share(message, with_proof=with_proof)
        return CryptoFuture(self.clock, self.clock.main, value=share)

    def generate_proof(self, message: bytes, share: SignatureShare) -> ShareProof:
        key_share = self._require_key_share()
        self._count_job()
        self.clock.run(self.clock.crypto_cost(OP_GENERATE_PROOF))
        return key_share.prove(message, share)

    def verify_shares(
        self, message: bytes, shares: Sequence[SignatureShare]
    ) -> List[bool]:
        public = self._require_key_share().public
        self._count_job(batch=len(shares))
        self.clock.run(self.clock.crypto_cost(OP_VERIFY_SHARE, len(shares)))
        return [public.share_is_valid(message, share) for share in shares]

    def submit_verify_shares(
        self, message: bytes, shares: Sequence[SignatureShare]
    ) -> CryptoFuture:
        verdicts = self.verify_shares(message, shares)
        return CryptoFuture(self.clock, self.clock.main, value=verdicts)

    def assemble(
        self, message: bytes, shares: Sequence[SignatureShare]
    ) -> Optional[bytes]:
        public = self._require_key_share().public
        self._count_job()
        self.clock.run(self.clock.crypto_cost(OP_ASSEMBLE))
        try:
            return public.assemble(message, shares)
        except AssemblyError:
            return None

    def verify_signature(self, message: bytes, signature: bytes) -> bool:
        public = self._require_key_share().public
        self._count_job()
        self.clock.run(self.clock.crypto_cost(OP_VERIFY_SIGNATURE))
        return public.signature_is_valid(message, signature)

    def assemble_candidates(
        self, message: bytes, subsets: Sequence[Sequence[SignatureShare]]
    ) -> SubsetTrialResult:
        return self._assemble_candidates_inline(message, subsets)

    def rsa_sign(self, message: bytes) -> bytes:
        key = self._require_auth_key()
        self._count_job()
        self.clock.run(self.clock.costs.auth_sign)
        return key.sign(message)

    def rsa_verify(
        self, key: RsaPublicKey, message: bytes, signature: bytes
    ) -> bool:
        self._count_job()
        self.clock.run(self.clock.costs.auth_verify)
        return key.is_valid(message, signature)

    def rsa_verify_many(
        self, items: Sequence[Tuple[RsaPublicKey, bytes, bytes]]
    ) -> List[bool]:
        self._count_job(batch=len(items))
        self.clock.run(self.clock.costs.auth_verify * len(items))
        return [key.is_valid(message, sig) for key, message, sig in items]


# ---------------------------------------------------------------------------
# Worker-process side of the pool
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _KeyMaterial:
    """Per-owner private material shipped to workers at warmup."""

    key_share: Optional[ThresholdKeyShare] = None
    auth_key: Optional[RsaPrivateKey] = None


#: Deserialized key material, one entry per registered owner, populated
#: once per worker process by :func:`_worker_init`.
_WORKER_KEYS: Dict[str, _KeyMaterial] = {}


def _worker_init(blob: bytes) -> None:
    """Pool initializer: deserialize all registered key material once."""
    _WORKER_KEYS.update(pickle.loads(blob))


def _worker_material(owner: str, blob: Optional[bytes]) -> _KeyMaterial:
    """Look up an owner's material, caching a late-registration blob."""
    material = _WORKER_KEYS.get(owner)
    if material is None:
        if blob is None:
            raise ConfigError(f"worker has no key material for {owner!r}")
        material = pickle.loads(blob)
        _WORKER_KEYS[owner] = material
    return material


def _worker_key_share(owner: str, blob: Optional[bytes]) -> ThresholdKeyShare:
    key_share = _worker_material(owner, blob).key_share
    if key_share is None:
        raise ConfigError(f"owner {owner!r} registered no threshold share")
    return key_share


def _job_generate_share(
    owner: str, blob: Optional[bytes], message: bytes, with_proof: bool
) -> SignatureShare:
    key_share = _worker_key_share(owner, blob)
    if with_proof:
        return key_share.generate_share_with_proof(message)
    return key_share.generate_share(message)


def _job_generate_proof(
    owner: str, blob: Optional[bytes], message: bytes, share: SignatureShare
) -> ShareProof:
    return _worker_key_share(owner, blob).prove(message, share)


def _job_verify_shares(
    owner: str,
    blob: Optional[bytes],
    message: bytes,
    shares: Sequence[SignatureShare],
) -> List[bool]:
    public = _worker_key_share(owner, blob).public
    return [public.share_is_valid(message, share) for share in shares]


def _job_assemble_candidates(
    owner: str,
    blob: Optional[bytes],
    message: bytes,
    subsets: Sequence[Sequence[SignatureShare]],
) -> List[Optional[bytes]]:
    public = _worker_key_share(owner, blob).public
    out: List[Optional[bytes]] = []
    for shares in subsets:
        try:
            signature = public.assemble(message, shares)
        except AssemblyError:
            out.append(None)
            continue
        out.append(
            signature if public.signature_is_valid(message, signature) else None
        )
    return out


def _job_rsa_sign(owner: str, blob: Optional[bytes], message: bytes) -> bytes:
    auth_key = _worker_material(owner, blob).auth_key
    if auth_key is None:
        raise ConfigError(f"owner {owner!r} registered no RSA signing key")
    return auth_key.sign(message)


def _job_rsa_verify_many(
    items: Sequence[Tuple[RsaPublicKey, bytes, bytes]],
) -> List[bool]:
    return [key.is_valid(message, sig) for key, message, sig in items]


# ---------------------------------------------------------------------------
# Host side of the pool
# ---------------------------------------------------------------------------


class CryptoWorkerPool:
    """One OS process pool shared by every :class:`PoolExecutor` of a run.

    Owners (replicas, clients) register their key material *before* the
    first job; the pool then starts lazily and ships the whole registry to
    each worker exactly once through the pool initializer — that is the
    warmup.  Material registered after warmup is shipped inline with each
    of its jobs (and cached worker-side); late registration works but is
    the exception, not the rule.
    """

    def __init__(
        self,
        workers: int = DEFAULT_POOL_WORKERS,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ConfigError("need at least one pool worker")
        self.workers = workers
        if start_method is None:
            start_method = "fork" if sys.platform != "win32" else "spawn"
        self._start_method = start_method
        self._materials: Dict[str, _KeyMaterial] = {}
        self._warm: Set[str] = set()
        self._late_blobs: Dict[str, bytes] = {}
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def started(self) -> bool:
        return self._pool is not None

    def register(
        self,
        owner: str,
        key_share: Optional[ThresholdKeyShare] = None,
        auth_key: Optional[RsaPrivateKey] = None,
    ) -> None:
        material = _KeyMaterial(key_share=key_share, auth_key=auth_key)
        self._materials[owner] = material
        if self.started:
            self._late_blobs[owner] = pickle.dumps(material)

    def material_blob(self, owner: str) -> Optional[bytes]:
        """The inline blob for late-registered owners (None once warm)."""
        if owner in self._warm:
            return None
        return self._late_blobs.get(owner)

    def _ensure_started(self) -> ProcessPoolExecutor:
        if self._pool is None:
            blob = pickle.dumps(self._materials)
            self._warm = set(self._materials)
            ctx = multiprocessing.get_context(self._start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(blob,),
            )
        return self._pool

    def submit(self, fn, /, *args) -> Future:
        return self._ensure_started().submit(fn, *args)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "CryptoWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PoolExecutor(CryptoExecutor):
    """Route crypto jobs to a shared :class:`CryptoWorkerPool`.

    One instance per owner (replica or client); registering constructs no
    processes — the shared pool starts on the first submitted job, after
    every owner of the deployment has registered its material.
    """

    kind = EXECUTOR_POOL

    def __init__(
        self,
        pool: CryptoWorkerPool,
        owner: str,
        key_share: Optional[ThresholdKeyShare] = None,
        auth_key: Optional[RsaPrivateKey] = None,
        costs: Optional["CostModel"] = None,
    ) -> None:
        super().__init__(
            key_share=key_share,
            auth_key=auth_key,
            costs=costs,
            workers=pool.workers,
        )
        self.pool = pool
        self.owner = owner
        pool.register(owner, key_share=key_share, auth_key=auth_key)

    @property
    def prefers_batching(self) -> bool:
        return True

    def _submit(self, fn, /, *args) -> Future:
        return self.pool.submit(fn, self.owner, self.pool.material_blob(self.owner), *args)

    def generate_share(
        self, message: bytes, with_proof: bool = False
    ) -> SignatureShare:
        return self.submit_generate_share(message, with_proof=with_proof).result()  # type: ignore[return-value]

    def submit_generate_share(
        self, message: bytes, with_proof: bool = False
    ) -> CryptoFuture:
        self._require_key_share()
        self._count_job()
        cost = self.clock.crypto_cost(OP_GENERATE_SHARE)
        if with_proof:
            cost += self.clock.crypto_cost(OP_GENERATE_PROOF)
        future = self._submit(_job_generate_share, message, with_proof)
        return CryptoFuture(self.clock, self.clock.background(cost), future=future)

    def generate_proof(self, message: bytes, share: SignatureShare) -> ShareProof:
        self._require_key_share()
        self._count_job()
        future = self._submit(_job_generate_proof, message, share)
        self.clock.run(self.clock.crypto_cost(OP_GENERATE_PROOF))
        return future.result()

    def verify_shares(
        self, message: bytes, shares: Sequence[SignatureShare]
    ) -> List[bool]:
        return self.submit_verify_shares(message, shares).result()  # type: ignore[return-value]

    def submit_verify_shares(
        self, message: bytes, shares: Sequence[SignatureShare]
    ) -> CryptoFuture:
        self._require_key_share()
        if not shares:
            return CryptoFuture(self.clock, self.clock.main, value=[])
        # Amortized verification: ONE pool task checks the whole batch —
        # the IPC cost is paid per batch, not per signature.
        self._count_job(batch=len(shares))
        cost = self.clock.crypto_cost(OP_VERIFY_SHARE, len(shares))
        future = self._submit(_job_verify_shares, message, list(shares))
        return CryptoFuture(self.clock, self.clock.background(cost), future=future)

    def assemble(
        self, message: bytes, shares: Sequence[SignatureShare]
    ) -> Optional[bytes]:
        # Assembly sits on the critical path and costs ~3% of a signing
        # round (Table 3); offloading it would add IPC latency for no
        # overlap, so it runs inline, as do final-signature checks.
        public = self._require_key_share().public
        self._count_job()
        self.clock.run(self.clock.crypto_cost(OP_ASSEMBLE))
        try:
            return public.assemble(message, shares)
        except AssemblyError:
            return None

    def verify_signature(self, message: bytes, signature: bytes) -> bool:
        public = self._require_key_share().public
        self._count_job()
        self.clock.run(self.clock.crypto_cost(OP_VERIFY_SIGNATURE))
        return public.signature_is_valid(message, signature)

    def assemble_candidates(
        self, message: bytes, subsets: Sequence[Sequence[SignatureShare]]
    ) -> SubsetTrialResult:
        if not subsets:
            return SubsetTrialResult(None, None, 0, 0)
        if len(subsets) == 1:
            # A single candidate is cheaper inline than over IPC.
            return self._assemble_candidates_inline(message, subsets)
        self._require_key_share()
        # Cancel-on-first-winner lane protocol.  Candidates are grouped
        # into *waves* of one trial per worker; waves are evaluated in
        # submission order with one speculative wave kept in flight ahead.
        # The first valid subset inside the earliest winning wave is the
        # winner — identical to the serial early exit, because all lower-
        # indexed candidates belong to waves that were fully evaluated
        # first.  On a win, every lane still outstanding in later waves is
        # cancelled and counted (the modelled clock never charges them).
        width = self.clock.workers
        waves: List[List[Sequence[SignatureShare]]] = [
            list(subsets[i : i + width]) for i in range(0, len(subsets), width)
        ]
        per_try = self.clock.crypto_cost(OP_ASSEMBLE) + self.clock.crypto_cost(
            OP_VERIFY_SIGNATURE
        )
        lanes: List[List[Future]] = []

        def launch(wave_index: int) -> None:
            lanes.append(
                [
                    self._submit(_job_assemble_candidates, message, [candidate])
                    for candidate in waves[wave_index]
                ]
            )

        launch(0)
        if len(waves) > 1:
            launch(1)
        assembled = verified = 0
        for w, wave in enumerate(waves):
            done = max(self.clock.background(per_try) for _ in wave)
            self.clock.wait_until(done)
            outcomes = [lane.result()[0] for lane in lanes[w]]
            assembled += len(wave)
            verified += sum(1 for outcome in outcomes if outcome is not None)
            for j, outcome in enumerate(outcomes):
                if outcome is None:
                    continue
                for later in lanes[w + 1 :]:
                    for lane in later:
                        lane.cancel()
                    self.stats["cancelled_trials"] += len(later)
                self._count_job(batch=assembled)
                return SubsetTrialResult(w * width + j, outcome, assembled, verified)
            if w + 2 < len(waves):
                launch(w + 2)
        self._count_job(batch=assembled)
        return SubsetTrialResult(None, None, assembled, verified)

    def rsa_sign(self, message: bytes) -> bytes:
        self._require_auth_key()
        self._count_job()
        future = self._submit(_job_rsa_sign, message)
        self.clock.run(self.clock.costs.auth_sign)
        return future.result()

    def rsa_verify(
        self, key: RsaPublicKey, message: bytes, signature: bytes
    ) -> bool:
        return self.rsa_verify_many([(key, message, signature)])[0]

    def rsa_verify_many(
        self, items: Sequence[Tuple[RsaPublicKey, bytes, bytes]]
    ) -> List[bool]:
        if not items:
            return []
        # One pool task per authenticator pool (PREPARE certificate,
        # NEW_EPOCH final set, answer signature) — amortized verification.
        self._count_job(batch=len(items))
        future = self.pool.submit(_job_rsa_verify_many, list(items))
        self.clock.run(self.clock.costs.auth_verify * len(items))
        return future.result()

    def close(self) -> None:
        """Per-owner facades do not own the shared pool; close it there."""
