"""Pre-generated safe-prime parameters for tests, examples, and benchmarks.

Safe-prime search is the one genuinely slow step of Shoup key generation in
pure Python, so the repository ships a small pool of pre-generated safe
prime pairs (``data/safe_primes.json``).  These are *demo parameters*: fine
for reproducing the paper's experiments, not for production deployments —
a real deployment runs :class:`repro.crypto.shoup.ThresholdDealer` with
freshly generated primes.

The paper's experiments use 1024-bit RSA moduli (§5.1).  Our benchmarks use
the shipped 1024-bit pair (two 512-bit safe primes) for wall-clock micro
benchmarks and smaller moduli for fast protocol tests.
"""

from __future__ import annotations

import itertools
import json
from importlib import resources
from typing import Dict, Iterator, List, Tuple

from repro.crypto.shoup import (
    ThresholdKeyShare,
    ThresholdPublicKey,
    deal_threshold_key,
)
from repro.errors import KeyGenerationError

_CACHE: Dict[int, List[Tuple[int, int]]] = {}
_CURSORS: Dict[int, Iterator[Tuple[int, int]]] = {}


def _load() -> Dict[int, List[Tuple[int, int]]]:
    if not _CACHE:
        raw = (
            resources.files("repro.crypto")
            .joinpath("data/safe_primes.json")
            .read_text()
        )
        data = json.loads(raw)
        for bits, pairs in data.items():
            _CACHE[int(bits)] = [(int(p), int(q)) for p, q in pairs]
    return _CACHE


def available_prime_bits() -> Tuple[int, ...]:
    """Bit sizes (per prime) for which pre-generated pairs exist."""
    return tuple(sorted(_load()))


def safe_prime_pair(bits: int) -> Tuple[int, int]:
    """Return a pre-generated pair of distinct ``bits``-bit safe primes.

    Successive calls cycle through the pool so repeated test keys differ.
    """
    pool = _load()
    if bits not in pool:
        raise KeyGenerationError(
            f"no pre-generated {bits}-bit safe primes; "
            f"available: {available_prime_bits()}"
        )
    if bits not in _CURSORS:
        _CURSORS[bits] = itertools.cycle(pool[bits])
    return next(_CURSORS[bits])


def safe_prime_pair_at(bits: int, index: int) -> Tuple[int, int]:
    """Return pool entry ``index`` (mod pool size) for ``bits``-bit primes.

    Unlike :func:`safe_prime_pair`, which advances a process-global cursor
    and therefore depends on how many keys were dealt earlier in the
    process, this accessor is a pure function of its arguments.  The chaos
    harness pins its key material with it so a replayed seed produces an
    identical deployment — the RSA private exponent, and hence every
    assembled threshold signature, is determined by the prime pair.
    """
    pool = _load()
    if bits not in pool:
        raise KeyGenerationError(
            f"no pre-generated {bits}-bit safe primes; "
            f"available: {available_prime_bits()}"
        )
    pairs = pool[bits]
    return pairs[index % len(pairs)]


def demo_threshold_key(
    n: int, t: int, modulus_bits: int = 512
) -> Tuple[ThresholdPublicKey, Tuple[ThresholdKeyShare, ...]]:
    """Deal an ``(n, t)`` threshold key from pre-generated safe primes.

    ``modulus_bits`` is the RSA modulus size; each safe prime has half
    that many bits.  The sharing polynomial itself is freshly random.
    """
    p, q = safe_prime_pair(modulus_bits // 2)
    return deal_threshold_key(
        n=n, t=t, bits=modulus_bits, prime_p=p, prime_q=q
    )
