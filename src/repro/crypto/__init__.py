"""Cryptographic substrate: RSA, PKCS#1, and Shoup threshold RSA.

The paper signs DNSSEC ``SIG`` records with 1024-bit RSA / SHA-1 / PKCS#1,
where the private zone key is `(n, t)`-shared using Shoup's practical
threshold signature scheme (Eurocrypt 2000).  This package implements the
whole stack in pure Python so that signature *shares* (which no mainstream
crypto library exposes) are first-class objects.
"""

from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, RsaPrivateKey, generate_rsa_keypair
from repro.crypto.shoup import (
    ThresholdDealer,
    ThresholdPublicKey,
    ThresholdKeyShare,
    SignatureShare,
    deal_threshold_key,
)
from repro.crypto.protocols import (
    BasicSigningProtocol,
    OptProofSigningProtocol,
    OptTESigningProtocol,
    SigningCoordinator,
    make_signing_protocol,
    PROTOCOL_BASIC,
    PROTOCOL_OPTPROOF,
    PROTOCOL_OPTTE,
)

__all__ = [
    "RsaKeyPair",
    "RsaPublicKey",
    "RsaPrivateKey",
    "generate_rsa_keypair",
    "ThresholdDealer",
    "ThresholdPublicKey",
    "ThresholdKeyShare",
    "SignatureShare",
    "deal_threshold_key",
    "BasicSigningProtocol",
    "OptProofSigningProtocol",
    "OptTESigningProtocol",
    "SigningCoordinator",
    "make_signing_protocol",
    "PROTOCOL_BASIC",
    "PROTOCOL_OPTPROOF",
    "PROTOCOL_OPTTE",
]
