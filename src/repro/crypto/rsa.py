"""Plain (non-threshold) RSA signatures with SHA-1 / PKCS#1 v1.5.

Used for: the single-server base case of Table 2, transaction-signature
keys, and the per-replica authentication keys of the broadcast layer.
The threshold scheme in :mod:`repro.crypto.shoup` produces signatures that
verify against :class:`RsaPublicKey` unchanged — that interoperability is
the point of using Shoup's scheme (§2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import pkcs1
from repro.errors import InvalidSignature, KeyGenerationError
from repro.util.numth import invmod, random_prime
from repro.util.serialization import (
    bytes_to_int,
    int_to_bytes,
    pack_int,
    unpack_int,
)

DEFAULT_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(N, e)``."""

    modulus: int
    exponent: int = DEFAULT_PUBLIC_EXPONENT

    @property
    def byte_size(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify a PKCS#1 v1.5 / SHA-1 signature; raise on failure."""
        if len(signature) != self.byte_size:
            raise InvalidSignature("signature length does not match modulus size")
        s = bytes_to_int(signature)
        if s >= self.modulus:
            raise InvalidSignature("signature value out of range")
        em = pow(s, self.exponent, self.modulus).to_bytes(self.byte_size, "big")
        if not pkcs1.emsa_pkcs1_v15_verify(message, em):
            raise InvalidSignature("PKCS#1 encoding mismatch")

    def is_valid(self, message: bytes, signature: bytes) -> bool:
        """Boolean convenience wrapper around :meth:`verify`."""
        try:
            self.verify(message, signature)
        except InvalidSignature:
            return False
        return True

    def to_bytes(self) -> bytes:
        return pack_int(self.modulus) + pack_int(self.exponent)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPublicKey":
        modulus, offset = unpack_int(data, 0)
        exponent, _ = unpack_int(data, offset)
        return cls(modulus=modulus, exponent=exponent)


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key; keeps the primes for optional CRT acceleration."""

    modulus: int
    exponent: int          # public exponent e
    private_exponent: int  # d = e^-1 mod lambda or phi
    prime_p: int = 0
    prime_q: int = 0

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(modulus=self.modulus, exponent=self.exponent)

    @property
    def byte_size(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def sign(self, message: bytes) -> bytes:
        """Produce a PKCS#1 v1.5 / SHA-1 signature."""
        x = pkcs1.encode_to_int(message, self.modulus)
        if self.prime_p and self.prime_q:
            s = self._sign_crt(x)
        else:
            s = pow(x, self.private_exponent, self.modulus)
        return s.to_bytes(self.byte_size, "big")

    def _sign_crt(self, x: int) -> int:
        p, q = self.prime_p, self.prime_q
        d_p = self.private_exponent % (p - 1)
        d_q = self.private_exponent % (q - 1)
        s_p = pow(x % p, d_p, p)
        s_q = pow(x % q, d_q, q)
        q_inv = invmod(q, p)
        h = (q_inv * (s_p - s_q)) % p
        return s_q + h * q


@dataclass(frozen=True)
class RsaKeyPair:
    private: RsaPrivateKey

    @property
    def public(self) -> RsaPublicKey:
        return self.private.public_key


def generate_rsa_keypair(
    bits: int = 1024, exponent: int = DEFAULT_PUBLIC_EXPONENT
) -> RsaKeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    Plain (non-safe) primes suffice here; only the threshold dealer needs
    safe primes.
    """
    if bits < 128:
        raise KeyGenerationError("modulus must be at least 128 bits")
    half = bits // 2
    for _ in range(200):
        p = random_prime(half)
        q = random_prime(bits - half)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = invmod(exponent, phi)
        except ValueError:
            continue
        private = RsaPrivateKey(
            modulus=n,
            exponent=exponent,
            private_exponent=d,
            prime_p=p,
            prime_q=q,
        )
        return RsaKeyPair(private=private)
    raise KeyGenerationError("could not generate RSA key pair")


def signature_to_int(signature: bytes) -> int:
    return bytes_to_int(signature)


def int_to_signature(value: int, modulus: int) -> bytes:
    size = (modulus.bit_length() + 7) // 8
    return int_to_bytes(value).rjust(size, b"\x00")
