"""Registry of the repo's memoization caches, with bound + eviction stats.

KeyTrap-class abuse turns unbounded memoization into a memory-exhaustion
vector, so every cache in the hot crypto/render paths must carry an
explicit bound (rule C304's spirit applied to module-level caches, which
the AST rule cannot see).  This module enumerates them in one place so a
test — and an operator — can audit the whole set:

* ``repro.util.numth.factorial`` — Shoup's ``delta = n!``
* ``repro.util.numth.scaled_lagrange_coefficient`` — integer Lagrange
  coefficients per ``(delta, subset, i, x)``
* ``repro.crypto.shoup._verification_base`` — ``x^{4 delta} mod N``
* ``repro.crypto.pkcs1._encode_to_int_cached`` — PKCS#1 digest encoding
* per-zone :class:`repro.dns.rendercache.CanonicalRenderCache` instances
  (not process-global, so audited through their own ``stats`` dict)
* per-resolver :class:`repro.dns.negcache.PositiveAnswerCache` and
  :class:`repro.dns.negcache.NxtProofCache` instances (ditto)
* per-replica :class:`repro.broadcast.stores.PayloadStore` and
  :class:`repro.broadcast.stores.FragmentStore` instances — the
  digest-vote broadcast plane buffers payloads/fragments keyed by
  attacker-visible request ids and Merkle roots (ditto)

Instance caches cannot be reached by dotted path (one per zone or per
resolver, not process-global), so :data:`AUDITED_INSTANCE_CACHES` lists
their *classes*; the audit test instantiates each and checks the bound +
stats discipline (``max_entries`` ctor arg enforced >= 1, ``stats`` dict
with at least hits/misses/evictions, ``__len__`` never exceeding the
bound under flood).

For ``functools.lru_cache`` functions the eviction count is derived:
``evictions = misses - currsize`` (every miss inserts; every insert past
capacity evicts exactly one).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

#: Dotted paths of every audited ``lru_cache``-decorated function.
AUDITED_LRU_CACHES: List[str] = [
    "repro.util.numth.factorial",
    "repro.util.numth.scaled_lagrange_coefficient",
    "repro.crypto.shoup._verification_base",
    "repro.crypto.pkcs1._encode_to_int_cached",
]

#: Dotted paths of every audited bounded instance-cache *class*.
AUDITED_INSTANCE_CACHES: List[str] = [
    "repro.dns.rendercache.CanonicalRenderCache",
    "repro.dns.negcache.PositiveAnswerCache",
    "repro.dns.negcache.NxtProofCache",
    "repro.broadcast.stores.PayloadStore",
    "repro.broadcast.stores.FragmentStore",
]

#: Stats keys every instance cache must expose.
INSTANCE_CACHE_STAT_KEYS: Tuple[str, ...] = ("hits", "misses", "evictions")


def _resolve(dotted: str) -> Callable[..., Any]:
    import importlib

    module_name, _, attr = dotted.rpartition(".")
    return getattr(importlib.import_module(module_name), attr)


def lru_cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-cache ``{maxsize, currsize, hits, misses, evictions}``.

    Raises :class:`TypeError` (via the ``maxsize`` arithmetic) if any
    audited cache has been left unbounded — the audit's whole point.
    """
    out: Dict[str, Dict[str, int]] = {}
    for dotted in AUDITED_LRU_CACHES:
        info = _resolve(dotted).cache_info()
        if info.maxsize is None:
            raise TypeError(f"{dotted} is an unbounded lru_cache")
        out[dotted] = {
            "maxsize": info.maxsize,
            "currsize": info.currsize,
            "hits": info.hits,
            "misses": info.misses,
            "evictions": info.misses - info.currsize,
        }
    return out


def instance_cache_classes() -> Dict[str, type]:
    """Resolve :data:`AUDITED_INSTANCE_CACHES` to their classes."""
    out: Dict[str, type] = {}
    for dotted in AUDITED_INSTANCE_CACHES:
        resolved = _resolve(dotted)
        if not isinstance(resolved, type):
            raise TypeError(f"{dotted} is not a class")
        out[dotted] = resolved
    return out
