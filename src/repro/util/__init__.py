"""Shared utilities: number theory, canonical serialization, logging."""

from repro.util.numth import (
    egcd,
    invmod,
    is_probable_prime,
    random_prime,
    random_safe_prime,
    lagrange_coefficient_num_den,
)
from repro.util.serialization import (
    pack_int,
    unpack_int,
    pack_bytes,
    unpack_bytes,
    pack_str,
    unpack_str,
    int_to_bytes,
    bytes_to_int,
)

__all__ = [
    "egcd",
    "invmod",
    "is_probable_prime",
    "random_prime",
    "random_safe_prime",
    "lagrange_coefficient_num_den",
    "pack_int",
    "unpack_int",
    "pack_bytes",
    "unpack_bytes",
    "pack_str",
    "unpack_str",
    "int_to_bytes",
    "bytes_to_int",
]
