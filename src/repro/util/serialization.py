"""Canonical, deterministic binary serialization helpers.

All distributed-protocol messages and all data covered by signatures must
serialize identically on every replica; these helpers provide a small
length-prefixed format with no ambiguity.  Integers are encoded as
big-endian byte strings with a 4-byte length prefix, so arbitrarily large
bignums (RSA values) round-trip exactly.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import WireFormatError


def int_to_bytes(value: int) -> bytes:
    """Minimal big-endian encoding of a non-negative integer (b"" for 0)."""
    if value < 0:
        raise ValueError("only non-negative integers are supported")
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def bytes_to_int(data: bytes) -> int:
    """Inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")


def pack_bytes(data: bytes) -> bytes:
    """Length-prefixed byte string (4-byte big-endian length)."""
    if len(data) > 0xFFFFFFFF:
        raise ValueError("byte string too long")
    return struct.pack(">I", len(data)) + data


def unpack_bytes(buf: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Read a length-prefixed byte string; return ``(data, new_offset)``."""
    if offset + 4 > len(buf):
        raise WireFormatError("truncated length prefix")
    (length,) = struct.unpack_from(">I", buf, offset)
    offset += 4
    if offset + length > len(buf):
        raise WireFormatError("truncated byte string")
    return buf[offset : offset + length], offset + length


def pack_int(value: int) -> bytes:
    """Length-prefixed non-negative bignum."""
    return pack_bytes(int_to_bytes(value))


def unpack_int(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    """Read a length-prefixed bignum; return ``(value, new_offset)``."""
    data, offset = unpack_bytes(buf, offset)
    return bytes_to_int(data), offset


def pack_str(text: str) -> bytes:
    """Length-prefixed UTF-8 string."""
    return pack_bytes(text.encode("utf-8"))


def unpack_str(buf: bytes, offset: int = 0) -> Tuple[str, int]:
    """Read a length-prefixed UTF-8 string; return ``(text, new_offset)``."""
    data, offset = unpack_bytes(buf, offset)
    try:
        return data.decode("utf-8"), offset
    except UnicodeDecodeError as exc:
        raise WireFormatError("invalid UTF-8 in string field") from exc


def pack_u8(value: int) -> bytes:
    if not 0 <= value <= 0xFF:
        raise ValueError("u8 out of range")
    return struct.pack(">B", value)


def unpack_u8(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    if offset + 1 > len(buf):
        raise WireFormatError("truncated u8")
    return buf[offset], offset + 1


def pack_u16(value: int) -> bytes:
    if not 0 <= value <= 0xFFFF:
        raise ValueError("u16 out of range")
    return struct.pack(">H", value)


def unpack_u16(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    if offset + 2 > len(buf):
        raise WireFormatError("truncated u16")
    return struct.unpack_from(">H", buf, offset)[0], offset + 2


def pack_u32(value: int) -> bytes:
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("u32 out of range")
    return struct.pack(">I", value)


def unpack_u32(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    if offset + 4 > len(buf):
        raise WireFormatError("truncated u32")
    return struct.unpack_from(">I", buf, offset)[0], offset + 4


def pack_u64(value: int) -> bytes:
    if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
        raise ValueError("u64 out of range")
    return struct.pack(">Q", value)


def unpack_u64(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    if offset + 8 > len(buf):
        raise WireFormatError("truncated u64")
    return struct.unpack_from(">Q", buf, offset)[0], offset + 8
