"""Reed-Solomon erasure coding over GF(256), pure python.

The erasure-coded dissemination mode (DESIGN.md §5i) splits an atomic
broadcast batch into ``n`` fragments of which any ``k = n - 2t``
reconstruct the original payload, so no single link ever carries the
whole batch.  This module is the codec only — fragment authenticity is
the Merkle layer's job (:mod:`repro.crypto.merkle`).

Encoding is *systematic*: fragment ``i`` for ``i < k`` is the ``i``-th
data shard verbatim, and fragments ``k..n-1`` are parity shards obtained
by evaluating, for every byte position, the degree-``k-1`` polynomial
interpolating the data shards at field points ``0..k-1``.  Decoding from
any ``k`` distinct fragments is Lagrange interpolation back onto points
``0..k-1``.  Arithmetic is GF(2^8) with the AES-adjacent primitive
polynomial ``x^8+x^4+x^3+x^2+1`` (0x11d) and generator 2.

The payload is framed with a 4-byte big-endian length prefix and
zero-padded to a multiple of ``k``, so ``rs_decode(rs_encode(m))``
round-trips exactly for any ``m`` (including empty).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigError


class ErasureError(ValueError):
    """Malformed fragments / parameters handed to the codec."""


#: GF(256) can address at most 255 distinct non-conflicting evaluation
#: points the way we lay them out (0..n-1), far above any cluster size.
MAX_SHARDS = 255

# -- field tables -------------------------------------------------------------

_EXP: List[int] = [0] * 512
_LOG: List[int] = [0] * 256


def _build_tables() -> None:
    x = 1
    for i in range(255):
        _EXP[i] = x
        _LOG[x] = i
        x <<= 1
        if x & 0x100:
            x ^= 0x11D
    for i in range(255, 512):
        _EXP[i] = _EXP[i - 255]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    if a == 0:
        raise ErasureError("zero has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


def gf_div(a: int, b: int) -> int:
    return gf_mul(a, gf_inv(b))


# -- Lagrange coefficient matrices --------------------------------------------


def _lagrange_row(points: Sequence[int], x: int) -> List[int]:
    """Coefficients ``c_j`` with ``p(x) = sum c_j * p(points[j])``.

    Standard Lagrange basis evaluation; in GF(2^8) subtraction is XOR.
    """
    row: List[int] = []
    for j, pj in enumerate(points):
        num = 1
        den = 1
        for m, pm in enumerate(points):
            if m == j:
                continue
            num = gf_mul(num, x ^ pm)
            den = gf_mul(den, pj ^ pm)
        row.append(gf_div(num, den))
    return row


def _check_params(k: int, n: int) -> None:
    if not 1 <= k <= n:
        raise ConfigError(f"need 1 <= k <= n, got k={k} n={n}")
    if n > MAX_SHARDS:
        raise ConfigError(f"GF(256) codec supports at most {MAX_SHARDS} shards")


# -- public API ---------------------------------------------------------------


def shard_size(payload_len: int, k: int) -> int:
    """Bytes per fragment for a ``payload_len``-byte message split ``k`` ways."""
    framed = 4 + payload_len
    return (framed + k - 1) // k


def rs_encode(payload: bytes, k: int, n: int) -> List[bytes]:
    """Encode ``payload`` into ``n`` fragments, any ``k`` of which decode."""
    _check_params(k, n)
    framed = struct.pack(">I", len(payload)) + payload
    size = (len(framed) + k - 1) // k
    framed = framed.ljust(k * size, b"\x00")
    shards: List[bytearray] = [
        bytearray(framed[i * size : (i + 1) * size]) for i in range(k)
    ]
    data_points = list(range(k))
    for x in range(k, n):
        row = _lagrange_row(data_points, x)
        parity = bytearray(size)
        for j, coeff in enumerate(row):
            if coeff == 0:
                continue
            shard = shards[j]
            for pos in range(size):
                byte = shard[pos]
                if byte:
                    parity[pos] ^= _EXP[_LOG[coeff] + _LOG[byte]]
        shards.append(parity)
    return [bytes(s) for s in shards]


def rs_decode(
    fragments: Mapping[int, bytes] | Sequence[Tuple[int, bytes]],
    k: int,
    n: int,
) -> bytes:
    """Reconstruct the payload from any ``k`` distinct valid fragments.

    ``fragments`` maps fragment index -> fragment bytes; extra fragments
    beyond ``k`` are ignored (the first ``k`` in index order are used).
    Raises :class:`ErasureError` on inconsistent sizes, bad indices, or
    an undecodable frame.
    """
    _check_params(k, n)
    if not isinstance(fragments, Mapping):
        fragments = dict(fragments)
    if len(fragments) < k:
        raise ErasureError(f"need {k} fragments, have {len(fragments)}")
    indices = sorted(fragments)[:k]
    if indices[0] < 0 or indices[-1] >= n:
        raise ErasureError(f"fragment index out of range 0..{n - 1}")
    size = len(fragments[indices[0]])
    shards: List[bytes] = []
    avail: Dict[int, bytes] = {}
    for idx in indices:
        frag = bytes(fragments[idx])
        if len(frag) != size:
            raise ErasureError("fragments have inconsistent sizes")
        shards.append(frag)
        avail[idx] = frag
    if indices == list(range(k)):
        data_shards = shards
    else:
        data_shards = []
        for x in range(k):
            if x in avail:
                data_shards.append(avail[x])
                continue
            row = _lagrange_row(indices, x)
            out = bytearray(size)
            for j, coeff in enumerate(row):
                if coeff == 0:
                    continue
                shard = shards[j]
                for pos in range(size):
                    byte = shard[pos]
                    if byte:
                        out[pos] ^= _EXP[_LOG[coeff] + _LOG[byte]]
            data_shards.append(bytes(out))
    framed = b"".join(data_shards)
    if len(framed) < 4:
        raise ErasureError("decoded frame shorter than its length prefix")
    (length,) = struct.unpack_from(">I", framed, 0)
    if 4 + length > len(framed):
        raise ErasureError("decoded length prefix exceeds frame")
    if any(b != 0 for b in framed[4 + length :]):
        raise ErasureError("nonzero padding in decoded frame")
    return framed[4 : 4 + length]
