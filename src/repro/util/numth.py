"""Number-theoretic primitives used by the RSA and threshold-RSA schemes.

The paper's prototype relied on Java's ``BigInteger``; this module is the
Python equivalent layer: modular inverses, Miller--Rabin primality testing,
(safe) prime generation, and the integer Lagrange coefficients used by
Shoup's threshold RSA scheme (where interpolation happens over the integers
after scaling by ``delta = n!``).
"""

from __future__ import annotations

import math
import secrets
from functools import lru_cache
from typing import Tuple

from repro.errors import KeyGenerationError

# Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES: Tuple[int, ...] = tuple(
    p
    for p in range(3, 1000)
    if all(p % q for q in range(2, int(p**0.5) + 1))
)


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def invmod(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises :class:`ValueError` if the inverse does not exist.
    """
    # pow(a, -1, m) is available since Python 3.8 and is implemented in C.
    try:
        return pow(a, -1, m)
    except ValueError as exc:
        raise ValueError(f"{a} is not invertible modulo {m}") from exc


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller--Rabin probabilistic primality test.

    With 40 random bases the error probability is below ``4**-40``, which is
    negligible for key generation purposes.
    """
    if n < 2:
        return False
    for p in (2,) + _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^s with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, max_attempts: int = 100_000) -> int:
    """Return a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("primes need at least 2 bits")
    for _ in range(max_attempts):
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate
    raise KeyGenerationError(f"no {bits}-bit prime found in {max_attempts} attempts")


def random_safe_prime(bits: int, max_attempts: int = 1_000_000) -> int:
    """Return a random safe prime ``p = 2q + 1`` with ``p`` of ``bits`` bits.

    Safe primes are required by Shoup's threshold RSA scheme so that the
    subgroup of squares modulo ``N = pq`` is cyclic of order ``p'q'``.
    Generation is slow for large sizes in pure Python; key material for
    benchmarks is pre-generated (see :mod:`repro.crypto.params`).
    """
    if bits < 3:
        raise ValueError("safe primes need at least 3 bits")
    for _ in range(max_attempts):
        q = secrets.randbits(bits - 1) | (1 << (bits - 2)) | 1
        # Cheap pre-filters: p = 2q+1 mod small primes.
        p = 2 * q + 1
        if any(p % sp == 0 or q % sp == 0 for sp in _SMALL_PRIMES[:50]):
            continue
        if is_probable_prime(q, rounds=8) and is_probable_prime(p, rounds=40):
            if is_probable_prime(q, rounds=40):
                return p
    raise KeyGenerationError(
        f"no {bits}-bit safe prime found in {max_attempts} attempts"
    )


@lru_cache(maxsize=64)
def factorial(n: int) -> int:
    """``n!`` — Shoup's ``delta``. Thin wrapper for symmetry with the paper.

    Memoized: ``delta`` is recomputed on every share generation,
    verification, and assembly, always for the same handful of ``n``.
    Bounded (KeyTrap hygiene): a deployment uses a single group size, so
    64 distinct ``n`` values is already adversarial territory.
    """
    return math.factorial(n)


def lagrange_coefficient_num_den(
    subset: Tuple[int, ...], i: int, x: int = 0
) -> Tuple[int, int]:
    """Return numerator and denominator of the Lagrange coefficient.

    For interpolation points ``subset`` (distinct non-zero share indices),
    the coefficient of share ``i`` when evaluating at ``x`` is
    ``prod_{j != i} (x - j) / (i - j)``.  The caller multiplies the
    numerator by ``delta = n!`` so that the scaled coefficient
    ``delta * num / den`` is an integer (Shoup, Eurocrypt 2000, §3).
    """
    if i not in subset:
        raise ValueError(f"index {i} not in subset {subset}")
    num = 1
    den = 1
    for j in subset:
        if j == i:
            continue
        num *= x - j
        den *= i - j
    return num, den


@lru_cache(maxsize=4096)
def scaled_lagrange_coefficient(
    delta: int, subset: Tuple[int, ...], i: int, x: int = 0
) -> int:
    """Return the integer ``delta * lambda_{x,i}^subset`` used by Shoup.

    ``delta`` must be ``n!`` for a group of ``n`` servers; divisibility is
    guaranteed because the denominator of the Lagrange coefficient divides
    ``n!`` for any subset of ``{1..n}``.

    Memoized: the coefficients depend only on ``(delta, subset, i, x)``,
    and a deployment reuses the same few subsets for every signature, so
    every signing round after the first assembles with cached values.
    """
    num, den = lagrange_coefficient_num_den(subset, i, x)
    value, remainder = divmod(delta * num, den)
    if remainder:
        raise ValueError(
            f"delta={delta} does not clear denominator {den} for subset {subset}"
        )
    return value


def crt_pair(r_p: int, p: int, r_q: int, q: int) -> int:
    """Chinese remainder: the unique ``x mod p*q`` with given residues."""
    g, p_inv_q, _ = egcd(p, q)
    if g != 1:
        raise ValueError("moduli must be coprime")
    diff = (r_q - r_p) % q
    return (r_p + p * ((diff * p_inv_q) % q)) % (p * q)


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd ``n > 0``."""
    if n <= 0 or n % 2 == 0:
        raise ValueError("n must be a positive odd integer")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0
