"""Dynamic confirmation of the static race findings (Y601-Y604).

The static yield-point checker (``repro.analysis.races``) reasons about
one function's source; it cannot tell whether a flagged await window is
actually reachable by two concurrent activations.  ``repro explore
--confirm-races`` closes that loop: for every Y-finding it searches the
interleaving space of a matching *harness* — an executable fixture
driving the flagged code through :class:`~repro.explore.tasks.TaskModel`
— and reclassifies the finding:

* ``X702`` — **confirmed**: some explored schedule violates the
  harness's invariant *and* suspends at the exact await line the static
  finding points at; the minimized schedule ships as a replayable
  counterexample.
* ``X703`` — **unwitnessed**: exhaustive (or budget-bounded)
  exploration of every harness in the finding's file produced no such
  schedule.  Not a proof of absence unless exploration completed, but a
  strong signal the static window is not dynamically exercisable.

Harnesses are published by the analyzed file itself: a module-level
``EXPLORE_HARNESSES`` list of :class:`RaceHarness`.  Production protocol
code carries no harnesses (the repo is Y-clean, so there is nothing to
confirm); the explorer's test corpus plants both the bugs and their
harnesses side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import race_windows
from repro.analysis.races import RaceWindow
from repro.explore.dpor import Choice, DporEngine, replay_schedule
from repro.explore.schedule import minimize_violation
from repro.explore.tasks import BuildFn, CheckFn, TaskModel
from repro.lint.framework import Finding

#: Rule catalog for the exploration family, in the lint catalog format.
EXPLORE_RULES: Dict[str, Tuple[str, str]] = {
    "X701": (
        "invariant violated under systematic exploration",
        "Exhaustive (or delay-bounded) exploration of the protocol's "
        "message interleavings found a schedule violating a safety or "
        "liveness invariant; the minimized schedule replays the "
        "violation deterministically via 'repro explore --replay'.",
    ),
    "X702": (
        "static race confirmed by a minimized schedule",
        "A Y601-Y604 yield-point finding was dynamically confirmed: a "
        "systematically explored schedule violates the matching "
        "harness's invariant while suspending at the flagged await, "
        "proving the static window is exercisable.",
    ),
    "X703": (
        "static race unwitnessed at the explored bound",
        "Systematic exploration of every harness covering a Y601-Y604 "
        "finding produced no violating schedule through the flagged "
        "await window at the explored cluster size and budget; the "
        "static finding stands but no dynamic witness exists at this "
        "bound.",
    ),
}


@dataclass
class RaceHarness:
    """An executable confirmation fixture published by an analyzed file.

    ``build`` is a :class:`TaskModel` build function (scheduler in,
    shared state + tasks out); ``invariant`` runs at every state and
    ``final`` at completed leaves.  ``confirm_rules`` lists rules this
    harness confirms *by violating at all* — used for Y604, whose
    findings have no await line to match suspension evidence against.
    """

    name: str
    build: BuildFn
    invariant: Optional[CheckFn] = None
    final: Optional[CheckFn] = None
    confirm_rules: Tuple[str, ...] = ()
    segment_cap: int = 400


@dataclass
class ConfirmOutcome:
    """One Y-finding's reclassification."""

    original: Finding
    window: RaceWindow
    status: str  # "confirmed" | "unwitnessed"
    harness: str = ""
    schedule: List[Choice] = field(default_factory=list)
    messages: List[str] = field(default_factory=list)
    fingerprint: str = ""
    schedules_explored: int = 0
    complete: bool = True

    @property
    def rule(self) -> str:
        return "X702" if self.status == "confirmed" else "X703"

    def finding(self) -> Finding:
        f = self.original
        if self.status == "confirmed":
            detail = self.messages[0] if self.messages else "invariant violated"
            message = (
                f"{f.rule} confirmed: harness '{self.harness}' violates "
                f"('{detail}') under a minimized schedule of "
                f"{len(self.schedule)} segments through the flagged await"
            )
        else:
            completeness = (
                "exhaustive" if self.complete else "budget-bounded"
            )
            message = (
                f"{f.rule} unwitnessed: {completeness} exploration of "
                f"{self.schedules_explored} schedule(s) found no violation "
                f"through the flagged await at this bound"
            )
        return Finding(
            rule=self.rule, path=f.path, line=f.line, col=f.col, message=message
        )


@dataclass
class _HarnessEvidence:
    """What exploring one harness proved."""

    harness: RaceHarness
    schedules: int
    complete: bool
    #: Per violation: (minimized schedule, messages, fingerprint,
    #: suspension lines exercised by the *full* violating schedule).
    violations: List[Tuple[List[Choice], List[str], str, frozenset]] = field(
        default_factory=list
    )


def _load_harnesses(path: Any, text: str) -> List[RaceHarness]:
    """Execute an analyzed file and collect its ``EXPLORE_HARNESSES``."""
    namespace: Dict[str, Any] = {"__name__": f"_confirm_{abs(hash(str(path)))}"}
    code = compile(text, str(path), "exec")
    exec(code, namespace)  # the file is repo-local fixture/production code
    harnesses = namespace.get("EXPLORE_HARNESSES", [])
    return [h for h in harnesses if isinstance(h, RaceHarness)]


def _explore_harness(
    harness: RaceHarness,
    *,
    max_schedules: Optional[int],
    deadline_s: Optional[float],
) -> _HarnessEvidence:
    model = TaskModel(
        harness.build,
        invariant=harness.invariant,
        final=harness.final,
        segment_cap=harness.segment_cap,
    )
    engine = DporEngine(
        model,
        max_schedules=max_schedules,
        deadline_s=deadline_s,
        strategy=harness.name,
    )
    result = engine.run()
    evidence = _HarnessEvidence(
        harness=harness, schedules=result.schedules, complete=result.complete
    )
    for violation in result.violations:
        # Line evidence comes from the full violating schedule (the
        # minimized prefix may stop before the racing await); the
        # minimized schedule is what ships in the report.
        replay_model = TaskModel(
            harness.build,
            invariant=harness.invariant,
            final=harness.final,
            segment_cap=harness.segment_cap,
        )
        replay_schedule(replay_model, list(violation.schedule), complete=True)
        lines = replay_model.suspension_lines()
        fresh = TaskModel(
            harness.build,
            invariant=harness.invariant,
            final=harness.final,
            segment_cap=harness.segment_cap,
        )
        schedule, messages, fingerprint, _digest = minimize_violation(
            fresh, violation
        )
        evidence.violations.append(
            (list(schedule), list(messages), fingerprint, lines)
        )
    return evidence


def _match(
    finding: Finding, window: RaceWindow, evidence: Sequence[_HarnessEvidence]
) -> Optional[Tuple[_HarnessEvidence, Tuple[List[Choice], List[str], str, frozenset]]]:
    for ev in evidence:
        for vio in ev.violations:
            _schedule, _messages, _fp, lines = vio
            if window.yield_line is not None:
                if window.yield_line in lines:
                    return ev, vio
            elif finding.rule in ev.harness.confirm_rules:
                return ev, vio
    return None


def confirm_races(
    files: Sequence[Tuple[Any, str, str]],
    *,
    max_schedules: Optional[int] = 5_000,
    deadline_s: Optional[float] = None,
    harnesses: Optional[Dict[str, List[RaceHarness]]] = None,
    config: Optional[Any] = None,
) -> List[ConfirmOutcome]:
    """Reclassify every Y601-Y604 finding in ``files`` as X702 or X703.

    ``files`` is the lint file tuple sequence ``(path, module, text)``
    produced by :func:`repro.taint.indexer.module_files`.  ``harnesses``
    overrides harness discovery (finding path -> harness list); by
    default each flagged file is executed and its module-level
    ``EXPLORE_HARNESSES`` collected.  ``config`` is an
    optional :class:`~repro.lint.framework.LintConfig` forwarded to the
    static checker — fixture corpora outside ``src/`` need a widened
    ``races_modules`` scope, since files outside the package tree carry
    an empty module name.
    """
    paired = race_windows(files, config=config)
    if not paired:
        return []
    by_rel: Dict[str, Tuple[Any, str]] = {
        Path(path).as_posix(): (path, text) for path, _module, text in files
    }
    evidence_cache: Dict[str, List[_HarnessEvidence]] = {}
    outcomes: List[ConfirmOutcome] = []
    for finding, window in paired:
        if finding.path not in evidence_cache:
            if harnesses is not None:
                hs = harnesses.get(finding.path, [])
            else:
                abs_path, text = by_rel[finding.path]
                hs = _load_harnesses(abs_path, text)
            evidence_cache[finding.path] = [
                _explore_harness(
                    h, max_schedules=max_schedules, deadline_s=deadline_s
                )
                for h in hs
            ]
        evidence = evidence_cache[finding.path]
        matched = _match(finding, window, evidence)
        if matched is not None:
            ev, (schedule, messages, fingerprint, _lines) = matched
            outcomes.append(
                ConfirmOutcome(
                    original=finding,
                    window=window,
                    status="confirmed",
                    harness=ev.harness.name,
                    schedule=schedule,
                    messages=messages,
                    fingerprint=fingerprint,
                    schedules_explored=ev.schedules,
                    complete=ev.complete,
                )
            )
        else:
            outcomes.append(
                ConfirmOutcome(
                    original=finding,
                    window=window,
                    status="unwitnessed",
                    schedules_explored=sum(e.schedules for e in evidence),
                    complete=all(e.complete for e in evidence),
                )
            )
    return outcomes
