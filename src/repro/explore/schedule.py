"""Replayable schedule files and counterexample minimization.

A violating exploration run is summarized as a JSON *schedule file*: the
model configuration plus the sequence of channel picks that reproduces
the violation.  ``repro explore --replay <file>`` rebuilds the identical
model (same cluster, same Byzantine strategy, all other nondeterminism
stubbed out deterministically) and re-executes the picks, so a
counterexample found in CI replays bit-for-bit on a laptop: same
violation messages, same state-fingerprint transcript hash.

Minimization keeps replay short: the shortest prefix of the violating
schedule that still produces a violation under deterministic
(oldest-sender-first) completion, found by binary search over prefix
length.  Prefix-of-violating-schedule is the natural shrink dimension
here — every prefix is itself a valid schedule, no re-search needed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.explore.dpor import Choice, Violation, replay_schedule

SCHEDULE_VERSION = 1


def _encode_choice(choice: Choice) -> List[Any]:
    if isinstance(choice, tuple):
        return list(choice)
    return [choice]


def _decode_choice(raw: List[Any]) -> Choice:
    if len(raw) == 1:
        return raw[0]
    return tuple(raw)


@dataclass
class ScheduleFile:
    """One replayable counterexample (or witness) schedule."""

    protocol: str  # rbc | aba | abc | e2e | task
    mode: str  # rbc/abc dissemination mode, "" where not applicable
    cluster: Tuple[int, int]  # (n, t)
    strategy: str  # Byzantine strategy name ("" = no corruption)
    schedule: List[Choice]
    kind: str = ""  # violation kind; "" for a clean witness
    messages: List[str] = field(default_factory=list)
    fingerprint: str = ""  # model state fingerprint at the violation
    transcript_hash: str = ""  # hash over replayed step labels
    config: Dict[str, Any] = field(default_factory=dict)  # extra model args
    version: int = SCHEDULE_VERSION

    def to_json(self) -> str:
        data = asdict(self)
        data["cluster"] = list(self.cluster)
        data["schedule"] = [_encode_choice(c) for c in self.schedule]
        return json.dumps(data, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleFile":
        data = json.loads(text)
        if data.get("version") != SCHEDULE_VERSION:
            raise ValueError(
                f"unsupported schedule file version {data.get('version')!r}"
            )
        data["cluster"] = tuple(data["cluster"])
        data["schedule"] = [_decode_choice(c) for c in data["schedule"]]
        return cls(**data)


def save_schedule(schedule: ScheduleFile, path: "Path | str") -> None:
    Path(path).write_text(schedule.to_json() + "\n")


def load_schedule(path: "Path | str") -> ScheduleFile:
    return ScheduleFile.from_json(Path(path).read_text())


def transcript_hash(labels: List[str]) -> str:
    h = hashlib.sha256()
    for label in labels:
        h.update(label.encode())
        h.update(b"\x00")
    return h.hexdigest()[:16]


def _violates(model: Any, prefix: List[Choice]) -> Optional[Tuple[List[str], str, str]]:
    problems, fingerprint, labels = replay_schedule(model, prefix, complete=True)
    if problems:
        return problems, fingerprint, transcript_hash(labels)
    return None


def minimize_violation(
    model: Any, violation: Violation
) -> Tuple[List[Choice], List[str], str, str]:
    """Shortest violating prefix of ``violation.schedule``.

    Binary search over prefix length: replay each candidate prefix with
    deterministic completion and keep the shortest that still violates.
    (Violation-under-completion is not monotone in prefix length in
    general, so this is a heuristic shrink — but the full schedule always
    violates, giving a sound upper bound.)  Returns ``(schedule,
    messages, fingerprint, transcript_hash)`` of the minimized replay.
    """
    schedule = list(violation.schedule)
    best = _violates(model, schedule)
    if best is None:
        # The final default completion differs from the explorer's own
        # continuation; fall back to the unminimized schedule verbatim.
        return schedule, violation.messages, violation.fingerprint, ""
    lo, hi = 0, len(schedule)  # invariant: prefix of length `hi` violates
    while lo < hi:
        mid = (lo + hi) // 2
        hit = _violates(model, schedule[:mid])
        if hit is None:
            lo = mid + 1
        else:
            hi = mid
            best = hit
    messages, fingerprint, digest = best
    return schedule[:hi], messages, fingerprint, digest
