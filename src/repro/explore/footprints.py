"""Static commutativity footprints from the PR-5 program index.

For each message type a protocol dispatcher handles, compute the set of
``self.*`` attributes the handler's call closure can touch.  Two
deliveries to the same replica and protocol instance commute when their
footprints are disjoint; the DPOR engine then treats them as independent.

Footprints are *touch sets* (reads and writes merged): a handler that
only loads ``self._frags`` may still mutate it through a local alias
(``group = self._frags.setdefault(...); group[i] = ...``), so the
read/write distinction cannot be trusted statically.  Merging keeps the
independence direction sound — disjoint touch sets really do commute —
at the cost of a few extra schedules.

Dispatch mapping is recovered from the dispatcher's own AST: branches of
the form ``isinstance(msg, SomeMessage)`` are paired with the calls in
their bodies, so the mapping tracks the real code instead of a
hand-maintained table.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.taint.indexer import FunctionInfo, ProgramIndex, module_files

_SRC_ROOT = Path(__file__).resolve().parents[2]  # .../src
_REPO_ROOT = _SRC_ROOT.parent


@lru_cache(maxsize=1)
def broadcast_index() -> ProgramIndex:
    """Shared index over the broadcast package (built once per process)."""
    files = module_files([_SRC_ROOT / "repro" / "broadcast"], _REPO_ROOT)
    return ProgramIndex.build(files)


def _self_attrs(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            out.add(sub.attr)
    return out


def closure_touch_set(index: ProgramIndex, roots: Set[str]) -> FrozenSet[str]:
    """All ``self.*`` attribute names touched by the call closure of
    ``roots`` (function qnames), via :meth:`ProgramIndex.call_closure`."""
    touched: Set[str] = set()
    for qname in index.call_closure(roots):
        fn = index.functions.get(qname)
        if fn is not None:
            touched |= _self_attrs(fn.node)
    return frozenset(touched)


def _isinstance_types(test: ast.expr, param: str) -> List[str]:
    """Message class names from ``isinstance(<param>, T)`` in a branch test."""
    names: List[str] = []
    for sub in ast.walk(test):
        if not (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "isinstance"
            and len(sub.args) == 2
            and isinstance(sub.args[0], ast.Name)
            and sub.args[0].id == param
        ):
            continue
        type_arg = sub.args[1]
        elements = (
            type_arg.elts if isinstance(type_arg, ast.Tuple) else [type_arg]
        )
        for element in elements:
            if isinstance(element, ast.Name):
                names.append(element.id)
            elif isinstance(element, ast.Attribute):
                names.append(element.attr)
    return names


class FootprintOracle:
    """Per-message-type touch sets for one dispatcher method."""

    def __init__(
        self,
        index: ProgramIndex,
        class_qname: str,
        dispatcher: str = "on_message",
        message_param: str = "msg",
    ) -> None:
        self.index = index
        self._by_type: Dict[str, FrozenSet[str]] = {}
        self._fallback: Optional[FrozenSet[str]] = None
        fn_qname = index.resolve_method(class_qname, dispatcher)
        if fn_qname is None:
            return
        fn = index.functions[fn_qname]
        self._fallback = closure_touch_set(index, {fn_qname})
        self._map_branches(fn, message_param)

    def _map_branches(self, fn: FunctionInfo, param: str) -> None:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.If):
                continue
            type_names = _isinstance_types(node.test, param)
            if not type_names:
                continue
            roots: Set[str] = set()
            inline: Set[str] = set()
            for stmt in node.body:
                inline |= _self_attrs(stmt)
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        qname, _name = self.index.resolve_call(sub, fn)
                        if qname is not None:
                            roots.add(qname)
            touched = frozenset(inline) | closure_touch_set(self.index, roots)
            for type_name in type_names:
                merged = self._by_type.get(type_name, frozenset()) | touched
                self._by_type[type_name] = merged

    def footprint(self, message_type: str) -> Optional[FrozenSet[str]]:
        """Touch set for a message class name; dispatcher-wide fallback
        when the branch was not recovered; None when nothing is known."""
        hit = self._by_type.get(message_type)
        if hit is not None:
            return hit
        return self._fallback


@lru_cache(maxsize=8)
def oracle_for(class_qname: str) -> FootprintOracle:
    return FootprintOracle(broadcast_index(), class_qname)
