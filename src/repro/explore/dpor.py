"""Stateless model checking with dynamic partial-order reduction.

The engine explores every message-delivery interleaving of a *model*
(a wrapper around real protocol instances, see ``repro.explore.models``)
by depth-first search over schedule prefixes, in the style of
Flanagan–Godefroid DPOR with Godefroid's sleep sets:

* A **schedule** is a sequence of choices (FIFO channel picks for the
  message models, task ids for the await-interleaving models).  Because
  channels are FIFO, a choice sequence identifies a unique execution.
* **Backtrack sets** — after executing step ``S``, find the latest
  earlier step ``R`` that is *dependent* with ``S`` but not ordered
  before it by happens-before; schedule ``S``'s choice (or, if it was
  not yet enabled there, every enabled choice) for exploration at
  ``R``'s state.  Dependence is decided by the commutativity oracle:
  two deliveries commute unless they touch the same
  ``(replica, protocol-instance)`` state — refined by static read/write
  footprints from the PR-5 ``ProgramIndex`` (message models) or runtime
  read/write sets (task models).  Over-approximating dependence is
  always sound; it only costs extra schedules.
* **Sleep sets** — a choice fully explored from a state is inherited by
  sibling subtrees that are independent of the step taken, pruning the
  symmetric half of commuting pairs.  Sleep-set pruning is sound only
  for truly commuting steps, which is exactly the oracle's independence
  direction: disjoint replica state means the two handler executions
  commute as state transformers and enqueue into distinct FIFO channels.
* **Timers** never race with deliveries: they fire only at quiescent
  states (no channel enabled), earliest-armed first, as deterministic
  barrier steps.  This matches the sim's regime — protocol timeouts
  dwarf link delays — and keeps the choice space purely over deliveries.

Happens-before is tracked as an integer bitmask per step (edges: the
step that sent the delivered message, the FIFO predecessor on the same
channel, and the latest barrier; closures union), so a race check is one
``&``.  States are restored either from model snapshots (deepcopy-safe
models) or by replaying the choice prefix from ``reset()`` (models whose
protocol code arms closures over live objects, e.g. ABC timers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

Choice = Hashable


@dataclass(frozen=True)
class StepMeta:
    """What the oracle needs to know about one executed (or peeked) step."""

    choice: Choice
    dest: int  # replica / shared-object group the handler runs on
    instance: Optional[str] = None  # protocol-instance id (sid); None = unknown
    reads: Optional[FrozenSet[str]] = None  # None = unknown (conservative)
    writes: Optional[FrozenSet[str]] = None
    #: Commuting-vote token: two same-destination deliveries with equal
    #: non-None tokens are declared independent.  Models attach these
    #: only to handlers that are pure set-inserts with deterministic
    #: threshold effects (vote counting), where delivery order provably
    #: cannot change the resulting state or emissions.
    token: Optional[Hashable] = None
    sent_by: int = -1  # trace index of the step that sent this message
    fifo_pred: int = -1  # trace index of the previous delivery on this channel
    barrier: bool = False  # timer steps: globally ordered
    label: str = ""


@dataclass
class Violation:
    """One schedule that broke an invariant (or crashed the protocol)."""

    kind: str  # "invariant" | "crash" | "quiescent"
    messages: List[str]
    schedule: List[Choice]
    fingerprint: str
    depth: int
    strategy: str = ""

    def headline(self) -> str:
        first = self.messages[0] if self.messages else "?"
        return f"[{self.kind}] {first}"


@dataclass
class ExploreStats:
    steps: int = 0
    timer_steps: int = 0
    sleep_blocked: int = 0
    backtrack_points: int = 0
    max_depth: int = 0
    replays: int = 0


@dataclass
class ExploreResult:
    schedules: int
    violations: List[Violation]
    stats: ExploreStats
    complete: bool  # False if a budget stopped the search early
    naive_lower_bound: int
    naive_exact: bool

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def reduction_factor(self) -> float:
        if self.schedules == 0:
            return 1.0
        return self.naive_lower_bound / self.schedules


class _Frame:
    """One DFS node: the choice point at a reached state.

    ``base`` is the trace index where this frame's choice step lands;
    the ``pre_steps`` barrier (timer) steps directly below ``base``
    belong to the transition *into* this frame and are popped with it.
    """

    __slots__ = (
        "enabled",
        "backtrack",
        "sleep",
        "snapshot",
        "choice",
        "base",
        "pre_steps",
        "budget",
        "explored",
    )

    def __init__(
        self,
        enabled: List[Choice],
        snapshot: Optional[object],
        base: int,
        pre_steps: int,
        budget: Optional[int],
    ) -> None:
        self.enabled = enabled
        self.backtrack: List[Choice] = []
        self.sleep: Set[Choice] = set()
        self.snapshot = snapshot
        self.choice: Optional[Choice] = None  # choice currently on the path
        self.base = base
        self.pre_steps = pre_steps
        self.budget = budget  # remaining delay budget (None = unbounded)
        self.explored = 0


class _ExtensionOverflow(Exception):
    pass


def count_linear_extensions(
    preds: List[int], budget: int = 200_000
) -> Optional[int]:
    """Number of linear extensions of the poset given by predecessor masks.

    ``preds[i]`` is a bitmask of elements that must precede element ``i``.
    Returns None if the memo table would exceed ``budget`` entries.
    """
    n = len(preds)
    full = (1 << n) - 1
    memo: Dict[int, int] = {}

    def rec(remaining: int) -> int:
        if remaining == 0:
            return 1
        hit = memo.get(remaining)
        if hit is not None:
            return hit
        if len(memo) >= budget:
            raise _ExtensionOverflow
        total = 0
        rest = remaining
        while rest:
            low = rest & -rest
            i = low.bit_length() - 1
            rest ^= low
            if preds[i] & remaining == 0:  # minimal in the remaining poset
                total += rec(remaining & ~low)
        memo[remaining] = total
        return total

    try:
        return rec(full)
    except _ExtensionOverflow:
        return None


class DporEngine:
    """Depth-first systematic exploration of one model configuration."""

    def __init__(
        self,
        model: Any,
        *,
        use_dpor: bool = True,
        use_sleep: bool = True,
        bound: Optional[int] = None,
        max_schedules: Optional[int] = None,
        max_steps: Optional[int] = None,
        deadline_s: Optional[float] = None,
        naive_samples: int = 64,
        extension_budget: int = 200_000,
        stop_on_first: bool = False,
        strategy: str = "",
        snapshot_interval: int = 4,
    ) -> None:
        self.model = model
        self.use_dpor = use_dpor
        self.use_sleep = use_sleep and use_dpor
        self.bound = bound
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.deadline_s = deadline_s
        self.naive_samples = naive_samples
        self.extension_budget = extension_budget
        self.stop_on_first = stop_on_first
        self.strategy = strategy
        self.snapshot_interval = max(1, snapshot_interval)
        self.stats = ExploreStats()
        self._trace: List[StepMeta] = []
        self._hb: List[int] = []  # happens-before bitmask per trace index
        self._last_barrier = -1
        self._stack: List[_Frame] = []
        self._stopped = False
        self._t0 = 0.0
        self._sampled_leaves: List[int] = []
        self._sample_overflow = False
        self._leaf_count = 0

    # -- dependence oracle -------------------------------------------------

    def _dependent(self, a: StepMeta, b: StepMeta) -> bool:
        if a.barrier or b.barrier:
            return True
        if a.dest != b.dest:
            return False
        if (
            getattr(self.model, "sids_isolated", False)
            and a.instance is not None
            and b.instance is not None
            and a.instance != b.instance
        ):
            return False
        if a.token is not None and a.token == b.token:
            return False  # same-vote set-inserts commute (see StepMeta)
        if (
            a.reads is not None
            and a.writes is not None
            and b.reads is not None
            and b.writes is not None
        ):
            return bool(
                (a.writes & b.writes)
                or (a.writes & b.reads)
                or (a.reads & b.writes)
            )
        return True  # unknown footprints on the same replica: assume dependent

    # -- execution plumbing ------------------------------------------------

    def _settle(self) -> None:
        """Fire timers at quiescence until a delivery is enabled (or none)."""
        while not self.model.enabled():
            meta = self.model.fire_next_timer(len(self._trace))
            if meta is None:
                return
            self.stats.timer_steps += 1
            index = len(self._trace)
            self._trace.append(meta)
            self._hb.append((1 << index) - 1)  # barrier: all priors precede
            self._last_barrier = index

    def _execute(self, choice: Choice) -> StepMeta:
        index = len(self._trace)
        meta = self.model.execute(choice, index)
        mask = 0
        if meta.sent_by >= 0:
            mask |= (1 << meta.sent_by) | self._hb[meta.sent_by]
        if meta.fifo_pred >= 0:
            mask |= (1 << meta.fifo_pred) | self._hb[meta.fifo_pred]
        if self._last_barrier >= 0:
            mask |= (1 << self._last_barrier) | self._hb[self._last_barrier]
        self._trace.append(meta)
        self._hb.append(mask)
        self.stats.steps += 1
        self.stats.max_depth = max(self.stats.max_depth, len(self._trace))
        return meta

    def _restore_to(self, depth: int) -> None:
        """Bring the model back to frame ``depth``'s choice point.

        Snapshots are taken only every ``snapshot_interval`` frames (and
        never at leaves), so restoring finds the nearest snapshotted
        ancestor and deterministically replays the few recorded choices
        below it — one deepcopy amortized over several cheap handler
        re-executions.
        """
        frame = self._stack[depth]
        if frame.snapshot is not None:
            self.model.restore(frame.snapshot)
            return
        start = depth
        while start >= 0 and self._stack[start].snapshot is None:
            start -= 1
        self.stats.replays += 1
        if start < 0:
            self.model.reset()
            index = 0
            for _pre in range(self._stack[0].pre_steps):
                self.model.fire_next_timer(index)
                index += 1
            start = 0
        else:
            self.model.restore(self._stack[start].snapshot)
        for i in range(start, depth):
            f = self._stack[i]
            nxt = self._stack[i + 1]
            assert f.choice is not None
            self.model.execute(f.choice, f.base)
            index = f.base + 1
            for _pre in range(nxt.pre_steps):
                self.model.fire_next_timer(index)
                index += 1

    def _truncate_trace(self, length: int) -> None:
        del self._trace[length:]
        del self._hb[length:]
        self._last_barrier = -1
        for i in range(len(self._trace) - 1, -1, -1):
            if self._trace[i].barrier:
                self._last_barrier = i
                break

    # -- DPOR bookkeeping --------------------------------------------------

    def _update_backtracks(self, meta: StepMeta, index: int) -> None:
        if not self.use_dpor:
            return
        mask = self._hb[index]
        for i in range(index - 1, -1, -1):
            prior = self._trace[i]
            if prior.barrier:
                break  # everything at or before a barrier precedes us
            if mask & (1 << i):
                continue
            if not self._dependent(prior, meta):
                continue
            frame = self._frame_of_step(i)
            if frame is None:  # pragma: no cover - defensive
                break
            if frame.budget is not None and frame.budget <= 0:
                break  # bounded mode: deviations here are over budget
            wanted = (
                [meta.choice]
                if meta.choice in frame.enabled
                else list(frame.enabled)
            )
            added = False
            for w in wanted:
                if w not in frame.backtrack:
                    frame.backtrack.append(w)
                    added = True
            if added:
                self.stats.backtrack_points += 1
            break

    def _frame_of_step(self, index: int) -> Optional[_Frame]:
        for frame in self._stack:
            if frame.base == index and frame.choice is not None:
                return frame
        return None

    # -- naive schedule-count estimate ------------------------------------

    def _sample_leaf(self) -> None:
        """Count the Mazurkiewicz class size of the current leaf trace.

        The number of naive schedules equivalent to this execution is the
        number of linear extensions of the trace's dependence-plus-causality
        partial order; summed over (distinct) explored classes this lower-
        bounds the naive schedule count.  Budgeted: on memo overflow we
        count a downward-closed prefix instead, which is still a valid
        lower bound.
        """
        self._leaf_count += 1
        if len(self._sampled_leaves) >= self.naive_samples:
            self._sample_overflow = True
            return
        steps = self._trace
        n = len(steps)
        if n == 0:
            self._sampled_leaves.append(1)
            return
        limit = min(n, 42)
        while limit > 0:
            cut = (1 << limit) - 1
            preds: List[int] = []
            for j in range(limit):
                mask = self._hb[j] & cut
                for i in range(j):
                    if not (mask & (1 << i)) and self._dependent(
                        steps[i], steps[j]
                    ):
                        mask |= 1 << i
                preds.append(mask)
            count = count_linear_extensions(preds, self.extension_budget)
            if count is not None:
                if limit < n:
                    self._sample_overflow = True
                self._sampled_leaves.append(count)
                return
            self._sample_overflow = True
            limit -= 8
        self._sampled_leaves.append(1)

    def _naive_estimate(self) -> Tuple[int, bool]:
        if not self.use_dpor:
            # Without reduction every leaf IS one naive schedule;
            # summing class sizes would count each class once per member.
            return self._leaf_count, not self._stopped
        sampled = sum(self._sampled_leaves)
        unsampled = max(0, self._leaf_count - len(self._sampled_leaves))
        exact = (
            not self._sample_overflow and unsampled == 0 and not self._stopped
        )
        return sampled + unsampled, exact

    # -- budgets -----------------------------------------------------------

    def _budget_exhausted(self) -> bool:
        if self._stopped:
            return True
        if self.max_schedules is not None and self._leaf_count >= self.max_schedules:
            self._stopped = True
        elif self.max_steps is not None and self.stats.steps >= self.max_steps:
            self._stopped = True
        elif (
            self.deadline_s is not None
            and time.monotonic() - self._t0 > self.deadline_s
        ):
            self._stopped = True
        return self._stopped

    # -- main loop ---------------------------------------------------------

    def run(self) -> ExploreResult:
        self._t0 = time.monotonic()
        violations: List[Violation] = []
        self.model.reset()
        self._trace.clear()
        self._hb.clear()
        self._last_barrier = -1
        self._settle()
        self._stack = [self._push_frame(pre_steps=len(self._trace), budget=self.bound, sleep=set())]
        if not self._stack[0].enabled:
            quiescent = list(self.model.check_leaf())
            if quiescent:
                violations.append(self._violation("quiescent", quiescent))
            self._sample_leaf()
        state_at = 0  # frame depth the live model state corresponds to

        while self._stack and not self._budget_exhausted():
            depth = len(self._stack) - 1
            frame = self._stack[-1]

            candidate: Optional[Choice] = None
            for c in frame.backtrack:
                if c in frame.sleep:
                    continue
                if (
                    frame.budget is not None
                    and frame.budget <= 0
                    and frame.enabled
                    and c != frame.enabled[0]
                ):
                    continue
                candidate = c
                break

            if candidate is None:
                if frame.enabled and frame.explored == 0:
                    self.stats.sleep_blocked += 1
                self._stack.pop()
                if self._stack:
                    parent = self._stack[-1]
                    finished = parent.choice
                    self._truncate_trace(parent.base)
                    parent.choice = None
                    if finished is not None:
                        parent.sleep.add(finished)
                else:
                    self._truncate_trace(0)
                state_at = -1
                continue

            if state_at != depth:
                self._restore_to(depth)
                state_at = depth

            # Sleep inheritance needs independence between the sleeping
            # transitions (peeked at *this* state) and the chosen step.
            sleep_metas: List[Tuple[Choice, Optional[StepMeta]]] = []
            if self.use_sleep and frame.sleep:
                for s in frame.sleep:
                    try:
                        sleep_metas.append((s, self.model.peek(s)))
                    except Exception:  # pragma: no cover - defensive
                        sleep_metas.append((s, None))

            frame.choice = candidate
            frame.explored += 1
            crash: Optional[str] = None
            try:
                meta = self._execute(candidate)
            except Exception as exc:  # crash capture is part of the job
                crash = f"{type(exc).__name__}: {exc}"
                meta = StepMeta(choice=candidate, dest=-1, label="crash")
                self._trace.append(meta)
                self._hb.append(0)

            if crash is None:
                self._update_backtracks(meta, frame.base)
                self._settle()
                problems = list(self.model.check_now())
            else:
                problems = [f"handler crashed: {crash}"]

            if problems:
                violations.append(
                    self._violation("crash" if crash else "invariant", problems)
                )
                self._leaf_count += 1
                self._truncate_trace(frame.base)
                frame.choice = None
                frame.sleep.add(candidate)
                state_at = -1
                if self.stop_on_first:
                    self._stopped = True
                continue

            child_sleep: Set[Choice] = set()
            if self.use_sleep:
                for s, smeta in sleep_metas:
                    if smeta is not None and not self._dependent(smeta, meta):
                        child_sleep.add(s)
            cost = 0 if (frame.enabled and candidate == frame.enabled[0]) else 1
            child_budget = None if frame.budget is None else frame.budget - cost
            child = self._push_frame(
                pre_steps=len(self._trace) - frame.base - 1,
                budget=child_budget,
                sleep=child_sleep,
            )
            if not child.enabled:
                quiescent = list(self.model.check_leaf())
                if quiescent:
                    violations.append(self._violation("quiescent", quiescent))
                    if self.stop_on_first:
                        self._stopped = True
                self._sample_leaf()
            self._stack.append(child)
            state_at = len(self._stack) - 1

        naive, exact = self._naive_estimate()
        return ExploreResult(
            schedules=self._leaf_count,
            violations=violations,
            stats=self.stats,
            complete=not self._stopped,
            naive_lower_bound=naive,
            naive_exact=exact,
        )

    def _push_frame(
        self, pre_steps: int, budget: Optional[int], sleep: Set[Choice]
    ) -> _Frame:
        enabled = list(self.model.enabled())
        # Leaves never need restoring, and interior frames only every
        # ``snapshot_interval`` levels (nearest-ancestor replay covers
        # the rest) — deepcopy is the engine's dominant cost.
        snapshot = None
        if enabled and len(self._stack) % self.snapshot_interval == 0:
            snapshot = self.model.snapshot()
        frame = _Frame(
            enabled,
            snapshot,
            base=len(self._trace),
            pre_steps=pre_steps,
            budget=budget,
        )
        frame.sleep = sleep
        if enabled:
            if not self.use_dpor:
                frame.backtrack = list(enabled)
            else:
                # The initial pick must be a choice NOT in the inherited
                # sleep set (Flanagan-Godefroid: "choose t enabled with
                # t not in sleep(s)").  Seeding with a sleeping choice
                # would abandon the node before executing anything, so
                # no races — hence no further backtrack entries — could
                # ever be discovered from it: an unsound prune.  Only
                # when *every* enabled choice is sleeping is the node a
                # genuine sleep-set prune point (leave backtrack empty).
                seed = next((c for c in enabled if c not in sleep), None)
                if seed is not None:
                    frame.backtrack = [seed]
        return frame

    def _violation(self, kind: str, messages: List[str]) -> Violation:
        return Violation(
            kind=kind,
            messages=messages,
            schedule=self._current_schedule(),
            fingerprint=self.model.fingerprint(),
            depth=len(self._trace),
            strategy=self.strategy,
        )

    def _current_schedule(self) -> List[Choice]:
        return [f.choice for f in self._stack if f.choice is not None]


def replay_schedule(
    model: Any,
    choices: List[Choice],
    *,
    complete: bool = True,
    max_completion_steps: int = 100_000,
) -> Tuple[List[str], str, List[str]]:
    """Deterministically replay a schedule prefix against a fresh model.

    Runs ``choices`` in order (firing quiescent timers between steps just
    as the explorer does), then — when ``complete`` — extends with the
    default oldest-first pick until quiescence.  Returns
    ``(violations, fingerprint, step_labels)``.
    """
    model.reset()
    labels: List[str] = []
    index = 0

    def settle() -> None:
        nonlocal index
        while not model.enabled():
            meta = model.fire_next_timer(index)
            if meta is None:
                return
            labels.append(meta.label or "timer")
            index += 1

    settle()
    for choice in choices:
        enabled = model.enabled()
        if choice not in enabled:
            return (
                [f"replay diverged: choice {choice!r} not enabled (have {enabled})"],
                model.fingerprint(),
                labels,
            )
        try:
            meta = model.execute(choice, index)
        except Exception as exc:
            labels.append(f"crash:{type(exc).__name__}")
            return (
                [f"handler crashed: {type(exc).__name__}: {exc}"],
                model.fingerprint(),
                labels,
            )
        labels.append(meta.label or str(choice))
        index += 1
        settle()
        problems = list(model.check_now())
        if problems:
            return problems, model.fingerprint(), labels
    steps = 0
    while complete and steps < max_completion_steps:
        enabled = model.enabled()
        if not enabled:
            break
        try:
            meta = model.execute(enabled[0], index)
        except Exception as exc:
            labels.append(f"crash:{type(exc).__name__}")
            return (
                [f"handler crashed: {type(exc).__name__}: {exc}"],
                model.fingerprint(),
                labels,
            )
        labels.append(meta.label or str(enabled[0]))
        index += 1
        steps += 1
        settle()
        problems = list(model.check_now())
        if problems:
            return problems, model.fingerprint(), labels
    if complete:
        problems = list(model.check_leaf())
        if problems:
            return problems, model.fingerprint(), labels
    return [], model.fingerprint(), labels
