"""Await-interleaving exploration for async handler code.

The message models explore *network* nondeterminism; this module
explores *scheduler* nondeterminism — the interleavings of ``async def``
handlers at their ``await`` suspension points, which is exactly the
territory of the Y601–Y604 static race rules (``repro.analysis.races``).

A fixture builds a :class:`Scheduler`, a shared :class:`TrackedObject`,
and a set of coroutine tasks whose only suspension is ``await
sched.point()`` (standing in for any real await: an RPC, a crypto
executor round-trip, a timer).  :class:`TaskModel` then drives the
coroutines one suspension-to-suspension segment at a time, with the DPOR
engine choosing which task runs next.  Unlike the message models, the
commutativity oracle here uses **runtime** read/write sets: every data
attribute the segment touched on the tracked shared object, recorded as
it happens — reads and writes genuinely distinguished, because they are
observed, not statically approximated.

Coroutines cannot be deep-copied, so the model is replay-restored: the
engine re-runs the choice prefix from ``reset()``, which is sound
because fixture code is deterministic given the schedule.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.explore.dpor import StepMeta


class _Point:
    """A single-suspension awaitable: ``await sched.point()`` parks the
    coroutine until the scheduler steps it again."""

    def __await__(self):
        yield self
        return None


class Scheduler:
    """Cooperative scheduler facade the fixtures program against.

    ``point()`` marks an await; ``spawn()`` registers a new task from
    inside a running one (the fire-and-forget shape Y604 flags).
    """

    def __init__(self) -> None:
        #: (reads, writes) of the segment currently executing, or None.
        self.recorder: Optional[Tuple[Set[str], Set[str]]] = None
        self.spawned: List[Tuple[str, object]] = []
        self._spawn_seq = 0

    def point(self) -> _Point:
        return _Point()

    def spawn(self, coro: object, name: Optional[str] = None) -> None:
        self._spawn_seq += 1
        self.spawned.append((name or f"spawned-{self._spawn_seq}", coro))

    #: asyncio-shaped alias so fixtures exercising the Y604 fire-and-forget
    #: pattern read (and statically analyze) like real handler code.
    create_task = spawn


class TrackedObject:
    """Base for shared state: records data-attribute touches.

    Only attributes present in the instance ``__dict__`` are recorded
    (method lookups and dunders stay silent), and only while a segment
    is executing (``sched.recorder`` is set).  Underscore attributes are
    exempt so fixtures can keep untracked bookkeeping.
    """

    def __init__(self, sched: Scheduler) -> None:
        object.__setattr__(self, "_sched", sched)

    def __getattribute__(self, name: str):
        if not name.startswith("_"):
            d = object.__getattribute__(self, "__dict__")
            if name in d:
                sched = d.get("_sched")
                if sched is not None and sched.recorder is not None:
                    sched.recorder[0].add(name)
        return object.__getattribute__(self, name)

    def __setattr__(self, name: str, value: object) -> None:
        if not name.startswith("_"):
            d = object.__getattribute__(self, "__dict__")
            sched = d.get("_sched")
            if sched is not None and sched.recorder is not None:
                sched.recorder[1].add(name)
        object.__setattr__(self, name, value)

    def _data(self) -> Dict[str, object]:
        return {
            k: v
            for k, v in object.__getattribute__(self, "__dict__").items()
            if not k.startswith("_")
        }


class _Task:
    __slots__ = ("name", "coro", "done", "last_step", "spawned_by", "segments")

    def __init__(self, name: str, coro: object, spawned_by: int) -> None:
        self.name = name
        self.coro = coro
        self.done = False
        self.last_step = -1  # trace index of this task's previous segment
        self.spawned_by = spawned_by  # trace index of the spawning segment
        self.segments = 0


#: ``build(sched)`` returns the shared tracked object plus the initial
#: (name, coroutine) tasks.
BuildFn = Callable[[Scheduler], Tuple[TrackedObject, List[Tuple[str, object]]]]
CheckFn = Callable[[TrackedObject], List[str]]


class TaskModel:
    """Engine model over coroutine segments; choices are task names."""

    sids_isolated = False

    def __init__(
        self,
        build: BuildFn,
        *,
        invariant: Optional[CheckFn] = None,
        final: Optional[CheckFn] = None,
        segment_cap: int = 400,
    ) -> None:
        self.build = build
        self.invariant = invariant
        self.final = final
        self.segment_cap = segment_cap
        self.sched: Scheduler = None  # type: ignore[assignment]
        self.shared: TrackedObject = None  # type: ignore[assignment]
        self.tasks: Dict[str, _Task] = {}
        self.order: List[str] = []
        #: (task, suspension line) per executed segment; line None once done.
        self.last_lines: List[Tuple[str, Optional[int]]] = []
        self.steps = 0

    # -- engine interface --------------------------------------------------

    def reset(self) -> None:
        self.sched = Scheduler()
        self.shared, initial = self.build(self.sched)
        self.tasks = {}
        self.order = []
        self.last_lines = []
        self.steps = 0
        for name, coro in initial:
            self._add_task(name, coro, spawned_by=-1)

    def _add_task(self, name: str, coro: object, spawned_by: int) -> None:
        if name in self.tasks:
            raise ValueError(f"duplicate task name {name!r}")
        self.tasks[name] = _Task(name, coro, spawned_by)
        self.order.append(name)

    def enabled(self) -> List[str]:
        if self.steps >= self.segment_cap:
            return []
        return [name for name in self.order if not self.tasks[name].done]

    def execute(self, choice: str, index: int) -> StepMeta:
        task = self.tasks[choice]
        self.sched.recorder = (set(), set())
        self.sched.spawned = []
        line: Optional[int] = None
        try:
            task.coro.send(None)  # type: ignore[attr-defined]
            frame = getattr(task.coro, "cr_frame", None)
            line = frame.f_lineno if frame is not None else None
        except StopIteration:
            task.done = True
        finally:
            reads, writes = self.sched.recorder
            self.sched.recorder = None
            spawned = list(self.sched.spawned)
            self.sched.spawned = []
        self.steps += 1
        for name, coro in spawned:
            self._add_task(name, coro, spawned_by=index)
        self.last_lines.append((choice, line))
        meta = StepMeta(
            choice=choice,
            dest=0,  # one shared-state group; footprints split it further
            reads=frozenset(reads),
            writes=frozenset(writes),
            sent_by=task.spawned_by if task.segments == 0 else -1,
            fifo_pred=task.last_step,  # program order within the task
            label=f"{choice}@{line if line is not None else 'end'}",
        )
        task.last_step = index
        task.segments += 1
        return meta

    def peek(self, choice: str) -> StepMeta:
        # Runtime sets are unknowable without running the segment.
        return StepMeta(choice=choice, dest=0)

    def fire_next_timer(self, index: int) -> Optional[StepMeta]:
        return None

    def snapshot(self) -> Optional[object]:
        return None  # coroutines cannot be copied; replay from reset()

    def restore(self, snap: object) -> None:  # pragma: no cover - unused
        raise RuntimeError("TaskModel restores by replay, not snapshot")

    def check_now(self) -> List[str]:
        if self.invariant is None:
            return []
        return list(self.invariant(self.shared))

    def check_leaf(self) -> List[str]:
        problems = list(self.check_now())
        stuck = [n for n in self.order if not self.tasks[n].done]
        if stuck and self.steps < self.segment_cap:
            problems.append(f"tasks never completed: {stuck}")
        if self.final is not None and not stuck:
            problems.extend(self.final(self.shared))
        return problems

    def fingerprint(self) -> str:
        h = hashlib.sha256()
        for key, value in sorted(self.shared._data().items()):
            h.update(f"{key}={value!r};".encode())
        for name in self.order:
            h.update(f"{name}:{self.tasks[name].done};".encode())
        return h.hexdigest()[:16]

    # -- confirm-races support --------------------------------------------

    def suspension_lines(self) -> FrozenSet[int]:
        """Lines at which any segment of the last run suspended."""
        return frozenset(
            line for _name, line in self.last_lines if line is not None
        )
